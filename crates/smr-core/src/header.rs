//! The universal node header and node allocation helpers.

use std::alloc::{alloc, dealloc, handle_alloc_error, Layout};
use std::fmt;
use std::mem::ManuallyDrop;
use std::ptr::{self, NonNull};
use std::sync::atomic::AtomicUsize;

/// The universal three-word header placed in front of every reclaimable node.
///
/// Every scheme in the workspace interprets the three words differently; the
/// header itself is deliberately scheme-agnostic and only offers raw word
/// access. Keeping one header for all schemes keeps per-node memory identical
/// across schemes, which the Hyaline paper calls out as the fair comparison
/// point ("Hyaline-(1)S requires three CPU words which is equivalent to
/// HE/IBR for 64-bit CPUs", Section 2.4).
///
/// | word | Hyaline(-1,-S,-1S) | EBR | HP | HE / IBR |
/// |------|---------------------|-----|----|----------|
/// | 0 | slot-list `Next` / birth era / `NRef` (REFS node) | limbo next | retired next | retired next |
/// | 1 | `batch_link` → REFS node / `Adjs` (REFS node) | retire epoch | — | birth era |
/// | 2 | `batch_next` chain (low bit: payload-live flag) / `first` (REFS node) | — | — | retire era |
///
/// # Example
///
/// ```
/// use smr_core::NodeHeader;
/// use std::sync::atomic::Ordering;
///
/// let header = NodeHeader::new();
/// header.word(1).store(42, Ordering::Relaxed);
/// assert_eq!(header.word(1).load(Ordering::Relaxed), 42);
/// ```
#[repr(C)]
#[derive(Debug, Default)]
pub struct NodeHeader {
    words: [AtomicUsize; 3],
}

impl NodeHeader {
    /// Number of words in the header.
    pub const WORDS: usize = 3;

    /// A zero-initialized header.
    pub fn new() -> Self {
        Self {
            words: [AtomicUsize::new(0), AtomicUsize::new(0), AtomicUsize::new(0)],
        }
    }

    /// Raw access to header word `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= NodeHeader::WORDS`.
    #[inline]
    pub fn word(&self, i: usize) -> &AtomicUsize {
        &self.words[i]
    }
}

/// A heap node managed by a reclamation scheme: the universal header followed
/// by the user payload.
///
/// Nodes are created with [`SmrNode::alloc`] and destroyed with
/// [`SmrNode::dealloc`]; reclamation schemes do both on behalf of their
/// callers (via [`SmrHandle::alloc`](crate::SmrHandle::alloc) and
/// [`SmrHandle::retire`](crate::SmrHandle::retire)).
///
/// The payload may be *absent*: Hyaline finalizes partial batches by padding
/// them with payload-less dummy nodes (Section 2.4 of the paper), which are
/// allocated with [`SmrNode::alloc_dummy`] and freed with
/// `dealloc(ptr, false)`.
#[repr(C)]
pub struct SmrNode<T> {
    header: NodeHeader,
    value: ManuallyDrop<T>,
}

impl<T> SmrNode<T> {
    fn layout() -> Layout {
        Layout::new::<SmrNode<T>>()
    }

    /// Allocates a node holding `value`, with a zeroed header.
    pub fn alloc(value: T) -> NonNull<SmrNode<T>> {
        let node = Self::alloc_raw();
        unsafe {
            ptr::addr_of_mut!((*node.as_ptr()).value).write(ManuallyDrop::new(value));
        }
        node
    }

    /// Allocates a *dummy* node: the header is zeroed, the payload is left
    /// uninitialized.
    ///
    /// # Safety
    ///
    /// The caller must never read the payload of a dummy node and must free
    /// it with `dealloc(ptr, false)` so the payload is not dropped.
    pub unsafe fn alloc_dummy() -> NonNull<SmrNode<T>> {
        Self::alloc_raw()
    }

    fn alloc_raw() -> NonNull<SmrNode<T>> {
        let layout = Self::layout();
        debug_assert!(layout.align() >= 1 << crate::TAG_BITS);
        let raw = unsafe { alloc(layout) } as *mut SmrNode<T>;
        let Some(node) = NonNull::new(raw) else {
            handle_alloc_error(layout);
        };
        unsafe {
            ptr::addr_of_mut!((*node.as_ptr()).header).write(NodeHeader::new());
        }
        node
    }

    /// Re-initializes a recycled allocation as a node holding `value`: the
    /// header is re-zeroed (no scheme state survives reuse) and the payload
    /// written fresh. The recycling layer (`smr_core::recycle`) uses this to
    /// reuse memory without assuming type stability.
    ///
    /// # Safety
    ///
    /// `raw` must be an exclusively-owned allocation with the exact layout
    /// of `SmrNode<T>` whose previous payload (if any) was already dropped.
    #[inline]
    pub(crate) unsafe fn renew(raw: *mut u8, value: T) -> NonNull<SmrNode<T>> {
        let node = Self::renew_dummy(raw);
        ptr::addr_of_mut!((*node.as_ptr()).value).write(ManuallyDrop::new(value));
        node
    }

    /// [`SmrNode::renew`] without writing a payload (recycled counterpart of
    /// [`SmrNode::alloc_dummy`]).
    ///
    /// # Safety
    ///
    /// Same ownership/layout contract as [`SmrNode::renew`]; additionally the
    /// caller must never read the payload and must release the node with
    /// `drop_payload = false`.
    #[inline]
    pub(crate) unsafe fn renew_dummy(raw: *mut u8) -> NonNull<SmrNode<T>> {
        debug_assert!(!raw.is_null());
        debug_assert_eq!(raw as usize & crate::TAG_MASK, 0);
        let node = raw as *mut SmrNode<T>;
        ptr::addr_of_mut!((*node).header).write(NodeHeader::new());
        NonNull::new_unchecked(node)
    }

    /// Frees a node previously created by [`SmrNode::alloc`] or
    /// [`SmrNode::alloc_dummy`].
    ///
    /// # Safety
    ///
    /// * `node` must have been returned by `alloc`/`alloc_dummy` and not yet
    ///   freed, and no other reference to it may exist.
    /// * `drop_payload` must be `true` exactly when the node was created by
    ///   [`SmrNode::alloc`] (it has a live payload).
    pub unsafe fn dealloc(node: *mut SmrNode<T>, drop_payload: bool) {
        if drop_payload {
            ManuallyDrop::drop(&mut (*node).value);
        }
        dealloc(node as *mut u8, Self::layout());
    }

    /// Writes `value` into a node whose payload slot is currently
    /// uninitialized or dropped (type-stable node reuse, as in lock-free
    /// reference counting).
    ///
    /// # Safety
    ///
    /// The caller must exclusively own `node`, and the payload slot must not
    /// hold a live value (it would be overwritten without being dropped).
    #[inline]
    pub unsafe fn write_value(node: *mut SmrNode<T>, value: T) {
        ptr::addr_of_mut!((*node).value).write(ManuallyDrop::new(value));
    }

    /// Drops the payload in place without freeing the node's memory.
    ///
    /// # Safety
    ///
    /// The caller must exclusively own the payload, which must be live; it
    /// must not be read again until rewritten with [`SmrNode::write_value`].
    #[inline]
    pub unsafe fn drop_value_in_place(node: *mut SmrNode<T>) {
        ManuallyDrop::drop(&mut (*node).value);
    }

    /// The node's header.
    #[inline]
    pub fn header(&self) -> &NodeHeader {
        &self.header
    }

    /// The node's payload.
    ///
    /// The returned reference is only meaningful for nodes created with
    /// [`SmrNode::alloc`]; reclamation schemes never expose dummy nodes to
    /// data-structure code.
    #[inline]
    pub fn value(&self) -> &T {
        &self.value
    }
}

impl<T: fmt::Debug> fmt::Debug for SmrNode<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SmrNode")
            .field("header", &self.header)
            .field("value", &*self.value)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DROPS: AtomicU64 = AtomicU64::new(0);

    struct CountsDrops(#[allow(dead_code)] u64);
    impl Drop for CountsDrops {
        fn drop(&mut self) {
            DROPS.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn header_words_independent() {
        let h = NodeHeader::new();
        h.word(0).store(1, Ordering::Relaxed);
        h.word(1).store(2, Ordering::Relaxed);
        h.word(2).store(3, Ordering::Relaxed);
        assert_eq!(h.word(0).load(Ordering::Relaxed), 1);
        assert_eq!(h.word(1).load(Ordering::Relaxed), 2);
        assert_eq!(h.word(2).load(Ordering::Relaxed), 3);
    }

    #[test]
    fn header_is_first_field() {
        // The reclamation schemes cast between node and header pointers; the
        // header must live at offset zero.
        let node = SmrNode::alloc(7u32);
        let node_addr = node.as_ptr() as usize;
        let header_addr = unsafe { node.as_ref().header() as *const _ as usize };
        assert_eq!(node_addr, header_addr);
        unsafe { SmrNode::dealloc(node.as_ptr(), true) };
    }

    #[test]
    fn alloc_dealloc_drops_payload_once() {
        DROPS.store(0, Ordering::Relaxed);
        let node = SmrNode::alloc(CountsDrops(9));
        unsafe { SmrNode::dealloc(node.as_ptr(), true) };
        assert_eq!(DROPS.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn dummy_nodes_do_not_drop_payload() {
        DROPS.store(0, Ordering::Relaxed);
        let node = unsafe { SmrNode::<CountsDrops>::alloc_dummy() };
        unsafe { SmrNode::dealloc(node.as_ptr(), false) };
        assert_eq!(DROPS.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn node_alignment_leaves_tag_bits() {
        for _ in 0..64 {
            let node = SmrNode::alloc(0u8);
            assert_eq!(node.as_ptr() as usize & crate::TAG_MASK, 0);
            unsafe { SmrNode::dealloc(node.as_ptr(), true) };
        }
    }

    #[test]
    fn value_roundtrip() {
        let node = SmrNode::alloc(String::from("hyaline"));
        assert_eq!(unsafe { node.as_ref() }.value(), "hyaline");
        unsafe { SmrNode::dealloc(node.as_ptr(), true) };
    }
}
