//! A lock-free claim/release registry of per-thread slot indices.
//!
//! Several schemes give every thread (handle) a dedicated index into fixed
//! arrays: Hyaline-1/1S slots, and the reservation entries of EBR, HP, HE
//! and IBR. Handles claim an index on creation and release it on drop; a
//! bitmap keeps claiming ABA-free, and scans iterate only claimed indices.

use std::sync::atomic::{AtomicUsize, Ordering};

/// A lock-free claim/release registry of slot indices.
///
/// Hyaline-1 and Hyaline-1S give every thread its own slot; handles claim an
/// index on creation and release it on drop. A bitmap keeps claiming
/// ABA-free, and retirement iterates only over claimed indices.
pub struct SlotRegistry {
    bits: Box<[AtomicUsize]>,
    capacity: usize,
    claimed: AtomicUsize,
    /// One past the highest index ever claimed (monotonic), bounding scans.
    highwater: AtomicUsize,
}

impl SlotRegistry {
    /// A registry with `capacity` slots, all free.
    pub fn new(capacity: usize) -> Self {
        let words = capacity.div_ceil(usize::BITS as usize);
        Self {
            bits: (0..words).map(|_| AtomicUsize::new(0)).collect(),
            capacity,
            claimed: AtomicUsize::new(0),
            highwater: AtomicUsize::new(0),
        }
    }

    /// Claims a free slot index.
    ///
    /// # Panics
    ///
    /// Panics when all `capacity` slots are claimed.
    pub fn claim(&self) -> usize {
        for (w, word) in self.bits.iter().enumerate() {
            let mut cur = word.load(Ordering::Relaxed);
            loop {
                let free = !cur;
                if free == 0 {
                    break; // word full, try next
                }
                let bit = free.trailing_zeros() as usize;
                let idx = w * usize::BITS as usize + bit;
                if idx >= self.capacity {
                    break;
                }
                match word.compare_exchange_weak(
                    cur,
                    cur | (1 << bit),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => {
                        self.claimed.fetch_add(1, Ordering::Relaxed);
                        self.highwater.fetch_max(idx + 1, Ordering::Relaxed);
                        return idx;
                    }
                    Err(now) => cur = now,
                }
            }
        }
        panic!(
            "slot registry exhausted: more than {} concurrent handles",
            self.capacity
        );
    }

    /// Releases a previously claimed index.
    pub fn release(&self, idx: usize) {
        debug_assert!(idx < self.capacity);
        let w = idx / usize::BITS as usize;
        let bit = idx % usize::BITS as usize;
        let prev = self.bits[w].fetch_and(!(1 << bit), Ordering::AcqRel);
        debug_assert_ne!(prev & (1 << bit), 0, "releasing an unclaimed slot");
        self.claimed.fetch_sub(1, Ordering::Relaxed);
    }

    /// Number of currently claimed slots.
    pub fn claimed(&self) -> usize {
        self.claimed.load(Ordering::Relaxed)
    }

    /// Iterates over all currently claimed indices (a snapshot; indices
    /// claimed or released concurrently may or may not be observed).
    pub fn iter_claimed(&self) -> impl Iterator<Item = usize> + '_ {
        let hw = self.highwater.load(Ordering::Acquire);
        let words = hw.div_ceil(usize::BITS as usize);
        (0..words).flat_map(move |w| {
            let mut bitsword = self.bits[w].load(Ordering::Acquire);
            std::iter::from_fn(move || {
                if bitsword == 0 {
                    return None;
                }
                let bit = bitsword.trailing_zeros() as usize;
                bitsword &= bitsword - 1;
                Some(w * usize::BITS as usize + bit)
            })
        })
    }
}

impl std::fmt::Debug for SlotRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlotRegistry")
            .field("capacity", &self.capacity)
            .field("claimed", &self.claimed())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claim_release_roundtrip() {
        let reg = SlotRegistry::new(8);
        let a = reg.claim();
        let b = reg.claim();
        assert_ne!(a, b);
        assert_eq!(reg.claimed(), 2);
        reg.release(a);
        assert_eq!(reg.claimed(), 1);
        let c = reg.claim();
        assert_eq!(c, a, "lowest free index is reused");
        reg.release(b);
        reg.release(c);
        assert_eq!(reg.claimed(), 0);
    }

    #[test]
    fn iter_claimed_sees_claims() {
        let reg = SlotRegistry::new(128);
        let idx: Vec<usize> = (0..5).map(|_| reg.claim()).collect();
        reg.release(idx[2]);
        let seen: Vec<usize> = reg.iter_claimed().collect();
        assert_eq!(seen, vec![idx[0], idx[1], idx[3], idx[4]]);
        for &i in &[idx[0], idx[1], idx[3], idx[4]] {
            reg.release(i);
        }
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn claim_panics_when_full() {
        let reg = SlotRegistry::new(2);
        let _a = reg.claim();
        let _b = reg.claim();
        let _c = reg.claim();
    }

    #[test]
    fn concurrent_claims_are_unique() {
        let reg = &SlotRegistry::new(256);
        let all = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let mine: Vec<usize> = (0..32).map(|_| reg.claim()).collect();
                    all.lock().unwrap().extend(mine);
                });
            }
        });
        let mut v = all.into_inner().unwrap();
        v.sort_unstable();
        v.dedup();
        assert_eq!(v.len(), 256, "every claim produced a distinct index");
    }
}
