//! The scheme-agnostic reclamation interface.

use crate::{Atomic, Shared, SmrConfig, SmrStats};

/// A safe-memory-reclamation scheme (a *domain*).
///
/// One value of an `Smr` type owns all reclamation state for one set of
/// nodes (typically one data structure): slot arrays for Hyaline, thread
/// registries for HP/HE/IBR/EBR, the era clock, and the statistics counters.
///
/// Threads interact with the domain through per-thread [`SmrHandle`]s created
/// with [`Smr::handle`]. Handles are cheap to create and drop at any time —
/// for Hyaline this is the *transparency* property the paper emphasizes
/// (threads are "off the hook" after `leave` and never need to be registered
/// or unregistered); for the baseline schemes handle creation registers the
/// thread in a fixed-capacity registry.
///
/// # Example
///
/// ```
/// use smr_core::{Smr, SmrHandle, SmrConfig};
///
/// fn count_unreclaimed<S: Smr<u64>>() -> u64 {
///     let domain = S::with_config(SmrConfig::default());
///     let mut h = domain.handle();
///     h.enter();
///     let node = h.alloc(7);
///     unsafe { h.retire(node) };
///     h.leave();
///     domain.stats().unreclaimed()
/// }
/// ```
///
/// # Scaling past thread-per-handle
///
/// Two adapters compose with any `Smr` implementation:
///
/// * [`Sharded<S>`](crate::Sharded) splits one logical domain into `N`
///   inner domains so retire-list traffic and cross-thread scans touch only
///   one shard (`SmrConfig { shards, routing, .. }` selects the layout).
/// * [`HandlePool<S>`](crate::HandlePool) parks and re-issues handles so
///   short-lived tasks reuse registry slots instead of churning them —
///   required when more tasks than [`SmrConfig::max_threads`] take turns on
///   a registry-based scheme.
///
/// ```
/// use smr_core::{HandlePool, Sharded, Smr, SmrConfig, SmrHandle};
///
/// fn pooled_sharded_churn<S: Smr<u64>>() {
///     let domain: Sharded<S> = Sharded::with_config(SmrConfig {
///         slots: 16,
///         shards: 4,
///         ..SmrConfig::default()
///     });
///     let pool = HandlePool::new(&domain, 2);
///     for _ in 0..8 {
///         // More tasks than pooled handles: checkout blocks, never panics.
///         let mut h = pool.checkout();
///         h.enter();
///         let node = h.alloc(7);
///         unsafe { h.retire(node) };
///         h.leave();
///     } // dropping the guard parks the handle for the next task
/// }
/// ```
pub trait Smr<T: Send + 'static>: Send + Sync + Sized + 'static {
    /// The per-thread handle type. Borrows the domain.
    ///
    /// Handles are `Send`: they hold exclusively owned state (limbo lists,
    /// partial batches, registry indices) plus a shared borrow of the
    /// domain, so a [`HandlePool`](crate::HandlePool) may park a handle
    /// created on one thread and re-issue it to another.
    type Handle<'d>: SmrHandle<T> + Send + 'd
    where
        Self: 'd;

    /// Creates a domain with default configuration.
    fn new() -> Self {
        Self::with_config(SmrConfig::default())
    }

    /// Creates a domain with the given configuration.
    fn with_config(config: SmrConfig) -> Self;

    /// Creates a handle for the calling thread.
    ///
    /// # Panics
    ///
    /// Registry-based schemes panic when more than
    /// [`SmrConfig::max_threads`] handles are simultaneously live.
    fn handle(&self) -> Self::Handle<'_>;

    /// The domain's allocation/retire/free counters.
    fn stats(&self) -> &SmrStats;

    /// A cheap read of the retired-but-not-yet-freed count, safe to call
    /// from hot paths (benchmark sampling loops call it every few hundred
    /// operations per thread).
    ///
    /// For plain domains this is `stats().unreclaimed()`. Aggregating
    /// adapters override it to *sum loads only*: [`Sharded`](crate::Sharded)
    /// must not funnel every sampling thread through writes to one shared
    /// aggregate cache line.
    fn unreclaimed_estimate(&self) -> u64 {
        self.stats().unreclaimed()
    }

    /// Short scheme name as used in the paper's figures
    /// (e.g. `"Hyaline"`, `"Epoch"`, `"HP"`).
    fn name() -> &'static str;

    /// Whether the scheme is *robust*: stalled threads cannot prevent an
    /// unbounded number of retired nodes from being reclaimed (paper §2.3).
    fn robust() -> bool;

    /// Whether [`SmrHandle::trim`] does something beyond `leave`+`enter`
    /// (only the Hyaline variants support real trimming, paper §3.3).
    fn supports_trim() -> bool {
        false
    }

    /// Whether [`SmrHandle::retire`] is *wait-free*: a retiring thread
    /// completes the insertion of its batch into every slot in a bounded
    /// number of its own steps, regardless of how other threads are
    /// scheduled.
    ///
    /// Hyaline's retire is lock-free — a CAS loop per slot can be starved by
    /// concurrent insertions into the same slot list. The Crystalline
    /// variants bound the CAS attempts (see
    /// [`SmrConfig::handoff_attempts`]) and then fall back to an
    /// unconditional swap into a per-slot handoff cell, so retire is
    /// wait-free.
    fn wait_free_retire() -> bool {
        false
    }

    /// Whether traversals must re-validate their window after each new
    /// [`SmrHandle::protect`] and restart when an edge changed.
    ///
    /// Schemes that publish protection *per access* — a hazard pointer (HP),
    /// a single era (HE), or a per-slot access era (Hyaline-S/1S) — only
    /// guard nodes whose retirement starts **after** the publication. A
    /// traversal that walks into an already-unlinked region (e.g. the frozen
    /// chain of a Natarajan–Mittal deletion) can otherwise protect a node
    /// that was retired just before the hazard became visible, and the
    /// reclaimer will free it regardless. This is the paper's §2.4 remark
    /// that robust schemes "require a modification \[26\] that timely retires
    /// deleted list nodes": traversals must never extend protection through
    /// unlinked nodes without re-validating reachability.
    ///
    /// Interval-based schemes (2GE-IBR) reserve `[enter-era, now]`, which
    /// always overlaps the lifetime of any node reachable when the operation
    /// began, and enter-scoped schemes (EBR, Hyaline, Hyaline-1) block all
    /// reclamation since `enter` — neither needs validation.
    fn needs_seek_validation() -> bool {
        false
    }

    /// Whether the scheme tolerates [`ShardRouting::ByPointer`] sharding
    /// (see [`Sharded`](crate::Sharded)): `enter` covers all shards while
    /// each `retire` routes to the shard selected by a hash of the node's
    /// address.
    ///
    /// That is sound only when protection is purely *enter-scoped*: no
    /// per-node metadata stamped at allocation is compared against
    /// shard-local state (birth eras), and `protect` publishes nothing
    /// per-pointer (hazards). Enter-scoped schemes — Hyaline, Hyaline-1,
    /// EBR, Leaky — qualify; era- and pointer-based schemes (Hyaline-S/1S,
    /// HE, IBR, HP, LFRC) must use `ShardRouting::ByKey` instead, where a
    /// node lives its whole life under one shard.
    ///
    /// [`ShardRouting::ByPointer`]: crate::ShardRouting::ByPointer
    fn shardable_by_pointer() -> bool {
        false
    }
}

/// A per-thread handle to an [`Smr`] domain.
///
/// Every data-structure operation must be bracketed by [`enter`] and
/// [`leave`] (the paper's programming model, Figure 1a). Between them,
/// pointers must be read through [`protect`] before being dereferenced;
/// unlinked nodes are handed back with [`retire`].
///
/// Handles buffer thread-local state (Hyaline batches, limbo lists, hazard
/// slots). Dropping a handle releases everything: Hyaline finalizes partial
/// batches so the dropped thread's retired nodes do not linger — threads are
/// never "on the hook" after they are gone.
///
/// [`enter`]: SmrHandle::enter
/// [`leave`]: SmrHandle::leave
/// [`protect`]: SmrHandle::protect
/// [`retire`]: SmrHandle::retire
pub trait SmrHandle<T> {
    /// Begins an operation: makes a reservation so that nodes retired from
    /// now on by any thread are not reclaimed under us.
    fn enter(&mut self);

    /// Ends an operation: releases the reservation made by
    /// [`SmrHandle::enter`] and lets deferred reclamation proceed.
    fn leave(&mut self);

    /// Routes this handle to the shard owning the key partition identified
    /// by `key_hash` (the low bits select the shard).
    ///
    /// Only [`Sharded`](crate::Sharded) handles under
    /// [`ShardRouting::ByKey`](crate::ShardRouting::ByKey) do anything; for
    /// every plain scheme this is a no-op, so data structures may call it
    /// unconditionally. A key-partitioned structure must pin **before** any
    /// `alloc`/`protect`/`retire` of that partition's nodes (the hash map
    /// pins per bucket); switching shards mid-operation re-enters through
    /// the new shard, which is exactly a `leave` + `enter` on the inner
    /// domains.
    fn pin_shard(&mut self, key_hash: u64) {
        let _ = key_hash;
    }

    /// Logically `leave` immediately followed by `enter`, letting previously
    /// retired nodes be reclaimed without ending the reservation window.
    ///
    /// Hyaline implements the cheaper §3.3 trimming that does not touch the
    /// slot `Head`; for every other scheme this is literally
    /// `self.leave(); self.enter();`.
    fn trim(&mut self) {
        self.leave();
        self.enter();
    }

    /// Allocates a node for `value` and initializes scheme metadata (e.g.
    /// the birth era for HE/IBR/Hyaline-S).
    ///
    /// The returned pointer is exclusively owned by the caller until it is
    /// published into a shared structure.
    fn alloc(&mut self, value: T) -> Shared<T>;

    /// Frees a node that was **never published** to other threads (e.g. an
    /// insert lost its CAS and the caller still exclusively owns the node).
    ///
    /// # Safety
    ///
    /// `ptr` must come from [`SmrHandle::alloc`] on this domain, must never
    /// have been reachable by other threads, and must not be used afterwards.
    unsafe fn dealloc(&mut self, ptr: Shared<T>);

    /// Reads `src` and protects the loaded pointer so it may be dereferenced
    /// until the next [`leave`](SmrHandle::leave) (or until `idx` is reused,
    /// for pointer-based schemes).
    ///
    /// `idx` selects a per-thread protection index for HP/HE
    /// (`idx < SmrConfig::max_protect`); interval- and reference-based
    /// schemes ignore it. The returned value retains `src`'s tag bits.
    fn protect(&mut self, idx: usize, src: &Atomic<T>) -> Shared<T>;

    /// Copies the protection held at index `from` to index `to`, so the
    /// pointer protected at `from` stays protected when `from` is
    /// re-protected with something else.
    ///
    /// Tree searches use this to maintain multi-node seek records (e.g. the
    /// ancestor/successor/parent/leaf window of the Natarajan–Mittal tree)
    /// while the traversal window slides. Schemes without per-index state
    /// (epochs, intervals, Hyaline) need nothing; HP copies the hazard slot
    /// and LFRC takes an extra counted reference.
    fn copy_protection(&mut self, from: usize, to: usize) {
        let _ = (from, to);
    }

    /// Retires a node unlinked from the data structure: it will be freed
    /// once no concurrent operation can still hold a protected reference.
    ///
    /// # Safety
    ///
    /// * `ptr` must come from [`SmrHandle::alloc`] on this same domain.
    /// * It must be unreachable for operations that start after this call.
    /// * It must be retired at most once.
    unsafe fn retire(&mut self, ptr: Shared<T>);

    /// Makes everything retired by this handle eligible for reclamation as
    /// soon as concurrent readers leave (finalizes Hyaline's partial batch by
    /// dummy-padding, forces a scan in scan-based schemes).
    fn flush(&mut self);
}

#[cfg(test)]
mod tests {
    // The trait is exercised by every scheme crate; here we only check that
    // it stays object-shaped enough for generic use (compile-time test).
    use super::*;

    fn _generic_use<T: Send + 'static, S: Smr<T>>(domain: &S, value: T) {
        let mut h = domain.handle();
        h.enter();
        let p = h.alloc(value);
        unsafe { h.retire(p) };
        h.leave();
        h.flush();
    }
}
