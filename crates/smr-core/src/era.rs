//! The global era clock shared by hazard eras, IBR and Hyaline-S.

use crossbeam_utils::CachePadded;
use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing 64-bit era counter.
///
/// This is the paper's `AllocEra` (Figure 5): threads advance it every
/// `era_freq` allocations, nodes record the current value as their *birth
/// era*, and robust schemes compare per-slot (Hyaline-S) or per-thread
/// (HE/IBR) reservations against birth eras to skip stalled threads. The
/// counter starts at 1 so 0 can mean "never set".
///
/// Eras are assumed never to overflow in practice (the paper makes the same
/// assumption for its 64-bit eras).
///
/// # Example
///
/// ```
/// use smr_core::EraClock;
///
/// let clock = EraClock::new();
/// let before = clock.current();
/// clock.advance();
/// assert!(clock.current() > before);
/// ```
#[derive(Debug)]
pub struct EraClock {
    era: CachePadded<AtomicU64>,
}

impl Default for EraClock {
    fn default() -> Self {
        Self::new()
    }
}

impl EraClock {
    /// A fresh clock reading 1.
    pub fn new() -> Self {
        Self {
            era: CachePadded::new(AtomicU64::new(1)),
        }
    }

    /// The current era.
    ///
    /// Uses `SeqCst`: the robust schemes' safety arguments order era reads
    /// against pointer reads and reservation writes across threads.
    #[inline]
    pub fn current(&self) -> u64 {
        self.era.load(Ordering::SeqCst)
    }

    /// Advances the clock by one, returning the value *before* the increment.
    #[inline]
    pub fn advance(&self) -> u64 {
        self.era.fetch_add(1, Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_one() {
        assert_eq!(EraClock::new().current(), 1);
    }

    #[test]
    fn advance_is_monotonic() {
        let clock = EraClock::new();
        let mut last = clock.current();
        for _ in 0..100 {
            clock.advance();
            let now = clock.current();
            assert!(now > last);
            last = now;
        }
    }

    #[test]
    fn concurrent_advances_all_counted() {
        let clock = EraClock::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        clock.advance();
                    }
                });
            }
        });
        assert_eq!(clock.current(), 1 + 4 * 1000);
    }
}
