//! Tunable parameters shared by all reclamation schemes.

/// Configuration for a reclamation domain.
///
/// The defaults follow the parameters used in the Hyaline paper's evaluation
/// (Section 6) scaled to the current machine: the number of Hyaline slots is
/// the next power of two of twice the available parallelism (the paper caps
/// slots at 128 on a 72-core machine), batches hold at least 64 nodes, and
/// the stall-detection threshold is 8192.
///
/// # Example
///
/// ```
/// use smr_core::SmrConfig;
///
/// let cfg = SmrConfig { slots: 8, ..SmrConfig::default() };
/// assert!(cfg.slots.is_power_of_two());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmrConfig {
    /// Number of Hyaline slots (`k`). Must be a power of two: the wrap-around
    /// `Adjs` accounting of Section 3.2 requires `k * Adjs == 0 (mod 2^64)`.
    pub slots: usize,
    /// Minimum number of nodes accumulated locally before a batch is retired
    /// into the slot lists. The effective batch size is
    /// `max(batch_min, slots + 1)`; the Hyaline algorithms require strictly
    /// more nodes per batch than slots.
    pub batch_min: usize,
    /// Every `era_freq` allocations a thread advances the global era clock
    /// (`Freq` in Figure 5). Also used as the epoch-advance frequency for EBR
    /// and the era-advance frequency for HE/IBR.
    pub era_freq: u64,
    /// Number of locally retired nodes that triggers a reclamation scan in
    /// the scan-based schemes (EBR, HP, HE, IBR).
    pub scan_threshold: usize,
    /// Number of protection indices available per thread for pointer-based
    /// schemes (HP, HE). `protect(idx, ..)` requires `idx < max_protect`.
    pub max_protect: usize,
    /// Hyaline-S stall-detection threshold: `enter` skips slots whose `Ack`
    /// counter is at or above this value (the paper suggests 8192).
    pub ack_threshold: i64,
    /// Enable Section 4.3 adaptive slot resizing for Hyaline-S.
    pub adaptive: bool,
    /// Capacity of the thread registry for schemes with per-thread state
    /// (HP, HE, IBR, EBR, Hyaline-1, Hyaline-1S).
    pub max_threads: usize,
}

impl SmrConfig {
    /// Configuration with a specific Hyaline slot count.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero or not a power of two.
    pub fn with_slots(slots: usize) -> Self {
        assert!(
            slots.is_power_of_two(),
            "slot count must be a power of two, got {slots}"
        );
        Self {
            slots,
            ..Self::default()
        }
    }

    /// The effective minimum batch size: `max(batch_min, slots + 1)`.
    ///
    /// Section 3.2 requires the number of nodes in a batch to be strictly
    /// greater than the number of slots.
    pub fn effective_batch_size(&self) -> usize {
        self.batch_min.max(self.slots + 1)
    }
}

impl Default for SmrConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self {
            slots: (cores * 2).next_power_of_two(),
            batch_min: 64,
            era_freq: 128,
            scan_threshold: 128,
            max_protect: 8,
            ack_threshold: 8192,
            adaptive: false,
            max_threads: 1024,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_slots_power_of_two() {
        let cfg = SmrConfig::default();
        assert!(cfg.slots.is_power_of_two());
        assert!(cfg.slots >= 2);
    }

    #[test]
    fn effective_batch_size_respects_slots() {
        let cfg = SmrConfig {
            slots: 256,
            batch_min: 64,
            ..SmrConfig::default()
        };
        assert_eq!(cfg.effective_batch_size(), 257);
        let cfg = SmrConfig {
            slots: 4,
            batch_min: 64,
            ..SmrConfig::default()
        };
        assert_eq!(cfg.effective_batch_size(), 64);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn with_slots_rejects_non_power_of_two() {
        let _ = SmrConfig::with_slots(6);
    }
}
