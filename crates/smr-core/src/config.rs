//! Tunable parameters shared by all reclamation schemes.

/// How a [`Sharded`](crate::Sharded) domain routes traffic to its shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardRouting {
    /// The data structure selects the shard explicitly through
    /// [`SmrHandle::pin_shard`](crate::SmrHandle::pin_shard) before touching
    /// any node of a key partition (e.g. the hash map pins per bucket
    /// group). Safe for **every** scheme, because a node is allocated,
    /// protected and retired under the same shard. A structure that never
    /// pins stays entirely in shard 0.
    #[default]
    ByKey,
    /// `enter`/`leave` cover every shard; `retire` routes each node by a
    /// hash of its address. Needs no structure cooperation, but is only
    /// sound for schemes whose protection is purely enter-scoped (no birth
    /// eras, no per-pointer hazards) — see
    /// [`Smr::shardable_by_pointer`](crate::Smr::shardable_by_pointer).
    ByPointer,
}

impl ShardRouting {
    /// Machine-friendly name (results records, CLI flags).
    pub fn short_label(self) -> &'static str {
        match self {
            ShardRouting::ByKey => "by-key",
            ShardRouting::ByPointer => "by-pointer",
        }
    }

    /// Parses [`ShardRouting::short_label`] back.
    pub fn from_short_label(s: &str) -> Option<Self> {
        match s {
            "by-key" | "key" => Some(ShardRouting::ByKey),
            "by-pointer" | "pointer" | "ptr" => Some(ShardRouting::ByPointer),
            _ => None,
        }
    }
}

/// Configuration for a reclamation domain.
///
/// The defaults follow the parameters used in the Hyaline paper's evaluation
/// (Section 6) scaled to the current machine: the number of Hyaline slots is
/// the next power of two of twice the available parallelism (the paper caps
/// slots at 128 on a 72-core machine), batches hold at least 64 nodes, and
/// the stall-detection threshold is 8192.
///
/// # Example
///
/// ```
/// use smr_core::SmrConfig;
///
/// let cfg = SmrConfig { slots: 8, ..SmrConfig::default() };
/// assert!(cfg.slots.is_power_of_two());
/// ```
///
/// A sharded domain divides the slot budget across shards; each shard is an
/// ordinary single-shard domain built from [`SmrConfig::shard_config`]:
///
/// ```
/// use smr_core::SmrConfig;
///
/// let cfg = SmrConfig { slots: 32, shards: 4, ..SmrConfig::default() };
/// assert_eq!(cfg.slots_per_shard(), 8);
/// // Batches must exceed the *per-shard* slot count, not the total.
/// assert_eq!(cfg.effective_batch_size(), 64.max(8 + 1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmrConfig {
    /// Number of Hyaline slots (`k`). Must be a power of two: the wrap-around
    /// `Adjs` accounting of Section 3.2 requires `k * Adjs == 0 (mod 2^64)`.
    pub slots: usize,
    /// Minimum number of nodes accumulated locally before a batch is retired
    /// into the slot lists. The effective batch size is
    /// `max(batch_min, slots + 1)`; the Hyaline algorithms require strictly
    /// more nodes per batch than slots.
    pub batch_min: usize,
    /// Every `era_freq` allocations a thread advances the global era clock
    /// (`Freq` in Figure 5). Also used as the epoch-advance frequency for EBR
    /// and the era-advance frequency for HE/IBR.
    pub era_freq: u64,
    /// Number of locally retired nodes that triggers a reclamation scan in
    /// the scan-based schemes (EBR, HP, HE, IBR).
    pub scan_threshold: usize,
    /// Number of protection indices available per thread for pointer-based
    /// schemes (HP, HE). `protect(idx, ..)` requires `idx < max_protect`.
    pub max_protect: usize,
    /// Hyaline-S stall-detection threshold: `enter` skips slots whose `Ack`
    /// counter is at or above this value (the paper suggests 8192).
    pub ack_threshold: i64,
    /// Enable Section 4.3 adaptive slot resizing for Hyaline-S.
    pub adaptive: bool,
    /// Capacity of the thread registry for schemes with per-thread state
    /// (HP, HE, IBR, EBR, Hyaline-1, Hyaline-1S).
    pub max_threads: usize,
    /// Number of shards for a [`Sharded`](crate::Sharded) domain adapter.
    /// Must be a power of two. Plain (unsharded) schemes ignore it; `1`
    /// means "no sharding" everywhere.
    pub shards: usize,
    /// How a [`Sharded`](crate::Sharded) domain routes traffic to shards.
    /// Ignored by plain schemes.
    pub routing: ShardRouting,
    /// Crystalline only: how many CAS attempts `retire` makes on one slot's
    /// retirement list before falling back to the wait-free handoff cell
    /// (`0` forces every insertion through the handoff path, which is useful
    /// for tests). Other schemes ignore it.
    pub handoff_attempts: usize,
    /// Enable the layout-keyed node-recycling layer
    /// ([`smr_core::recycle`](crate::recycle)): reclaimed nodes feed a
    /// per-domain free pool that `alloc` draws from before falling back to
    /// the global allocator. Off by default — the historical
    /// allocate/free-through-malloc behaviour.
    pub recycle: bool,
    /// Maximum number of reclaimed nodes retained by each domain's recycle
    /// pool (approximate, split across the pool's cache-padded partitions).
    /// Overflow falls back to the real allocator. Each inner domain of a
    /// [`Sharded`](crate::Sharded) adapter owns a pool of this capacity, so
    /// recycled nodes stay on the shard that freed them. Ignored unless
    /// [`SmrConfig::recycle`] is set.
    pub recycle_capacity: usize,
    /// Capacity of each handle's local recycle magazine (the bounded cache
    /// spilled to / refilled from the shared pool in blocks). Ignored unless
    /// [`SmrConfig::recycle`] is set.
    pub recycle_magazine: usize,
}

impl SmrConfig {
    /// Configuration with a specific Hyaline slot count.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero or not a power of two.
    pub fn with_slots(slots: usize) -> Self {
        assert!(
            slots.is_power_of_two(),
            "slot count must be a power of two, got {slots}"
        );
        Self {
            slots,
            ..Self::default()
        }
    }

    /// The effective minimum batch size:
    /// `max(batch_min, slots_per_shard() + 1)`.
    ///
    /// Section 3.2 requires the number of nodes in a batch to be strictly
    /// greater than the number of slots *of the domain the batch is retired
    /// into*. For a single-shard configuration that is the classic
    /// `max(batch_min, slots + 1)`; for a sharded configuration each inner
    /// domain only owns [`SmrConfig::slots_per_shard`] slots, so batches
    /// (and with them the reclamation latency floor) shrink accordingly.
    ///
    /// **Scheme implementors:** a plain (unwrapped) domain that sizes its
    /// batches from this method must normalize its config through
    /// [`SmrConfig::as_single_shard`] first (as `Hyaline` does) — a config
    /// carrying `shards > 1` destined for a `Sharded` wrapper would
    /// otherwise yield batches smaller than the Section 3.2 requirement of
    /// strictly more nodes than the domain's *full* slot count. Inner
    /// domains built from [`SmrConfig::shard_config`] are already
    /// normalized.
    pub fn effective_batch_size(&self) -> usize {
        self.batch_min.max(self.slots_per_shard() + 1)
    }

    /// Slots owned by each shard: `slots / shards`, floored at 1 (both
    /// counts are powers of two, so the quotient is too).
    pub fn slots_per_shard(&self) -> usize {
        (self.slots / self.shards.max(1)).max(1)
    }

    /// The configuration handed to each inner domain of a
    /// [`Sharded`](crate::Sharded) adapter: the slot budget is divided by
    /// the shard count and the result is a plain single-shard config.
    pub fn shard_config(&self) -> Self {
        Self {
            slots: self.slots_per_shard(),
            shards: 1,
            ..self.clone()
        }
    }

    /// This configuration with sharding stripped (`shards = 1`), keeping the
    /// full slot count. Plain (unsharded) schemes normalize through this so
    /// that a config carrying a `shards` knob for a `Sharded` consumer does
    /// not skew their own batch sizing.
    pub fn as_single_shard(&self) -> Self {
        Self {
            shards: 1,
            ..self.clone()
        }
    }
}

impl Default for SmrConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self {
            slots: (cores * 2).next_power_of_two(),
            batch_min: 64,
            era_freq: 128,
            scan_threshold: 128,
            max_protect: 8,
            ack_threshold: 8192,
            adaptive: false,
            max_threads: 1024,
            shards: 1,
            routing: ShardRouting::ByKey,
            handoff_attempts: 8,
            recycle: false,
            recycle_capacity: 8192,
            recycle_magazine: 64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_slots_power_of_two() {
        let cfg = SmrConfig::default();
        assert!(cfg.slots.is_power_of_two());
        assert!(cfg.slots >= 2);
    }

    #[test]
    fn effective_batch_size_respects_slots() {
        let cfg = SmrConfig {
            slots: 256,
            batch_min: 64,
            ..SmrConfig::default()
        };
        assert_eq!(cfg.effective_batch_size(), 257);
        let cfg = SmrConfig {
            slots: 4,
            batch_min: 64,
            ..SmrConfig::default()
        };
        assert_eq!(cfg.effective_batch_size(), 64);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn with_slots_rejects_non_power_of_two() {
        let _ = SmrConfig::with_slots(6);
    }

    #[test]
    fn shard_config_divides_the_slot_budget() {
        let cfg = SmrConfig {
            slots: 32,
            shards: 4,
            batch_min: 2,
            ..SmrConfig::default()
        };
        assert_eq!(cfg.slots_per_shard(), 8);
        let inner = cfg.shard_config();
        assert_eq!(inner.slots, 8);
        assert_eq!(inner.shards, 1);
        // The sharded config and its inner config agree on the batch size.
        assert_eq!(cfg.effective_batch_size(), 9);
        assert_eq!(inner.effective_batch_size(), 9);
        // More shards than slots floors at one slot per shard.
        let tiny = SmrConfig {
            slots: 2,
            shards: 8,
            ..SmrConfig::default()
        };
        assert_eq!(tiny.slots_per_shard(), 1);
        assert!(tiny.shard_config().slots.is_power_of_two());
    }

    #[test]
    fn single_shard_batch_size_is_unchanged() {
        // shards = 1 must reproduce the historical max(batch_min, slots+1).
        let cfg = SmrConfig {
            slots: 256,
            batch_min: 64,
            ..SmrConfig::default()
        };
        assert_eq!(cfg.effective_batch_size(), 257);
        let flattened = SmrConfig {
            slots: 256,
            batch_min: 64,
            shards: 8,
            ..SmrConfig::default()
        }
        .as_single_shard();
        assert_eq!(flattened.effective_batch_size(), 257);
    }

    #[test]
    fn routing_labels_round_trip() {
        for r in [ShardRouting::ByKey, ShardRouting::ByPointer] {
            assert_eq!(ShardRouting::from_short_label(r.short_label()), Some(r));
        }
        assert_eq!(ShardRouting::from_short_label("zipf"), None);
    }
}
