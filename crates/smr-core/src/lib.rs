//! Shared substrate for safe memory reclamation (SMR) schemes.
//!
//! This crate provides the pieces that every reclamation scheme in the
//! workspace builds on:
//!
//! * [`Shared`] and [`Atomic`] — tagged pointers to reclaimable nodes, with
//!   the low alignment bits available as marks (as required by Harris-style
//!   linked lists and the Natarajan–Mittal tree).
//! * [`NodeHeader`] and [`SmrNode`] — the universal three-word header placed
//!   in front of every reclaimable object. Each scheme interprets the three
//!   words differently (see the crate-level docs of `hyaline` and
//!   `smr-baselines`), which keeps per-node memory identical across schemes
//!   and benchmark comparisons fair, mirroring the accounting in Section 2.4
//!   of the Hyaline paper.
//! * [`Smr`] and [`SmrHandle`] — the scheme-agnostic interface that the
//!   lock-free data structures are written against. It is the Rust analogue
//!   of the `MemoryTracker` interface of the IBR benchmark framework
//!   (Wen et al., PPoPP'18) used by the paper's evaluation.
//! * [`EraClock`] — the global era counter shared by hazard eras, IBR and
//!   Hyaline-S (the paper's `AllocEra`, Figure 5).
//! * [`SmrStats`] — allocation/retire/free counters used to reproduce the
//!   paper's "retired but not yet reclaimed objects per operation" metric.
//! * [`Sharded`] and [`HandlePool`] — scale adapters over any [`Smr`]
//!   implementation: sharded domains bound retire-list traffic and
//!   cross-thread scans to one shard, and handle pools let more tasks than
//!   [`SmrConfig::max_threads`] take turns on registry-based schemes.
//! * [`NodePool`] and [`Magazine`] — the opt-in layout-keyed node-recycling
//!   layer ([`recycle`]): when [`SmrConfig::recycle`] is on, every scheme's
//!   reclaim path feeds freed node memory back to `alloc` instead of the
//!   global allocator.
//!
//! # Example
//!
//! Schemes implement [`Smr`]; data structures use it generically:
//!
//! ```
//! use smr_core::{Atomic, Shared, Smr, SmrHandle};
//!
//! fn publish_and_retire<T, S>(domain: &S, value: T)
//! where
//!     T: Send + 'static,
//!     S: Smr<T>,
//! {
//!     let slot = Atomic::<T>::null();
//!     let mut handle = domain.handle();
//!     handle.enter();
//!     let node = handle.alloc(value);
//!     slot.store(node, std::sync::atomic::Ordering::Release);
//!     let seen = handle.protect(0, &slot);
//!     assert_eq!(seen, node);
//!     // Unlink, then hand the node to the reclamation scheme.
//!     slot.store(Shared::null(), std::sync::atomic::Ordering::Release);
//!     unsafe { handle.retire(seen) };
//!     handle.leave();
//! }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

#[cfg(not(target_pointer_width = "64"))]
compile_error!(
    "smr-core targets 64-bit platforms only: eras are 64-bit and the Hyaline \
     head packs a 16-bit reference count with a 48-bit pointer"
);

mod config;
mod era;
mod header;
mod pool;
pub mod recycle;
mod registry;
mod shared;
mod sharded;
mod smr;
mod stats;
pub mod typed;

pub use config::{ShardRouting, SmrConfig};
pub use era::EraClock;
pub use header::{NodeHeader, SmrNode};
pub use pool::{CheckOut, HandlePool, PooledHandle};
pub use recycle::{Magazine, NodePool};
pub use registry::SlotRegistry;
pub use shared::{Atomic, Shared};
pub use sharded::{Sharded, ShardedHandle};
pub use smr::{Smr, SmrHandle};
pub use stats::{LocalStats, SmrStats};

/// Number of low pointer bits usable as tags/marks on [`Shared`] pointers.
///
/// [`SmrNode`] is aligned to at least 8 bytes (it starts with three
/// `AtomicUsize` words), so the low three bits of any node address are zero.
pub const TAG_BITS: u32 = 3;

/// Bit mask selecting the tag bits of a raw [`Shared`] representation.
pub const TAG_MASK: usize = (1 << TAG_BITS) - 1;
