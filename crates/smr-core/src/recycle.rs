//! Layout-keyed node recycling: reclamation feeds allocation.
//!
//! Every reclamation scheme in the workspace ultimately frees nodes through
//! the global allocator, so at high thread counts the benchmarks measure
//! malloc contention as much as SMR cost. This module converts the reclaim
//! path into the allocator's fast path: reclaimed [`SmrNode`] memory is
//! pushed into a per-domain [`NodePool`] (cache-padded partitions of
//! Treiber-style lock-free free lists) and `alloc` draws from the pool
//! before falling back to the global allocator.
//!
//! # Design
//!
//! * **Layout keyed, not type stable.** A pool recycles *memory*, never
//!   values: [`NodePool::dispose`] drops the payload immediately (so `Drop`
//!   side effects run exactly when the scheme frees the node) and only the
//!   raw allocation is retained. Pools are keyed by the [`Layout`] of the
//!   concrete `SmrNode<T>`; an allocation or disposal whose layout does not
//!   match the pool's key silently falls through to the global allocator, so
//!   a mixed-type domain can never hand out memory of the wrong size or
//!   alignment. Reused memory gets a freshly zeroed
//!   [`NodeHeader`](crate::NodeHeader) and keeps
//!   the original allocation's alignment, so the
//!   [`TAG_BITS`](crate::TAG_BITS) invariant is preserved for free.
//! * **Magazines.** Each handle owns a bounded [`Magazine`] — a small
//!   exclusively-owned cache refilled from / spilled to the shared partition
//!   in blocks, so the common dispose→alloc round trip touches no shared
//!   cache line at all. A refill detaches a partition's *entire* chain with
//!   one `swap` and keeps it as a private reserve consumed lazily: walking
//!   the chain up front to push a remainder back would serially
//!   pointer-chase every cold node in it, which costs more than recycling
//!   saves when frees arrive in large bursts. Magazines also buffer the pool's hit/miss/recycled
//!   statistics and flush them to [`SmrStats`] in batches, like
//!   [`LocalStats`](crate::LocalStats) does for the core counters.
//! * **No ABA by construction.** The shared free list supports exactly two
//!   operations: [`push_block`](NodePool) (a CAS-loop prepend of an
//!   exclusively-owned chain) and `take_all` (an unconditional `swap` of the
//!   head to null). The classic Treiber *pop-one* — read `head`, read
//!   `head->next`, CAS `head → next` — is deliberately not implemented: a
//!   node popped by another thread can be handed out, live anywhere, and be
//!   pushed back while our CAS still compares equal, splicing its stale
//!   `next` (now an in-use node) back into the list. `take_all` has no such
//!   window: the moment the swap returns, the entire chain is unreachable
//!   from the shared head, so walking its link words reads exclusively-owned
//!   memory and no CAS ever validates against state another thread can
//!   recycle. `push_block` only *writes* the tail link of a chain it owns
//!   and never dereferences shared nodes. `interleave::recycle` model-checks
//!   this argument and demonstrates the pop-one trap via a fault-injected
//!   mutant.
//! * **Bounded.** Partitions cap their (approximate) length at
//!   [`SmrConfig::recycle_capacity`]` / partitions`; a spill that finds its
//!   partition full frees the block through the real allocator, so a burst
//!   of retirements cannot pin unbounded memory. The pool itself frees every
//!   cached allocation on `Drop`.
//!
//! Recycling is **off by default** ([`SmrConfig::recycle`]); a disabled pool
//! routes straight to [`SmrNode::alloc`]/[`SmrNode::dealloc`] and keeps the
//! hot path identical to the historical one.

use crate::config::SmrConfig;
use crate::header::SmrNode;
use crate::stats::SmrStats;
use crossbeam_utils::CachePadded;
use std::alloc::{dealloc, Layout};
use std::fmt;
use std::ptr::NonNull;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Shared free-list partitions per pool. A power of two so round-robin
/// assignment of magazines to partitions stays a mask.
const PARTITIONS: usize = 8;

/// One cache-padded free-list partition.
///
/// `head` is the address of the first free node (0 = empty); each free node
/// stores the address of the next in header word 0 (the node is unreachable
/// while pooled, so the scheme's use of that word does not conflict). `len`
/// is an approximate element count used only for capacity bounding.
#[derive(Debug, Default)]
struct Partition {
    head: AtomicUsize,
    len: AtomicUsize,
}

/// A layout-keyed pool of recycled [`SmrNode`] allocations for one domain.
///
/// Built by each scheme from its [`SmrConfig`]; handles interact with it
/// through their [`Magazine`]. See the [module docs](self) for the design.
pub struct NodePool {
    layout: Layout,
    enabled: bool,
    magazine_cap: usize,
    partition_cap: usize,
    partitions: Box<[CachePadded<Partition>]>,
    next_partition: AtomicUsize,
}

impl NodePool {
    /// A pool recycling nodes of payload type `T`, configured (and possibly
    /// disabled) by `config`'s recycle knobs.
    pub fn for_node<T>(config: &SmrConfig) -> Self {
        Self::with_layout(
            Layout::new::<SmrNode<T>>(),
            config.recycle,
            config.recycle_capacity,
            config.recycle_magazine,
        )
    }

    fn with_layout(layout: Layout, enabled: bool, capacity: usize, magazine: usize) -> Self {
        Self {
            layout,
            enabled,
            magazine_cap: magazine.max(1),
            partition_cap: capacity.div_ceil(PARTITIONS),
            partitions: (0..PARTITIONS)
                .map(|_| CachePadded::new(Partition::default()))
                .collect(),
            next_partition: AtomicUsize::new(0),
        }
    }

    /// Whether recycling is enabled for this pool.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// A fresh magazine bound to one of this pool's partitions (round-robin,
    /// so concurrent handles spread across partitions).
    pub fn magazine(&self) -> Magazine {
        Magazine {
            partition: self.next_partition.fetch_add(1, Ordering::Relaxed) & (PARTITIONS - 1),
            items: Vec::new(),
            reserve: 0,
            hits: 0,
            misses: 0,
            recycled: 0,
        }
    }

    /// Allocates a node holding `value`, reusing pooled memory when possible.
    ///
    /// Falls back to [`SmrNode::alloc`] when the pool is disabled, empty, or
    /// keyed to a different layout.
    pub fn alloc<T>(&self, mag: &mut Magazine, shared: &SmrStats, value: T) -> NonNull<SmrNode<T>> {
        if !self.usable_for::<T>() {
            return SmrNode::alloc(value);
        }
        match self.grab(mag, shared) {
            // SAFETY: `raw` came out of this pool, whose key equals
            // `Layout::new::<SmrNode<T>>()` (checked by `usable_for`), and
            // pooled memory is exclusively owned by whoever popped it.
            Some(raw) => unsafe { SmrNode::renew(raw as *mut u8, value) },
            None => SmrNode::alloc(value),
        }
    }

    /// Allocates a payload-less dummy node (see [`SmrNode::alloc_dummy`]),
    /// reusing pooled memory when possible.
    ///
    /// # Safety
    ///
    /// Same contract as [`SmrNode::alloc_dummy`]: the payload must never be
    /// read and the node must be released with `drop_payload = false`.
    pub unsafe fn alloc_dummy<T>(&self, mag: &mut Magazine, shared: &SmrStats) -> NonNull<SmrNode<T>> {
        if !self.usable_for::<T>() {
            return SmrNode::alloc_dummy();
        }
        match self.grab(mag, shared) {
            // SAFETY: layout match checked by `usable_for`; pooled memory is
            // exclusively owned by whoever popped it.
            Some(raw) => SmrNode::renew_dummy(raw as *mut u8),
            None => SmrNode::alloc_dummy(),
        }
    }

    /// The common disposal hook for every scheme's reclaim path: drops the
    /// payload immediately (when `drop_payload`), then recycles the node's
    /// memory into `mag`/the pool instead of freeing it.
    ///
    /// Falls back to [`SmrNode::dealloc`] when the pool is disabled or keyed
    /// to a different layout, and to the real allocator when both the
    /// magazine and the partition are full.
    ///
    /// # Safety
    ///
    /// Same contract as [`SmrNode::dealloc`]: `node` must be exclusively
    /// owned and not yet freed, and `drop_payload` must be `true` exactly
    /// when the node holds a live payload.
    pub unsafe fn dispose<T>(
        &self,
        mag: &mut Magazine,
        shared: &SmrStats,
        node: *mut SmrNode<T>,
        drop_payload: bool,
    ) {
        if !self.usable_for::<T>() {
            // SAFETY: forwarded caller contract.
            SmrNode::dealloc(node, drop_payload);
            return;
        }
        if drop_payload {
            // SAFETY: caller owns the node and asserts the payload is live.
            SmrNode::drop_value_in_place(node);
        }
        mag.items.push(node as usize);
        mag.recycled += 1;
        if mag.items.len() > self.magazine_cap {
            self.spill_down(mag, self.magazine_cap / 2);
        }
        mag.maybe_flush_counts(shared);
    }

    /// Spills the whole magazine back to the pool and publishes its buffered
    /// statistics. Schemes call this from
    /// [`SmrHandle::flush`](crate::SmrHandle::flush) and on handle drop so
    /// parked or retired
    /// handles never strand pool capacity.
    pub fn flush(&self, mag: &mut Magazine, shared: &SmrStats) {
        // Drain the private reserve in magazine-sized chunks so each spill
        // re-checks the partition's capacity bound.
        loop {
            self.spill_down(mag, 0);
            if mag.reserve == 0 {
                break;
            }
            mag.draw_reserve(self.magazine_cap);
        }
        mag.flush_counts(shared);
    }

    fn usable_for<T>(&self) -> bool {
        self.enabled && Layout::new::<SmrNode<T>>() == self.layout
    }

    /// Pops one recycled allocation, refilling the magazine from the shared
    /// partitions when it is empty. Returns `None` on a pool miss.
    fn grab(&self, mag: &mut Magazine, shared: &SmrStats) -> Option<usize> {
        if mag.items.is_empty() {
            self.refill(mag);
        }
        let raw = mag.items.pop();
        match raw {
            Some(_) => mag.hits += 1,
            None => mag.misses += 1,
        }
        mag.maybe_flush_counts(shared);
        raw
    }

    /// Moves magazine entries beyond `keep` into the shared partition as one
    /// linked block — or frees them for real when the partition is at
    /// capacity, so the pool's footprint stays bounded.
    fn spill_down(&self, mag: &mut Magazine, keep: usize) {
        if mag.items.len() <= keep {
            return;
        }
        let part = &self.partitions[mag.partition];
        let overflowing = part.len.load(Ordering::Relaxed) >= self.partition_cap;
        let mut head = 0usize;
        let mut tail = 0usize;
        let mut n = 0usize;
        while mag.items.len() > keep {
            let raw = mag.items.pop().expect("len > keep implies non-empty");
            if overflowing {
                // SAFETY: `raw` is an exclusively-owned allocation of
                // `self.layout` whose payload was already dropped on
                // `dispose`; freeing the raw memory releases it fully.
                unsafe { dealloc(raw as *mut u8, self.layout) };
                continue;
            }
            // Chain the block locally before a single shared push: the link
            // lives in header word 0 of the (unreachable) node.
            // SAFETY: `raw` is exclusively ours until `push_block` publishes
            // it; header word 0 is at offset 0 and valid for atomic access.
            unsafe { (*(raw as *const AtomicUsize)).store(head, Ordering::Relaxed) };
            if head == 0 {
                tail = raw;
            }
            head = raw;
            n += 1;
        }
        if n > 0 {
            self.push_block(part, head, tail, n);
        }
    }

    /// Prepends an exclusively-owned chain (`head..=tail`, `n` nodes) onto
    /// the partition's free list.
    ///
    /// ABA-free: the CAS only ever *writes* the chain's tail link (memory we
    /// own until the CAS succeeds) and never dereferences the observed head,
    /// so a stale comparand can only cost a retry, never a corrupt splice.
    fn push_block(&self, part: &Partition, head: usize, tail: usize, n: usize) {
        debug_assert!(head != 0 && tail != 0 && n > 0);
        // SAFETY: `tail` is part of the not-yet-published chain we own; its
        // header word 0 is at offset 0 and valid for atomic access.
        let tail_link = unsafe { &*(tail as *const AtomicUsize) };
        let mut cur = part.head.load(Ordering::Relaxed);
        loop {
            tail_link.store(cur, Ordering::Relaxed);
            // Release publishes the chain's link words to the next take_all.
            match part
                .head
                .compare_exchange_weak(cur, head, Ordering::Release, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        part.len.fetch_add(n, Ordering::Relaxed);
    }

    /// Refills an empty magazine: draws from the magazine's private reserve
    /// chain first, then detaches a whole partition chain with one `swap`
    /// (trying the magazine's own partition first, then the others) and
    /// parks it as the new reserve.
    ///
    /// The detached chain is deliberately **not** walked to split off a
    /// remainder and push it back: finding the remainder's tail would be a
    /// serial pointer-chase over every cold node in the chain — O(partition
    /// residency) cache misses per refill, which measurably dominates the
    /// whole recycling win for schemes that free in large bursts (Hyaline
    /// batches, epoch scans build partition chains thousands of nodes
    /// long). Keeping the chain as a lazily-consumed reserve means a refill
    /// only ever touches the nodes it actually hands out.
    fn refill(&self, mag: &mut Magazine) {
        debug_assert!(mag.items.is_empty());
        let want = (self.magazine_cap / 2).max(1);
        mag.draw_reserve(want);
        if !mag.items.is_empty() {
            return;
        }
        for i in 0..self.partitions.len() {
            let idx = (mag.partition + i) & (PARTITIONS - 1);
            let part = &self.partitions[idx];
            if part.head.load(Ordering::Relaxed) == 0 {
                continue;
            }
            // Acquire pairs with the Release publish in `push_block`; from
            // here the entire detached chain is exclusively ours, which is
            // what makes walking its link words safe (see module docs).
            let chain = part.head.swap(0, Ordering::Acquire);
            if chain == 0 {
                continue;
            }
            // The approximate `len` is zeroed wholesale rather than walked:
            // a push whose CAS lands between the two swaps can lose its
            // count, transiently under-counting the partition. `len` only
            // bounds capacity (saturating, advisory), so the trade is the
            // same one the counter already makes.
            part.len.swap(0, Ordering::Relaxed);
            mag.reserve = chain;
            mag.draw_reserve(want);
            return;
        }
    }
}

impl fmt::Debug for NodePool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NodePool")
            .field("layout", &self.layout)
            .field("enabled", &self.enabled)
            .field("magazine_cap", &self.magazine_cap)
            .field("partition_cap", &self.partition_cap)
            .finish_non_exhaustive()
    }
}

// SAFETY: the pool only stores addresses of exclusively-owned allocations;
// all shared mutation goes through atomics.
unsafe impl Send for NodePool {}
// SAFETY: as above — `push_block`/`take_all` are the only shared-list
// operations and both are atomic on `Partition::head`.
unsafe impl Sync for NodePool {}

impl Drop for NodePool {
    fn drop(&mut self) {
        // `&mut self`: no handle can race us, so plain walks are fine.
        for part in self.partitions.iter() {
            let mut cur = part.head.load(Ordering::Relaxed);
            while cur != 0 {
                // SAFETY: every pooled address is an exclusively-owned
                // allocation of `self.layout` whose payload was dropped
                // before it entered the pool.
                // ORDERING: `&mut self` proves the partitions are quiescent
                // (no concurrent pushers), so Relaxed link loads suffice.
                let next = unsafe { (*(cur as *const AtomicUsize)).load(Ordering::Relaxed) };
                // SAFETY: as above.
                unsafe { dealloc(cur as *mut u8, self.layout) };
                cur = next;
            }
        }
    }
}

/// How many buffered statistic events a magazine holds before flushing to
/// the shared [`SmrStats`] (mirrors `LocalStats`' batching).
const STAT_FLUSH_EVERY: u64 = 64;

/// A handle-local bounded cache of recycled allocations (plus buffered pool
/// statistics), created by [`NodePool::magazine`].
///
/// A magazine must be flushed back to its pool (via [`NodePool::flush`])
/// before it is dropped; schemes do this in their handle `Drop` and
/// `flush()` paths, which is also what makes
/// [`HandlePool`](crate::HandlePool) check-in release pooled capacity.
pub struct Magazine {
    partition: usize,
    /// Addresses of exclusively-owned allocations (stored as `usize`, like
    /// the tagged [`Shared`](crate::Shared) representation).
    items: Vec<usize>,
    /// Head of a private free chain detached wholesale from a partition by
    /// `refill` (0 = empty) and consumed lazily — see `NodePool::refill`
    /// for why the chain is never walked up front.
    reserve: usize,
    hits: u64,
    misses: u64,
    recycled: u64,
}

impl Magazine {
    /// Nodes currently cached in this magazine.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the magazine holds no cached nodes.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Moves up to `want` nodes from the private reserve chain into
    /// `items`, touching only the nodes it hands out.
    fn draw_reserve(&mut self, want: usize) {
        while self.reserve != 0 && self.items.len() < want {
            let raw = self.reserve;
            // SAFETY: the reserve chain was detached from a partition by
            // `refill` and is exclusively owned by this magazine; header
            // word 0 of each node holds the next-free link.
            // ORDERING: the detaching swap in `refill` was Acquire, which
            // already ordered these link words; private reads are Relaxed.
            self.reserve = unsafe { (*(raw as *const AtomicUsize)).load(Ordering::Relaxed) };
            self.items.push(raw);
        }
    }

    #[inline]
    fn maybe_flush_counts(&mut self, shared: &SmrStats) {
        if self.hits + self.misses + self.recycled >= STAT_FLUSH_EVERY {
            self.flush_counts(shared);
        }
    }

    fn flush_counts(&mut self, shared: &SmrStats) {
        if self.hits > 0 {
            shared.add_pool_hits(self.hits);
            self.hits = 0;
        }
        if self.misses > 0 {
            shared.add_pool_misses(self.misses);
            self.misses = 0;
        }
        if self.recycled > 0 {
            shared.add_recycled(self.recycled);
            self.recycled = 0;
        }
    }
}

impl fmt::Debug for Magazine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Magazine")
            .field("partition", &self.partition)
            .field("cached", &self.items.len())
            .finish_non_exhaustive()
    }
}

// SAFETY: a magazine's cached addresses are exclusively owned by it; moving
// the magazine to another thread moves that ownership wholesale.
unsafe impl Send for Magazine {}

impl Drop for Magazine {
    fn drop(&mut self) {
        // A non-empty magazine at drop is a scheme bug (its handle failed to
        // flush) and would leak the cached nodes. Only a leak — never UB —
        // so debug-assert rather than abort release builds, and stay quiet
        // during unwinds where the flush legitimately never ran.
        if !std::thread::panicking() {
            debug_assert!(
                self.items.is_empty() && self.reserve == 0,
                "magazine dropped with {} cached nodes (reserve head {:#x}); the \
                 owning handle must flush it back to its NodePool first",
                self.items.len(),
                self.reserve
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    static DROPS: AtomicU64 = AtomicU64::new(0);
    struct CountsDrops(#[allow(dead_code)] u64);
    impl Drop for CountsDrops {
        fn drop(&mut self) {
            DROPS.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn cfg(capacity: usize, magazine: usize) -> SmrConfig {
        SmrConfig {
            recycle: true,
            recycle_capacity: capacity,
            recycle_magazine: magazine,
            ..SmrConfig::default()
        }
    }

    #[test]
    fn disabled_pool_routes_to_global_allocator() {
        let pool = NodePool::for_node::<u64>(&SmrConfig::default());
        assert!(!pool.enabled());
        let stats = SmrStats::new();
        let mut mag = pool.magazine();
        let node = pool.alloc(&mut mag, &stats, 7u64);
        // SAFETY: node freshly allocated above, exclusively owned.
        unsafe { pool.dispose(&mut mag, &stats, node.as_ptr(), true) };
        pool.flush(&mut mag, &stats);
        assert_eq!(stats.pool_hits(), 0);
        assert_eq!(stats.pool_misses(), 0);
        assert_eq!(stats.recycled(), 0);
    }

    #[test]
    fn dispose_then_alloc_reuses_memory_and_drops_payload_once() {
        let pool = NodePool::for_node::<CountsDrops>(&cfg(1024, 8));
        let stats = SmrStats::new();
        let mut mag = pool.magazine();
        DROPS.store(0, Ordering::Relaxed);
        let node = pool.alloc(&mut mag, &stats, CountsDrops(1));
        let addr = node.as_ptr() as usize;
        // Dirty the header so reuse proves it is re-zeroed.
        // SAFETY: `node` was just allocated and is exclusively owned.
        unsafe { node.as_ref() }
            .header()
            .word(2)
            .store(0xdead, Ordering::Relaxed);
        // SAFETY: exclusively owned, live payload.
        unsafe { pool.dispose(&mut mag, &stats, node.as_ptr(), true) };
        assert_eq!(DROPS.load(Ordering::Relaxed), 1, "payload dropped eagerly");
        let reused = pool.alloc(&mut mag, &stats, CountsDrops(2));
        assert_eq!(reused.as_ptr() as usize, addr, "memory reused");
        for w in 0..crate::NodeHeader::WORDS {
            assert_eq!(
                // SAFETY: `reused` was just allocated and is exclusively owned.
                unsafe { reused.as_ref() }.header().word(w).load(Ordering::Relaxed),
                0,
                "header word {w} re-zeroed on reuse"
            );
        }
        // SAFETY: exclusively owned, live payload.
        unsafe { pool.dispose(&mut mag, &stats, reused.as_ptr(), true) };
        pool.flush(&mut mag, &stats);
        assert_eq!(DROPS.load(Ordering::Relaxed), 2);
        assert_eq!(stats.pool_hits(), 1);
        assert_eq!(stats.pool_misses(), 1);
        assert_eq!(stats.recycled(), 2);
    }

    #[test]
    fn layout_mismatch_falls_through() {
        // Pool keyed to u64 nodes; a [u64; 16] node must bypass it entirely.
        let pool = NodePool::for_node::<u64>(&cfg(1024, 8));
        let stats = SmrStats::new();
        let mut mag = pool.magazine();
        let big = pool.alloc(&mut mag, &stats, [7u64; 16]);
        // SAFETY: exclusively owned, live payload.
        unsafe { pool.dispose(&mut mag, &stats, big.as_ptr(), true) };
        pool.flush(&mut mag, &stats);
        assert_eq!(stats.pool_hits() + stats.pool_misses() + stats.recycled(), 0);
        assert!(mag.is_empty(), "mismatched node never entered the magazine");
    }

    #[test]
    fn capacity_overflow_frees_for_real() {
        // Zero capacity: every spill must hit the real allocator; nothing is
        // retained, so later allocations are all misses.
        let pool = NodePool::for_node::<u64>(&cfg(0, 2));
        let stats = SmrStats::new();
        let mut mag = pool.magazine();
        let nodes: Vec<_> = (0..64).map(|i| pool.alloc(&mut mag, &stats, i as u64)).collect();
        for n in nodes {
            // SAFETY: exclusively owned, live payload.
            unsafe { pool.dispose(&mut mag, &stats, n.as_ptr(), true) };
        }
        pool.flush(&mut mag, &stats);
        assert!(mag.is_empty());
        let n = pool.alloc(&mut mag, &stats, 0u64);
        // SAFETY: exclusively owned, live payload.
        unsafe { pool.dispose(&mut mag, &stats, n.as_ptr(), true) };
        pool.flush(&mut mag, &stats);
        assert_eq!(stats.pool_hits(), 0, "zero-capacity pool can never hit");
    }

    #[test]
    fn cross_magazine_recycle_through_shared_partition() {
        let pool = NodePool::for_node::<u64>(&cfg(1024, 4));
        let stats = SmrStats::new();
        let mut producer = pool.magazine();
        let mut addrs = Vec::new();
        for i in 0..32 {
            let n = pool.alloc(&mut producer, &stats, i as u64);
            addrs.push(n.as_ptr() as usize);
            // SAFETY: exclusively owned, live payload.
            unsafe { pool.dispose(&mut producer, &stats, n.as_ptr(), true) };
        }
        pool.flush(&mut producer, &stats);
        // A different magazine (different partition assignment) must still
        // find the spilled nodes by scanning partitions.
        let mut consumer = pool.magazine();
        let n = pool.alloc(&mut consumer, &stats, 99u64);
        assert!(
            addrs.contains(&(n.as_ptr() as usize)),
            "consumer reused producer's memory"
        );
        // SAFETY: exclusively owned, live payload.
        unsafe { pool.dispose(&mut consumer, &stats, n.as_ptr(), true) };
        pool.flush(&mut consumer, &stats);
    }

    #[test]
    fn pool_drop_frees_cached_nodes() {
        DROPS.store(0, Ordering::Relaxed);
        let pool = NodePool::for_node::<CountsDrops>(&cfg(1024, 4));
        let stats = SmrStats::new();
        let mut mag = pool.magazine();
        for i in 0..32 {
            let n = pool.alloc(&mut mag, &stats, CountsDrops(i));
            // SAFETY: exclusively owned, live payload.
            unsafe { pool.dispose(&mut mag, &stats, n.as_ptr(), true) };
        }
        pool.flush(&mut mag, &stats);
        assert_eq!(DROPS.load(Ordering::Relaxed), 32, "payloads dropped at dispose");
        drop(mag);
        drop(pool); // must free the 32 cached allocations (leak-checked under Miri/asan)
    }

    #[test]
    fn concurrent_producers_and_consumers_balance() {
        let pool = NodePool::for_node::<u64>(&cfg(4096, 8));
        let stats = SmrStats::new();
        std::thread::scope(|scope| {
            for t in 0..4 {
                scope.spawn(|| {
                    let mut mag = pool.magazine();
                    let mut live = Vec::new();
                    for i in 0..2000u64 {
                        live.push(pool.alloc(&mut mag, &stats, i));
                        if live.len() > 16 {
                            let n: NonNull<SmrNode<u64>> = live.swap_remove(0);
                            // SAFETY: exclusively owned, live payload.
                            unsafe { pool.dispose(&mut mag, &stats, n.as_ptr(), true) };
                        }
                    }
                    for n in live {
                        // SAFETY: exclusively owned, live payload.
                        unsafe { pool.dispose(&mut mag, &stats, n.as_ptr(), true) };
                    }
                    pool.flush(&mut mag, &stats);
                    let _ = t;
                });
            }
        });
        assert_eq!(stats.pool_hits() + stats.pool_misses(), 8000);
        assert_eq!(stats.recycled(), 8000);
        assert!(stats.pool_hits() > 0, "cross-thread reuse must occur");
    }

    #[test]
    fn flush_is_idempotent_and_unstrands_capacity() {
        let pool = NodePool::for_node::<u64>(&cfg(1024, 64));
        let stats = SmrStats::new();
        let mut mag = pool.magazine();
        for i in 0..16 {
            let n = pool.alloc(&mut mag, &stats, i as u64);
            // SAFETY: exclusively owned, live payload.
            unsafe { pool.dispose(&mut mag, &stats, n.as_ptr(), true) };
        }
        assert!(!mag.is_empty(), "magazine caches below its capacity");
        pool.flush(&mut mag, &stats);
        assert!(mag.is_empty(), "flush spills everything");
        pool.flush(&mut mag, &stats);
        assert!(mag.is_empty());
        // Another magazine can now see the capacity.
        let mut other = pool.magazine();
        let n = pool.alloc(&mut other, &stats, 7u64);
        // SAFETY: exclusively owned, live payload.
        unsafe { pool.dispose(&mut other, &stats, n.as_ptr(), true) };
        pool.flush(&mut other, &stats);
        assert!(stats.pool_hits() >= 1);
    }
}
