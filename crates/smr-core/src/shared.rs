//! Tagged shared pointers to reclaimable nodes.

use std::fmt;
use std::marker::PhantomData;
use std::ptr::NonNull;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::header::{NodeHeader, SmrNode};
use crate::TAG_MASK;

/// A tagged pointer to an [`SmrNode<T>`], possibly null.
///
/// The low [`TAG_BITS`](crate::TAG_BITS) bits carry a tag; Harris-style lists
/// use bit 0 as the logical-deletion mark and the Natarajan–Mittal tree uses
/// bits 0/1 as its flag/tag pair. A `Shared` is just a word: copying it does
/// not assert any protection. Dereferencing requires the pointer to have been
/// obtained through [`SmrHandle::protect`](crate::SmrHandle::protect) (or to
/// be otherwise known reachable) and is therefore `unsafe`.
///
/// # Example
///
/// ```
/// use smr_core::Shared;
///
/// let null = Shared::<u64>::null();
/// assert!(null.is_null());
/// let marked = null.with_tag(1);
/// assert_eq!(marked.tag(), 1);
/// assert!(marked.is_null(), "tags do not affect nullness");
/// ```
pub struct Shared<T> {
    raw: usize,
    _marker: PhantomData<*mut SmrNode<T>>,
}

impl<T> Clone for Shared<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Shared<T> {}

impl<T> PartialEq for Shared<T> {
    fn eq(&self, other: &Self) -> bool {
        self.raw == other.raw
    }
}
impl<T> Eq for Shared<T> {}

impl<T> std::hash::Hash for Shared<T> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.raw.hash(state);
    }
}

impl<T> Default for Shared<T> {
    fn default() -> Self {
        Self::null()
    }
}

impl<T> fmt::Debug for Shared<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Shared")
            .field("ptr", &(self.untagged().raw as *const ()))
            .field("tag", &self.tag())
            .finish()
    }
}

impl<T> fmt::Pointer for Shared<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Pointer::fmt(&(self.untagged().raw as *const ()), f)
    }
}

impl<T> Shared<T> {
    /// The null pointer with a zero tag.
    #[inline]
    pub const fn null() -> Self {
        Self {
            raw: 0,
            _marker: PhantomData,
        }
    }

    /// Wraps a node pointer produced by [`SmrNode::alloc`].
    #[inline]
    pub fn from_node(node: NonNull<SmrNode<T>>) -> Self {
        let raw = node.as_ptr() as usize;
        debug_assert_eq!(raw & TAG_MASK, 0, "node pointers must be aligned");
        Self {
            raw,
            _marker: PhantomData,
        }
    }

    /// Reconstructs a `Shared` from its raw representation
    /// (see [`Shared::as_raw`]).
    #[inline]
    pub const fn from_raw(raw: usize) -> Self {
        Self {
            raw,
            _marker: PhantomData,
        }
    }

    /// The raw representation: pointer bits plus tag bits.
    #[inline]
    pub const fn as_raw(self) -> usize {
        self.raw
    }

    /// The tag stored in the low bits.
    #[inline]
    pub const fn tag(self) -> usize {
        self.raw & TAG_MASK
    }

    /// This pointer with its tag replaced by `tag`.
    ///
    /// # Panics
    ///
    /// Debug-panics if `tag` exceeds [`TAG_MASK`](crate::TAG_MASK).
    #[inline]
    pub fn with_tag(self, tag: usize) -> Self {
        debug_assert!(tag <= TAG_MASK, "tag {tag} does not fit in the tag bits");
        Self::from_raw((self.raw & !TAG_MASK) | tag)
    }

    /// This pointer with a zero tag.
    #[inline]
    pub fn untagged(self) -> Self {
        Self::from_raw(self.raw & !TAG_MASK)
    }

    /// Whether the pointer part (ignoring the tag) is null.
    #[inline]
    pub fn is_null(self) -> bool {
        self.raw & !TAG_MASK == 0
    }

    /// The untagged node pointer.
    #[inline]
    pub fn as_node_ptr(self) -> *mut SmrNode<T> {
        (self.raw & !TAG_MASK) as *mut SmrNode<T>
    }

    /// A reference to the node.
    ///
    /// # Safety
    ///
    /// The pointer must be non-null and protected (or otherwise known not to
    /// have been reclaimed) for the duration of the returned borrow. The
    /// caller chooses the lifetime.
    #[inline]
    pub unsafe fn deref_node<'g>(self) -> &'g SmrNode<T>
    where
        T: 'g,
    {
        debug_assert!(!self.is_null());
        &*self.as_node_ptr()
    }

    /// A reference to the node's payload.
    ///
    /// # Safety
    ///
    /// Same requirements as [`Shared::deref_node`].
    #[inline]
    pub unsafe fn deref<'g>(self) -> &'g T
    where
        T: 'g,
    {
        self.deref_node().value()
    }

    /// A reference to the node's header.
    ///
    /// # Safety
    ///
    /// Same requirements as [`Shared::deref_node`].
    #[inline]
    pub unsafe fn header<'g>(self) -> &'g NodeHeader
    where
        T: 'g,
    {
        self.deref_node().header()
    }
}

/// An atomic, taggable pointer to an [`SmrNode<T>`].
///
/// This is the link type used inside lock-free data structures. All methods
/// operate on [`Shared`] values; dereferencing what is loaded requires
/// protection through an [`SmrHandle`](crate::SmrHandle).
///
/// # Example
///
/// ```
/// use smr_core::{Atomic, Shared};
/// use std::sync::atomic::Ordering;
///
/// let link = Atomic::<u32>::null();
/// assert!(link.load(Ordering::Acquire).is_null());
/// ```
pub struct Atomic<T> {
    raw: AtomicUsize,
    _marker: PhantomData<*mut SmrNode<T>>,
}

// SAFETY: an `Atomic<T>` is a shared link to nodes that may be accessed and
// reclaimed from any thread, so it is Send exactly when the payload is both
// Send and Sync; the link itself is a single atomic word.
unsafe impl<T: Send + Sync> Send for Atomic<T> {}
// SAFETY: as above — all concurrent access goes through atomic operations
// on the raw word, and payload access requires `T: Send + Sync`.
unsafe impl<T: Send + Sync> Sync for Atomic<T> {}

impl<T> Default for Atomic<T> {
    fn default() -> Self {
        Self::null()
    }
}

impl<T> fmt::Debug for Atomic<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let shared = Shared::<T>::from_raw(self.raw.load(Ordering::Relaxed));
        f.debug_tuple("Atomic").field(&shared).finish()
    }
}

impl<T> Atomic<T> {
    /// A null link.
    pub const fn null() -> Self {
        Self {
            raw: AtomicUsize::new(0),
            _marker: PhantomData,
        }
    }

    /// A link initially pointing at `shared`.
    pub fn new(shared: Shared<T>) -> Self {
        Self {
            raw: AtomicUsize::new(shared.as_raw()),
            _marker: PhantomData,
        }
    }

    /// Loads the current value.
    #[inline]
    pub fn load(&self, order: Ordering) -> Shared<T> {
        Shared::from_raw(self.raw.load(order))
    }

    /// Stores `shared`.
    #[inline]
    pub fn store(&self, shared: Shared<T>, order: Ordering) {
        self.raw.store(shared.as_raw(), order);
    }

    /// Atomically swaps in `shared`, returning the previous value.
    #[inline]
    pub fn swap(&self, shared: Shared<T>, order: Ordering) -> Shared<T> {
        Shared::from_raw(self.raw.swap(shared.as_raw(), order))
    }

    /// Compare-and-exchange: replaces `current` with `new`.
    ///
    /// # Errors
    ///
    /// Returns the actual value as `Err` when it differs from `current`.
    #[inline]
    pub fn compare_exchange(
        &self,
        current: Shared<T>,
        new: Shared<T>,
        success: Ordering,
        failure: Ordering,
    ) -> Result<Shared<T>, Shared<T>> {
        self.raw
            .compare_exchange(current.as_raw(), new.as_raw(), success, failure)
            .map(Shared::from_raw)
            .map_err(Shared::from_raw)
    }

    /// Weak compare-and-exchange (may fail spuriously).
    ///
    /// # Errors
    ///
    /// Returns the actual value as `Err` when the exchange did not happen.
    #[inline]
    pub fn compare_exchange_weak(
        &self,
        current: Shared<T>,
        new: Shared<T>,
        success: Ordering,
        failure: Ordering,
    ) -> Result<Shared<T>, Shared<T>> {
        self.raw
            .compare_exchange_weak(current.as_raw(), new.as_raw(), success, failure)
            .map(Shared::from_raw)
            .map_err(Shared::from_raw)
    }

    /// Atomically ORs tag bits into the stored value, returning the previous
    /// value. Useful for marking (`fetch_or(1)` sets the deletion mark).
    ///
    /// # Panics
    ///
    /// Debug-panics if `tag` exceeds [`TAG_MASK`](crate::TAG_MASK).
    #[inline]
    pub fn fetch_or_tag(&self, tag: usize, order: Ordering) -> Shared<T> {
        debug_assert!(tag <= TAG_MASK);
        Shared::from_raw(self.raw.fetch_or(tag, order))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_roundtrip() {
        let s = Shared::<u64>::null();
        assert!(s.is_null());
        assert_eq!(s.tag(), 0);
        assert_eq!(s.as_raw(), 0);
    }

    #[test]
    fn tag_operations() {
        let node = SmrNode::alloc(5u64);
        let s = Shared::from_node(node);
        assert_eq!(s.tag(), 0);
        let marked = s.with_tag(1);
        assert_eq!(marked.tag(), 1);
        assert_eq!(marked.untagged(), s);
        assert_eq!(marked.as_node_ptr(), node.as_ptr());
        assert!(!marked.is_null());
        unsafe { SmrNode::dealloc(node.as_ptr(), true) };
    }

    #[test]
    fn deref_reads_payload() {
        let node = SmrNode::alloc(123u64);
        let s = Shared::from_node(node);
        assert_eq!(unsafe { *s.deref() }, 123);
        unsafe { SmrNode::dealloc(node.as_ptr(), true) };
    }

    #[test]
    fn atomic_cas_and_mark() {
        let node = SmrNode::alloc(1u64);
        let s = Shared::from_node(node);
        let link = Atomic::new(s);

        // Mark it.
        let prev = link.fetch_or_tag(1, Ordering::AcqRel);
        assert_eq!(prev, s);
        let cur = link.load(Ordering::Acquire);
        assert_eq!(cur, s.with_tag(1));

        // CAS with the wrong expected value fails.
        assert!(link
            .compare_exchange(s, Shared::null(), Ordering::AcqRel, Ordering::Acquire)
            .is_err());
        // CAS with the marked value succeeds.
        assert!(link
            .compare_exchange(
                s.with_tag(1),
                Shared::null(),
                Ordering::AcqRel,
                Ordering::Acquire
            )
            .is_ok());
        assert!(link.load(Ordering::Acquire).is_null());
        unsafe { SmrNode::dealloc(node.as_ptr(), true) };
    }

    #[test]
    fn swap_returns_previous() {
        let link = Atomic::<u64>::null();
        let node = SmrNode::alloc(9u64);
        let s = Shared::from_node(node);
        assert!(link.swap(s, Ordering::AcqRel).is_null());
        assert_eq!(link.swap(Shared::null(), Ordering::AcqRel), s);
        unsafe { SmrNode::dealloc(node.as_ptr(), true) };
    }

    #[test]
    fn debug_impls_are_nonempty() {
        let s = Shared::<u8>::null();
        assert!(!format!("{s:?}").is_empty());
        let a = Atomic::<u8>::null();
        assert!(!format!("{a:?}").is_empty());
    }
}
