//! A domain adapter that splits one logical reclamation domain into shards.
//!
//! Hyaline's retire cost is proportional to the slot count (`retire` appends
//! the batch to *every* active slot, Figure 3), and cross-thread state scans
//! in registry-based schemes grow with the registered thread count. A
//! [`Sharded<S>`] domain holds `N` independent inner domains, each sized
//! `slots / N`, so any single operation only ever touches one shard's slots
//! (`ByKey` routing) or spreads its retire traffic over the shards
//! (`ByPointer` routing). This is the partitioning step toward the
//! wait-free-scale designs of Crystalline: reclamation state stops being one
//! global hot spot.
//!
//! Safety rests on a simple ownership discipline: **every node lives its
//! whole life — alloc, publish, protect, retire, free — under one shard.**
//!
//! * Under [`ShardRouting::ByKey`] the *data structure* guarantees that by
//!   pinning the handle ([`SmrHandle::pin_shard`]) to a key partition's
//!   shard before touching its nodes (the hash map pins per bucket group).
//!   Any reader of those nodes is pinned — and therefore entered — in the
//!   same shard, so each shard is a perfectly ordinary single domain.
//! * Under [`ShardRouting::ByPointer`] the shard is a pure function of the
//!   node address, `enter` covers every shard, and correctness additionally
//!   requires the inner scheme's protection to be enter-scoped
//!   ([`Smr::shardable_by_pointer`]); [`Sharded::with_config`] enforces
//!   that at construction.

use crate::{
    Atomic, Shared, ShardRouting, Smr, SmrConfig, SmrHandle, SmrStats,
};

/// A sharded domain: `N` inner `S` domains behind one [`Smr`] facade.
///
/// # Example
///
/// Four shards of eight slots each behave like one 32-slot domain whose
/// retire lists are four times shorter:
///
/// ```
/// use smr_core::{Sharded, Smr, SmrConfig, SmrHandle};
///
/// fn churn<S: Smr<u64>>() {
///     let domain: Sharded<S> = Sharded::with_config(SmrConfig {
///         slots: 32,
///         shards: 4,
///         ..SmrConfig::default()
///     });
///     let mut h = domain.handle();
///     for key in 0..64u64 {
///         h.enter();
///         h.pin_shard(key); // route this key's partition (low bits)
///         let node = h.alloc(key);
///         unsafe { h.retire(node) };
///         h.leave();
///     }
///     h.flush();
///     assert_eq!(domain.shard_count(), 4);
/// }
/// ```
pub struct Sharded<S> {
    shards: Box<[S]>,
    aggregate: SmrStats,
    routing: ShardRouting,
    mask: usize,
}

impl<S> Sharded<S> {
    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The inner domain backing shard `i`.
    pub fn shard(&self, i: usize) -> &S {
        &self.shards[i]
    }

    /// The configured routing mode.
    pub fn routing(&self) -> ShardRouting {
        self.routing
    }

    /// Shard owning the node at `addr` under `ByPointer` routing: a
    /// Fibonacci hash of the address so neighboring allocations spread.
    #[inline]
    fn ptr_shard(&self, addr: usize) -> usize {
        (((addr >> 4).wrapping_mul(0x9E37_79B9_7F4A_7C15)) >> 32) & self.mask
    }
}

impl<S> std::fmt::Debug for Sharded<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sharded")
            .field("shards", &self.shards.len())
            .field("routing", &self.routing)
            .finish_non_exhaustive()
    }
}

impl<T: Send + 'static, S: Smr<T>> Smr<T> for Sharded<S> {
    type Handle<'d> = ShardedHandle<'d, T, S>;

    /// Builds `config.shards` inner domains, each from
    /// [`SmrConfig::shard_config`] (the slot budget divided per shard).
    ///
    /// # Panics
    ///
    /// Panics if `config.shards` is not a power of two, or if
    /// `config.routing` is [`ShardRouting::ByPointer`] and the inner scheme
    /// does not support it (see [`Smr::shardable_by_pointer`]).
    fn with_config(config: SmrConfig) -> Self {
        let n = config.shards.max(1);
        assert!(
            n.is_power_of_two(),
            "shard count must be a power of two, got {n}"
        );
        if config.routing == ShardRouting::ByPointer {
            assert!(
                S::shardable_by_pointer(),
                "{} does not support ByPointer shard routing (its protection \
                 is not enter-scoped); use ShardRouting::ByKey",
                S::name()
            );
        }
        let inner_config = config.shard_config();
        Self {
            shards: (0..n).map(|_| S::with_config(inner_config.clone())).collect(),
            aggregate: SmrStats::new(),
            routing: config.routing,
            mask: n - 1,
        }
    }

    fn handle(&self) -> ShardedHandle<'_, T, S> {
        ShardedHandle {
            domain: self,
            inner: self.shards.iter().map(|s| s.handle()).collect(),
            current: 0,
            entered: false,
            pending: false,
            alloc_rr: 0,
        }
    }

    /// Aggregated counters: the shared aggregate is refreshed from the
    /// per-shard statistics at call time (a snapshot — concurrent refreshes
    /// may interleave mid-flight; at quiescence it is exact). Hot paths
    /// that only need the unreclaimed count should use
    /// [`Smr::unreclaimed_estimate`], which performs no shared writes.
    fn stats(&self) -> &SmrStats {
        self.aggregate
            .refresh_from(self.shards.iter().map(|s| s.stats()));
        &self.aggregate
    }

    /// Sums the per-shard counts with loads only: no store into the shared
    /// aggregate, so concurrent samplers do not ping-pong one cache line.
    fn unreclaimed_estimate(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.stats().unreclaimed())
            .sum()
    }

    fn name() -> &'static str {
        "Sharded"
    }

    fn robust() -> bool {
        S::robust()
    }

    fn supports_trim() -> bool {
        S::supports_trim()
    }

    fn needs_seek_validation() -> bool {
        S::needs_seek_validation()
    }
}

/// Handle to a [`Sharded`] domain: one inner handle per shard plus the
/// routing state.
pub struct ShardedHandle<'d, T: Send + 'static, S: Smr<T> + 'd> {
    domain: &'d Sharded<S>,
    inner: Vec<S::Handle<'d>>,
    current: usize,
    entered: bool,
    /// `ByKey` only: `enter` was called but no inner reservation has been
    /// made yet — it materializes at the first pin or node access, so an
    /// operation that pins right away performs exactly one inner
    /// enter/leave instead of entering a shard it immediately abandons.
    /// Sound because every node access (`protect`/`alloc`/`retire`) happens
    /// after the materialized enter, which is all the enter-scoped (and
    /// era-certified) safety arguments need.
    pending: bool,
    alloc_rr: usize,
}

impl<'d, T: Send + 'static, S: Smr<T>> ShardedHandle<'d, T, S> {
    /// The shard this handle is currently pinned to (`ByKey` routing).
    pub fn current_shard(&self) -> usize {
        self.current
    }

    /// Materializes a deferred `ByKey` enter on the current shard before a
    /// node access that did not go through [`SmrHandle::pin_shard`].
    #[inline]
    fn ensure_entered(&mut self) {
        if self.pending {
            self.pending = false;
            self.inner[self.current].enter();
        }
    }
}

impl<T: Send + 'static, S: Smr<T>> std::fmt::Debug for ShardedHandle<'_, T, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedHandle")
            .field("shards", &self.inner.len())
            .field("current", &self.current)
            .field("entered", &self.entered)
            .finish_non_exhaustive()
    }
}

impl<T: Send + 'static, S: Smr<T>> SmrHandle<T> for ShardedHandle<'_, T, S> {
    fn enter(&mut self) {
        match self.domain.routing {
            // ByKey defers the inner enter to the first pin/access: a
            // structure that pins immediately (the hash map) then pays for
            // exactly one inner enter instead of entering a shard the pin
            // abandons one instruction later.
            ShardRouting::ByKey => self.pending = true,
            ShardRouting::ByPointer => {
                for h in &mut self.inner {
                    h.enter();
                }
            }
        }
        self.entered = true;
    }

    fn leave(&mut self) {
        match self.domain.routing {
            ShardRouting::ByKey => {
                if self.pending {
                    // Nothing was accessed: the reservation never existed.
                    self.pending = false;
                } else {
                    self.inner[self.current].leave();
                }
            }
            ShardRouting::ByPointer => {
                for h in &mut self.inner {
                    h.leave();
                }
            }
        }
        self.entered = false;
    }

    fn pin_shard(&mut self, key_hash: u64) {
        if self.domain.routing != ShardRouting::ByKey {
            return; // ByPointer routes at retire; pinning is meaningless
        }
        let target = key_hash as usize & self.domain.mask;
        if self.pending {
            // Materialize the deferred enter directly on the target shard —
            // before the caller touches any of its nodes.
            self.pending = false;
            self.current = target;
            self.inner[target].enter();
            return;
        }
        if target == self.current {
            return;
        }
        if self.entered {
            // Re-enter through the new shard so the reservation covers it
            // before the caller touches any of its nodes.
            self.inner[self.current].leave();
            self.inner[target].enter();
        }
        self.current = target;
    }

    fn trim(&mut self) {
        match self.domain.routing {
            ShardRouting::ByKey => {
                self.ensure_entered();
                self.inner[self.current].trim();
            }
            ShardRouting::ByPointer => {
                for h in &mut self.inner {
                    h.trim();
                }
            }
        }
    }

    fn alloc(&mut self, value: T) -> Shared<T> {
        match self.domain.routing {
            // ByKey: the node belongs to the pinned shard (birth era and
            // retire list must come from the same inner domain).
            ShardRouting::ByKey => {
                self.ensure_entered();
                self.inner[self.current].alloc(value)
            }
            // ByPointer: the inner scheme stamps no shard-local metadata at
            // alloc (enforced at construction), so rotate for stats spread.
            ShardRouting::ByPointer => {
                let s = self.alloc_rr & self.domain.mask;
                self.alloc_rr = self.alloc_rr.wrapping_add(1);
                self.inner[s].alloc(value)
            }
        }
    }

    unsafe fn dealloc(&mut self, ptr: Shared<T>) {
        match self.domain.routing {
            ShardRouting::ByKey => self.inner[self.current].dealloc(ptr),
            ShardRouting::ByPointer => {
                let s = self.domain.ptr_shard(ptr.as_node_ptr() as usize);
                self.inner[s].dealloc(ptr)
            }
        }
    }

    fn protect(&mut self, idx: usize, src: &Atomic<T>) -> Shared<T> {
        // ByKey: the pinned shard owns every node this operation may load,
        // and the load below happens after the materialized enter.
        // ByPointer: protection is enter-scoped (construction invariant),
        // so any shard's protect is a plain certified load.
        if self.domain.routing == ShardRouting::ByKey {
            self.ensure_entered();
        }
        self.inner[self.current].protect(idx, src)
    }

    fn copy_protection(&mut self, from: usize, to: usize) {
        self.inner[self.current].copy_protection(from, to);
    }

    unsafe fn retire(&mut self, ptr: Shared<T>) {
        match self.domain.routing {
            ShardRouting::ByKey => {
                self.ensure_entered();
                self.inner[self.current].retire(ptr)
            }
            ShardRouting::ByPointer => {
                let s = self.domain.ptr_shard(ptr.as_node_ptr() as usize);
                self.inner[s].retire(ptr)
            }
        }
    }

    fn flush(&mut self) {
        for h in &mut self.inner {
            h.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A minimal enter-scoped scheme for exercising the adapter without the
    /// scheme crates (which depend on smr-core, not vice versa): retire
    /// frees immediately when no reader is inside, else defers to the next
    /// leave. Single global "reservation" counter per domain.
    struct ToyDomain {
        readers: AtomicU64,
        limbo: std::sync::Mutex<Vec<*mut crate::SmrNode<u64>>>,
        stats: SmrStats,
    }

    // SAFETY: the raw pointers in `limbo` are exclusively owned retired
    // nodes, moved with the Mutex that guards them.
    unsafe impl Send for ToyDomain {}
    // SAFETY: `readers`/`stats` are atomics and `limbo` is Mutex-protected,
    // so shared access from any thread is synchronized.
    unsafe impl Sync for ToyDomain {}

    impl Smr<u64> for ToyDomain {
        type Handle<'d> = ToyHandle<'d>;

        fn with_config(_config: SmrConfig) -> Self {
            Self {
                readers: AtomicU64::new(0),
                limbo: std::sync::Mutex::new(Vec::new()),
                stats: SmrStats::new(),
            }
        }

        fn handle(&self) -> ToyHandle<'_> {
            ToyHandle { domain: self }
        }

        fn stats(&self) -> &SmrStats {
            &self.stats
        }

        fn name() -> &'static str {
            "Toy"
        }

        fn robust() -> bool {
            false
        }

        fn shardable_by_pointer() -> bool {
            true
        }
    }

    struct ToyHandle<'d> {
        domain: &'d ToyDomain,
    }

    impl ToyHandle<'_> {
        fn reclaim_if_quiescent(&mut self) {
            if self.domain.readers.load(Ordering::SeqCst) == 0 {
                let nodes = std::mem::take(&mut *self.domain.limbo.lock().unwrap());
                let n = nodes.len() as u64;
                for node in nodes {
                    unsafe { crate::SmrNode::dealloc(node, true) };
                }
                self.domain.stats.add_freed(n);
            }
        }
    }

    impl SmrHandle<u64> for ToyHandle<'_> {
        fn enter(&mut self) {
            self.domain.readers.fetch_add(1, Ordering::SeqCst);
        }

        fn leave(&mut self) {
            self.domain.readers.fetch_sub(1, Ordering::SeqCst);
            self.reclaim_if_quiescent();
        }

        fn alloc(&mut self, value: u64) -> Shared<u64> {
            self.domain.stats.add_allocated(1);
            Shared::from_node(crate::SmrNode::alloc(value))
        }

        unsafe fn dealloc(&mut self, ptr: Shared<u64>) {
            self.domain.stats.add_deallocated(1);
            crate::SmrNode::dealloc(ptr.as_node_ptr(), true);
        }

        fn protect(&mut self, _idx: usize, src: &Atomic<u64>) -> Shared<u64> {
            src.load(Ordering::Acquire)
        }

        unsafe fn retire(&mut self, ptr: Shared<u64>) {
            self.domain.stats.add_retired(1);
            self.domain.limbo.lock().unwrap().push(ptr.as_node_ptr());
        }

        fn flush(&mut self) {
            self.reclaim_if_quiescent();
        }
    }

    fn sharded(n: usize, routing: ShardRouting) -> Sharded<ToyDomain> {
        Sharded::with_config(SmrConfig {
            shards: n,
            routing,
            ..SmrConfig::default()
        })
    }

    #[test]
    fn by_key_routes_to_the_pinned_shard() {
        let d = sharded(4, ShardRouting::ByKey);
        let mut h = d.handle();
        for key in 0..8u64 {
            h.enter();
            h.pin_shard(key);
            assert_eq!(h.current_shard(), (key & 3) as usize);
            let node = h.alloc(key);
            unsafe { h.retire(node) };
            h.leave();
        }
        // Each shard saw exactly its keys' traffic.
        for i in 0..4 {
            assert_eq!(d.shard(i).stats().allocated(), 2, "shard {i}");
            assert_eq!(d.shard(i).stats().retired(), 2, "shard {i}");
        }
        h.flush();
        assert!(d.stats().balanced());
        assert_eq!(d.stats().allocated(), 8);
    }

    #[test]
    fn pin_while_entered_reenters_the_new_shard() {
        let d = sharded(2, ShardRouting::ByKey);
        let mut h = d.handle();
        h.enter();
        // Deferred: no inner reservation exists until the first pin/access.
        assert_eq!(d.shard(0).readers.load(Ordering::SeqCst), 0);
        h.pin_shard(0);
        assert_eq!(d.shard(0).readers.load(Ordering::SeqCst), 1);
        h.pin_shard(1);
        assert_eq!(d.shard(0).readers.load(Ordering::SeqCst), 0);
        assert_eq!(d.shard(1).readers.load(Ordering::SeqCst), 1);
        h.leave();
        assert_eq!(d.shard(1).readers.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn unpinned_access_materializes_the_reservation() {
        let d = sharded(2, ShardRouting::ByKey);
        let mut h = d.handle();
        h.enter();
        // A structure that never pins (list/stack/queue) still gets its
        // reservation the moment it first touches a node.
        let link = Atomic::new(h.alloc(9));
        assert_eq!(d.shard(0).readers.load(Ordering::SeqCst), 1);
        let seen = h.protect(0, &link);
        let node = link.swap(Shared::null(), Ordering::AcqRel);
        assert_eq!(seen, node);
        unsafe { h.retire(node) };
        h.leave();
        assert_eq!(d.shard(0).readers.load(Ordering::SeqCst), 0);
        // An enter/leave pair with no access at all is a no-op.
        h.enter();
        assert_eq!(d.shard(0).readers.load(Ordering::SeqCst), 0);
        h.leave();
        h.flush();
        assert!(d.stats().balanced());
    }

    #[test]
    fn by_pointer_enters_all_shards_and_spreads_retires() {
        let d = sharded(4, ShardRouting::ByPointer);
        let mut h = d.handle();
        h.enter();
        for i in 0..4 {
            assert_eq!(d.shard(i).readers.load(Ordering::SeqCst), 1);
        }
        let mut nodes = Vec::new();
        for i in 0..256u64 {
            nodes.push(h.alloc(i));
        }
        for node in nodes {
            unsafe { h.retire(node) };
        }
        h.leave();
        h.flush();
        // Retires were spread: no shard got everything.
        let max = (0..4).map(|i| d.shard(i).stats().retired()).max().unwrap();
        assert!(max < 256, "pointer hashing routed everything to one shard");
        assert_eq!(d.stats().retired(), 256);
        assert!(d.stats().balanced());
    }

    #[test]
    fn aggregate_stats_sum_across_shards() {
        let d = sharded(2, ShardRouting::ByKey);
        let mut h = d.handle();
        h.enter();
        h.pin_shard(0);
        let a = h.alloc(1);
        unsafe { h.retire(a) };
        h.pin_shard(1);
        let b = h.alloc(2);
        unsafe { h.dealloc(b) };
        h.leave();
        let stats = d.stats();
        assert_eq!(stats.allocated(), 2);
        assert_eq!(stats.retired(), 1);
        assert_eq!(stats.deallocated(), 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_shards_rejected() {
        let _ = sharded(3, ShardRouting::ByKey);
    }

    struct NotPtrShardable;

    impl Smr<u64> for NotPtrShardable {
        type Handle<'d> = ToyHandle<'d>;
        fn with_config(_: SmrConfig) -> Self {
            NotPtrShardable
        }
        fn handle(&self) -> ToyHandle<'_> {
            unimplemented!()
        }
        fn stats(&self) -> &SmrStats {
            unimplemented!()
        }
        fn name() -> &'static str {
            "NotPtrShardable"
        }
        fn robust() -> bool {
            false
        }
    }

    #[test]
    #[should_panic(expected = "ByPointer")]
    fn by_pointer_rejected_for_unsupported_schemes() {
        let _: Sharded<NotPtrShardable> = Sharded::with_config(SmrConfig {
            shards: 2,
            routing: ShardRouting::ByPointer,
            ..SmrConfig::default()
        });
    }
}
