//! Typed-pointer layer over [`Smr`]/[`SmrHandle`]: `pin()` → [`Guard`],
//! lifetime-branded [`Shared<'g, T>`] with *safe* dereferencing, and a typed
//! [`Atomic<T>`] whose `load` routes through `SmrHandle::protect`.
//!
//! The raw layer ([`crate::Atomic`]/[`crate::Shared`]) is deliberately
//! minimal: every load that will be dereferenced must be paired with a
//! protection index by hand, every dereference is `unsafe`, and every
//! structure re-derives the same justification ("this pointer was protected
//! two lines up"). This module centralizes that argument once so a lock-free
//! structure is written almost entirely in safe code — the only `unsafe`
//! left in a well-behaved structure is the *retire-safety* argument
//! ([`Guard::defer_retire`]: "this node is unlinked and unreachable"), which
//! genuinely is structure-specific.
//!
//! # The safety argument, once
//!
//! A [`Shared<'g, T>`] is only obtainable from [`Atomic::load`], which
//! published a protection for it through [`SmrHandle::protect`] on the guard
//! borrowed for `'g` (or from an explicitly `unsafe` promotion whose caller
//! vouched for liveness — [`Ptr::as_shared`]). The `'g` brand is an
//! immutable borrow of the [`Guard`], so everything that could invalidate
//! protections ends `'g` first at compile time:
//!
//! * dropping the guard (an owning guard calls `leave`),
//! * [`Guard::repin`] / [`Guard::pin_shard`] / [`Guard::handle_mut`] — all
//!   take `&mut self`.
//!
//! Two obligations remain with the structure, exactly as in the raw layer
//! (they are *contracts*, not compiler-checked):
//!
//! * **bracketing** — operations run between `enter` and `leave`. [`pin`]
//!   does this automatically; [`Guard::over`] wraps a handle the caller has
//!   already entered (the long-standing "must be called between `enter` and
//!   `leave`" contract of every structure method).
//! * **index discipline** — a protection index is not reloaded while an
//!   earlier `Shared` obtained through the same index is still dereferenced
//!   (schemes whose protection is per-access, e.g. HP/HE, only cover the
//!   *latest* pointer at each index; interval schemes cover everything since
//!   `enter`). Structures that cannot bound their index usage (snapshot
//!   traversals) must declare the per-access schemes unsupported, exactly as
//!   the Bonsai benchmark structure does.
//!
//! # Example
//!
//! ```
//! use smr_core::typed::{pin, Atomic, Guard};
//! use smr_core::{Smr, SmrHandle};
//!
//! // Compile-only sketch (schemes live in downstream crates): a counter
//! // cell that readers dereference through a protected load.
//! fn read_through<S: Smr<u64>>(domain: &S, cell: &Atomic<u64>) -> Option<u64> {
//!     let guard = pin(domain);
//!     let shared = cell.load(0, &guard);
//!     shared.as_ref().copied()
//! }
//! ```

use std::cell::UnsafeCell;
use std::fmt;
use std::marker::PhantomData;
use std::sync::atomic::Ordering;

use crate::{Smr, SmrHandle};

/// An unbranded tagged pointer value: the currency of stores, swaps and
/// compare-exchange operands.
///
/// A `Ptr` carries no protection evidence, so it cannot be dereferenced in
/// safe code — it is what an unprotected [`Atomic::fetch`] returns and what
/// CAS failure hands back. Compare it against [`Shared`]s, store it, or
/// re-load it through [`Atomic::load`] to get something dereferenceable.
pub struct Ptr<T> {
    raw: crate::Shared<T>,
}

impl<T> Clone for Ptr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Ptr<T> {}

impl<T> PartialEq for Ptr<T> {
    fn eq(&self, other: &Self) -> bool {
        self.raw == other.raw
    }
}
impl<T> Eq for Ptr<T> {}

impl<T> Default for Ptr<T> {
    fn default() -> Self {
        Self::null()
    }
}

impl<T> fmt::Debug for Ptr<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Ptr").field(&self.raw).finish()
    }
}

impl<T> Ptr<T> {
    /// The null pointer.
    pub const fn null() -> Self {
        Ptr {
            raw: crate::Shared::null(),
        }
    }

    /// Wraps a raw-layer pointer (interop escape hatch).
    pub const fn from_raw(raw: crate::Shared<T>) -> Self {
        Ptr { raw }
    }

    /// The raw-layer pointer (interop escape hatch).
    pub const fn into_raw(self) -> crate::Shared<T> {
        self.raw
    }

    /// The tag bits.
    pub fn tag(self) -> usize {
        self.raw.tag()
    }

    /// The same pointer with `tag` as its tag bits.
    pub fn with_tag(self, tag: usize) -> Self {
        Ptr {
            raw: self.raw.with_tag(tag),
        }
    }

    /// The same pointer with the tag cleared.
    pub fn untagged(self) -> Self {
        Ptr {
            raw: self.raw.untagged(),
        }
    }

    /// Whether the (untagged) pointer is null.
    pub fn is_null(self) -> bool {
        self.raw.is_null()
    }

    /// A reference to the pointee, without protection evidence.
    ///
    /// # Safety
    ///
    /// The pointer must be non-null and the node known live for the whole
    /// borrow by an argument *outside* the protection system: it is a
    /// never-retired sentinel, the caller holds it exclusively (a write-set
    /// node not yet published, an unlinked chain owned by the retirer, a
    /// `Drop` with `&mut self`), or equivalent.
    pub unsafe fn deref<'a>(self) -> &'a T
    where
        T: 'a,
    {
        self.raw.deref()
    }

    /// Promotes to a branded [`Shared`] without going through a protected
    /// load.
    ///
    /// # Safety
    ///
    /// The caller vouches that the node is live — and stays live for as long
    /// as `'g` protections do — by an argument outside the protection
    /// system (see [`Ptr::deref`]); typical uses are never-retired sentinels
    /// and write-set nodes the current thread still owns.
    pub unsafe fn as_shared<'g, 'h, H>(self, _guard: &'g Guard<'h, T, H>) -> Shared<'g, T>
    where
        H: SmrHandle<T>,
    {
        Shared {
            raw: self.raw,
            _brand: PhantomData,
        }
    }
}

/// A protected, lifetime-branded pointer: the result of [`Atomic::load`].
///
/// The brand `'g` is an immutable borrow of the [`Guard`] the load went
/// through, which is what makes [`Shared::as_ref`]/[`Shared::deref`] *safe*
/// — see the module docs for the full argument.
pub struct Shared<'g, T> {
    raw: crate::Shared<T>,
    _brand: PhantomData<&'g ()>,
}

impl<T> Clone for Shared<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Shared<'_, T> {}

impl<T> PartialEq for Shared<'_, T> {
    fn eq(&self, other: &Self) -> bool {
        self.raw == other.raw
    }
}
impl<T> Eq for Shared<'_, T> {}

impl<T> PartialEq<Ptr<T>> for Shared<'_, T> {
    fn eq(&self, other: &Ptr<T>) -> bool {
        self.raw == other.raw
    }
}

impl<T> PartialEq<Shared<'_, T>> for Ptr<T> {
    fn eq(&self, other: &Shared<'_, T>) -> bool {
        self.raw == other.raw
    }
}

impl<T> fmt::Debug for Shared<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Shared").field(&self.raw).finish()
    }
}

impl<'g, T> From<Shared<'g, T>> for Ptr<T> {
    fn from(s: Shared<'g, T>) -> Ptr<T> {
        Ptr { raw: s.raw }
    }
}

impl<'g, T> Shared<'g, T> {
    /// The null pointer (dereferencing yields `None`, so any brand is fine).
    pub fn null() -> Self {
        Shared {
            raw: crate::Shared::null(),
            _brand: PhantomData,
        }
    }

    /// Forgets the protection evidence, leaving a plain pointer value.
    pub fn as_ptr(self) -> Ptr<T> {
        Ptr { raw: self.raw }
    }

    /// The tag bits.
    pub fn tag(self) -> usize {
        self.raw.tag()
    }

    /// The same (still protected) pointer with `tag` as its tag bits.
    pub fn with_tag(self, tag: usize) -> Self {
        Shared {
            raw: self.raw.with_tag(tag),
            _brand: PhantomData,
        }
    }

    /// The same (still protected) pointer with the tag cleared.
    pub fn untagged(self) -> Self {
        Shared {
            raw: self.raw.untagged(),
            _brand: PhantomData,
        }
    }

    /// Whether the (untagged) pointer is null.
    pub fn is_null(self) -> bool {
        self.raw.is_null()
    }

    /// A reference to the pointee, or `None` for null.
    // Not `AsRef`: the borrow is `'g` (the guard), not the receiver.
    #[allow(clippy::should_implement_trait)]
    pub fn as_ref(self) -> Option<&'g T>
    where
        T: 'g,
    {
        if self.raw.is_null() {
            None
        } else {
            // SAFETY: a non-null `Shared<'g, T>` was obtained from a
            // protected load on the guard borrowed for `'g` (or an `unsafe`
            // promotion whose caller vouched for liveness), and everything
            // that could invalidate that protection takes `&mut` on the
            // guard, ending `'g` first — the module-level argument.
            Some(unsafe { self.raw.deref() })
        }
    }

    /// A reference to the pointee; panics on null.
    #[allow(clippy::should_implement_trait)]
    pub fn deref(self) -> &'g T
    where
        T: 'g,
    {
        self.as_ref().expect("dereferenced a null Shared")
    }
}

/// An exclusively owned, not-yet-published node from [`Guard::alloc`].
///
/// There is no `Drop` glue: an `Owned` ends its life either by publication
/// (a successful [`Atomic::compare_exchange_owned`], or [`Owned::into_ptr`]
/// when publication happens through a plain store) or by handing it back
/// with the safe [`Guard::discard`]. Simply dropping it leaks the node.
#[must_use = "an Owned node must be published or passed to Guard::discard; dropping it leaks"]
pub struct Owned<T> {
    raw: crate::Shared<T>,
}

impl<T> fmt::Debug for Owned<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Owned").field(&self.raw).finish()
    }
}

impl<T> AsRef<T> for Owned<T> {
    /// A reference to the payload (exclusive until publication).
    fn as_ref(&self) -> &T {
        // SAFETY: the node came from `Guard::alloc` and has not been
        // published yet — this thread owns it exclusively, and it is freed
        // only by consuming `self` (publication or `Guard::discard`).
        unsafe { self.raw.deref() }
    }
}

impl<T> Owned<T> {
    /// The node's address as a plain pointer value (e.g. to pre-wire links
    /// or to compare after publication). Does not relinquish ownership.
    pub fn ptr(&self) -> Ptr<T> {
        Ptr { raw: self.raw }
    }

    /// Relinquishes ownership, returning the address: the escape hatch for
    /// publication sites that are not a compare-exchange (initial stores of
    /// sentinels, build-then-publish write sets).
    pub fn into_ptr(self) -> Ptr<T> {
        Ptr { raw: self.raw }
    }
}

/// How a [`Guard`] holds its handle: owning (from [`pin`], paired with
/// `enter`/`leave`) or borrowing (from [`Guard::over`], bracketing left to
/// the caller).
enum Hold<'h, H> {
    Owned(H),
    Borrowed(&'h mut H),
}

impl<H> Hold<'_, H> {
    fn handle(&mut self) -> &mut H {
        match self {
            Hold::Owned(h) => h,
            Hold::Borrowed(h) => h,
        }
    }
}

/// A pinned reclamation context: the capability to load-and-protect
/// ([`Atomic::load`]), allocate ([`Guard::alloc`]) and retire
/// ([`Guard::defer_retire`]) against one [`SmrHandle`].
///
/// Obtain one with [`pin`] (owns a fresh handle, `enter`s now, `leave`s on
/// drop) or [`Guard::over`] (borrows a handle the caller already entered —
/// the form every `lockfree-ds` structure method uses internally, so the
/// public `&mut S::Handle<'_>` signatures keep composing with
/// [`crate::HandlePool`], [`crate::Sharded`] and async task guards).
///
/// Interior mutability (the handle sits in an [`UnsafeCell`]) is what lets
/// `load` take `&self` so that many [`Shared`]s can be live at once; the
/// cell makes `Guard` `!Sync`, and no method hands out a reference into the
/// handle, so the exclusive borrows inside never overlap.
pub struct Guard<'h, T, H: SmrHandle<T>> {
    hold: UnsafeCell<Hold<'h, H>>,
    _value: PhantomData<fn(T) -> T>,
}

impl<T, H: SmrHandle<T>> fmt::Debug for Guard<'_, T, H> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // SAFETY: short-lived shared read of the discriminant; `Guard` is
        // `!Sync` and no other borrow of the hold is live inside `fmt`.
        let owned = matches!(unsafe { &*self.hold.get() }, Hold::Owned(_));
        f.debug_struct("Guard").field("owned", &owned).finish()
    }
}

/// Pins `domain`: takes a fresh handle, `enter`s, and returns the owning
/// [`Guard`]. Dropping the guard `leave`s.
///
/// This is the whole-operation form. Structures internally use
/// [`Guard::over`] so callers keep control of `enter`/`leave` granularity
/// (and of *which* handle — pooled, sharded, task-scoped — is used).
pub fn pin<T, S>(domain: &S) -> Guard<'_, T, S::Handle<'_>>
where
    T: Send + 'static,
    S: Smr<T>,
{
    let mut handle = domain.handle();
    handle.enter();
    Guard {
        hold: UnsafeCell::new(Hold::Owned(handle)),
        _value: PhantomData,
    }
}

impl<'h, T, H: SmrHandle<T>> Guard<'h, T, H> {
    /// Wraps a handle the caller has already `enter`ed; bracketing stays
    /// with the caller (nothing happens on drop).
    ///
    /// Contract (inherited from the raw layer, same as every structure
    /// method's "must be called between `enter` and `leave`"): protected
    /// loads and dereferences are only meaningful while the handle is
    /// inside an operation bracket.
    pub fn over(handle: &'h mut H) -> Self {
        Guard {
            hold: UnsafeCell::new(Hold::Borrowed(handle)),
            _value: PhantomData,
        }
    }

    /// Runs `f` with the exclusive handle borrow. Private: callers are the
    /// methods below and `Atomic::load`, none of which re-enter.
    fn with<R>(&self, f: impl FnOnce(&mut H) -> R) -> R {
        // SAFETY: `Guard` is `!Sync` (UnsafeCell field), so only this thread
        // is here; every caller is a non-reentrant method of this module, so
        // the exclusive borrow ends before any other borrow can start.
        let hold = unsafe { &mut *self.hold.get() };
        f(hold.handle())
    }

    /// Allocates a node in the guard's domain, exclusively owned until
    /// published.
    pub fn alloc(&self, value: T) -> Owned<T> {
        Owned {
            raw: self.with(|h| h.alloc(value)),
        }
    }

    /// Frees a node that was never published. Safe: an [`Owned`] is
    /// exclusively held by construction.
    pub fn discard(&self, owned: Owned<T>) {
        // SAFETY: `owned` came from `Guard::alloc` and was never published
        // (publication consumes the `Owned`), so this thread still has
        // exclusive access and nobody else can observe the node.
        self.with(|h| unsafe { h.dealloc(owned.raw) });
    }

    /// Retires a node: hands it to the reclamation scheme to be freed once
    /// no protection can cover it. Tag bits are stripped.
    ///
    /// # Safety
    ///
    /// The retire-safety argument — the one piece of `unsafe` a structure
    /// keeps: the node must be unlinked from every shared location (no new
    /// references can be obtained once current protections expire), and it
    /// must be retired at most once.
    pub unsafe fn defer_retire(&self, ptr: impl Into<Ptr<T>>) {
        let raw = ptr.into().raw.untagged();
        self.with(|h| h.retire(raw));
    }

    /// Frees a node immediately, bypassing reclamation. Tag bits are
    /// stripped.
    ///
    /// # Safety
    ///
    /// The caller must have exclusive access to the node and know that no
    /// other thread can hold or obtain a reference — e.g. `Drop` teardown
    /// with `&mut self`, or rollback of nodes that were never published
    /// (where the safe [`Guard::discard`] does not fit because ownership
    /// was dissolved into raw links).
    pub unsafe fn dealloc(&self, ptr: impl Into<Ptr<T>>) {
        let raw = ptr.into().raw.untagged();
        self.with(|h| h.dealloc(raw));
    }

    /// Copies the protection at index `from` onto index `to` (hand-over-hand
    /// traversals). No-op for schemes without per-index protection.
    pub fn copy_protection(&self, from: usize, to: usize) {
        self.with(|h| h.copy_protection(from, to));
    }

    /// Routes [`SmrHandle::pin_shard`]. Takes `&mut self`: re-pinning can
    /// re-enter on a different shard, so outstanding [`Shared`]s (which
    /// borrow `self`) must be gone first.
    pub fn pin_shard(&mut self, key_hash: u64) {
        self.hold.get_mut().handle().pin_shard(key_hash);
    }

    /// Routes [`SmrHandle::trim`] (momentarily exits the operation so
    /// reclamation can catch up). Takes `&mut self`: trimming invalidates
    /// every outstanding protection.
    pub fn repin(&mut self) {
        self.hold.get_mut().handle().trim();
    }

    /// Routes [`SmrHandle::flush`]: push deferred retirements out even if
    /// the scheme's batch threshold has not been reached.
    pub fn flush(&self) {
        self.with(|h| h.flush());
    }

    /// The underlying handle. Takes `&mut self`: raw handle operations can
    /// invalidate protections, so no [`Shared`] may outlive the call.
    pub fn handle_mut(&mut self) -> &mut H {
        self.hold.get_mut().handle()
    }
}

impl<T, H: SmrHandle<T>> Drop for Guard<'_, T, H> {
    fn drop(&mut self) {
        if let Hold::Owned(h) = self.hold.get_mut() {
            h.leave();
        }
    }
}

/// A typed atomic link between nodes of a lock-free structure.
///
/// Wraps [`crate::Atomic`] with fixed conservative orderings (loads are
/// `Acquire`, stores `Release`, read-modify-writes `AcqRel`) so structures
/// carry no per-site ordering decisions, and with the [`Shared`]/[`Ptr`]
/// typing: only [`Atomic::load`] — which routes through
/// [`SmrHandle::protect`] — yields a dereferenceable pointer.
pub struct Atomic<T> {
    raw: crate::Atomic<T>,
}

impl<T> Default for Atomic<T> {
    fn default() -> Self {
        Self::null()
    }
}

impl<T> fmt::Debug for Atomic<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("typed::Atomic").field(&self.raw).finish()
    }
}

impl<T> Atomic<T> {
    /// A null link.
    pub const fn null() -> Self {
        Atomic {
            raw: crate::Atomic::null(),
        }
    }

    /// A link initialized to `ptr`.
    pub fn new(ptr: impl Into<Ptr<T>>) -> Self {
        Atomic {
            raw: crate::Atomic::new(ptr.into().raw),
        }
    }

    /// Protected load: publishes protection index `idx` for the loaded
    /// pointer through the guard, returning a dereferenceable
    /// [`Shared<'g, T>`] branded by the guard borrow.
    ///
    /// Schemes for which [`Smr::needs_seek_validation`] holds additionally
    /// require the structure's usual window re-validation before trusting a
    /// pointer loaded from a link that may itself have been unlinked.
    pub fn load<'g, 'h, H>(&self, idx: usize, guard: &'g Guard<'h, T, H>) -> Shared<'g, T>
    where
        H: SmrHandle<T>,
    {
        Shared {
            raw: guard.with(|h| h.protect(idx, &self.raw)),
            _brand: PhantomData,
        }
    }

    /// Unprotected `Acquire` load. The result cannot be dereferenced in
    /// safe code — use it to validate windows and seed compare-exchanges.
    pub fn fetch(&self) -> Ptr<T> {
        Ptr {
            raw: self.raw.load(Ordering::Acquire),
        }
    }

    /// `Release` store.
    pub fn store(&self, ptr: impl Into<Ptr<T>>) {
        self.raw.store(ptr.into().raw, Ordering::Release);
    }

    /// `AcqRel` swap, returning the displaced pointer.
    pub fn swap(&self, ptr: impl Into<Ptr<T>>) -> Ptr<T> {
        Ptr {
            raw: self.raw.swap(ptr.into().raw, Ordering::AcqRel),
        }
    }

    /// `AcqRel`/`Acquire` compare-exchange. On failure the displaced
    /// (actually observed) pointer comes back in `Err`.
    pub fn compare_exchange(
        &self,
        current: impl Into<Ptr<T>>,
        new: impl Into<Ptr<T>>,
    ) -> Result<(), Ptr<T>> {
        self.raw
            .compare_exchange(
                current.into().raw,
                new.into().raw,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .map(|_| ())
            .map_err(|seen| Ptr { raw: seen })
    }

    /// Weak variant of [`Atomic::compare_exchange`] (may fail spuriously;
    /// use in retry loops).
    pub fn compare_exchange_weak(
        &self,
        current: impl Into<Ptr<T>>,
        new: impl Into<Ptr<T>>,
    ) -> Result<(), Ptr<T>> {
        self.raw
            .compare_exchange_weak(
                current.into().raw,
                new.into().raw,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .map(|_| ())
            .map_err(|seen| Ptr { raw: seen })
    }

    /// Publishing compare-exchange: on success the [`Owned`] is consumed
    /// and its address returned; on failure ownership comes back with the
    /// observed pointer.
    #[allow(clippy::type_complexity)]
    pub fn compare_exchange_owned(
        &self,
        current: impl Into<Ptr<T>>,
        new: Owned<T>,
    ) -> Result<Ptr<T>, (Ptr<T>, Owned<T>)> {
        let published = new.ptr();
        match self.compare_exchange(current, published) {
            Ok(()) => Ok(published),
            Err(seen) => Err((seen, new)),
        }
    }

    /// Weak variant of [`Atomic::compare_exchange_owned`].
    #[allow(clippy::type_complexity)]
    pub fn compare_exchange_weak_owned(
        &self,
        current: impl Into<Ptr<T>>,
        new: Owned<T>,
    ) -> Result<Ptr<T>, (Ptr<T>, Owned<T>)> {
        let published = new.ptr();
        match self.compare_exchange_weak(current, published) {
            Ok(()) => Ok(published),
            Err(seen) => Err((seen, new)),
        }
    }

    /// `AcqRel` tag fetch-or (logical deletion marks), returning the prior
    /// value.
    pub fn fetch_or_tag(&self, tag: usize) -> Ptr<T> {
        Ptr {
            raw: self.raw.fetch_or_tag(tag, Ordering::AcqRel),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SmrConfig;

    // Scheme crates sit downstream of smr-core, so (as in `smr::tests`)
    // these are compile-only checks that the typed surface composes over
    // any scheme; runtime coverage lives in lockfree-ds and smr-testkit.
    #[allow(dead_code)]
    fn typed_surface_composes<S: Smr<u64>>(domain: &S) {
        let link = Atomic::<u64>::null();
        let guard = pin(domain);
        let s = link.load(0, &guard);
        assert!(s.as_ref().is_none());
        let owned = guard.alloc(7);
        assert_eq!(*owned.as_ref(), 7);
        match link.compare_exchange_owned(Ptr::null(), owned) {
            Ok(published) => {
                let again = link.load(1, &guard);
                assert!(again == published);
                // SAFETY: this thread published the node and is the only
                // one that ever unlinks it in this scoped check.
                unsafe { guard.defer_retire(link.swap(Ptr::null())) };
            }
            Err((_, owned)) => guard.discard(owned),
        }
        guard.flush();
    }

    #[allow(dead_code)]
    fn borrowing_guard_composes<S: Smr<u64>>(domain: &S) {
        let mut handle = domain.handle();
        handle.enter();
        {
            let mut guard = Guard::<u64, _>::over(&mut handle);
            guard.copy_protection(0, 1);
            guard.pin_shard(3);
            guard.repin();
            let _ = format!("{guard:?}");
        }
        handle.leave();
    }

    #[allow(dead_code)]
    fn config_is_reachable() -> SmrConfig {
        SmrConfig::default()
    }

    #[test]
    fn ptr_tagging_round_trips() {
        let p = Ptr::<u64>::null().with_tag(1);
        assert_eq!(p.tag(), 1);
        assert_eq!(p.untagged().tag(), 0);
        assert!(p.is_null());
        assert_eq!(p.untagged(), Ptr::null());
        let s = Shared::<'_, u64>::null().with_tag(1);
        assert_eq!(s.tag(), 1);
        assert!(s.untagged().is_null());
        assert!(s.as_ptr() == s);
        assert!(s.untagged().as_ref().is_none());
        assert!(format!("{:?}", Ptr::<u64>::default()).starts_with("Ptr"));
    }

    #[test]
    #[should_panic(expected = "dereferenced a null Shared")]
    fn null_deref_panics() {
        let _ = Shared::<'_, u64>::null().deref();
    }
}
