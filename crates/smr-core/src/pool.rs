//! A pool that parks and re-issues [`SmrHandle`]s across tasks.
//!
//! Handles are cheap for Hyaline — that is the paper's *transparency*
//! property — but registry-based schemes (EBR, HP, HE, IBR, Hyaline-1/1S)
//! claim a slot per live handle and panic past
//! [`SmrConfig::max_threads`](crate::SmrConfig::max_threads). Task-per-core
//! runtimes and oversubscribed thread pools run far more short-lived tasks
//! than that; a [`HandlePool`] caps the number of live handles and lets
//! tasks take turns: checkout hands out a parked handle (or creates one
//! while under the cap) and blocks when everything is checked out, instead
//! of exploding the registry.
//!
//! Returning a handle flushes it first, so a parked handle never sits on a
//! partial batch or an unscanned limbo list while nobody is driving it.

use std::ops::{Deref, DerefMut};
use std::sync::{Condvar, Mutex};

use crate::{Smr, SmrHandle};

struct PoolState<H> {
    parked: Vec<H>,
    issued: usize,
}

/// A blocking pool of reusable handles over one domain.
///
/// # Example
///
/// Sixteen tasks share two handles on a registry-capped scheme:
///
/// ```
/// use smr_core::{HandlePool, Smr, SmrConfig, SmrHandle};
///
/// fn oversubscribed<S: Smr<u64>>(domain: &S) {
///     let pool = HandlePool::new(domain, 2);
///     std::thread::scope(|scope| {
///         for t in 0..16u64 {
///             let pool = &pool;
///             scope.spawn(move || {
///                 let mut h = pool.checkout(); // blocks, never panics
///                 h.enter();
///                 let node = h.alloc(t);
///                 unsafe { h.retire(node) };
///                 h.leave();
///             }); // guard drop flushes and parks the handle
///         }
///     });
///     assert!(pool.issued() <= 2);
/// }
/// ```
pub struct HandlePool<'d, T: Send + 'static, S: Smr<T>> {
    domain: &'d S,
    state: Mutex<PoolState<S::Handle<'d>>>,
    available: Condvar,
    capacity: usize,
}

impl<'d, T: Send + 'static, S: Smr<T>> HandlePool<'d, T, S> {
    /// A pool issuing at most `capacity` concurrent handles on `domain`.
    ///
    /// For registry-based schemes, `capacity` should not exceed the
    /// domain's `max_threads` minus any handles used outside the pool.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(domain: &'d S, capacity: usize) -> Self {
        assert!(capacity > 0, "a handle pool needs a nonzero capacity");
        Self {
            domain,
            state: Mutex::new(PoolState {
                parked: Vec::with_capacity(capacity),
                issued: 0,
            }),
            available: Condvar::new(),
            capacity,
        }
    }

    /// The maximum number of concurrently issued handles.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Handles created so far (parked or checked out). Never exceeds
    /// [`HandlePool::capacity`].
    pub fn issued(&self) -> usize {
        self.lock().issued
    }

    /// Handles currently parked and ready for immediate checkout.
    pub fn parked(&self) -> usize {
        self.lock().parked.len()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, PoolState<S::Handle<'d>>> {
        // A task panicking mid-operation poisons the mutex; the pool state
        // itself (a Vec and a counter) is never left half-updated, so keep
        // serving the remaining tasks.
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Takes a handle, blocking until one is parked or the pool is under
    /// its creation cap.
    ///
    /// The caller must return the handle outside of an operation (after
    /// `leave`): a handle parked mid-operation would hold its reservation —
    /// and pin reclamation — for as long as it sits in the pool.
    pub fn checkout(&self) -> PooledHandle<'_, 'd, T, S> {
        let mut state = self.lock();
        loop {
            if let Some(handle) = state.parked.pop() {
                return self.guard(handle);
            }
            if state.issued < self.capacity {
                state.issued += 1;
                drop(state);
                return self.guard(self.create());
            }
            state = self
                .available
                .wait(state)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Takes a handle if one is immediately available (parked, or the pool
    /// is under its cap); `None` when the pool is exhausted.
    pub fn try_checkout(&self) -> Option<PooledHandle<'_, 'd, T, S>> {
        let mut state = self.lock();
        if let Some(handle) = state.parked.pop() {
            return Some(self.guard(handle));
        }
        if state.issued < self.capacity {
            state.issued += 1;
            drop(state);
            return Some(self.guard(self.create()));
        }
        None
    }

    /// Creates a fresh handle for an already-reserved `issued` slot
    /// (outside the lock: registry claiming can contend). If creation
    /// panics — e.g. the scheme's registry is exhausted by handles living
    /// outside the pool — the reservation is rolled back and a waiter is
    /// woken, so the panic cannot permanently shrink the pool.
    fn create(&self) -> S::Handle<'d> {
        struct Rollback<'r, 'd, T: Send + 'static, S: Smr<T>> {
            pool: &'r HandlePool<'d, T, S>,
        }
        impl<T: Send + 'static, S: Smr<T>> Drop for Rollback<'_, '_, T, S> {
            fn drop(&mut self) {
                self.pool.lock().issued -= 1;
                self.pool.available.notify_one();
            }
        }
        let rollback = Rollback { pool: self };
        let handle = self.domain.handle();
        std::mem::forget(rollback);
        handle
    }

    fn guard(&self, handle: S::Handle<'d>) -> PooledHandle<'_, 'd, T, S> {
        PooledHandle {
            pool: self,
            handle: Some(handle),
        }
    }

    fn check_in(&self, mut handle: S::Handle<'d>) {
        // Push retired nodes out so nothing lingers while the handle parks.
        handle.flush();
        self.lock().parked.push(handle);
        self.available.notify_one();
    }
}

impl<T: Send + 'static, S: Smr<T>> std::fmt::Debug for HandlePool<'_, T, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.lock();
        f.debug_struct("HandlePool")
            .field("scheme", &S::name())
            .field("capacity", &self.capacity)
            .field("issued", &state.issued)
            .field("parked", &state.parked.len())
            .finish()
    }
}

/// A checked-out handle; dereferences to `S::Handle` and parks it back into
/// the pool on drop (flushing first).
pub struct PooledHandle<'p, 'd, T: Send + 'static, S: Smr<T>> {
    pool: &'p HandlePool<'d, T, S>,
    handle: Option<S::Handle<'d>>,
}

impl<T: Send + 'static, S: Smr<T>> std::fmt::Debug for PooledHandle<'_, '_, T, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PooledHandle")
            .field("scheme", &S::name())
            .finish_non_exhaustive()
    }
}

impl<'d, T: Send + 'static, S: Smr<T>> Deref for PooledHandle<'_, 'd, T, S> {
    type Target = S::Handle<'d>;

    fn deref(&self) -> &Self::Target {
        self.handle.as_ref().expect("handle present until drop")
    }
}

impl<T: Send + 'static, S: Smr<T>> DerefMut for PooledHandle<'_, '_, T, S> {
    fn deref_mut(&mut self) -> &mut Self::Target {
        self.handle.as_mut().expect("handle present until drop")
    }
}

impl<T: Send + 'static, S: Smr<T>> Drop for PooledHandle<'_, '_, T, S> {
    fn drop(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.pool.check_in(handle);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Atomic, Shared, SmrConfig, SmrStats};
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Registry-like toy scheme: counts live handles and panics past the
    /// configured cap, mirroring `SlotRegistry::claim`.
    struct CappedDomain {
        live: AtomicUsize,
        cap: usize,
        stats: SmrStats,
    }

    impl Smr<u64> for CappedDomain {
        type Handle<'d> = CappedHandle<'d>;

        fn with_config(config: SmrConfig) -> Self {
            Self {
                live: AtomicUsize::new(0),
                cap: config.max_threads,
                stats: SmrStats::new(),
            }
        }

        fn handle(&self) -> CappedHandle<'_> {
            let now = self.live.fetch_add(1, Ordering::SeqCst) + 1;
            assert!(
                now <= self.cap,
                "registry exhausted: {now} concurrent handles"
            );
            CappedHandle { domain: self }
        }

        fn stats(&self) -> &SmrStats {
            &self.stats
        }

        fn name() -> &'static str {
            "Capped"
        }

        fn robust() -> bool {
            false
        }
    }

    struct CappedHandle<'d> {
        domain: &'d CappedDomain,
    }

    impl Drop for CappedHandle<'_> {
        fn drop(&mut self) {
            self.domain.live.fetch_sub(1, Ordering::SeqCst);
        }
    }

    impl SmrHandle<u64> for CappedHandle<'_> {
        fn enter(&mut self) {}
        fn leave(&mut self) {}

        fn alloc(&mut self, value: u64) -> Shared<u64> {
            self.domain.stats.add_allocated(1);
            Shared::from_node(crate::SmrNode::alloc(value))
        }

        unsafe fn dealloc(&mut self, ptr: Shared<u64>) {
            self.domain.stats.add_deallocated(1);
            crate::SmrNode::dealloc(ptr.as_node_ptr(), true);
        }

        fn protect(&mut self, _idx: usize, src: &Atomic<u64>) -> Shared<u64> {
            src.load(Ordering::Acquire)
        }

        unsafe fn retire(&mut self, ptr: Shared<u64>) {
            // Toy: retire frees immediately (no readers in these tests).
            self.domain.stats.add_retired(1);
            self.domain.stats.add_freed(1);
            crate::SmrNode::dealloc(ptr.as_node_ptr(), true);
        }

        fn flush(&mut self) {}
    }

    fn domain(cap: usize) -> CappedDomain {
        CappedDomain::with_config(SmrConfig {
            max_threads: cap,
            ..SmrConfig::default()
        })
    }

    #[test]
    fn checkout_reuses_parked_handles() {
        let d = domain(1);
        let pool = HandlePool::new(&d, 1);
        for i in 0..10u64 {
            let mut h = pool.checkout();
            h.enter();
            let node = h.alloc(i);
            unsafe { h.retire(node) };
            h.leave();
        }
        assert_eq!(pool.issued(), 1, "ten sequential tasks shared one handle");
        assert_eq!(pool.parked(), 1);
        assert_eq!(d.stats.allocated(), 10);
    }

    #[test]
    fn try_checkout_reports_exhaustion() {
        let d = domain(2);
        let pool = HandlePool::new(&d, 2);
        let a = pool.try_checkout().expect("first");
        let b = pool.try_checkout().expect("second");
        assert!(pool.try_checkout().is_none(), "pool must be exhausted");
        drop(a);
        assert!(pool.try_checkout().is_some(), "returned handle reusable");
        drop(b);
    }

    #[test]
    fn more_tasks_than_capacity_block_and_complete() {
        let d = domain(2);
        let pool = &HandlePool::new(&d, 2);
        let completed = &AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for t in 0..16u64 {
                scope.spawn(move || {
                    let mut h = pool.checkout();
                    h.enter();
                    let node = h.alloc(t);
                    unsafe { h.retire(node) };
                    h.leave();
                    completed.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(completed.load(Ordering::SeqCst), 16);
        assert!(pool.issued() <= 2, "cap exceeded: {}", pool.issued());
        assert_eq!(d.stats.allocated(), 16);
    }

    #[test]
    #[should_panic(expected = "nonzero capacity")]
    fn zero_capacity_rejected() {
        let d = domain(1);
        let _ = HandlePool::new(&d, 0);
    }

    #[test]
    fn failed_handle_creation_rolls_back_the_capacity_slot() {
        // The underlying registry has room for 1 handle but the pool
        // believes it may create 2: the second creation panics inside the
        // domain. The reserved `issued` slot must be rolled back, so the
        // pool keeps serving tasks with the one real handle.
        let d = domain(1);
        let pool = HandlePool::new(&d, 2);
        let first = pool.checkout();
        let second = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = pool.checkout();
        }));
        assert!(second.is_err(), "second creation must panic");
        assert_eq!(pool.issued(), 1, "panicked creation leaked a slot");
        drop(first);
        // Not hung: the parked handle (and the rolled-back slot) serve us.
        let _again = pool.checkout();
    }

    #[test]
    fn panicked_task_returns_its_handle() {
        let d = domain(1);
        let pool = &HandlePool::new(&d, 1);
        let result = std::thread::scope(|scope| {
            scope
                .spawn(move || {
                    let _h = pool.checkout();
                    panic!("task died mid-checkout");
                })
                .join()
        });
        assert!(result.is_err());
        // The guard's Drop ran during unwind: the handle is parked again.
        assert_eq!(pool.parked(), 1);
        let _h = pool.try_checkout().expect("handle survives a panic");
    }
}
