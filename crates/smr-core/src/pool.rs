//! A pool that parks and re-issues [`SmrHandle`]s across tasks.
//!
//! Handles are cheap for Hyaline — that is the paper's *transparency*
//! property — but registry-based schemes (EBR, HP, HE, IBR, Hyaline-1/1S)
//! claim a slot per live handle and panic past
//! [`SmrConfig::max_threads`](crate::SmrConfig::max_threads). Task-per-core
//! runtimes and oversubscribed thread pools run far more short-lived tasks
//! than that; a [`HandlePool`] caps the number of live handles and lets
//! tasks take turns: checkout hands out a parked handle (or creates one
//! while under the cap) and blocks when everything is checked out, instead
//! of exploding the registry.
//!
//! Checkout comes in three flavours: blocking [`HandlePool::checkout`] for
//! thread-per-task callers, non-blocking [`HandlePool::try_check_out`] for
//! probing availability without burning a thread, and the async
//! [`HandlePool::check_out`] future for task-per-core runtimes —
//! oversubscribed tasks *await* a handle through a FIFO-fair waker queue
//! instead of blocking an executor worker thread. Async waiters are served
//! strictly in arrival order; blocking and `try` checkouts barge past the
//! queue (they are expected on dedicated threads, not executor workers).
//!
//! Returning a handle normally flushes it first, so a parked handle never
//! sits on a partial batch or an unscanned limbo list while nobody is
//! driving it. A background reclaimer (such as `smr-async`'s per-shard
//! tasks) can take that flush off the hot path instead:
//! [`PooledHandle::check_in_dirty`] parks the handle *without* flushing and
//! [`HandlePool::flush_one_dirty`] lets the reclaimer perform the deferred
//! flush later. Checkout happily re-issues dirty handles — their batches
//! simply keep accumulating, exactly as if one task had kept the handle —
//! so deferred flushing never reduces availability.

use std::collections::VecDeque;
use std::future::Future;
use std::ops::{Deref, DerefMut};
use std::pin::Pin;
use std::sync::{Condvar, Mutex};
use std::task::{Context, Poll, Waker};

use crate::{Smr, SmrHandle};

/// One pending async checkout, FIFO-ordered by arrival.
struct PoolWaiter {
    ticket: u64,
    waker: Waker,
}

struct PoolState<H> {
    /// Flushed handles ready for immediate reissue.
    parked: Vec<H>,
    /// Handles parked via [`PooledHandle::check_in_dirty`]: usable for
    /// checkout, but still owing a flush to a background reclaimer.
    dirty: Vec<H>,
    issued: usize,
    /// Pending [`CheckOut`] futures in arrival order; only the front waiter
    /// may take a handle, which makes the async path FIFO-fair.
    waiters: VecDeque<PoolWaiter>,
    next_ticket: u64,
}

impl<H> PoolState<H> {
    fn take_parked(&mut self) -> Option<H> {
        self.parked.pop().or_else(|| self.dirty.pop())
    }
}

/// A pool of reusable handles over one domain.
///
/// # Example
///
/// Sixteen tasks share two handles on a registry-capped scheme:
///
/// ```
/// use smr_core::{HandlePool, Smr, SmrConfig, SmrHandle};
///
/// fn oversubscribed<S: Smr<u64>>(domain: &S) {
///     let pool = HandlePool::new(domain, 2);
///     std::thread::scope(|scope| {
///         for t in 0..16u64 {
///             let pool = &pool;
///             scope.spawn(move || {
///                 let mut h = pool.checkout(); // blocks, never panics
///                 h.enter();
///                 let node = h.alloc(t);
///                 unsafe { h.retire(node) }; // SAFETY: node is unshared, no readers.
///                 h.leave();
///             }); // guard drop flushes and parks the handle
///         }
///     });
///     assert!(pool.issued() <= 2);
/// }
/// ```
pub struct HandlePool<'d, T: Send + 'static, S: Smr<T>> {
    domain: &'d S,
    state: Mutex<PoolState<S::Handle<'d>>>,
    available: Condvar,
    capacity: usize,
}

impl<'d, T: Send + 'static, S: Smr<T>> HandlePool<'d, T, S> {
    /// A pool issuing at most `capacity` concurrent handles on `domain`.
    ///
    /// For registry-based schemes, `capacity` should not exceed the
    /// domain's `max_threads` minus any handles used outside the pool.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(domain: &'d S, capacity: usize) -> Self {
        assert!(capacity > 0, "a handle pool needs a nonzero capacity");
        Self {
            domain,
            state: Mutex::new(PoolState {
                parked: Vec::with_capacity(capacity),
                dirty: Vec::new(),
                issued: 0,
                waiters: VecDeque::new(),
                next_ticket: 0,
            }),
            available: Condvar::new(),
            capacity,
        }
    }

    /// The maximum number of concurrently issued handles.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Handles created so far (parked or checked out). Never exceeds
    /// [`HandlePool::capacity`].
    pub fn issued(&self) -> usize {
        self.lock().issued
    }

    /// Handles currently parked and ready for immediate checkout
    /// (flushed and dirty alike).
    pub fn parked(&self) -> usize {
        let state = self.lock();
        state.parked.len() + state.dirty.len()
    }

    /// Handles currently held by callers: created minus parked. The
    /// companion of [`HandlePool::capacity`] for load probes — a service
    /// can shed work when `checked_out() == capacity()`.
    pub fn checked_out(&self) -> usize {
        let state = self.lock();
        state.issued - state.parked.len() - state.dirty.len()
    }

    /// Handles parked via [`PooledHandle::check_in_dirty`] that still owe
    /// a deferred flush.
    pub fn dirty(&self) -> usize {
        self.lock().dirty.len()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, PoolState<S::Handle<'d>>> {
        // A task panicking mid-operation poisons the mutex; the pool state
        // itself (Vecs and counters) is never left half-updated, so keep
        // serving the remaining tasks.
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Passes an availability signal on: wakes the front async waiter (only
    /// the front may take, preserving FIFO order) and one blocked thread.
    /// Called whenever a handle is parked, a capacity slot is released, or
    /// a waiter leaves the queue while handles remain available — a woken
    /// waiter that disappears (cancelled future) must hand the signal on,
    /// or the availability it absorbed would be lost.
    fn notify_next(&self, state: &PoolState<S::Handle<'d>>) {
        if !state.parked.is_empty() || !state.dirty.is_empty() || state.issued < self.capacity {
            if let Some(front) = state.waiters.front() {
                front.waker.wake_by_ref();
            }
            self.available.notify_one();
        }
    }

    /// Takes a handle, blocking until one is parked or the pool is under
    /// its creation cap.
    ///
    /// The caller must return the handle outside of an operation (after
    /// `leave`): a handle parked mid-operation would hold its reservation —
    /// and pin reclamation — for as long as it sits in the pool.
    pub fn checkout(&self) -> PooledHandle<'_, 'd, T, S> {
        let mut state = self.lock();
        loop {
            if let Some(handle) = state.take_parked() {
                return self.guard(handle);
            }
            if state.issued < self.capacity {
                state.issued += 1;
                drop(state);
                return self.guard(self.create());
            }
            state = self
                .available
                .wait(state)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Takes a handle if one is immediately available (parked, or the pool
    /// is under its cap); `None` when the pool is exhausted.
    pub fn try_check_out(&self) -> Option<PooledHandle<'_, 'd, T, S>> {
        let mut state = self.lock();
        if let Some(handle) = state.take_parked() {
            return Some(self.guard(handle));
        }
        if state.issued < self.capacity {
            state.issued += 1;
            drop(state);
            return Some(self.guard(self.create()));
        }
        None
    }

    /// Asynchronously takes a handle: resolves once one is parked or the
    /// pool is under its creation cap, without blocking the polling thread.
    ///
    /// Waiters are served FIFO — the future that started awaiting first
    /// gets the next handle — so an oversubscribed executor cannot starve
    /// an old task behind a stream of new ones. Dropping the future before
    /// it resolves (task cancellation) releases its queue slot and passes
    /// any pending availability signal to the next waiter; no capacity is
    /// ever held by a cancelled checkout.
    ///
    /// As with [`HandlePool::checkout`], the resolved handle must be
    /// returned outside of an operation.
    pub fn check_out(&self) -> CheckOut<'_, 'd, T, S> {
        CheckOut {
            pool: self,
            ticket: None,
        }
    }

    /// Creates a fresh handle for an already-reserved `issued` slot
    /// (outside the lock: registry claiming can contend). If creation
    /// panics — e.g. the scheme's registry is exhausted by handles living
    /// outside the pool — the reservation is rolled back and a waiter is
    /// woken, so the panic cannot permanently shrink the pool.
    fn create(&self) -> S::Handle<'d> {
        struct Rollback<'r, 'd, T: Send + 'static, S: Smr<T>> {
            pool: &'r HandlePool<'d, T, S>,
        }
        impl<T: Send + 'static, S: Smr<T>> Drop for Rollback<'_, '_, T, S> {
            fn drop(&mut self) {
                let mut state = self.pool.lock();
                state.issued -= 1;
                self.pool.notify_next(&state);
            }
        }
        let rollback = Rollback { pool: self };
        let handle = self.domain.handle();
        std::mem::forget(rollback);
        handle
    }

    fn guard(&self, handle: S::Handle<'d>) -> PooledHandle<'_, 'd, T, S> {
        PooledHandle {
            pool: self,
            handle: Some(handle),
        }
    }

    fn check_in(&self, mut handle: S::Handle<'d>) {
        // Push retired nodes out so nothing lingers while the handle parks.
        handle.flush();
        let mut state = self.lock();
        state.parked.push(handle);
        self.notify_next(&state);
    }

    /// Parks a handle without flushing (the deferred-flush path of
    /// [`PooledHandle::check_in_dirty`]).
    fn park_dirty(&self, handle: S::Handle<'d>) {
        let mut state = self.lock();
        state.dirty.push(handle);
        self.notify_next(&state);
    }

    /// Flushes one dirty handle, if any, and parks it clean. Returns
    /// whether a handle was flushed.
    ///
    /// This is the reclaimer half of the deferred-flush protocol: tasks
    /// check handles in dirty (cheap), a background reclaimer calls this
    /// off the hot path. The handle is held out of the pool only for the
    /// duration of the flush; checkout keeps serving the rest.
    pub fn flush_one_dirty(&self) -> bool {
        let Some(mut handle) = self.lock().dirty.pop() else {
            return false;
        };
        // Flush outside the lock: scans and batch finalization can be the
        // most expensive operation the pool ever performs.
        handle.flush();
        let mut state = self.lock();
        state.parked.push(handle);
        self.notify_next(&state);
        true
    }

    /// Flushes every currently dirty handle (see
    /// [`HandlePool::flush_one_dirty`]); returns how many were flushed.
    /// Used by shutdown paths that must not leave deferred batches behind.
    pub fn flush_dirty(&self) -> usize {
        let mut flushed = 0;
        while self.flush_one_dirty() {
            flushed += 1;
        }
        flushed
    }
}

impl<T: Send + 'static, S: Smr<T>> std::fmt::Debug for HandlePool<'_, T, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.lock();
        f.debug_struct("HandlePool")
            .field("scheme", &S::name())
            .field("capacity", &self.capacity)
            .field("issued", &state.issued)
            .field("parked", &state.parked.len())
            .field("dirty", &state.dirty.len())
            .field("waiters", &state.waiters.len())
            .finish()
    }
}

/// The future returned by [`HandlePool::check_out`].
///
/// Registers itself in the pool's FIFO waiter queue on first poll when no
/// handle is available; resolves to a [`PooledHandle`] once it reaches the
/// front of the queue and a handle (or capacity slot) frees up. Dropping
/// the future deregisters it and forwards any pending wake to the next
/// waiter, so cancelled tasks never strand the queue.
pub struct CheckOut<'p, 'd, T: Send + 'static, S: Smr<T>> {
    pool: &'p HandlePool<'d, T, S>,
    ticket: Option<u64>,
}

impl<T: Send + 'static, S: Smr<T>> std::fmt::Debug for CheckOut<'_, '_, T, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckOut")
            .field("scheme", &S::name())
            .field("queued", &self.ticket.is_some())
            .finish()
    }
}

impl<'p, 'd, T: Send + 'static, S: Smr<T>> CheckOut<'p, 'd, T, S> {
    /// Removes this future's waiter entry (no-op if never registered).
    fn deregister(&mut self, state: &mut PoolState<S::Handle<'d>>) {
        if let Some(ticket) = self.ticket.take() {
            if let Some(pos) = state.waiters.iter().position(|w| w.ticket == ticket) {
                state.waiters.remove(pos);
            }
        }
    }
}

impl<'p, 'd, T: Send + 'static, S: Smr<T>> Future for CheckOut<'p, 'd, T, S> {
    type Output = PooledHandle<'p, 'd, T, S>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        // No self-references: the future is plain data, hence Unpin.
        let this = self.get_mut();
        let mut state = this.pool.lock();
        // FIFO fairness: only the front of the queue (or a fresh future
        // arriving at an empty queue) may take a handle.
        let at_front = match this.ticket {
            None => state.waiters.is_empty(),
            Some(ticket) => state.waiters.front().is_some_and(|w| w.ticket == ticket),
        };
        if at_front {
            if let Some(handle) = state.take_parked() {
                this.deregister(&mut state);
                // Hand any *remaining* availability to the next waiter.
                this.pool.notify_next(&state);
                drop(state);
                return Poll::Ready(this.pool.guard(handle));
            }
            if state.issued < this.pool.capacity {
                state.issued += 1;
                this.deregister(&mut state);
                this.pool.notify_next(&state);
                drop(state);
                // If `create` panics its Rollback guard releases the slot
                // and re-notifies, same as the blocking path.
                return Poll::Ready(this.pool.guard(this.pool.create()));
            }
        }
        // Not servable now: (re)register with the current waker. All waker
        // registration happens under the pool lock — the same lock every
        // check-in takes before waking — so a wake cannot slip between the
        // availability check above and the registration below.
        match this.ticket {
            None => {
                let ticket = state.next_ticket;
                state.next_ticket += 1;
                state.waiters.push_back(PoolWaiter {
                    ticket,
                    waker: cx.waker().clone(),
                });
                this.ticket = Some(ticket);
            }
            Some(ticket) => {
                if let Some(w) = state.waiters.iter_mut().find(|w| w.ticket == ticket) {
                    w.waker.clone_from(cx.waker());
                }
            }
        }
        Poll::Pending
    }
}

impl<T: Send + 'static, S: Smr<T>> Drop for CheckOut<'_, '_, T, S> {
    fn drop(&mut self) {
        if self.ticket.is_none() {
            return;
        }
        let mut state = self.pool.lock();
        self.deregister(&mut state);
        // A check-in may have woken this future right before it was
        // cancelled; that signal would otherwise be lost with the handle
        // sitting parked, so pass it on.
        self.pool.notify_next(&state);
    }
}

/// A checked-out handle; dereferences to `S::Handle` and parks it back into
/// the pool on drop (flushing first).
pub struct PooledHandle<'p, 'd, T: Send + 'static, S: Smr<T>> {
    pool: &'p HandlePool<'d, T, S>,
    handle: Option<S::Handle<'d>>,
}

impl<T: Send + 'static, S: Smr<T>> PooledHandle<'_, '_, T, S> {
    /// Returns the handle to the pool *without* flushing it.
    ///
    /// The deferred-flush half of the reclaimer protocol: the task-side
    /// check-in becomes a queue push, and a background reclaimer performs
    /// the flush later via [`HandlePool::flush_one_dirty`]. The caller (or
    /// its reclaimer) is responsible for ensuring dirty handles are
    /// eventually flushed — on an orderly shutdown, drain with
    /// [`HandlePool::flush_dirty`]. As with a plain drop, the handle must
    /// be outside an operation (after `leave`).
    pub fn check_in_dirty(mut self) {
        if let Some(handle) = self.handle.take() {
            self.pool.park_dirty(handle);
        }
        // Drop is now a no-op: the handle is already parked.
    }
}

impl<T: Send + 'static, S: Smr<T>> std::fmt::Debug for PooledHandle<'_, '_, T, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PooledHandle")
            .field("scheme", &S::name())
            .finish_non_exhaustive()
    }
}

impl<'d, T: Send + 'static, S: Smr<T>> Deref for PooledHandle<'_, 'd, T, S> {
    type Target = S::Handle<'d>;

    fn deref(&self) -> &Self::Target {
        self.handle.as_ref().expect("handle present until drop")
    }
}

impl<T: Send + 'static, S: Smr<T>> DerefMut for PooledHandle<'_, '_, T, S> {
    fn deref_mut(&mut self) -> &mut Self::Target {
        self.handle.as_mut().expect("handle present until drop")
    }
}

impl<T: Send + 'static, S: Smr<T>> Drop for PooledHandle<'_, '_, T, S> {
    fn drop(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.pool.check_in(handle);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Atomic, Shared, SmrConfig, SmrStats};
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::task::Wake;

    /// Registry-like toy scheme: counts live handles and panics past the
    /// configured cap, mirroring `SlotRegistry::claim`.
    struct CappedDomain {
        live: AtomicUsize,
        cap: usize,
        flushes: AtomicUsize,
        stats: SmrStats,
    }

    impl Smr<u64> for CappedDomain {
        type Handle<'d> = CappedHandle<'d>;

        fn with_config(config: SmrConfig) -> Self {
            Self {
                live: AtomicUsize::new(0),
                cap: config.max_threads,
                flushes: AtomicUsize::new(0),
                stats: SmrStats::new(),
            }
        }

        fn handle(&self) -> CappedHandle<'_> {
            let now = self.live.fetch_add(1, Ordering::SeqCst) + 1;
            assert!(
                now <= self.cap,
                "registry exhausted: {now} concurrent handles"
            );
            CappedHandle { domain: self }
        }

        fn stats(&self) -> &SmrStats {
            &self.stats
        }

        fn name() -> &'static str {
            "Capped"
        }

        fn robust() -> bool {
            false
        }
    }

    struct CappedHandle<'d> {
        domain: &'d CappedDomain,
    }

    impl Drop for CappedHandle<'_> {
        fn drop(&mut self) {
            self.domain.live.fetch_sub(1, Ordering::SeqCst);
        }
    }

    impl SmrHandle<u64> for CappedHandle<'_> {
        fn enter(&mut self) {}
        fn leave(&mut self) {}

        fn alloc(&mut self, value: u64) -> Shared<u64> {
            self.domain.stats.add_allocated(1);
            Shared::from_node(crate::SmrNode::alloc(value))
        }

        // SAFETY: callers uphold the trait contract (ptr came from `alloc`
        // and is not reachable); the toy domain frees it immediately.
        unsafe fn dealloc(&mut self, ptr: Shared<u64>) {
            self.domain.stats.add_deallocated(1);
            crate::SmrNode::dealloc(ptr.as_node_ptr(), true);
        }

        fn protect(&mut self, _idx: usize, src: &Atomic<u64>) -> Shared<u64> {
            src.load(Ordering::Acquire)
        }

        // SAFETY: these tests never share nodes across handles, so a
        // retired node has no readers and can be freed on the spot.
        unsafe fn retire(&mut self, ptr: Shared<u64>) {
            // Toy: retire frees immediately (no readers in these tests).
            self.domain.stats.add_retired(1);
            self.domain.stats.add_freed(1);
            crate::SmrNode::dealloc(ptr.as_node_ptr(), true);
        }

        fn flush(&mut self) {
            self.domain.flushes.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn domain(cap: usize) -> CappedDomain {
        CappedDomain::with_config(SmrConfig {
            max_threads: cap,
            ..SmrConfig::default()
        })
    }

    /// A waker that records having been woken.
    struct Flag(AtomicBool);

    impl Flag {
        fn pair() -> (Arc<Flag>, Waker) {
            let flag = Arc::new(Flag(AtomicBool::new(false)));
            let waker = Waker::from(Arc::clone(&flag));
            (flag, waker)
        }

        fn woken(&self) -> bool {
            self.0.swap(false, Ordering::SeqCst)
        }
    }

    impl Wake for Flag {
        fn wake(self: Arc<Self>) {
            self.0.store(true, Ordering::SeqCst);
        }

        fn wake_by_ref(self: &Arc<Self>) {
            self.0.store(true, Ordering::SeqCst);
        }
    }

    fn poll_once<F: Future + Unpin>(fut: &mut F, waker: &Waker) -> Poll<F::Output> {
        let mut cx = Context::from_waker(waker);
        Pin::new(fut).poll(&mut cx)
    }

    #[test]
    fn checkout_reuses_parked_handles() {
        let d = domain(1);
        let pool = HandlePool::new(&d, 1);
        for i in 0..10u64 {
            let mut h = pool.checkout();
            h.enter();
            let node = h.alloc(i);
            unsafe { h.retire(node) }; // SAFETY: node is unshared, no readers.
            h.leave();
        }
        assert_eq!(pool.issued(), 1, "ten sequential tasks shared one handle");
        assert_eq!(pool.parked(), 1);
        assert_eq!(pool.checked_out(), 0);
        assert_eq!(d.stats.allocated(), 10);
    }

    #[test]
    fn try_check_out_reports_exhaustion() {
        let d = domain(2);
        let pool = HandlePool::new(&d, 2);
        let a = pool.try_check_out().expect("first");
        let b = pool.try_check_out().expect("second");
        assert!(pool.try_check_out().is_none(), "pool must be exhausted");
        assert_eq!(pool.checked_out(), 2);
        assert_eq!(pool.capacity(), 2);
        drop(a);
        assert_eq!(pool.checked_out(), 1);
        assert!(pool.try_check_out().is_some(), "returned handle reusable");
        drop(b);
    }

    #[test]
    fn more_tasks_than_capacity_block_and_complete() {
        let d = domain(2);
        let pool = &HandlePool::new(&d, 2);
        let completed = &AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for t in 0..16u64 {
                scope.spawn(move || {
                    let mut h = pool.checkout();
                    h.enter();
                    let node = h.alloc(t);
                    unsafe { h.retire(node) }; // SAFETY: node is unshared, no readers.
                    h.leave();
                    completed.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(completed.load(Ordering::SeqCst), 16);
        assert!(pool.issued() <= 2, "cap exceeded: {}", pool.issued());
        assert_eq!(d.stats.allocated(), 16);
    }

    #[test]
    #[should_panic(expected = "nonzero capacity")]
    fn zero_capacity_rejected() {
        let d = domain(1);
        let _ = HandlePool::new(&d, 0);
    }

    #[test]
    fn failed_handle_creation_rolls_back_the_capacity_slot() {
        // The underlying registry has room for 1 handle but the pool
        // believes it may create 2: the second creation panics inside the
        // domain. The reserved `issued` slot must be rolled back, so the
        // pool keeps serving tasks with the one real handle.
        let d = domain(1);
        let pool = HandlePool::new(&d, 2);
        let first = pool.checkout();
        let second = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = pool.checkout();
        }));
        assert!(second.is_err(), "second creation must panic");
        assert_eq!(pool.issued(), 1, "panicked creation leaked a slot");
        drop(first);
        // Not hung: the parked handle (and the rolled-back slot) serve us.
        let _again = pool.checkout();
    }

    #[test]
    fn panicked_task_returns_its_handle() {
        let d = domain(1);
        let pool = &HandlePool::new(&d, 1);
        let result = std::thread::scope(|scope| {
            scope
                .spawn(move || {
                    let _h = pool.checkout();
                    panic!("task died mid-checkout");
                })
                .join()
        });
        assert!(result.is_err());
        // The guard's Drop ran during unwind: the handle is parked again.
        assert_eq!(pool.parked(), 1);
        let _h = pool.try_check_out().expect("handle survives a panic");
    }

    #[test]
    fn async_check_out_resolves_immediately_when_available() {
        let d = domain(1);
        let pool = HandlePool::new(&d, 1);
        let (_flag, waker) = Flag::pair();
        let mut fut = pool.check_out();
        let Poll::Ready(h) = poll_once(&mut fut, &waker) else {
            panic!("empty pool under cap must resolve on first poll");
        };
        assert_eq!(pool.checked_out(), 1);
        drop(h);
        assert_eq!(pool.parked(), 1);
    }

    #[test]
    fn async_check_out_is_fifo_fair() {
        let d = domain(1);
        let pool = HandlePool::new(&d, 1);
        let held = pool.checkout();

        let (flag_a, waker_a) = Flag::pair();
        let (flag_b, waker_b) = Flag::pair();
        let mut a = pool.check_out();
        let mut b = pool.check_out();
        assert!(poll_once(&mut a, &waker_a).is_pending());
        assert!(poll_once(&mut b, &waker_b).is_pending());

        drop(held); // check-in wakes the front waiter (a)
        assert!(flag_a.woken(), "front waiter must be woken by check-in");

        // b polls first (executor scheduling artifact) — but a is the front
        // of the queue, so b must stay pending.
        assert!(poll_once(&mut b, &waker_b).is_pending());
        let Poll::Ready(handle_a) = poll_once(&mut a, &waker_a) else {
            panic!("front waiter must resolve");
        };

        drop(handle_a); // wakes b, now the front
        assert!(flag_b.woken());
        let Poll::Ready(_handle_b) = poll_once(&mut b, &waker_b) else {
            panic!("second waiter must resolve after the first returns");
        };
        assert_eq!(pool.issued(), 1, "everything shared the single handle");
    }

    #[test]
    fn cancelled_check_out_releases_its_waker_slot() {
        let d = domain(1);
        let pool = HandlePool::new(&d, 1);
        let held = pool.checkout();

        let (_flag, waker) = Flag::pair();
        let mut fut = pool.check_out();
        assert!(poll_once(&mut fut, &waker).is_pending());
        drop(fut); // cancelled mid-await

        drop(held);
        // No leaked queue entry, no leaked capacity: immediate reuse works.
        assert_eq!(pool.checked_out(), 0);
        let _h = pool.try_check_out().expect("pool fully available again");
        assert_eq!(pool.issued(), 1);
    }

    #[test]
    fn cancelling_a_woken_waiter_passes_the_signal_on() {
        let d = domain(1);
        let pool = HandlePool::new(&d, 1);
        let held = pool.checkout();

        let (flag_a, waker_a) = Flag::pair();
        let (flag_b, waker_b) = Flag::pair();
        let mut a = pool.check_out();
        let mut b = pool.check_out();
        assert!(poll_once(&mut a, &waker_a).is_pending());
        assert!(poll_once(&mut b, &waker_b).is_pending());

        drop(held);
        assert!(flag_a.woken(), "a absorbed the availability signal");
        assert!(!flag_b.woken());

        // a is cancelled after being woken but before re-polling: its drop
        // must forward the signal, or b waits forever on a parked handle.
        drop(a);
        assert!(flag_b.woken(), "cancelled waiter must pass the baton");
        let Poll::Ready(_h) = poll_once(&mut b, &waker_b) else {
            panic!("b must resolve after the baton pass");
        };
    }

    #[test]
    fn check_in_dirty_defers_the_flush_to_the_pool() {
        let d = domain(1);
        let pool = HandlePool::new(&d, 1);
        pool.checkout().check_in_dirty();
        assert_eq!(pool.dirty(), 1);
        assert_eq!(
            d.flushes.load(Ordering::SeqCst),
            0,
            "dirty check-in must not flush on the task's path"
        );
        assert!(pool.flush_one_dirty(), "one dirty handle to flush");
        assert!(!pool.flush_one_dirty(), "queue drained");
        assert_eq!(pool.dirty(), 0);
        assert_eq!(pool.parked(), 1);
        assert_eq!(d.flushes.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn checkout_serves_dirty_handles() {
        // A dirty handle is still a perfectly good handle: re-issuing it is
        // the same as one task having kept it across two operations.
        let d = domain(1);
        let pool = HandlePool::new(&d, 1);
        pool.checkout().check_in_dirty();
        assert_eq!(pool.dirty(), 1);
        let h = pool.try_check_out().expect("dirty handle is available");
        assert_eq!(pool.dirty(), 0);
        drop(h);
        // Plain drop flushed it: nothing dirty remains.
        assert_eq!(pool.dirty(), 0);
        assert_eq!(pool.flush_dirty(), 0);
    }

    #[test]
    fn flush_dirty_drains_everything_for_shutdown() {
        let d = domain(3);
        let pool = HandlePool::new(&d, 3);
        let (a, b, c) = (pool.checkout(), pool.checkout(), pool.checkout());
        a.check_in_dirty();
        b.check_in_dirty();
        c.check_in_dirty();
        assert_eq!(pool.dirty(), 3);
        assert_eq!(pool.flush_dirty(), 3);
        assert_eq!(pool.dirty(), 0);
        assert_eq!(pool.parked(), 3);
        assert_eq!(d.flushes.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn async_check_out_waits_for_dirty_handles_too() {
        let d = domain(1);
        let pool = HandlePool::new(&d, 1);
        let held = pool.checkout();
        let (flag, waker) = Flag::pair();
        let mut fut = pool.check_out();
        assert!(poll_once(&mut fut, &waker).is_pending());
        held.check_in_dirty(); // dirty check-in must also wake waiters
        assert!(flag.woken());
        let Poll::Ready(_h) = poll_once(&mut fut, &waker) else {
            panic!("dirty handle must satisfy an async waiter");
        };
    }

    #[test]
    fn async_oversubscription_on_threads_completes() {
        // 16 blocking threads each driving an async checkout via manual
        // polling (park/unpark) against a 2-handle pool: the waker queue
        // and the condvar path coexist without lost wakeups.
        let d = domain(2);
        let pool = &HandlePool::new(&d, 2);
        let completed = &AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for t in 0..16u64 {
                scope.spawn(move || {
                    // Busy-poll with a flag waker: a minimal single-future
                    // executor (yields via thread::yield_now, not sleep).
                    let (flag, waker) = Flag::pair();
                    let mut fut = pool.check_out();
                    let mut h = loop {
                        match poll_once(&mut fut, &waker) {
                            Poll::Ready(h) => break h,
                            Poll::Pending => {
                                while !flag.woken() {
                                    std::thread::yield_now();
                                }
                            }
                        }
                    };
                    h.enter();
                    let node = h.alloc(t);
                    unsafe { h.retire(node) }; // SAFETY: node is unshared, no readers.
                    h.leave();
                    completed.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(completed.load(Ordering::SeqCst), 16);
        assert!(pool.issued() <= 2);
        assert_eq!(d.stats.allocated(), 16);
    }
}
