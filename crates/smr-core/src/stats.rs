//! Allocation / retire / free accounting.
//!
//! The paper's Figures 9, 12, 14 and 16 plot the *average number of retired
//! but not yet reclaimed objects per operation*, and the robustness test
//! (Figure 10a) plots the same quantity under stalled threads. Those metrics
//! are derived from the three counters kept here.
//!
//! Threads buffer updates in a [`LocalStats`] and flush them to the shared
//! [`SmrStats`] periodically so the accounting does not itself become a
//! contended hot spot that would distort throughput measurements.

use crossbeam_utils::CachePadded;
use std::sync::atomic::{AtomicU64, Ordering};

/// Shared counters for one reclamation domain.
#[derive(Debug, Default)]
pub struct SmrStats {
    allocated: CachePadded<AtomicU64>,
    retired: CachePadded<AtomicU64>,
    freed: CachePadded<AtomicU64>,
    deallocated: CachePadded<AtomicU64>,
    pool_hits: CachePadded<AtomicU64>,
    pool_misses: CachePadded<AtomicU64>,
    recycled: CachePadded<AtomicU64>,
}

impl SmrStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds to the allocation counter.
    #[inline]
    pub fn add_allocated(&self, n: u64) {
        self.allocated.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds to the retire counter.
    #[inline]
    pub fn add_retired(&self, n: u64) {
        self.retired.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds to the free counter.
    #[inline]
    pub fn add_freed(&self, n: u64) {
        self.freed.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds to the exclusive-deallocation counter (nodes freed directly via
    /// [`SmrHandle::dealloc`](crate::SmrHandle::dealloc) without ever being
    /// retired — e.g. a node whose publishing CAS lost, or nodes freed by a
    /// data structure's `Drop`).
    #[inline]
    pub fn add_deallocated(&self, n: u64) {
        self.deallocated.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds to the pool-hit counter (allocations served from the recycle
    /// pool instead of the global allocator).
    #[inline]
    pub fn add_pool_hits(&self, n: u64) {
        self.pool_hits.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds to the pool-miss counter (allocations that fell through to the
    /// global allocator while recycling was enabled).
    #[inline]
    pub fn add_pool_misses(&self, n: u64) {
        self.pool_misses.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds to the recycled counter (reclaimed nodes whose memory was handed
    /// back to the recycle pool instead of being freed).
    #[inline]
    pub fn add_recycled(&self, n: u64) {
        self.recycled.fetch_add(n, Ordering::Relaxed);
    }

    /// Total nodes allocated.
    pub fn allocated(&self) -> u64 {
        self.allocated.load(Ordering::Relaxed)
    }

    /// Total nodes retired.
    pub fn retired(&self) -> u64 {
        self.retired.load(Ordering::Relaxed)
    }

    /// Total nodes freed through the reclamation path.
    pub fn freed(&self) -> u64 {
        self.freed.load(Ordering::Relaxed)
    }

    /// Total nodes deallocated directly while exclusively owned.
    pub fn deallocated(&self) -> u64 {
        self.deallocated.load(Ordering::Relaxed)
    }

    /// Allocations served from the recycle pool. Load-only sampling, like
    /// [`SmrStats::unreclaimed`]: cheap to read mid-run.
    pub fn pool_hits(&self) -> u64 {
        self.pool_hits.load(Ordering::Relaxed)
    }

    /// Allocations that fell through to the global allocator while recycling
    /// was enabled. Zero when recycling is off.
    pub fn pool_misses(&self) -> u64 {
        self.pool_misses.load(Ordering::Relaxed)
    }

    /// Reclaimed nodes whose memory was handed to the recycle pool instead
    /// of being freed. (A pooled node evicted later by a capacity overflow
    /// still counts: the counter tracks reclaim-path routing, not residency.)
    pub fn recycled(&self) -> u64 {
        self.recycled.load(Ordering::Relaxed)
    }

    /// Whether every allocated node has been released again
    /// (`allocated == freed + deallocated`). Test suites assert this after
    /// domain teardown to catch leaks and double accounting.
    pub fn balanced(&self) -> bool {
        self.allocated() == self.freed() + self.deallocated()
    }

    /// Retired-but-not-yet-freed nodes right now (the paper's "unreclaimed
    /// objects" metric). Saturating: concurrent flushes may transiently make
    /// `freed` overtake `retired`.
    pub fn unreclaimed(&self) -> u64 {
        self.retired().saturating_sub(self.freed())
    }

    /// Overwrites these counters with the sums over `parts`.
    ///
    /// [`Sharded`](crate::Sharded) keeps one aggregate `SmrStats` and
    /// refreshes it from the per-shard counters on every
    /// [`Smr::stats`](crate::Smr::stats) call. The four sums are read
    /// independently, so a snapshot taken while shards are actively flushing
    /// is approximate — exactly as approximate as reading a single domain's
    /// counters mid-flight; at quiescence it is exact.
    pub fn refresh_from<'a>(&self, parts: impl IntoIterator<Item = &'a SmrStats>) {
        let mut sums = [0u64; 7];
        for p in parts {
            sums[0] += p.allocated();
            sums[1] += p.retired();
            sums[2] += p.freed();
            sums[3] += p.deallocated();
            sums[4] += p.pool_hits();
            sums[5] += p.pool_misses();
            sums[6] += p.recycled();
        }
        self.allocated.store(sums[0], Ordering::Relaxed);
        self.retired.store(sums[1], Ordering::Relaxed);
        self.freed.store(sums[2], Ordering::Relaxed);
        self.deallocated.store(sums[3], Ordering::Relaxed);
        self.pool_hits.store(sums[4], Ordering::Relaxed);
        self.pool_misses.store(sums[5], Ordering::Relaxed);
        self.recycled.store(sums[6], Ordering::Relaxed);
    }
}

/// Per-thread buffered counters, flushed to [`SmrStats`] in batches.
///
/// # Example
///
/// ```
/// use smr_core::{LocalStats, SmrStats};
///
/// let shared = SmrStats::new();
/// let mut local = LocalStats::new();
/// local.on_alloc(&shared);
/// local.on_retire(&shared);
/// local.on_free(&shared, 1);
/// local.flush(&shared);
/// assert_eq!(shared.allocated(), 1);
/// assert_eq!(shared.retired(), 1);
/// assert_eq!(shared.freed(), 1);
/// ```
#[derive(Debug, Default)]
pub struct LocalStats {
    allocated: u64,
    retired: u64,
    freed: u64,
    deallocated: u64,
    pending: u64,
}

/// Buffered events before an automatic flush.
const FLUSH_EVERY: u64 = 64;

impl LocalStats {
    /// Fresh zeroed buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one allocation.
    #[inline]
    pub fn on_alloc(&mut self, shared: &SmrStats) {
        self.allocated += 1;
        self.tick(shared);
    }

    /// Records one retire.
    #[inline]
    pub fn on_retire(&mut self, shared: &SmrStats) {
        self.retired += 1;
        self.tick(shared);
    }

    /// Records `n` frees (batches free many nodes at once).
    ///
    /// Frees flush immediately: they happen at batch/scan granularity (rare
    /// relative to operations), and the paper's unreclaimed-objects metric
    /// needs the shared `freed` counter to track reclamation promptly.
    #[inline]
    pub fn on_free(&mut self, shared: &SmrStats, n: u64) {
        self.freed += n;
        self.flush(shared);
    }

    /// Records one exclusive deallocation.
    #[inline]
    pub fn on_dealloc(&mut self, shared: &SmrStats) {
        self.deallocated += 1;
        self.tick(shared);
    }

    #[inline]
    fn tick(&mut self, shared: &SmrStats) {
        self.pending += 1;
        if self.pending >= FLUSH_EVERY {
            self.flush(shared);
        }
    }

    /// Publishes all buffered counts to `shared`.
    pub fn flush(&mut self, shared: &SmrStats) {
        if self.allocated > 0 {
            shared.add_allocated(self.allocated);
            self.allocated = 0;
        }
        if self.retired > 0 {
            shared.add_retired(self.retired);
            self.retired = 0;
        }
        if self.freed > 0 {
            shared.add_freed(self.freed);
            self.freed = 0;
        }
        if self.deallocated > 0 {
            shared.add_deallocated(self.deallocated);
            self.deallocated = 0;
        }
        self.pending = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unreclaimed_is_retired_minus_freed() {
        let s = SmrStats::new();
        s.add_retired(10);
        s.add_freed(4);
        assert_eq!(s.unreclaimed(), 6);
    }

    #[test]
    fn unreclaimed_saturates() {
        let s = SmrStats::new();
        s.add_freed(4);
        assert_eq!(s.unreclaimed(), 0);
    }

    #[test]
    fn local_stats_auto_flush() {
        let s = SmrStats::new();
        let mut l = LocalStats::new();
        for _ in 0..FLUSH_EVERY {
            l.on_alloc(&s);
        }
        // The buffer must have flushed at least once by now.
        assert_eq!(s.allocated(), FLUSH_EVERY);
    }

    #[test]
    fn explicit_flush_publishes_everything() {
        let s = SmrStats::new();
        let mut l = LocalStats::new();
        l.on_alloc(&s);
        l.on_retire(&s);
        l.on_free(&s, 5);
        l.flush(&s);
        assert_eq!(s.allocated(), 1);
        assert_eq!(s.retired(), 1);
        assert_eq!(s.freed(), 5);
    }

    #[test]
    fn refresh_from_sums_parts() {
        let a = SmrStats::new();
        a.add_allocated(3);
        a.add_retired(2);
        a.add_freed(1);
        a.add_pool_hits(5);
        let b = SmrStats::new();
        b.add_allocated(7);
        b.add_deallocated(4);
        b.add_pool_misses(6);
        b.add_recycled(2);
        let agg = SmrStats::new();
        agg.add_allocated(999); // stale value must be overwritten
        agg.add_recycled(999);
        agg.refresh_from([&a, &b]);
        assert_eq!(agg.allocated(), 10);
        assert_eq!(agg.retired(), 2);
        assert_eq!(agg.freed(), 1);
        assert_eq!(agg.deallocated(), 4);
        assert_eq!(agg.pool_hits(), 5);
        assert_eq!(agg.pool_misses(), 6);
        assert_eq!(agg.recycled(), 2);
        assert_eq!(agg.unreclaimed(), 1);
    }

    #[test]
    fn concurrent_flushes_sum() {
        let s = SmrStats::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let mut l = LocalStats::new();
                    for _ in 0..1000 {
                        l.on_retire(&s);
                    }
                    l.flush(&s);
                });
            }
        });
        assert_eq!(s.retired(), 4000);
    }
}
