//! Property test: every `BenchRecord` field survives encode→decode.
//!
//! Strings are drawn from a charset that covers JSON's escape-sensitive
//! characters (quotes, backslashes, control characters, non-ASCII,
//! astral-plane emoji), integers cover the full u64/i64 ranges, and floats
//! are arbitrary finite non-NaN ratios — Rust's shortest-round-trip float
//! formatting must bring every one of them back bit-exactly.

use bench_harness::results::BenchRecord;
use proptest::prelude::*;

/// Escape-sensitive characters a JSON string encoder must survive.
const CHARSET: &[char] = &[
    'a', 'Z', '0', ' ', ',', '"', '\\', '/', '\n', '\r', '\t', '\u{0008}', '\u{000C}', '\u{0001}',
    '\u{001F}', 'é', '控', '\u{1F600}', ':', '{', '}', '[', ']',
];

fn string_from(indices: Vec<usize>) -> String {
    indices.into_iter().map(|i| CHARSET[i]).collect()
}

/// A finite, NaN-free float from two integers (denominator is never zero).
fn ratio(num: u64, den: u64, negative: bool) -> f64 {
    let v = num as f64 / (den as f64 + 1.0);
    if negative {
        -v
    } else {
        v
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]
    #[test]
    fn every_field_survives_encode_decode(
        figure in prop::collection::vec(0usize..CHARSET.len(), 0..16),
        scheme in prop::collection::vec(0usize..CHARSET.len(), 0..16),
        structure in prop::collection::vec(0usize..CHARSET.len(), 0..16),
        mix in prop::collection::vec(0usize..CHARSET.len(), 0..16),
        timestamp in prop::collection::vec(0usize..CHARSET.len(), 0..16),
        git_sha_some in any::<bool>(),
        git_sha in prop::collection::vec(0usize..CHARSET.len(), 0..16),
        ints in (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        more_ints in (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        counters in (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        config_ints in (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        ack_threshold in any::<i64>(),
        flags in (any::<bool>(), any::<bool>()),
        secs_parts in (any::<u64>(), any::<u64>()),
        mops_parts in (any::<u64>(), any::<u64>(), any::<bool>()),
        unrec_parts in (any::<u64>(), any::<u64>(), any::<bool>()),
    ) {
        let record = BenchRecord {
            schema: ints.0,
            figure: string_from(figure),
            scheme: string_from(scheme),
            structure: string_from(structure),
            mix: string_from(mix),
            threads: ints.1,
            stalled: ints.2,
            secs: ratio(secs_parts.0, secs_parts.1, false),
            trials: ints.3,
            prefill: more_ints.0,
            key_range: more_ints.1,
            sample_every: more_ints.2,
            use_trim: flags.0,
            trim_window: more_ints.3,
            seed: counters.0,
            slots: config_ints.0,
            batch_min: config_ints.1,
            era_freq: config_ints.2,
            scan_threshold: config_ints.3,
            max_protect: counters.1 % 1024,
            ack_threshold,
            adaptive: flags.1,
            max_threads: counters.2 % (1 << 32),
            shards: counters.3 % (1 << 16),
            handle_churn: counters.0 % (1 << 32),
            connections: counters.1 ^ more_ints.0,
            routing: if flags.0 { "by-key" } else { "by-pointer" }.to_string(),
            handoff_attempts: counters.2 ^ more_ints.1,
            recycle: flags.0 ^ flags.1,
            recycle_capacity: counters.3 ^ more_ints.2,
            recycle_magazine: counters.0 ^ more_ints.3,
            git_sha: git_sha_some.then(|| string_from(git_sha)),
            host_cores: counters.3,
            timestamp: string_from(timestamp),
            mops: ratio(mops_parts.0, mops_parts.1, mops_parts.2),
            avg_unreclaimed: ratio(unrec_parts.0, unrec_parts.1, unrec_parts.2),
            ops: counters.0 ^ counters.1,
            retired: counters.1 ^ counters.2,
            freed: counters.2 ^ counters.3,
            pool_hits: counters.3 ^ more_ints.0,
            pool_misses: counters.0 ^ more_ints.1,
            recycled: counters.1 ^ more_ints.2,
        };
        let line = record.encode();
        // JSONL invariant: exactly one line per record.
        prop_assert!(!line.contains('\n'), "embedded newline in {line:?}");
        let decoded = BenchRecord::decode(&line)
            .unwrap_or_else(|e| panic!("decode failed: {e}\nline: {line}"));
        prop_assert_eq!(decoded, record);
    }
}
