//! The measured benchmark driver.
//!
//! Reproduces the paper's methodology (Section 6): prefill the structure,
//! run every thread through a uniform random operation stream for a fixed
//! duration, and report throughput plus the average number of retired but
//! not yet reclaimed objects per operation (sampled periodically, as in the
//! framework of \[35\]). Optional extras drive the robustness test (stalled
//! threads parked inside an operation, Figure 10a) and §3.3 trimming
//! (Figure 10b).

use lockfree_ds::ConcurrentMap;
use smr_core::{HandlePool, Smr, SmrConfig, SmrHandle};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

use crate::workload::{Op, OpMix, OpStream};

/// Parameters of one benchmark run.
#[derive(Debug, Clone)]
pub struct BenchParams {
    /// Active worker threads.
    pub threads: usize,
    /// Extra threads that enter an operation and stall for the whole run.
    pub stalled: usize,
    /// Measured duration per trial, in seconds.
    pub secs: f64,
    /// Number of trials; results are averaged (the paper runs 5).
    pub trials: usize,
    /// Number of elements prefilled (the paper uses 50 000).
    pub prefill: usize,
    /// Keys are drawn from `0..key_range` (the paper uses 100 000).
    pub key_range: u64,
    /// Operation mix.
    pub mix: OpMix,
    /// Reclamation configuration handed to the scheme.
    pub config: SmrConfig,
    /// Sample the unreclaimed-object count every this many operations.
    pub sample_every: u64,
    /// Drive operations with `trim` instead of `leave`+`enter`
    /// (Hyaline only; Figure 10b). Falls back to leave+enter elsewhere.
    pub use_trim: bool,
    /// Operations between forced `leave`/`enter` when trimming (bounds the
    /// retirement list length, as §3.3 requires).
    pub trim_window: u64,
    /// Handle-churn workload: when nonzero, workers draw their handles from
    /// a shared [`HandlePool`] capped at `config.max_threads` and return
    /// them every `handle_churn` operations — the task-per-core pattern
    /// where short-lived tasks far outnumber registry slots. `0` keeps the
    /// classic one-handle-per-thread loop.
    pub handle_churn: u64,
    /// Connection-driven workload (the async `kv-service` sweep): when
    /// nonzero, this many simulated connections multiplex over the handle
    /// registry instead of `threads` OS workers driving it directly. `0`
    /// keeps the classic thread-driven loop; the thread-driven driver in
    /// this module ignores the knob, it is consumed by the sweep binary
    /// and recorded in the results schema.
    pub connections: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BenchParams {
    fn default() -> Self {
        Self {
            threads: 2,
            stalled: 0,
            secs: 0.3,
            trials: 1,
            prefill: 1_000,
            key_range: 2_000,
            mix: OpMix::WriteIntensive,
            config: SmrConfig::default(),
            sample_every: 128,
            use_trim: false,
            trim_window: 64,
            handle_churn: 0,
            connections: 0,
            seed: 0x5EED,
        }
    }
}

/// Result of one benchmark run (averaged over trials).
#[derive(Debug, Clone, Copy, Default)]
pub struct RunResult {
    /// Throughput in million operations per second.
    pub mops: f64,
    /// Average retired-but-unreclaimed objects (per sample point).
    pub avg_unreclaimed: f64,
    /// Highest retired-but-unreclaimed estimate seen at any sample point
    /// (maximum across trials). The stalled-reader sweep keys on this
    /// rather than the average: a robust scheme bounds the high-water
    /// mark even while a reader stalls inside an operation, a non-robust
    /// one grows it for as long as the run lasts.
    pub peak_unreclaimed: u64,
    /// Total operations executed.
    pub ops: u64,
    /// Nodes retired during the measured phase.
    pub retired: u64,
    /// Nodes freed during the measured phase.
    pub freed: u64,
    /// Allocations served from the recycle pool (zero when recycling off).
    pub pool_hits: u64,
    /// Allocations that fell through to the global allocator while
    /// recycling was enabled (zero when recycling off).
    pub pool_misses: u64,
    /// Reclaimed nodes routed back to the recycle pool (zero when off).
    pub recycled: u64,
}

/// Runs the workload against a `(structure, scheme)` pair.
pub fn run_bench<S, M>(params: &BenchParams) -> RunResult
where
    M: ConcurrentMap<S>,
    S: Smr<M::Node>,
{
    let mut acc = RunResult::default();
    for trial in 0..params.trials.max(1) {
        let r = run_trial::<S, M>(params, trial as u64);
        acc.mops += r.mops;
        acc.avg_unreclaimed += r.avg_unreclaimed;
        acc.peak_unreclaimed = acc.peak_unreclaimed.max(r.peak_unreclaimed);
        acc.ops += r.ops;
        acc.retired += r.retired;
        acc.freed += r.freed;
        acc.pool_hits += r.pool_hits;
        acc.pool_misses += r.pool_misses;
        acc.recycled += r.recycled;
    }
    let n = params.trials.max(1) as f64;
    acc.mops /= n;
    acc.avg_unreclaimed /= n;
    acc
}

fn run_trial<S, M>(params: &BenchParams, trial: u64) -> RunResult
where
    M: ConcurrentMap<S>,
    S: Smr<M::Node>,
{
    let map = M::with_config(params.config.clone());

    // Prefill with `prefill` evenly spaced keys from the range, so roughly
    // half the range is present (as in the paper: 50k elements, 100k keys).
    {
        let mut h = map.handle();
        let step = (params.key_range / params.prefill.max(1) as u64).max(1);
        let mut inserted = 0;
        let mut key = 0;
        while inserted < params.prefill as u64 && key < params.key_range {
            h.enter();
            map.map_insert(&mut h, key, key);
            h.leave();
            inserted += 1;
            key += step;
        }
        h.flush();
    }

    let stop = AtomicBool::new(false);
    let start_barrier = Barrier::new(params.threads + params.stalled + 1);
    // Handle-churn mode: workers take turns on a pool capped at the
    // registry budget (minus the stalled threads' own handles), so more
    // tasks than `max_threads` run without exhausting registry schemes.
    let pool = (params.handle_churn > 0).then(|| {
        let cap = params
            .config
            .max_threads
            .saturating_sub(params.stalled)
            .max(1);
        HandlePool::new(map.domain(), cap)
    });
    let map_ref = &map;
    let stop_ref = &stop;
    let barrier_ref = &start_barrier;
    let pool_ref = pool.as_ref();

    struct ThreadOut {
        ops: u64,
        sample_sum: u64,
        samples: u64,
        peak: u64,
    }

    // Create every direct handle up front, before any thread exists
    // (handles are Send): a registry-exhaustion panic then propagates
    // cleanly from here instead of stranding already-spawned threads at
    // the start barrier forever.
    let mut premade_workers = (0..params.threads)
        .map(|_| (params.handle_churn == 0).then(|| map_ref.handle()))
        .collect::<Vec<_>>()
        .into_iter();
    let mut premade_stalled = (0..params.stalled)
        .map(|_| map_ref.handle())
        .collect::<Vec<_>>()
        .into_iter();

    let (total_ops, sample_sum, samples, peak) = std::thread::scope(|scope| {
        let mut workers = Vec::with_capacity(params.threads);
        for t in 0..params.threads {
            let params = params.clone();
            let premade_handle = premade_workers.next().expect("one premade slot per worker");
            workers.push(scope.spawn(move || {
                let mut stream = OpStream::new(
                    params.mix,
                    params.key_range,
                    params.seed ^ trial,
                    t as u64,
                );
                let mut out = ThreadOut {
                    ops: 0,
                    sample_sum: 0,
                    samples: 0,
                    peak: 0,
                };
                let mut one_op = |h: &mut _, out: &mut ThreadOut| {
                    let (op, key) = stream.next_op();
                    match op {
                        Op::Get => {
                            map_ref.map_get(h, key);
                        }
                        Op::Insert => {
                            map_ref.map_insert(h, key, key);
                        }
                        Op::Remove => {
                            map_ref.map_remove(h, key);
                        }
                    }
                    out.ops += 1;
                    if out.ops.is_multiple_of(params.sample_every) {
                        // Load-only estimate: sampling must not introduce
                        // shared-cache-line writes into the measured run.
                        let est = map_ref.domain().unreclaimed_estimate();
                        out.sample_sum += est;
                        out.samples += 1;
                        out.peak = out.peak.max(est);
                    }
                };
                if let Some(pool) = pool_ref {
                    // Task-per-checkout loop: each slice of `handle_churn`
                    // operations models one short-lived task borrowing a
                    // pooled handle and parking it again. Trim mode keeps
                    // its semantics per slice — one reservation window,
                    // §3.3 trims between operations, a forced leave every
                    // `trim_window` — so the recorded `use_trim` provenance
                    // stays truthful under churn.
                    barrier_ref.wait();
                    while !stop_ref.load(Ordering::Relaxed) {
                        let mut h = pool.checkout();
                        if params.use_trim {
                            h.enter();
                        }
                        for _ in 0..params.handle_churn {
                            if stop_ref.load(Ordering::Relaxed) {
                                break;
                            }
                            if !params.use_trim {
                                h.enter();
                            }
                            one_op(&mut h, &mut out);
                            if params.use_trim {
                                if out.ops.is_multiple_of(params.trim_window) {
                                    h.leave();
                                    h.enter();
                                } else {
                                    h.trim();
                                }
                            } else {
                                h.leave();
                            }
                        }
                        if params.use_trim {
                            h.leave();
                        }
                    } // guard drop flushes + parks the handle
                    return out;
                }
                let mut h = premade_handle.expect("direct handle premade for non-churn mode");
                barrier_ref.wait();
                if params.use_trim {
                    h.enter();
                }
                while !stop_ref.load(Ordering::Relaxed) {
                    if !params.use_trim {
                        h.enter();
                    }
                    one_op(&mut h, &mut out);
                    if params.use_trim {
                        // §3.3: trim in lieu of leave+enter, with a bounded
                        // window forcing a real leave periodically.
                        if out.ops.is_multiple_of(params.trim_window) {
                            h.leave();
                            h.enter();
                        } else {
                            h.trim();
                        }
                    } else {
                        h.leave();
                    }
                }
                if params.use_trim {
                    h.leave();
                }
                h.flush();
                out
            }));
        }
        // Stalled threads: enter, run a handful of operations, then park
        // inside the operation until the run ends (Figure 10a's setup).
        let mut stalled = Vec::with_capacity(params.stalled);
        for t in 0..params.stalled {
            let params = params.clone();
            let mut h = premade_stalled.next().expect("one premade handle per stalled thread");
            stalled.push(scope.spawn(move || {
                let mut stream = OpStream::new(
                    params.mix,
                    params.key_range,
                    params.seed ^ trial ^ 0xDEAD,
                    (params.threads + t) as u64,
                );
                barrier_ref.wait();
                h.enter();
                for _ in 0..4 {
                    let (_, key) = stream.next_op();
                    map_ref.map_get(&mut h, key);
                }
                while !stop_ref.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(1));
                }
                h.leave();
            }));
        }

        barrier_ref.wait();
        let started = Instant::now();
        std::thread::sleep(Duration::from_secs_f64(params.secs));
        stop.store(true, Ordering::SeqCst);
        let elapsed = started.elapsed().as_secs_f64();

        let mut total_ops = 0u64;
        let mut sample_sum = 0u64;
        let mut samples = 0u64;
        let mut peak = 0u64;
        for w in workers {
            let out = w.join().expect("worker panicked");
            total_ops += out.ops;
            sample_sum += out.sample_sum;
            samples += out.samples;
            peak = peak.max(out.peak);
        }
        for s in stalled {
            s.join().expect("stalled thread panicked");
        }
        let _ = elapsed;
        (total_ops, sample_sum, samples, peak)
    });

    let stats = map.stats();
    RunResult {
        mops: total_ops as f64 / params.secs / 1e6,
        avg_unreclaimed: if samples == 0 {
            0.0
        } else {
            sample_sum as f64 / samples as f64
        },
        peak_unreclaimed: peak,
        ops: total_ops,
        retired: stats.retired(),
        freed: stats.freed(),
        pool_hits: stats.pool_hits(),
        pool_misses: stats.pool_misses(),
        recycled: stats.recycled(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyaline::Hyaline;
    use lockfree_ds::MichaelHashMap;
    use smr_baselines::Ebr;

    fn quick_params() -> BenchParams {
        BenchParams {
            threads: 2,
            secs: 0.05,
            prefill: 100,
            key_range: 200,
            config: SmrConfig {
                slots: 4,
                max_threads: 64,
                ..SmrConfig::default()
            },
            ..BenchParams::default()
        }
    }

    #[test]
    fn driver_produces_throughput() {
        let r = run_bench::<Hyaline<_>, MichaelHashMap<u64, u64, _>>(&quick_params());
        assert!(r.ops > 0, "no operations executed");
        assert!(r.mops > 0.0);
        // The high-water mark dominates the mean by construction.
        assert!(r.peak_unreclaimed as f64 >= r.avg_unreclaimed);
    }

    #[test]
    fn stalled_threads_inflate_unreclaimed_for_ebr() {
        let mut p = quick_params();
        p.mix = OpMix::WriteIntensive;
        // Aggressive epoch advancement and scanning keep the clean run's
        // steady-state limbo small, so the stalled reservation's unbounded
        // growth dominates the sampled average even on slow hosts.
        p.secs = 0.2;
        p.config.era_freq = 16;
        p.config.scan_threshold = 32;
        let clean = run_bench::<Ebr<_>, MichaelHashMap<u64, u64, _>>(&p);
        p.stalled = 1;
        let stalled = run_bench::<Ebr<_>, MichaelHashMap<u64, u64, _>>(&p);
        // Normalize the pinned average by each run's total retire volume:
        // absolute counts depend on how long the OS lets a preempted worker
        // sit inside an operation (pronounced on single-CPU hosts), but the
        // *fraction* of the run's garbage held back cleanly separates a
        // stalled reservation (which pins everything retired after it, so
        // the time-averaged fraction approaches 1/2) from transient
        // scheduling hiccups.
        assert!(
            stalled.retired > 100,
            "stalled run did too little work to be meaningful ({} retires)",
            stalled.retired
        );
        // `avg_unreclaimed` is averaged over trials while `retired` is
        // summed across them, so divide the volume back down to per-trial
        // before forming the fraction (a no-op at the current trials = 1).
        let per_trial = p.trials.max(1) as f64;
        let clean_frac = clean.avg_unreclaimed / (clean.retired.max(1) as f64 / per_trial);
        let stalled_frac =
            stalled.avg_unreclaimed / (stalled.retired.max(1) as f64 / per_trial);
        assert!(
            stalled_frac > 0.15 && clean_frac < stalled_frac / 2.0,
            "EBR with a stalled thread should pin a large fraction of all \
             retired nodes (clean {clean_frac:.3} of {}, stalled \
             {stalled_frac:.3} of {})",
            clean.retired,
            stalled.retired
        );
    }

    #[test]
    fn trim_mode_runs() {
        let mut p = quick_params();
        p.use_trim = true;
        let r = run_bench::<Hyaline<_>, MichaelHashMap<u64, u64, _>>(&p);
        assert!(r.ops > 0);
    }

    #[test]
    fn handle_churn_pools_more_tasks_than_registry_slots() {
        // 8 workers over a 2-handle registry: without the pool, EBR's
        // registry would panic on the third concurrent handle.
        let mut p = quick_params();
        p.threads = 8;
        p.handle_churn = 16;
        p.config.max_threads = 2;
        let r = run_bench::<Ebr<_>, MichaelHashMap<u64, u64, _>>(&p);
        assert!(r.ops > 0, "pooled workers did no work");
        // And the pooled path reclaims: retired nodes get freed.
        assert!(r.freed > 0, "no reclamation through pooled handles");
    }

    #[test]
    fn handle_churn_runs_on_sharded_domains() {
        use smr_core::Sharded;
        let mut p = quick_params();
        p.threads = 4;
        p.handle_churn = 8;
        p.config.max_threads = 2;
        p.config.shards = 2;
        p.config.slots = 8;
        let r = run_bench::<Sharded<Hyaline<_>>, MichaelHashMap<u64, u64, _>>(&p);
        assert!(r.ops > 0);
    }
}
