//! Workload definitions matching the paper's evaluation (Section 6).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One map operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Lookup.
    Get,
    /// Insert.
    Insert,
    /// Delete.
    Remove,
}

/// An operation mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpMix {
    /// The paper's write-intensive workload: 50% insert, 50% delete.
    WriteIntensive,
    /// The paper's read-mostly workload: 90% get, 10% put.
    ReadMostly,
}

impl OpMix {
    /// Short label used in figure headers.
    pub fn label(self) -> &'static str {
        match self {
            OpMix::WriteIntensive => "write-intensive (50% insert / 50% delete)",
            OpMix::ReadMostly => "read-mostly (90% get / 10% put)",
        }
    }

    /// Machine-friendly name used in results records and CLI flags.
    pub fn short_label(self) -> &'static str {
        match self {
            OpMix::WriteIntensive => "write-intensive",
            OpMix::ReadMostly => "read-mostly",
        }
    }

    /// Parses [`OpMix::short_label`] back (also accepts `write`/`read`).
    pub fn from_short_label(s: &str) -> Option<Self> {
        match s {
            "write-intensive" | "write" => Some(OpMix::WriteIntensive),
            "read-mostly" | "read" => Some(OpMix::ReadMostly),
            _ => None,
        }
    }
}

/// A per-thread deterministic operation stream.
///
/// Keys are drawn uniformly from `0..key_range` with equal probability,
/// exactly as in the paper ("the key used in each operation is randomly
/// chosen from the range of 0 to 100,000 with equal probability").
#[derive(Debug)]
pub struct OpStream {
    rng: SmallRng,
    mix: OpMix,
    key_range: u64,
}

impl OpStream {
    /// A stream for thread `thread_id` (per-thread deterministic seed).
    pub fn new(mix: OpMix, key_range: u64, seed: u64, thread_id: u64) -> Self {
        Self {
            rng: SmallRng::seed_from_u64(seed ^ thread_id.wrapping_mul(0x9E3779B97F4A7C15)),
            mix,
            key_range,
        }
    }

    /// The next `(operation, key)` pair.
    #[inline]
    pub fn next_op(&mut self) -> (Op, u64) {
        let key = self.rng.gen_range(0..self.key_range);
        let op = match self.mix {
            OpMix::WriteIntensive => {
                if self.rng.gen_bool(0.5) {
                    Op::Insert
                } else {
                    Op::Remove
                }
            }
            OpMix::ReadMostly => {
                if self.rng.gen_bool(0.9) {
                    Op::Get
                } else if self.rng.gen_bool(0.5) {
                    // The paper's "put" must churn memory for the Fig 12/16
                    // unreclaimed metric to be meaningful: a put that only
                    // inserts saturates the key range and then never retires
                    // anything. Split puts evenly between insert and remove,
                    // keeping the structure near half-full at steady state
                    // (the same effect as the framework's insert-or-replace).
                    Op::Insert
                } else {
                    Op::Remove
                }
            }
        };
        (op, key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_labels_round_trip() {
        for mix in [OpMix::WriteIntensive, OpMix::ReadMostly] {
            assert_eq!(OpMix::from_short_label(mix.short_label()), Some(mix));
        }
        assert_eq!(OpMix::from_short_label("write"), Some(OpMix::WriteIntensive));
        assert_eq!(OpMix::from_short_label("zipfian"), None);
    }

    #[test]
    fn keys_stay_in_range() {
        let mut s = OpStream::new(OpMix::WriteIntensive, 100, 42, 0);
        for _ in 0..1_000 {
            let (_, k) = s.next_op();
            assert!(k < 100);
        }
    }

    #[test]
    fn write_mix_is_roughly_half_inserts() {
        let mut s = OpStream::new(OpMix::WriteIntensive, 100, 7, 3);
        let inserts = (0..10_000)
            .filter(|_| matches!(s.next_op().0, Op::Insert))
            .count();
        assert!((4_000..6_000).contains(&inserts), "got {inserts}");
    }

    #[test]
    fn read_mix_is_roughly_ninety_percent_gets() {
        let mut s = OpStream::new(OpMix::ReadMostly, 100, 7, 3);
        let gets = (0..10_000)
            .filter(|_| matches!(s.next_op().0, Op::Get))
            .count();
        assert!((8_700..9_300).contains(&gets), "got {gets}");
    }

    #[test]
    fn streams_are_deterministic_per_thread() {
        let mut a = OpStream::new(OpMix::ReadMostly, 1_000, 1, 5);
        let mut b = OpStream::new(OpMix::ReadMostly, 1_000, 1, 5);
        for _ in 0..100 {
            assert_eq!(a.next_op(), b.next_op());
        }
        let mut c = OpStream::new(OpMix::ReadMostly, 1_000, 1, 6);
        let same = (0..100).filter(|_| a.next_op() == c.next_op()).count();
        assert!(same < 100, "different threads must diverge");
    }
}
