//! Persistent benchmark results: a dependency-free JSONL record format.
//!
//! Every measured run can be serialized as one JSON object per line (JSONL)
//! carrying the full configuration provenance — scheme, structure, operation
//! mix, every [`BenchParams`]/[`smr_core::SmrConfig`] field, the git
//! revision, the host core count, and a caller-supplied timestamp — plus the
//! [`RunResult`] metrics. Files accumulate across runs (`append`), so the
//! repository's `BENCH_sweep.jsonl` becomes a trajectory of the project's
//! performance over time, and `perfgate` (see [`crate::gate`]) can compare
//! any two snapshots.
//!
//! The build environment is offline (no serde), so the encoder and decoder
//! are hand-rolled here: the encoder emits one flat JSON object per record,
//! and the decoder is a minimal JSON parser that ignores unknown fields
//! (forward compatibility) and fails loudly on missing or ill-typed ones.

use std::fmt::Write as _;
use std::fs::OpenOptions;
use std::io::{BufRead, BufReader, Write as _};
use std::path::Path;

use crate::driver::{BenchParams, RunResult};

/// Version stamp written into every record (`"schema"` field).
///
/// Version 2 added `shards`, `handle_churn` and `routing`; version-1 lines
/// decode with the pre-sharding defaults (`shards = 1`, `handle_churn = 0`,
/// `routing = "by-key"`). Version 3 added `connections` (the async
/// `kv-service` sweep's simulated-connection count); earlier lines decode
/// with `connections = 0`, i.e. "not a connection-driven run". Version 4
/// added `handoff_attempts` (the Crystalline wait-free handoff threshold);
/// earlier lines decode with the config default of `8`, which is what every
/// pre-Crystalline run implicitly carried. Version 5 added the node-recycling
/// knobs (`recycle`, `recycle_capacity`, `recycle_magazine`) and pool metrics
/// (`pool_hits`, `pool_misses`, `recycled`); earlier lines decode with
/// recycling off (`recycle = false`, the knob defaults of `8192`/`64`, zero
/// pool counters) — exactly what every pre-recycling run measured.
pub const SCHEMA_VERSION: u64 = 5;

/// One benchmark measurement with full configuration provenance.
///
/// The struct is flat so that encode→decode equality is a plain field-wise
/// comparison; [`BenchRecord::from_run`] flattens [`BenchParams`] (and the
/// embedded [`smr_core::SmrConfig`]) into it.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Format version ([`SCHEMA_VERSION`] at write time).
    pub schema: u64,
    /// Which figure/sweep produced the record (e.g. `Fig 8c`, `thread-scaling`).
    pub figure: String,
    /// Scheme series name (e.g. `Hyaline-S-adaptive`).
    pub scheme: String,
    /// Structure name (e.g. `hashmap`).
    pub structure: String,
    /// Operation mix short label (e.g. `write-intensive`).
    pub mix: String,
    /// Active worker threads.
    pub threads: u64,
    /// Stalled threads parked inside an operation.
    pub stalled: u64,
    /// Measured seconds per trial.
    pub secs: f64,
    /// Trials averaged into the result.
    pub trials: u64,
    /// Elements prefilled.
    pub prefill: u64,
    /// Key range.
    pub key_range: u64,
    /// Unreclaimed-count sampling period (operations).
    pub sample_every: u64,
    /// Whether §3.3 `trim` drove the operations.
    pub use_trim: bool,
    /// Operations between forced leaves when trimming.
    pub trim_window: u64,
    /// RNG seed.
    pub seed: u64,
    /// Hyaline slot count (`k`).
    pub slots: u64,
    /// Minimum local batch size.
    pub batch_min: u64,
    /// Era/epoch advance frequency.
    pub era_freq: u64,
    /// Reclamation-scan threshold of the scan-based schemes.
    pub scan_threshold: u64,
    /// Protection indices per thread (HP/HE).
    pub max_protect: u64,
    /// Hyaline-S stall-detection threshold.
    pub ack_threshold: i64,
    /// §4.3 adaptive slot resizing enabled.
    pub adaptive: bool,
    /// Thread-registry capacity.
    pub max_threads: u64,
    /// Shard count *as configured* (`1` = unsharded). Recorded verbatim
    /// from the run's `SmrConfig`: plain schemes ignore the knob, but the
    /// gate keys on the full configuration, so a sweep that sets `--shards`
    /// stamps every record it produces.
    pub shards: u64,
    /// Operations per pooled-handle checkout (`0` = one handle per thread
    /// for the whole run).
    pub handle_churn: u64,
    /// Shard routing mode as configured (`"by-key"` / `"by-pointer"`;
    /// meaningful only to `Sharded-*` schemes, recorded verbatim).
    pub routing: String,
    /// Crystalline wait-free handoff threshold as configured (CAS attempts
    /// per slot before retiring through the handoff cell; other schemes
    /// ignore the knob, recorded verbatim).
    pub handoff_attempts: u64,
    /// Node recycling enabled ([`smr_core::SmrConfig::recycle`]).
    pub recycle: bool,
    /// Recycle-pool capacity as configured (recorded verbatim; meaningless
    /// when `recycle` is false).
    pub recycle_capacity: u64,
    /// Recycle-magazine capacity as configured (recorded verbatim).
    pub recycle_magazine: u64,
    /// Simulated connections of an async-service run (`0` = the run was
    /// thread-driven, not connection-driven).
    pub connections: u64,
    /// Git revision the binary was built from, if discoverable.
    pub git_sha: Option<String>,
    /// `available_parallelism` of the measuring host.
    pub host_cores: u64,
    /// Caller-supplied wall-clock stamp (the module never reads clocks).
    pub timestamp: String,
    /// Throughput, million operations per second.
    pub mops: f64,
    /// Average retired-but-unreclaimed objects per sample point.
    pub avg_unreclaimed: f64,
    /// Total operations executed.
    pub ops: u64,
    /// Nodes retired during the measured phase.
    pub retired: u64,
    /// Nodes freed during the measured phase.
    pub freed: u64,
    /// Allocations served from the recycle pool (zero when recycling off).
    pub pool_hits: u64,
    /// Allocations that fell through to the global allocator while
    /// recycling was enabled (zero when recycling off).
    pub pool_misses: u64,
    /// Reclaimed nodes routed back to the recycle pool (zero when off).
    pub recycled: u64,
}

/// Host/build provenance shared by every record of one process run.
#[derive(Debug, Clone, PartialEq)]
pub struct Provenance {
    /// Git revision, if the binary runs inside a repository.
    pub git_sha: Option<String>,
    /// `available_parallelism` of the host.
    pub host_cores: u64,
    /// Wall-clock stamp chosen by the caller (e.g. unix seconds).
    pub timestamp: String,
}

impl Provenance {
    /// Detects the git revision and core count; the timestamp is passed in
    /// by the caller so the results module itself stays clock-free.
    pub fn detect(timestamp: impl Into<String>) -> Self {
        let git_sha = std::process::Command::new("git")
            .args(["rev-parse", "--short=12", "HEAD"])
            .output()
            .ok()
            .filter(|o| o.status.success())
            .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
            .filter(|s| !s.is_empty());
        let host_cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1) as u64;
        Self {
            git_sha,
            host_cores,
            timestamp: timestamp.into(),
        }
    }
}

/// Current wall clock as unix seconds, stringified — a convenience for the
/// binaries that construct a [`Provenance`]; the encoder/decoder and
/// [`Provenance::detect`] never read clocks themselves.
pub fn wall_clock_timestamp() -> String {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs().to_string())
        .unwrap_or_default()
}

impl BenchRecord {
    /// Builds a record from one measured run, flattening the parameters.
    pub fn from_run(
        figure: &str,
        scheme: &str,
        structure: &str,
        params: &BenchParams,
        result: &RunResult,
        prov: &Provenance,
    ) -> Self {
        Self {
            schema: SCHEMA_VERSION,
            figure: figure.to_string(),
            scheme: scheme.to_string(),
            structure: structure.to_string(),
            mix: params.mix.short_label().to_string(),
            threads: params.threads as u64,
            stalled: params.stalled as u64,
            secs: params.secs,
            trials: params.trials as u64,
            prefill: params.prefill as u64,
            key_range: params.key_range,
            sample_every: params.sample_every,
            use_trim: params.use_trim,
            trim_window: params.trim_window,
            seed: params.seed,
            slots: params.config.slots as u64,
            batch_min: params.config.batch_min as u64,
            era_freq: params.config.era_freq,
            scan_threshold: params.config.scan_threshold as u64,
            max_protect: params.config.max_protect as u64,
            ack_threshold: params.config.ack_threshold,
            adaptive: params.config.adaptive,
            max_threads: params.config.max_threads as u64,
            shards: params.config.shards as u64,
            handle_churn: params.handle_churn,
            routing: params.config.routing.short_label().to_string(),
            handoff_attempts: params.config.handoff_attempts as u64,
            recycle: params.config.recycle,
            recycle_capacity: params.config.recycle_capacity as u64,
            recycle_magazine: params.config.recycle_magazine as u64,
            connections: params.connections,
            git_sha: prov.git_sha.clone(),
            host_cores: prov.host_cores,
            timestamp: prov.timestamp.clone(),
            mops: result.mops,
            avg_unreclaimed: result.avg_unreclaimed,
            ops: result.ops,
            retired: result.retired,
            freed: result.freed,
            pool_hits: result.pool_hits,
            pool_misses: result.pool_misses,
            recycled: result.recycled,
        }
    }

    /// Serializes the record as one JSON object (no trailing newline).
    pub fn encode(&self) -> String {
        let mut s = String::with_capacity(512);
        s.push('{');
        push_u64(&mut s, "schema", self.schema);
        push_str(&mut s, "figure", &self.figure);
        push_str(&mut s, "scheme", &self.scheme);
        push_str(&mut s, "structure", &self.structure);
        push_str(&mut s, "mix", &self.mix);
        push_u64(&mut s, "threads", self.threads);
        push_u64(&mut s, "stalled", self.stalled);
        push_f64(&mut s, "secs", self.secs);
        push_u64(&mut s, "trials", self.trials);
        push_u64(&mut s, "prefill", self.prefill);
        push_u64(&mut s, "key_range", self.key_range);
        push_u64(&mut s, "sample_every", self.sample_every);
        push_bool(&mut s, "use_trim", self.use_trim);
        push_u64(&mut s, "trim_window", self.trim_window);
        push_u64(&mut s, "seed", self.seed);
        push_u64(&mut s, "slots", self.slots);
        push_u64(&mut s, "batch_min", self.batch_min);
        push_u64(&mut s, "era_freq", self.era_freq);
        push_u64(&mut s, "scan_threshold", self.scan_threshold);
        push_u64(&mut s, "max_protect", self.max_protect);
        push_i64(&mut s, "ack_threshold", self.ack_threshold);
        push_bool(&mut s, "adaptive", self.adaptive);
        push_u64(&mut s, "max_threads", self.max_threads);
        push_u64(&mut s, "shards", self.shards);
        push_u64(&mut s, "handle_churn", self.handle_churn);
        push_str(&mut s, "routing", &self.routing);
        push_u64(&mut s, "handoff_attempts", self.handoff_attempts);
        push_bool(&mut s, "recycle", self.recycle);
        push_u64(&mut s, "recycle_capacity", self.recycle_capacity);
        push_u64(&mut s, "recycle_magazine", self.recycle_magazine);
        push_u64(&mut s, "connections", self.connections);
        match &self.git_sha {
            Some(sha) => push_str(&mut s, "git_sha", sha),
            None => push_null(&mut s, "git_sha"),
        }
        push_u64(&mut s, "host_cores", self.host_cores);
        push_str(&mut s, "timestamp", &self.timestamp);
        push_f64(&mut s, "mops", self.mops);
        push_f64(&mut s, "avg_unreclaimed", self.avg_unreclaimed);
        push_u64(&mut s, "ops", self.ops);
        push_u64(&mut s, "retired", self.retired);
        push_u64(&mut s, "freed", self.freed);
        push_u64(&mut s, "pool_hits", self.pool_hits);
        push_u64(&mut s, "pool_misses", self.pool_misses);
        push_u64(&mut s, "recycled", self.recycled);
        s.pop(); // trailing comma
        s.push('}');
        s
    }

    /// Parses one JSONL line back into a record.
    ///
    /// Unknown fields are ignored; missing or ill-typed required fields are
    /// an error naming the field.
    pub fn decode(line: &str) -> Result<Self, String> {
        let value = parse_json(line)?;
        let obj = match value {
            Json::Obj(fields) => fields,
            other => return Err(format!("expected a JSON object, got {other:?}")),
        };
        let get = |name: &str| -> Result<&Json, String> {
            obj.iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing field `{name}`"))
        };
        let get_u64 = |name: &str| get(name).and_then(|v| v.as_u64(name));
        let get_i64 = |name: &str| get(name).and_then(|v| v.as_i64(name));
        let get_f64 = |name: &str| get(name).and_then(|v| v.as_f64(name));
        let get_str = |name: &str| get(name).and_then(|v| v.as_str(name));
        let get_bool = |name: &str| get(name).and_then(|v| v.as_bool(name));
        // Fields added after schema 1 fall back to their historical
        // implicit values so old baselines keep decoding.
        let get_u64_or = |name: &str, default: u64| match get(name) {
            Ok(v) => v.as_u64(name),
            Err(_) => Ok(default),
        };
        let get_str_or = |name: &str, default: &str| match get(name) {
            Ok(v) => v.as_str(name),
            Err(_) => Ok(default.to_string()),
        };
        let get_bool_or = |name: &str, default: bool| match get(name) {
            Ok(v) => v.as_bool(name),
            Err(_) => Ok(default),
        };
        let git_sha = match get("git_sha")? {
            Json::Null => None,
            v => Some(v.as_str("git_sha")?),
        };
        Ok(Self {
            schema: get_u64("schema")?,
            figure: get_str("figure")?,
            scheme: get_str("scheme")?,
            structure: get_str("structure")?,
            mix: get_str("mix")?,
            threads: get_u64("threads")?,
            stalled: get_u64("stalled")?,
            secs: get_f64("secs")?,
            trials: get_u64("trials")?,
            prefill: get_u64("prefill")?,
            key_range: get_u64("key_range")?,
            sample_every: get_u64("sample_every")?,
            use_trim: get_bool("use_trim")?,
            trim_window: get_u64("trim_window")?,
            seed: get_u64("seed")?,
            slots: get_u64("slots")?,
            batch_min: get_u64("batch_min")?,
            era_freq: get_u64("era_freq")?,
            scan_threshold: get_u64("scan_threshold")?,
            max_protect: get_u64("max_protect")?,
            ack_threshold: get_i64("ack_threshold")?,
            adaptive: get_bool("adaptive")?,
            max_threads: get_u64("max_threads")?,
            shards: get_u64_or("shards", 1)?,
            handle_churn: get_u64_or("handle_churn", 0)?,
            routing: get_str_or("routing", "by-key")?,
            handoff_attempts: get_u64_or("handoff_attempts", 8)?,
            recycle: get_bool_or("recycle", false)?,
            recycle_capacity: get_u64_or("recycle_capacity", 8192)?,
            recycle_magazine: get_u64_or("recycle_magazine", 64)?,
            connections: get_u64_or("connections", 0)?,
            git_sha,
            host_cores: get_u64("host_cores")?,
            timestamp: get_str("timestamp")?,
            mops: get_f64("mops")?,
            avg_unreclaimed: get_f64("avg_unreclaimed")?,
            ops: get_u64("ops")?,
            retired: get_u64("retired")?,
            freed: get_u64("freed")?,
            pool_hits: get_u64_or("pool_hits", 0)?,
            pool_misses: get_u64_or("pool_misses", 0)?,
            recycled: get_u64_or("recycled", 0)?,
        })
    }
}

fn push_key(s: &mut String, key: &str) {
    push_json_string(s, key);
    s.push(':');
}

fn push_str(s: &mut String, key: &str, v: &str) {
    push_key(s, key);
    push_json_string(s, v);
    s.push(',');
}

fn push_u64(s: &mut String, key: &str, v: u64) {
    push_key(s, key);
    let _ = write!(s, "{v},");
}

fn push_i64(s: &mut String, key: &str, v: i64) {
    push_key(s, key);
    let _ = write!(s, "{v},");
}

fn push_f64(s: &mut String, key: &str, v: f64) {
    push_key(s, key);
    // Rust's `Display` for f64 is the shortest representation that parses
    // back to the same bits, so finite floats round-trip exactly. JSON has
    // no NaN/infinity; they are coerced to 0 (benchmark metrics are always
    // finite — durations are positive and counters are integers).
    let v = if v.is_finite() { v } else { 0.0 };
    let _ = write!(s, "{v},");
}

fn push_bool(s: &mut String, key: &str, v: bool) {
    push_key(s, key);
    let _ = write!(s, "{v},");
}

fn push_null(s: &mut String, key: &str) {
    push_key(s, key);
    s.push_str("null,");
}

fn push_json_string(s: &mut String, v: &str) {
    s.push('"');
    for c in v.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(s, "\\u{:04x}", c as u32);
            }
            c => s.push(c),
        }
    }
    s.push('"');
}

/// A parsed JSON value (decoder side).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    /// Numbers keep their source text so u64/i64/f64 can each parse it
    /// at full precision (2^64-1 does not fit in an f64).
    Num(String),
    Str(String),
    #[allow(dead_code)]
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn as_u64(&self, name: &str) -> Result<u64, String> {
        match self {
            Json::Num(n) => n
                .parse()
                .map_err(|_| format!("field `{name}`: `{n}` is not a u64")),
            other => Err(format!("field `{name}`: expected a number, got {other:?}")),
        }
    }

    fn as_i64(&self, name: &str) -> Result<i64, String> {
        match self {
            Json::Num(n) => n
                .parse()
                .map_err(|_| format!("field `{name}`: `{n}` is not an i64")),
            other => Err(format!("field `{name}`: expected a number, got {other:?}")),
        }
    }

    fn as_f64(&self, name: &str) -> Result<f64, String> {
        match self {
            Json::Num(n) => n
                .parse()
                .map_err(|_| format!("field `{name}`: `{n}` is not an f64")),
            other => Err(format!("field `{name}`: expected a number, got {other:?}")),
        }
    }

    fn as_str(&self, name: &str) -> Result<String, String> {
        match self {
            Json::Str(s) => Ok(s.clone()),
            other => Err(format!("field `{name}`: expected a string, got {other:?}")),
        }
    }

    fn as_bool(&self, name: &str) -> Result<bool, String> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => Err(format!("field `{name}`: expected a bool, got {other:?}")),
        }
    }
}

/// Parses one complete JSON value (trailing content is an error).
fn parse_json(s: &str) -> Result<Json, String> {
    let mut p = Parser {
        chars: s.chars().collect(),
        i: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.i != p.chars.len() {
        return Err(format!("trailing characters at offset {}", p.i));
    }
    Ok(v)
}

struct Parser {
    chars: Vec<char>,
    i: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.i).copied()
    }

    fn next(&mut self) -> Result<char, String> {
        let c = self.peek().ok_or("unexpected end of input")?;
        self.i += 1;
        Ok(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.i += 1;
        }
    }

    fn expect(&mut self, want: char) -> Result<(), String> {
        let got = self.next()?;
        if got == want {
            Ok(())
        } else {
            Err(format!("expected `{want}`, got `{got}` at offset {}", self.i))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        for want in word.chars() {
            self.expect(want)?;
        }
        Ok(value)
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek().ok_or("unexpected end of input")? {
            '{' => self.object(),
            '[' => self.array(),
            '"' => Ok(Json::Str(self.string()?)),
            't' => self.literal("true", Json::Bool(true)),
            'f' => self.literal("false", Json::Bool(false)),
            'n' => self.literal("null", Json::Null),
            '-' | '0'..='9' => self.number(),
            c => Err(format!("unexpected character `{c}` at offset {}", self.i)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect('{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.i += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.next()? {
                ',' => continue,
                '}' => return Ok(Json::Obj(fields)),
                c => return Err(format!("expected `,` or `}}`, got `{c}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.next()? {
                ',' => continue,
                ']' => return Ok(Json::Arr(items)),
                c => return Err(format!("expected `,` or `]`, got `{c}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.next()? {
                '"' => return Ok(out),
                '\\' => match self.next()? {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    '/' => out.push('/'),
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    'b' => out.push('\u{0008}'),
                    'f' => out.push('\u{000C}'),
                    'u' => {
                        let first = self.hex4()?;
                        let code = if (0xD800..0xDC00).contains(&first) {
                            // Surrogate pair: \uD8xx must be followed by \uDCxx.
                            self.expect('\\')?;
                            self.expect('u')?;
                            let second = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&second) {
                                return Err("invalid low surrogate".into());
                            }
                            0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                        } else {
                            first
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| format!("invalid codepoint {code:#x}"))?,
                        );
                    }
                    c => return Err(format!("invalid escape `\\{c}`")),
                },
                c => out.push(c),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self.next()?;
            v = v * 16
                + c.to_digit(16)
                    .ok_or_else(|| format!("invalid hex digit `{c}`"))?;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.peek() == Some('-') {
            self.i += 1;
        }
        while matches!(self.peek(), Some('0'..='9' | '.' | 'e' | 'E' | '+' | '-')) {
            self.i += 1;
        }
        let text: String = self.chars[start..self.i].iter().collect();
        // Validate now so ill-formed numbers fail at parse time, not at
        // field-extraction time.
        text.parse::<f64>()
            .map_err(|_| format!("invalid number `{text}`"))?;
        Ok(Json::Num(text))
    }
}

/// Accumulates records during a run, stamped with shared [`Provenance`].
#[derive(Debug)]
pub struct ResultSink {
    provenance: Provenance,
    records: Vec<BenchRecord>,
}

impl ResultSink {
    /// An empty sink stamping every record with `provenance`.
    pub fn new(provenance: Provenance) -> Self {
        Self {
            provenance,
            records: Vec::new(),
        }
    }

    /// Records one measured run.
    pub fn record(
        &mut self,
        figure: &str,
        scheme: &str,
        structure: &str,
        params: &BenchParams,
        result: &RunResult,
    ) {
        self.records.push(BenchRecord::from_run(
            figure,
            scheme,
            structure,
            params,
            result,
            &self.provenance,
        ));
    }

    /// The records accumulated so far.
    pub fn records(&self) -> &[BenchRecord] {
        &self.records
    }

    /// Appends all accumulated records to a JSONL file (creating it if
    /// needed) and returns how many were written.
    pub fn append_to(&self, path: &Path) -> std::io::Result<usize> {
        append_records(path, &self.records)?;
        Ok(self.records.len())
    }
}

/// Appends records to a JSONL file, creating it if absent.
pub fn append_records(path: &Path, records: &[BenchRecord]) -> std::io::Result<()> {
    let mut file = OpenOptions::new().create(true).append(true).open(path)?;
    let mut buf = String::new();
    for r in records {
        buf.push_str(&r.encode());
        buf.push('\n');
    }
    file.write_all(buf.as_bytes())
}

/// Reads every record of a JSONL file. Blank lines are skipped; a malformed
/// line is an error naming its line number.
pub fn read_records(path: &Path) -> Result<Vec<BenchRecord>, String> {
    let file = std::fs::File::open(path)
        .map_err(|e| format!("cannot open {}: {e}", path.display()))?;
    let mut records = Vec::new();
    for (idx, line) in BufReader::new(file).lines().enumerate() {
        let line = line.map_err(|e| format!("{}:{}: {e}", path.display(), idx + 1))?;
        if line.trim().is_empty() {
            continue;
        }
        let record = BenchRecord::decode(&line)
            .map_err(|e| format!("{}:{}: {e}", path.display(), idx + 1))?;
        records.push(record);
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::OpMix;

    pub(crate) fn sample_record() -> BenchRecord {
        let params = BenchParams {
            threads: 8,
            stalled: 2,
            mix: OpMix::ReadMostly,
            ..BenchParams::default()
        };
        let result = RunResult {
            mops: 12.625,
            avg_unreclaimed: 130.5,
            ops: 123_456,
            retired: 100,
            freed: 90,
            ..RunResult::default()
        };
        let prov = Provenance {
            git_sha: Some("abc123def456".into()),
            host_cores: 8,
            timestamp: "1722280000".into(),
        };
        BenchRecord::from_run("Fig 8c", "Hyaline-S", "hashmap", &params, &result, &prov)
    }

    #[test]
    fn encode_decode_round_trips() {
        let r = sample_record();
        let line = r.encode();
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(!line.contains('\n'));
        let back = BenchRecord::decode(&line).expect("decodes");
        assert_eq!(back, r);
    }

    #[test]
    fn none_git_sha_round_trips() {
        let mut r = sample_record();
        r.git_sha = None;
        let back = BenchRecord::decode(&r.encode()).unwrap();
        assert_eq!(back.git_sha, None);
        assert_eq!(back, r);
    }

    #[test]
    fn strings_with_specials_round_trip() {
        let mut r = sample_record();
        r.scheme = "weird \"scheme\", with\\slashes\nand\ttabs \u{1F600}".into();
        r.figure = "控制\u{0001}chars".into();
        let back = BenchRecord::decode(&r.encode()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn extreme_integers_round_trip() {
        let mut r = sample_record();
        r.seed = u64::MAX;
        r.ops = u64::MAX - 1;
        r.ack_threshold = i64::MIN;
        let back = BenchRecord::decode(&r.encode()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn unknown_fields_ignored_missing_fields_fail() {
        let mut line = sample_record().encode();
        line.insert_str(1, "\"future_field\":[1,{\"x\":null}],");
        assert!(BenchRecord::decode(&line).is_ok());
        let err = BenchRecord::decode("{\"schema\":1}").unwrap_err();
        assert!(err.contains("missing field"), "{err}");
    }

    #[test]
    fn schema_one_lines_decode_with_presharding_defaults() {
        // A record written before `shards`/`handle_churn` existed (as in
        // the committed seed baseline) must decode with the implicit
        // single-shard, no-churn values.
        let mut line = sample_record().encode();
        line = line
            .replace("\"shards\":1,", "")
            .replace("\"handle_churn\":0,", "")
            .replace("\"routing\":\"by-key\",", "");
        assert!(!line.contains("shards"));
        let back = BenchRecord::decode(&line).expect("schema-1 line decodes");
        assert_eq!(back.shards, 1);
        assert_eq!(back.handle_churn, 0);
        assert_eq!(back.routing, "by-key");
    }

    #[test]
    fn schema_two_lines_decode_with_zero_connections() {
        // A record written before `connections` existed (the committed v2
        // baselines) must decode as a thread-driven run.
        let mut line = sample_record().encode();
        line = line.replace("\"connections\":0,", "");
        assert!(!line.contains("connections"));
        let back = BenchRecord::decode(&line).expect("schema-2 line decodes");
        assert_eq!(back.connections, 0);
    }

    #[test]
    fn schema_three_lines_decode_with_default_handoff_attempts() {
        // A record written before `handoff_attempts` existed (the committed
        // v3 baselines) must decode with the config default of 8 — the
        // value every pre-Crystalline run implicitly carried, so old
        // baseline lines keep matching new measurements of the same combo.
        let mut line = sample_record().encode();
        line = line.replace("\"handoff_attempts\":8,", "");
        assert!(!line.contains("handoff_attempts"));
        let back = BenchRecord::decode(&line).expect("schema-3 line decodes");
        assert_eq!(back.handoff_attempts, 8);
    }

    #[test]
    fn schema_four_lines_decode_with_recycling_off() {
        // A record written before the recycling fields existed (the
        // committed v4 baselines) must decode as a run with recycling off
        // and the knob defaults — the configuration every pre-recycling
        // run implicitly carried — and zero pool counters.
        let mut line = sample_record().encode();
        line = line
            .replace("\"recycle\":false,", "")
            .replace("\"recycle_capacity\":8192,", "")
            .replace("\"recycle_magazine\":64,", "")
            .replace("\"pool_hits\":0,", "")
            .replace("\"pool_misses\":0,", "")
            // `recycled` is the final field, so it carries no trailing comma.
            .replace(",\"recycled\":0}", "}");
        assert!(!line.contains("recycle"));
        let back = BenchRecord::decode(&line).expect("schema-4 line decodes");
        assert!(!back.recycle);
        assert_eq!(back.recycle_capacity, 8192);
        assert_eq!(back.recycle_magazine, 64);
        assert_eq!(back.pool_hits, 0);
        assert_eq!(back.pool_misses, 0);
        assert_eq!(back.recycled, 0);
    }

    #[test]
    fn malformed_lines_rejected() {
        assert!(BenchRecord::decode("not json").is_err());
        assert!(BenchRecord::decode("{\"schema\":}").is_err());
        assert!(BenchRecord::decode("[1,2]").is_err());
        let trailing = format!("{} extra", sample_record().encode());
        assert!(BenchRecord::decode(&trailing).is_err());
    }

    #[test]
    fn surrogate_pair_escapes_decode() {
        let v = parse_json("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v, Json::Str("\u{1F600}".to_string()));
        assert!(parse_json("\"\\ud83d\"").is_err());
    }

    #[test]
    fn jsonl_file_append_and_read() {
        let dir = std::env::temp_dir().join(format!("hyaline-results-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_test.jsonl");
        let _ = std::fs::remove_file(&path);
        let mut sink = ResultSink::new(Provenance {
            git_sha: None,
            host_cores: 4,
            timestamp: "0".into(),
        });
        let r = sample_record();
        sink.record("f", "s", "d", &BenchParams::default(), &RunResult::default());
        assert_eq!(sink.records().len(), 1);
        sink.append_to(&path).unwrap();
        append_records(&path, std::slice::from_ref(&r)).unwrap();
        let back = read_records(&path).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[1], r);
        let _ = std::fs::remove_file(&path);
    }
}
