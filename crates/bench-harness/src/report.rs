//! Table rendering: each figure is regenerated as an aligned text table
//! with one row per x-axis point and one column per scheme, mirroring the
//! series of the paper's plots.

use std::fmt;

/// A rendered figure: rows of `(x, values-per-scheme)`.
#[derive(Debug, Clone)]
pub struct FigureTable {
    /// Figure id and description, e.g. `Fig 8c — Michael hash map, ...`.
    pub title: String,
    /// X-axis label (e.g. `threads`, `stalled`).
    pub x_label: String,
    /// Metric label (e.g. `Mops/s`, `unreclaimed/op`).
    pub metric: String,
    /// Scheme (column) names.
    pub schemes: Vec<String>,
    /// `(x, one value per scheme; None = combination unsupported)`.
    pub rows: Vec<(usize, Vec<Option<f64>>)>,
}

impl FigureTable {
    /// Creates an empty table.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        metric: impl Into<String>,
        schemes: &[&str],
    ) -> Self {
        Self {
            title: title.into(),
            x_label: x_label.into(),
            metric: metric.into(),
            schemes: schemes.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, x: usize, values: Vec<Option<f64>>) {
        assert_eq!(values.len(), self.schemes.len());
        self.rows.push((x, values));
    }

    /// The value for `(x, scheme)`, if present.
    pub fn value(&self, x: usize, scheme: &str) -> Option<f64> {
        let col = self.schemes.iter().position(|s| s == scheme)?;
        self.rows
            .iter()
            .find(|(row_x, _)| *row_x == x)
            .and_then(|(_, vals)| vals[col])
    }

    /// Renders the table as CSV (for downstream plotting). Header fields
    /// containing commas, quotes, or newlines are quoted per RFC 4180.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&csv_field(&self.x_label));
        for s in &self.schemes {
            out.push(',');
            out.push_str(&csv_field(s));
        }
        out.push('\n');
        for (x, vals) in &self.rows {
            out.push_str(&x.to_string());
            for v in vals {
                out.push(',');
                match v {
                    Some(v) => out.push_str(&format!("{v:.6}")),
                    None => out.push_str("NA"),
                }
            }
            out.push('\n');
        }
        out
    }
}

/// Quotes a CSV field if it contains a comma, quote, or line break
/// (doubling embedded quotes, per RFC 4180).
fn csv_field(s: &str) -> String {
    if s.contains(['"', ',', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

impl fmt::Display for FigureTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# {} [{}]", self.title, self.metric)?;
        // Columns must fit the longest scheme name (series like
        // `Hyaline-S-adaptive` exceed any fixed width) plus a two-space
        // gutter; 11 keeps short-named tables visually identical to the
        // historical fixed-width rendering.
        let width = self
            .schemes
            .iter()
            .map(|s| s.len() + 2)
            .max()
            .unwrap_or(0)
            .max(11);
        let x_width = self.x_label.len().max(10);
        write!(f, "{:<x_width$}", self.x_label)?;
        for s in &self.schemes {
            write!(f, "{s:>width$}")?;
        }
        writeln!(f)?;
        for (x, vals) in &self.rows {
            write!(f, "{x:<x_width$}")?;
            for v in vals {
                match v {
                    Some(v) if *v >= 1000.0 => write!(f, "{v:>width$.1}")?,
                    Some(v) => write!(f, "{v:>width$.4}")?,
                    None => write!(f, "{:>width$}", "-")?,
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FigureTable {
        let mut t = FigureTable::new("Fig X", "threads", "Mops/s", &["A", "B"]);
        t.push_row(1, vec![Some(1.5), None]);
        t.push_row(2, vec![Some(3.0), Some(2.25)]);
        t
    }

    #[test]
    fn lookup_by_scheme() {
        let t = sample();
        assert_eq!(t.value(2, "B"), Some(2.25));
        assert_eq!(t.value(1, "B"), None);
        assert_eq!(t.value(9, "A"), None);
    }

    #[test]
    fn renders_na_for_unsupported() {
        let t = sample();
        let text = t.to_string();
        assert!(text.contains("Fig X"));
        assert!(text.contains('-'));
        let csv = t.to_csv();
        assert!(csv.starts_with("threads,A,B"));
        assert!(csv.contains("NA"));
    }

    #[test]
    #[should_panic]
    fn row_arity_checked() {
        let mut t = sample();
        t.push_row(3, vec![Some(1.0)]);
    }

    #[test]
    fn long_scheme_names_keep_columns_aligned() {
        let mut t = FigureTable::new(
            "Fig 10a",
            "stalled",
            "unreclaimed",
            &["HP", "Hyaline-S-adaptive"],
        );
        t.push_row(0, vec![Some(1.0), Some(2.0)]);
        t.push_row(12, vec![Some(12345.6789), None]);
        let text = t.to_string();
        let lines: Vec<&str> = text.lines().skip(1).collect();
        assert!(lines.len() >= 3);
        // Header and every row must have identical rendered widths, and
        // each column must end at the same offset in every line.
        let widths: Vec<usize> = lines.iter().map(|l| l.chars().count()).collect();
        assert!(
            widths.windows(2).all(|w| w[0] == w[1]),
            "ragged columns: {widths:?}\n{text}"
        );
        assert!(lines[0].ends_with("Hyaline-S-adaptive"));
    }

    #[test]
    fn csv_quotes_fields_with_commas_and_quotes() {
        let mut t = FigureTable::new(
            "Fig X",
            "threads, active",
            "Mops/s",
            &["Hyaline (trim)", "say \"hi\",ok"],
        );
        t.push_row(1, vec![Some(1.0), Some(2.0)]);
        let csv = t.to_csv();
        let header = csv.lines().next().unwrap();
        assert_eq!(
            header,
            "\"threads, active\",Hyaline (trim),\"say \"\"hi\"\",ok\""
        );
        // Data rows keep exactly one field per scheme plus the x column.
        assert_eq!(csv.lines().nth(1).unwrap(), "1,1.000000,2.000000");
    }
}
