//! Runs configurable figure sweeps and appends JSONL records per run.
//!
//! ```text
//! cargo run --release -p bench-harness --bin sweep -- \
//!     [--out BENCH_sweep.jsonl] \
//!     [--sweeps thread-scaling,oversubscription,robustness] \
//!     [--structures hashmap,list | all] [--schemes Hyaline,Epoch,...] \
//!     [--mix write-intensive|read-mostly] \
//!     [--secs S] [--trials N] [--threads 1,2,...] [--stalled 0,1,...] ...
//! ```
//!
//! Each measured `(scheme, structure, threads[, stalled])` point appends
//! one [`bench_harness::BenchRecord`] — full `BenchParams`/`SmrConfig`
//! provenance plus git sha, host cores, and timestamp — to the output file,
//! building the repository's performance trajectory over time. The rendered
//! figure tables still go to stdout, from the *same* runs. Compare two
//! snapshots with the `perfgate` binary.

use bench_harness::cli::{cli_args, BenchScale};
use bench_harness::figures::{robustness_figure_recorded, throughput_figures_recorded};
use bench_harness::registry::{ALL_SCHEMES, FIGURE_SCHEMES, STRUCTURES};
use bench_harness::results::{wall_clock_timestamp, Provenance, ResultSink};
use bench_harness::workload::OpMix;
use std::path::PathBuf;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Sweep {
    ThreadScaling,
    Oversubscription,
    Robustness,
    /// Task-per-core pattern: workers far outnumber the registry budget and
    /// draw handles from a shared pool every few operations.
    HandleChurn,
}

impl Sweep {
    fn parse(s: &str) -> Option<Self> {
        match s {
            "thread-scaling" => Some(Self::ThreadScaling),
            "oversubscription" => Some(Self::Oversubscription),
            "robustness" => Some(Self::Robustness),
            "handle-churn" => Some(Self::HandleChurn),
            _ => None,
        }
    }
}

fn usage_error(msg: &str) -> ! {
    eprintln!("sweep: error: {msg}");
    eprintln!(
        "usage: sweep [--out FILE] \
         [--sweeps thread-scaling,oversubscription,robustness,handle-churn] \
         [--structures hashmap,... | all] [--schemes Hyaline,Sharded-Hyaline,...] \
         [--mix write-intensive|read-mostly] \
         [bench scale flags: --secs --trials --threads --slots --shards \
         --handle-churn --max-threads ...]"
    );
    std::process::exit(2);
}

fn main() {
    let scale = BenchScale::from_env_and_args();
    let args = cli_args();

    let mut out = PathBuf::from("BENCH_sweep.jsonl");
    let mut sweeps = vec![Sweep::ThreadScaling];
    let mut structures: Vec<String> = vec!["hashmap".into(), "list".into()];
    let mut schemes: Vec<String> = FIGURE_SCHEMES.iter().map(|s| s.to_string()).collect();
    let mut mix = OpMix::WriteIntensive;

    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> &str {
            args.get(i + 1)
                .map(String::as_str)
                .unwrap_or_else(|| usage_error(&format!("{} is missing its value", args[i])))
        };
        match args[i].as_str() {
            "--out" => {
                out = PathBuf::from(value(i));
                i += 2;
            }
            "--sweeps" => {
                sweeps = value(i)
                    .split(',')
                    .map(|s| {
                        Sweep::parse(s.trim())
                            .unwrap_or_else(|| usage_error(&format!("unknown sweep `{s}`")))
                    })
                    .collect();
                i += 2;
            }
            "--structures" => {
                let v = value(i);
                structures = if v == "all" {
                    STRUCTURES.iter().map(|s| s.to_string()).collect()
                } else {
                    v.split(',').map(|s| s.trim().to_string()).collect()
                };
                for s in &structures {
                    if !STRUCTURES.contains(&s.as_str()) {
                        usage_error(&format!("unknown structure `{s}`; known: {STRUCTURES:?}"));
                    }
                }
                i += 2;
            }
            "--schemes" => {
                schemes = value(i).split(',').map(|s| s.trim().to_string()).collect();
                for s in &schemes {
                    if !ALL_SCHEMES.contains(&s.as_str()) {
                        usage_error(&format!("unknown scheme `{s}`; known: {ALL_SCHEMES:?}"));
                    }
                }
                i += 2;
            }
            "--mix" => {
                mix = OpMix::from_short_label(value(i)).unwrap_or_else(|| {
                    usage_error(&format!(
                        "unknown mix `{}`; use write-intensive or read-mostly",
                        value(i)
                    ))
                });
                i += 2;
            }
            _ => i += 1, // BenchScale flags, already applied.
        }
    }

    let scheme_refs: Vec<&str> = schemes.iter().map(String::as_str).collect();
    let mut sink = ResultSink::new(Provenance::detect(wall_clock_timestamp()));
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    println!(
        "== sweep: {} trial(s) x {:.2}s, prefill {} of {} keys, {} -> {} ==\n",
        scale.base.trials,
        scale.base.secs,
        scale.base.prefill,
        scale.base.key_range,
        mix.short_label(),
        out.display()
    );

    for sweep in &sweeps {
        match sweep {
            Sweep::ThreadScaling | Sweep::Oversubscription => {
                let (figure, threads): (&str, Vec<usize>) = match sweep {
                    Sweep::ThreadScaling => ("thread-scaling", scale.threads.clone()),
                    // Oversubscription stresses the threads >> cores regime
                    // where Hyaline's asynchronous tracking shines.
                    _ => (
                        "oversubscription",
                        [1, 2, 4, 8].iter().map(|&m| cores * m).collect(),
                    ),
                };
                for structure in &structures {
                    let (tput, unrec) = throughput_figures_recorded(
                        figure,
                        &format!("{figure} (unreclaimed)"),
                        structure,
                        mix,
                        &threads,
                        &scale.base,
                        &scheme_refs,
                        Some(&mut sink),
                    );
                    println!("{tput}");
                    println!("{unrec}");
                }
            }
            Sweep::HandleChurn => {
                // Workers draw pooled handles (capacity = max_threads) and
                // return them every `handle_churn` ops. Thread points come
                // from --threads and the registry budget from
                // --max-threads, so keys stay host-independent; pass
                // --max-threads below the thread counts to force the
                // oversubscribed park-and-reuse regime.
                let mut base = scale.base.clone();
                if base.handle_churn == 0 {
                    base.handle_churn = 64;
                }
                let threads = scale.threads.clone();
                println!(
                    "== handle-churn: {} ops/checkout, pool capacity {} ==\n",
                    base.handle_churn, base.config.max_threads
                );
                for structure in &structures {
                    let (tput, unrec) = throughput_figures_recorded(
                        "handle-churn",
                        "handle-churn (unreclaimed)",
                        structure,
                        mix,
                        &threads,
                        &base,
                        &scheme_refs,
                        Some(&mut sink),
                    );
                    println!("{tput}");
                    println!("{unrec}");
                }
            }
            Sweep::Robustness => {
                let active = cores.max(2);
                let max_stalled = scale.stalled.iter().copied().max().unwrap_or(8);
                let capped_slots = (max_stalled / 2).max(2).next_power_of_two();
                let table = robustness_figure_recorded(
                    active,
                    &scale.stalled,
                    capped_slots,
                    &scale.base,
                    Some(&mut sink),
                );
                println!("{table}");
            }
        }
    }

    match sink.append_to(&out) {
        Ok(n) => println!("appended {n} records to {}", out.display()),
        Err(e) => {
            eprintln!("sweep: error: cannot write {}: {e}", out.display());
            std::process::exit(2);
        }
    }
}
