//! Runs configurable figure sweeps and appends JSONL records per run.
//!
//! ```text
//! cargo run --release -p bench-harness --bin sweep -- \
//!     [--out BENCH_sweep.jsonl] \
//!     [--sweeps thread-scaling,oversubscription,robustness] \
//!     [--structures hashmap,list | all] [--schemes Hyaline,Epoch,...] \
//!     [--mix write-intensive|read-mostly] \
//!     [--secs S] [--trials N] [--threads 1,2,...] [--stalled 0,1,...] ...
//! ```
//!
//! Each measured `(scheme, structure, threads[, stalled])` point appends
//! one [`bench_harness::BenchRecord`] — full `BenchParams`/`SmrConfig`
//! provenance plus git sha, host cores, and timestamp — to the output file,
//! building the repository's performance trajectory over time. The rendered
//! figure tables still go to stdout, from the *same* runs. Compare two
//! snapshots with the `perfgate` binary.

use bench_harness::cli::{cli_args, BenchScale};
use bench_harness::driver::{BenchParams, RunResult};
use bench_harness::figures::{robustness_figure_recorded, throughput_figures_recorded};
use bench_harness::registry::{run_combo, ALL_SCHEMES, FIGURE_SCHEMES, STRUCTURES};
use bench_harness::results::{wall_clock_timestamp, Provenance, ResultSink};
use bench_harness::workload::OpMix;
use hyaline::Hyaline;
use lockfree_ds::{ConcurrentMap, MichaelHashMap};
use smr_async::{run_kv_service, KvConfig};
use smr_core::{HandlePool, Sharded, SmrHandle};
use std::path::PathBuf;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Sweep {
    ThreadScaling,
    Oversubscription,
    Robustness,
    /// Task-per-core pattern: workers far outnumber the registry budget and
    /// draw handles from a shared pool every few operations.
    HandleChurn,
    /// Connection-scale async service: tens of thousands of cooperative
    /// tasks multiplex a `Sharded<Hyaline>` hash map through a handle
    /// registry capped near the hardware thread count, with deferred
    /// check-ins drained by background reclaimer tasks.
    KvService,
    /// Memory-bound comparison under reader stalls: Hyaline vs the
    /// Crystalline variants vs Epoch with one or two readers parked inside
    /// an operation, recording the *peak* unreclaimed estimate. Robust
    /// schemes hold the high-water mark flat; the others grow it for the
    /// whole run.
    StalledReader,
    /// Node recycling on vs off: the same write-intensive churn with node
    /// memory drawn from the layout-keyed recycle pool and from the global
    /// allocator, on the structures whose operations allocate per update.
    Recycle,
}

impl Sweep {
    fn parse(s: &str) -> Option<Self> {
        match s {
            "thread-scaling" => Some(Self::ThreadScaling),
            "oversubscription" => Some(Self::Oversubscription),
            "robustness" => Some(Self::Robustness),
            "handle-churn" => Some(Self::HandleChurn),
            "kv-service" => Some(Self::KvService),
            "stalled-reader" => Some(Self::StalledReader),
            "recycle" => Some(Self::Recycle),
            _ => None,
        }
    }
}

fn usage_error(msg: &str) -> ! {
    eprintln!("sweep: error: {msg}");
    eprintln!(
        "usage: sweep [--out FILE] \
         [--sweeps thread-scaling,oversubscription,robustness,handle-churn,kv-service,stalled-reader,recycle] \
         [--structures hashmap,... | all] [--schemes Hyaline,Sharded-Hyaline,...] \
         [--mix write-intensive|read-mostly] \
         [bench scale flags: --secs --trials --threads --slots --shards \
         --handle-churn --connections --max-threads ...]"
    );
    std::process::exit(2);
}

fn main() {
    let scale = BenchScale::from_env_and_args();
    let args = cli_args();

    let mut out = PathBuf::from("BENCH_sweep.jsonl");
    let mut sweeps = vec![Sweep::ThreadScaling];
    let mut structures: Vec<String> = vec!["hashmap".into(), "list".into()];
    let mut schemes: Vec<String> = FIGURE_SCHEMES.iter().map(|s| s.to_string()).collect();
    let mut mix = OpMix::WriteIntensive;

    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> &str {
            args.get(i + 1)
                .map(String::as_str)
                .unwrap_or_else(|| usage_error(&format!("{} is missing its value", args[i])))
        };
        match args[i].as_str() {
            "--out" => {
                out = PathBuf::from(value(i));
                i += 2;
            }
            "--sweeps" => {
                sweeps = value(i)
                    .split(',')
                    .map(|s| {
                        Sweep::parse(s.trim())
                            .unwrap_or_else(|| usage_error(&format!("unknown sweep `{s}`")))
                    })
                    .collect();
                i += 2;
            }
            "--structures" => {
                let v = value(i);
                structures = if v == "all" {
                    STRUCTURES.iter().map(|s| s.to_string()).collect()
                } else {
                    v.split(',').map(|s| s.trim().to_string()).collect()
                };
                for s in &structures {
                    if !STRUCTURES.contains(&s.as_str()) {
                        usage_error(&format!("unknown structure `{s}`; known: {STRUCTURES:?}"));
                    }
                }
                i += 2;
            }
            "--schemes" => {
                schemes = value(i).split(',').map(|s| s.trim().to_string()).collect();
                for s in &schemes {
                    if !ALL_SCHEMES.contains(&s.as_str()) {
                        usage_error(&format!("unknown scheme `{s}`; known: {ALL_SCHEMES:?}"));
                    }
                }
                i += 2;
            }
            "--mix" => {
                mix = OpMix::from_short_label(value(i)).unwrap_or_else(|| {
                    usage_error(&format!(
                        "unknown mix `{}`; use write-intensive or read-mostly",
                        value(i)
                    ))
                });
                i += 2;
            }
            _ => i += 1, // BenchScale flags, already applied.
        }
    }

    let scheme_refs: Vec<&str> = schemes.iter().map(String::as_str).collect();
    let mut sink = ResultSink::new(Provenance::detect(wall_clock_timestamp()));
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    println!(
        "== sweep: {} trial(s) x {:.2}s, prefill {} of {} keys, {} -> {} ==\n",
        scale.base.trials,
        scale.base.secs,
        scale.base.prefill,
        scale.base.key_range,
        mix.short_label(),
        out.display()
    );

    for sweep in &sweeps {
        match sweep {
            Sweep::ThreadScaling | Sweep::Oversubscription => {
                let (figure, threads): (&str, Vec<usize>) = match sweep {
                    Sweep::ThreadScaling => ("thread-scaling", scale.threads.clone()),
                    // Oversubscription stresses the threads >> cores regime
                    // where Hyaline's asynchronous tracking shines.
                    _ => (
                        "oversubscription",
                        [1, 2, 4, 8].iter().map(|&m| cores * m).collect(),
                    ),
                };
                for structure in &structures {
                    let (tput, unrec) = throughput_figures_recorded(
                        figure,
                        &format!("{figure} (unreclaimed)"),
                        structure,
                        mix,
                        &threads,
                        &scale.base,
                        &scheme_refs,
                        Some(&mut sink),
                    );
                    println!("{tput}");
                    println!("{unrec}");
                }
            }
            Sweep::HandleChurn => {
                // Workers draw pooled handles (capacity = max_threads) and
                // return them every `handle_churn` ops. Thread points come
                // from --threads and the registry budget from
                // --max-threads, so keys stay host-independent; pass
                // --max-threads below the thread counts to force the
                // oversubscribed park-and-reuse regime.
                let mut base = scale.base.clone();
                if base.handle_churn == 0 {
                    base.handle_churn = 64;
                }
                let threads = scale.threads.clone();
                println!(
                    "== handle-churn: {} ops/checkout, pool capacity {} ==\n",
                    base.handle_churn, base.config.max_threads
                );
                for structure in &structures {
                    let (tput, unrec) = throughput_figures_recorded(
                        "handle-churn",
                        "handle-churn (unreclaimed)",
                        structure,
                        mix,
                        &threads,
                        &base,
                        &scheme_refs,
                        Some(&mut sink),
                    );
                    println!("{tput}");
                    println!("{unrec}");
                }
            }
            Sweep::KvService => {
                // Connections come from --connections when given; the
                // default axis ends at the 10k-connection point the async
                // service layer exists for.
                let axis: Vec<u64> = if scale.base.connections != 0 {
                    vec![scale.base.connections]
                } else {
                    vec![256, 2048, 10_000]
                };
                run_kv_sweep(&scale.base, &axis, mix, cores, &mut sink);
            }
            Sweep::StalledReader => {
                run_stalled_reader_sweep(&scale.base, &mut sink);
            }
            Sweep::Recycle => {
                run_recycle_sweep(&scale.base, &mut sink);
            }
            Sweep::Robustness => {
                let active = cores.max(2);
                let max_stalled = scale.stalled.iter().copied().max().unwrap_or(8);
                let capped_slots = (max_stalled / 2).max(2).next_power_of_two();
                let table = robustness_figure_recorded(
                    active,
                    &scale.stalled,
                    capped_slots,
                    &scale.base,
                    Some(&mut sink),
                );
                println!("{table}");
            }
        }
    }

    match sink.append_to(&out) {
        Ok(n) => println!("appended {n} records to {}", out.display()),
        Err(e) => {
            eprintln!("sweep: error: cannot write {}: {e}", out.display());
            std::process::exit(2);
        }
    }
}

/// Runs the async KV service at each connection count and records one
/// `kv-service` point per run: Mops/s plus the peak retired-but-unreclaimed
/// estimate (`avg_unreclaimed` carries the peak here — for a fixed-work
/// async run the high-water mark is the number that catches a reclaimer
/// regression).
///
/// The scheme/structure pair is fixed (`Sharded-Hyaline` over the hash
/// map): the sweep exists to vary `connections`, not to re-race schemes.
/// The registry cap is `--max-threads` clamped to 2× the hardware threads,
/// so tens of thousands of connections multiplex a pool of at most a few
/// handles; executor workers come from `--threads` so the perf-gate key
/// stays host-independent when both flags are pinned.
/// The memory-bound headline comparison: Hyaline, both Crystalline
/// variants, and Epoch on the Michael hash map with 1 and then 2 readers
/// parked inside an operation, write-intensive so the workers keep
/// producing garbage the stall could pin. Each point records the *peak*
/// unreclaimed estimate (`avg_unreclaimed` carries the peak in this
/// figure, as in `kv-service`): era filtering lets the Crystalline
/// variants skip the stalled reservation entirely, so their high-water
/// mark stays near the batch backlog, while Hyaline and Epoch pin
/// everything retired after the stall began.
///
/// The stalled axis is fixed at `[1, 2]` — not taken from `--stalled` —
/// so committed baselines keep host-independent perf-gate keys.
fn run_stalled_reader_sweep(base: &BenchParams, sink: &mut ResultSink) {
    const SCHEMES: &[&str] = &["Hyaline", "Epoch", "Crystalline-L", "Crystalline-W"];
    const STALLED: &[usize] = &[1, 2];
    println!(
        "== stalled-reader: peak unreclaimed, Michael hash map, \
         {} active thread(s), write-intensive ==\n",
        base.threads
    );
    println!(
        "{:>14} {:>8} {:>10} {:>12} {:>12} {:>12}",
        "scheme", "stalled", "Mops/s", "peak-unrecl", "retired", "freed"
    );
    for &scheme in SCHEMES {
        for &stalled in STALLED {
            let mut params = base.clone();
            params.stalled = stalled;
            params.mix = OpMix::WriteIntensive;
            let Some(result) = run_combo(scheme, "hashmap", &params) else {
                continue;
            };
            let recorded = RunResult {
                avg_unreclaimed: result.peak_unreclaimed as f64,
                ..result
            };
            sink.record("stalled-reader", scheme, "hashmap", &params, &recorded);
            println!(
                "{:>14} {:>8} {:>10.3} {:>12} {:>12} {:>12}",
                scheme, stalled, result.mops, result.peak_unreclaimed, result.retired, result.freed
            );
        }
    }
    println!();
}

/// The node-recycling headline comparison: Hyaline, Epoch and
/// Crystalline-L driving write-intensive churn on the Michael hash map and
/// the skip list, each combination measured twice — node memory from the
/// global allocator (`recycle=off`, the historical behaviour) and from the
/// layout-keyed recycle pool (`recycle=on`). Every point appends a
/// `figure="recycle"` record; the on/off points key separately in the perf
/// gate (the combo key carries `recycle`), so a committed baseline pins
/// both sides of the comparison.
///
/// The mix is fixed write-intensive — recycling exists for update churn;
/// a read-mostly run would barely touch the pool — and the hit rate column
/// is `pool_hits / (pool_hits + pool_misses)`, the fraction of allocations
/// the pool actually served while enabled.
fn run_recycle_sweep(base: &BenchParams, sink: &mut ResultSink) {
    const SCHEMES: &[&str] = &["Hyaline", "Epoch", "Crystalline-L"];
    const STRUCTURES_SWEPT: &[&str] = &["hashmap", "skiplist"];
    println!(
        "== recycle: pooled vs malloc node memory, {} thread(s), \
         write-intensive ==\n",
        base.threads
    );
    println!(
        "{:>14} {:>9} {:>8} {:>10} {:>12} {:>12} {:>9}",
        "scheme", "structure", "recycle", "Mops/s", "recycled", "pool-hits", "hit-rate"
    );
    for &structure in STRUCTURES_SWEPT {
        for &scheme in SCHEMES {
            for recycle in [false, true] {
                let mut params = base.clone();
                params.mix = OpMix::WriteIntensive;
                params.config.recycle = recycle;
                if recycle {
                    // Deferred schemes (Hyaline batches, epoch scans) free in
                    // bursts; the pool must absorb a whole burst or it evicts
                    // most of it and the next alloc run misses. Size capacity
                    // for the churn volume and widen magazines so the spill/
                    // refill block transfer amortises the shared-list CAS.
                    params.config.recycle_capacity = 1 << 17;
                    params.config.recycle_magazine = 256;
                }
                let Some(result) = run_combo(scheme, structure, &params) else {
                    continue;
                };
                sink.record("recycle", scheme, structure, &params, &result);
                let attempts = result.pool_hits + result.pool_misses;
                let hit_rate = if attempts == 0 {
                    0.0
                } else {
                    100.0 * result.pool_hits as f64 / attempts as f64
                };
                println!(
                    "{:>14} {:>9} {:>8} {:>10.3} {:>12} {:>12} {:>8.1}%",
                    scheme,
                    structure,
                    if recycle { "on" } else { "off" },
                    result.mops,
                    result.recycled,
                    result.pool_hits,
                    hit_rate
                );
            }
        }
    }
    println!();
}

fn run_kv_sweep(base: &BenchParams, axis: &[u64], mix: OpMix, cores: usize, sink: &mut ResultSink) {
    let (get_pct, put_pct) = match mix {
        // The thread-driven sweeps' mixes, translated to get/put/delete:
        // write-intensive is half inserts half deletes; read-mostly is 90%
        // gets with the rest split between insert and delete.
        OpMix::WriteIntensive => (0, 50),
        OpMix::ReadMostly => (90, 5),
    };
    let capacity = base.config.max_threads.min(2 * cores).max(1);
    let workers = base.threads.max(1);
    let reclaim_shards = base.config.shards.clamp(1, 4);
    println!(
        "== kv-service: Sharded-Hyaline hashmap, registry cap {capacity}, \
         {workers} worker(s), {reclaim_shards} reclaimer(s) ==\n"
    );
    println!(
        "{:>12} {:>10} {:>10} {:>12} {:>10} {:>10}",
        "connections", "ops", "Mops/s", "peak-unrecl", "flushed", "swept"
    );
    for &connections in axis {
        let map: MichaelHashMap<u64, u64, Sharded<Hyaline<_>>> =
            MichaelHashMap::with_config(base.config.clone());
        let pool = HandlePool::new(map.domain(), capacity);
        {
            let mut handle = pool.checkout();
            for key in 0..(base.prefill as u64).min(base.key_range) {
                handle.enter();
                map.map_insert(&mut handle, key, key);
                handle.leave();
            }
        }
        let cfg = KvConfig {
            connections: connections as usize,
            ops_per_connection: 64,
            burst: 16,
            key_range: base.key_range,
            get_pct,
            put_pct,
            reclaim_shards,
            queue_capacity: 64,
            workers,
            seed: base.seed,
        };
        let report = run_kv_service(&map, &pool, &cfg);
        let result = RunResult {
            mops: report.mops(),
            avg_unreclaimed: report.peak_unreclaimed as f64,
            peak_unreclaimed: report.peak_unreclaimed,
            ops: report.ops,
            ..RunResult::default()
        };
        let mut params = base.clone();
        params.mix = mix;
        params.connections = connections;
        sink.record("kv-service", "Sharded-Hyaline", "hashmap", &params, &result);
        println!(
            "{:>12} {:>10} {:>10.3} {:>12} {:>10} {:>10}",
            connections,
            report.ops,
            report.mops(),
            report.peak_unreclaimed,
            report.reclaim.flushed,
            report.reclaim.swept
        );
    }
    println!();
}
