//! Compares a candidate JSONL results file against a baseline and fails on
//! perf regressions outside the noise band.
//!
//! ```text
//! cargo run -p bench-harness --bin perfgate -- \
//!     baseline.jsonl candidate.jsonl \
//!     [--tolerance 0.10] [--unreclaimed-tolerance 0.50] \
//!     [--unreclaimed-slack 64] [--warn-only] [--require-overlap]
//! ```
//!
//! Exit codes: `0` pass (or `--warn-only`), `1` at least one metric of one
//! configuration regressed, `2` usage or I/O error. Identical files always
//! pass. Configurations present in only one file are reported but never
//! fail the gate, so coverage can grow over time — unless
//! `--require-overlap` is set, in which case every baseline configuration
//! must actually be compared: zero comparisons, or baseline combos missing
//! from the candidate, are themselves failures (a blocking gate must not
//! pass because a flag or host default silently changed the keys of
//! exactly the combos that regressed).

use bench_harness::cli::cli_args;
use bench_harness::gate::{compare, Tolerance};
use bench_harness::results::read_records;
use std::path::PathBuf;

fn usage_error(msg: &str) -> ! {
    eprintln!("perfgate: error: {msg}");
    eprintln!(
        "usage: perfgate <baseline.jsonl> <candidate.jsonl> [--tolerance F] \
         [--unreclaimed-tolerance F] [--unreclaimed-slack F] [--warn-only] \
         [--require-overlap]"
    );
    std::process::exit(2);
}

fn main() {
    let args = cli_args();
    let mut files: Vec<PathBuf> = Vec::new();
    let mut tol = Tolerance::default();
    let mut warn_only = false;
    let mut require_overlap = false;

    let mut i = 0;
    while i < args.len() {
        let fraction = |i: usize| -> f64 {
            let raw = args
                .get(i + 1)
                .unwrap_or_else(|| usage_error(&format!("{} is missing its value", args[i])));
            raw.parse()
                .ok()
                .filter(|v: &f64| v.is_finite() && *v >= 0.0)
                .unwrap_or_else(|| {
                    usage_error(&format!("{} {raw}: not a non-negative number", args[i]))
                })
        };
        match args[i].as_str() {
            "--tolerance" => {
                tol.mops_frac = fraction(i);
                i += 2;
            }
            "--unreclaimed-tolerance" => {
                tol.unreclaimed_frac = fraction(i);
                i += 2;
            }
            "--unreclaimed-slack" => {
                tol.unreclaimed_slack = fraction(i);
                i += 2;
            }
            "--warn-only" => {
                warn_only = true;
                i += 1;
            }
            "--require-overlap" => {
                require_overlap = true;
                i += 1;
            }
            flag if flag.starts_with("--") => {
                usage_error(&format!("unknown flag {flag}"));
            }
            path => {
                files.push(PathBuf::from(path));
                i += 1;
            }
        }
    }
    if files.len() != 2 {
        usage_error(&format!(
            "expected exactly 2 files (baseline, candidate), got {}",
            files.len()
        ));
    }

    let read = |path: &PathBuf| {
        read_records(path).unwrap_or_else(|e| {
            eprintln!("perfgate: error: {e}");
            std::process::exit(2);
        })
    };
    let baseline = read(&files[0]);
    let candidate = read(&files[1]);
    println!(
        "perfgate: {} baseline records ({}), {} candidate records ({}), \
         mops band ±{:.0}%, unreclaimed band +{:.0}% (+{})",
        baseline.len(),
        files[0].display(),
        candidate.len(),
        files[1].display(),
        100.0 * tol.mops_frac,
        100.0 * tol.unreclaimed_frac,
        tol.unreclaimed_slack,
    );

    let report = compare(&baseline, &candidate, tol);
    print!("{report}");
    if report.comparisons.is_empty() && !(baseline.is_empty() && candidate.is_empty()) {
        println!(
            "perfgate: note: no configuration appears in both files — records \
             are only compared when every workload/SmrConfig parameter matches \
             (same host defaults, same flags); re-record the baseline with the \
             candidate's sweep command if this is unexpected"
        );
    }
    // A blocking gate must compare every baseline combo: empty files,
    // disjoint keys, or a partially vanished overlap (one key parameter
    // drifting for a subset of runs) all mean the combos that could have
    // regressed were silently skipped. The verdict names each missing
    // combo so the drifted key is visible in the CI log.
    if require_overlap && !warn_only {
        if let Some(msg) = report.overlap_failure() {
            eprintln!("perfgate: FAIL — --require-overlap set and {msg}");
            std::process::exit(1);
        }
    }

    if report.has_regression() {
        if warn_only {
            println!("perfgate: regression detected, but --warn-only is set; passing");
        } else {
            eprintln!("perfgate: FAIL — performance regressed beyond the noise band");
            std::process::exit(1);
        }
    } else {
        println!("perfgate: PASS");
    }
}
