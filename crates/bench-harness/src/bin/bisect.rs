//! Internal stress tool: runs one scheme/structure combo at a chosen scale.
//!
//! Usage: `bisect <scheme> <structure> [threads [secs [key_range]]]
//! [--mix read-mostly] [--threads N,...] [--stalled N,...] [--use-trim]
//! [bench scale flags / HYALINE_BENCH_* env]`
//!
//! Used to bisect crashes that only reproduce in optimized builds: run each
//! combination in a separate process so a fault identifies the pair. The
//! run honors the same [`BenchScale::from_env_and_args`] configuration as
//! the figure drivers (`--secs`, `--prefill`, `--key-range`, `--trials`,
//! `HYALINE_BENCH_*`, the scaled `SmrConfig`), accepts the operation mix
//! and a stalled-thread count, and prints the fully resolved parameters so
//! a bisected crash is replayable against the figure run that produced it.
//!
//! Thread count resolution: the bare third positional wins, then the first
//! entry of `--threads`/`HYALINE_BENCH_THREADS` (this is a single-cell
//! tool, so one count is run, not the sweep), then 8. `--stalled`/
//! `HYALINE_BENCH_STALLED` resolve the same way, defaulting to 0. Unknown
//! `--flags` are an error: a typo must not silently change the bisected
//! configuration.

use bench_harness::cli::{cli_args, BenchScale};
use bench_harness::driver::BenchParams;
use bench_harness::registry::{run_combo, ALL_SCHEMES, STRUCTURES};
use bench_harness::workload::OpMix;

/// Flags (ours or [`BenchScale`]'s) that consume the following token, so
/// positional collection never mistakes a flag's value for an argument.
const VALUE_FLAGS: &[&str] = &[
    "--mix",
    "--stalled",
    "--secs",
    "--trials",
    "--prefill",
    "--key-range",
    "--threads",
    "--slots",
    "--shards",
    "--routing",
    "--handle-churn",
    "--max-threads",
];

/// Flags that stand alone.
const BARE_FLAGS: &[&str] = &["--read-mostly", "--use-trim"];

fn fail(msg: &str) -> ! {
    eprintln!("bisect: {msg}");
    eprintln!(
        "usage: bisect <scheme> <structure> [threads [secs [key_range]]] \
         [--mix write-intensive|read-mostly] [--threads N,...] [--stalled N,...] \
         [--use-trim] [bench scale flags]"
    );
    std::process::exit(2);
}

fn main() {
    let mut scale = BenchScale::from_env_and_args();
    let args = cli_args();

    let mut positional: Vec<&str> = Vec::new();
    let mut mix = OpMix::WriteIntensive;
    let mut use_trim = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--mix" => {
                let raw = args.get(i + 1).map(String::as_str).unwrap_or("");
                mix = OpMix::from_short_label(raw).unwrap_or_else(|| {
                    fail(&format!(
                        "unknown mix `{raw}`; use write-intensive or read-mostly"
                    ))
                });
            }
            "--read-mostly" => mix = OpMix::ReadMostly,
            "--use-trim" => use_trim = true,
            flag if flag.starts_with("--") => {
                // Only [`BenchScale`]'s own flags pass through; anything
                // else is a typo that would silently change the bisected
                // configuration.
                if !VALUE_FLAGS.contains(&flag) && !BARE_FLAGS.contains(&flag) {
                    fail(&format!("unknown flag {flag}"));
                }
            }
            bare => positional.push(bare),
        }
        i += if VALUE_FLAGS.contains(&args[i].as_str()) {
            2
        } else {
            1
        };
    }
    if positional.len() > 5 {
        fail(&format!("unexpected argument `{}`", positional[5]));
    }

    let scheme = positional.first().copied().unwrap_or("Hyaline");
    let structure = positional.get(1).copied().unwrap_or("list");
    if !ALL_SCHEMES.contains(&scheme) {
        fail(&format!("unknown scheme {scheme}; known: {ALL_SCHEMES:?}"));
    }
    if !STRUCTURES.contains(&structure) {
        fail(&format!(
            "unknown structure {structure}; known: {STRUCTURES:?}"
        ));
    }
    // Positional `[threads [secs [key_range]]]` retains the tool's original
    // argument order; the named flags/env cover everything else.
    let explicit = |flag: &str, env: &str| {
        args.iter().any(|a| a == flag) || std::env::var(env).is_ok()
    };
    let threads: usize = match positional.get(2) {
        Some(raw) => raw
            .parse()
            .unwrap_or_else(|_| fail(&format!("`{raw}` is not a thread count"))),
        None if explicit("--threads", "HYALINE_BENCH_THREADS") => {
            *scale.threads.first().unwrap_or(&8)
        }
        None => 8,
    };
    if let Some(raw) = positional.get(3) {
        scale.base.secs = raw
            .parse()
            .unwrap_or_else(|_| fail(&format!("`{raw}` is not a duration in seconds")));
    }
    if let Some(raw) = positional.get(4) {
        scale.base.key_range = raw
            .parse()
            .unwrap_or_else(|_| fail(&format!("`{raw}` is not a key range")));
    }
    // A single stalled count: the first entry of the figure drivers' list.
    let stalled: usize = if explicit("--stalled", "HYALINE_BENCH_STALLED") {
        *scale.stalled.first().unwrap_or(&0)
    } else {
        0
    };

    let params = BenchParams {
        threads,
        stalled,
        mix,
        use_trim,
        ..scale.base.clone()
    };
    // Print the fully resolved configuration first: if the run crashes,
    // this block is what makes the failure replayable.
    println!(
        "bisect: {scheme}/{structure} threads={threads} stalled={stalled} mix={} \
         use_trim={use_trim} handle_churn={} secs={} trials={} prefill={} key_range={} \
         seed={:#x}",
        mix.short_label(),
        params.handle_churn,
        params.secs,
        params.trials,
        params.prefill,
        params.key_range,
        params.seed,
    );
    println!("bisect: config={:?}", params.config);
    match run_combo(scheme, structure, &params) {
        Some(r) => println!(
            "{scheme}/{structure}: {:.3} Mops/s, {} ops, retired {}, freed {}, unreclaimed avg {:.1}",
            r.mops, r.ops, r.retired, r.freed, r.avg_unreclaimed
        ),
        None => println!("{scheme}/{structure}: unsupported"),
    }
}
