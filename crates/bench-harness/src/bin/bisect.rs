//! Internal stress tool: runs one scheme/structure combo at a chosen scale.
//!
//! Usage: `bisect <scheme> <structure> [threads] [secs] [key_range]`
//!
//! Used to bisect crashes that only reproduce in optimized builds: run each
//! combination in a separate process so a fault identifies the pair.

use bench_harness::driver::BenchParams;
use bench_harness::registry::run_combo;
use bench_harness::workload::OpMix;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scheme = args.get(1).map(String::as_str).unwrap_or("Hyaline");
    let structure = args.get(2).map(String::as_str).unwrap_or("list");
    let threads: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(8);
    let secs: f64 = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(0.5);
    let key_range: u64 = args.get(5).and_then(|s| s.parse().ok()).unwrap_or(2048);
    let params = BenchParams {
        threads,
        secs,
        trials: 1,
        prefill: (key_range / 2) as usize,
        key_range,
        mix: OpMix::WriteIntensive,
        config: smr_core::SmrConfig {
            slots: 8,
            max_threads: 512,
            ..smr_core::SmrConfig::default()
        },
        ..BenchParams::default()
    };
    match run_combo(scheme, structure, &params) {
        Some(r) => println!(
            "{scheme}/{structure}: {:.3} Mops/s, {} ops, retired {}, freed {}, unreclaimed avg {:.1}",
            r.mops, r.ops, r.retired, r.freed, r.avg_unreclaimed
        ),
        None => println!("{scheme}/{structure}: unsupported"),
    }
}
