//! Runtime dispatch from `(scheme name, structure name)` strings to the
//! monomorphized benchmark entry points.

use hyaline::{Hyaline, Hyaline1, Hyaline1S, HyalineS};
use lockfree_ds::{BonsaiTree, HarrisMichaelList, MichaelHashMap, NatarajanMittalTree};
use smr_baselines::{Ebr, He, Hp, Ibr, Leaky, Lfrc};

use crate::driver::{run_bench, BenchParams, RunResult};

/// The scheme set of the paper's throughput figures, in legend order.
pub const FIGURE_SCHEMES: &[&str] = &[
    "Leaky",
    "Epoch",
    "Hyaline",
    "Hyaline-1",
    "Hyaline-S",
    "Hyaline-1S",
    "IBR",
    "HE",
    "HP",
];

/// All schemes available in the registry (figures plus the LFRC ablation).
pub const ALL_SCHEMES: &[&str] = &[
    "Leaky",
    "Epoch",
    "Hyaline",
    "Hyaline-1",
    "Hyaline-S",
    "Hyaline-1S",
    "IBR",
    "HE",
    "HP",
    "LFRC",
];

/// The benchmark structures, matching the paper's four sub-figures.
pub const STRUCTURES: &[&str] = &["list", "hashmap", "bonsai", "nmtree"];

/// Whether the combination is supported.
///
/// Bonsai's snapshot traversals need interval/epoch/reference-count-free
/// protection; HP and HE cannot cover an unbounded path with a bounded set
/// of protection indices, so — exactly as in the paper ("HP and HE are not
/// implemented for this benchmark") — those combinations are excluded.
/// LFRC's counted protection also cannot pin a whole snapshot path, and the
/// paper does not run it on any throughput figure.
pub fn supports(scheme: &str, structure: &str) -> bool {
    if structure == "bonsai" {
        !matches!(scheme, "HP" | "HE" | "LFRC")
    } else {
        ALL_SCHEMES.contains(&scheme) && STRUCTURES.contains(&structure)
    }
}

/// Runs one benchmark for a scheme/structure pair selected by name.
///
/// Returns `None` for unknown names or unsupported combinations (see
/// [`supports`]).
pub fn run_combo(scheme: &str, structure: &str, params: &BenchParams) -> Option<RunResult> {
    if !supports(scheme, structure) {
        return None;
    }
    macro_rules! on_structures {
        ($scheme_ty:ty) => {
            match structure {
                "list" => Some(run_bench::<$scheme_ty, HarrisMichaelList<u64, u64, _>>(params)),
                "hashmap" => Some(run_bench::<$scheme_ty, MichaelHashMap<u64, u64, _>>(params)),
                "bonsai" => Some(run_bench::<$scheme_ty, BonsaiTree<u64, u64, _>>(params)),
                "nmtree" => {
                    Some(run_bench::<$scheme_ty, NatarajanMittalTree<u64, u64, _>>(params))
                }
                _ => None,
            }
        };
    }
    match scheme {
        "Leaky" => on_structures!(Leaky<_>),
        "Epoch" => on_structures!(Ebr<_>),
        "Hyaline" => on_structures!(Hyaline<_>),
        "Hyaline-1" => on_structures!(Hyaline1<_>),
        "Hyaline-S" => on_structures!(HyalineS<_>),
        "Hyaline-1S" => on_structures!(Hyaline1S<_>),
        "IBR" => on_structures!(Ibr<_>),
        "HE" => on_structures!(He<_>),
        "HP" => on_structures!(Hp<_>),
        "LFRC" => on_structures!(Lfrc<_>),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> BenchParams {
        BenchParams {
            threads: 2,
            secs: 0.02,
            prefill: 64,
            key_range: 128,
            config: smr_core::SmrConfig {
                slots: 4,
                max_threads: 64,
                ..smr_core::SmrConfig::default()
            },
            ..BenchParams::default()
        }
    }

    #[test]
    fn every_supported_combo_runs() {
        let p = quick();
        for &scheme in ALL_SCHEMES {
            for &structure in STRUCTURES {
                let result = run_combo(scheme, structure, &p);
                assert_eq!(
                    result.is_some(),
                    supports(scheme, structure),
                    "combo {scheme}/{structure}"
                );
                if let Some(r) = result {
                    assert!(r.ops > 0, "{scheme}/{structure} did no work");
                }
            }
        }
    }

    #[test]
    fn bonsai_excludes_pointer_schemes() {
        assert!(!supports("HP", "bonsai"));
        assert!(!supports("HE", "bonsai"));
        assert!(!supports("LFRC", "bonsai"));
        assert!(supports("IBR", "bonsai"));
        assert!(supports("Hyaline-S", "bonsai"));
    }

    #[test]
    fn unknown_names_rejected() {
        assert!(run_combo("RCU", "list", &quick()).is_none());
        assert!(run_combo("Epoch", "skiplist", &quick()).is_none());
    }
}
