//! Runtime dispatch from `(scheme name, structure name)` strings to the
//! monomorphized benchmark entry points.

use crystalline::{CrystallineL, CrystallineW};
use hyaline::{Hyaline, Hyaline1, Hyaline1S, HyalineS};
use lockfree_ds::{
    BonsaiTree, BoundedMpmcQueue, HarrisMichaelList, MichaelHashMap, NatarajanMittalTree,
    SkipListMap,
};
use smr_baselines::{Ebr, He, Hp, Ibr, Leaky, Lfrc};
use smr_core::Sharded;

use crate::driver::{run_bench, BenchParams, RunResult};
use crate::results::ResultSink;

/// The scheme set of the paper's throughput figures, in legend order.
pub const FIGURE_SCHEMES: &[&str] = &[
    "Leaky",
    "Epoch",
    "Hyaline",
    "Hyaline-1",
    "Hyaline-S",
    "Hyaline-1S",
    "IBR",
    "HE",
    "HP",
];

/// All schemes available in the registry: the figure set, the LFRC
/// ablation, the sharded-domain variants (`SmrConfig::shards` selects
/// the shard count; `1` makes them behave like the plain scheme behind the
/// adapter), and the wait-free Crystalline variants
/// (`SmrConfig::handoff_attempts` bounds the retire CAS attempts).
pub const ALL_SCHEMES: &[&str] = &[
    "Leaky",
    "Epoch",
    "Hyaline",
    "Hyaline-1",
    "Hyaline-S",
    "Hyaline-1S",
    "IBR",
    "HE",
    "HP",
    "LFRC",
    "Sharded-Hyaline",
    "Sharded-Hyaline-S",
    "Sharded-Epoch",
    "Crystalline-L",
    "Crystalline-W",
];

/// The benchmark structures: the paper's four sub-figures plus the two
/// typed-layer additions (skip-list map and bounded MPMC queue driven
/// through the same [`lockfree_ds::ConcurrentMap`] interface).
pub const STRUCTURES: &[&str] = &["list", "hashmap", "bonsai", "nmtree", "skiplist", "mpmc"];

/// Whether the combination is supported.
///
/// Bonsai's snapshot traversals need interval/epoch/reference-count-free
/// protection; HP and HE cannot cover an unbounded path with a bounded set
/// of protection indices, so — exactly as in the paper ("HP and HE are not
/// implemented for this benchmark") — those combinations are excluded.
/// LFRC's counted protection also cannot pin a whole snapshot path, and the
/// paper does not run it on any throughput figure.
pub fn supports(scheme: &str, structure: &str) -> bool {
    if structure == "bonsai" {
        ALL_SCHEMES.contains(&scheme) && !matches!(scheme, "HP" | "HE" | "LFRC")
    } else {
        ALL_SCHEMES.contains(&scheme) && STRUCTURES.contains(&structure)
    }
}

/// Runs one benchmark for a scheme/structure pair selected by name.
///
/// Returns `None` for unknown names or unsupported combinations (see
/// [`supports`]).
pub fn run_combo(scheme: &str, structure: &str, params: &BenchParams) -> Option<RunResult> {
    if !supports(scheme, structure) {
        return None;
    }
    macro_rules! on_structures {
        ($scheme_ty:ty) => {
            match structure {
                "list" => Some(run_bench::<$scheme_ty, HarrisMichaelList<u64, u64, _>>(params)),
                "hashmap" => Some(run_bench::<$scheme_ty, MichaelHashMap<u64, u64, _>>(params)),
                "bonsai" => Some(run_bench::<$scheme_ty, BonsaiTree<u64, u64, _>>(params)),
                "nmtree" => {
                    Some(run_bench::<$scheme_ty, NatarajanMittalTree<u64, u64, _>>(params))
                }
                "skiplist" => Some(run_bench::<$scheme_ty, SkipListMap<u64, u64, _>>(params)),
                "mpmc" => Some(run_bench::<$scheme_ty, BoundedMpmcQueue<u64, _>>(params)),
                _ => None,
            }
        };
    }
    match scheme {
        "Leaky" => on_structures!(Leaky<_>),
        "Epoch" => on_structures!(Ebr<_>),
        "Hyaline" => on_structures!(Hyaline<_>),
        "Hyaline-1" => on_structures!(Hyaline1<_>),
        "Hyaline-S" => on_structures!(HyalineS<_>),
        "Hyaline-1S" => on_structures!(Hyaline1S<_>),
        "IBR" => on_structures!(Ibr<_>),
        "HE" => on_structures!(He<_>),
        "HP" => on_structures!(Hp<_>),
        "LFRC" => on_structures!(Lfrc<_>),
        // Sharded-domain variants: `params.config.shards` inner domains
        // behind the `Sharded` adapter (ByKey routing; the hash map routes
        // per bucket group, the other structures stay in shard 0).
        "Sharded-Hyaline" => on_structures!(Sharded<Hyaline<_>>),
        "Sharded-Hyaline-S" => on_structures!(Sharded<HyalineS<_>>),
        "Sharded-Epoch" => on_structures!(Sharded<Ebr<_>>),
        // Wait-free Crystalline variants: era-based like Hyaline-1S, so
        // bonsai's snapshot traversals are supported.
        "Crystalline-L" => on_structures!(CrystallineL<_>),
        "Crystalline-W" => on_structures!(CrystallineW<_>),
        _ => None,
    }
}

/// Like [`run_combo`], but additionally records the run (with full
/// parameter provenance) into `sink` when one is supplied, so persistent
/// JSONL results come from *the same runs* that fill the figure tables.
///
/// `record_as` is the series name written to the record; it can differ from
/// `scheme` when one scheme appears under several configurations in a
/// figure (e.g. `Hyaline-S-adaptive`).
pub fn run_combo_recorded(
    figure: &str,
    record_as: &str,
    scheme: &str,
    structure: &str,
    params: &BenchParams,
    sink: &mut Option<&mut ResultSink>,
) -> Option<RunResult> {
    let result = run_combo(scheme, structure, params)?;
    if let Some(sink) = sink.as_deref_mut() {
        sink.record(figure, record_as, structure, params, &result);
    }
    Some(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> BenchParams {
        BenchParams {
            threads: 2,
            secs: 0.02,
            prefill: 64,
            key_range: 128,
            config: smr_core::SmrConfig {
                slots: 4,
                max_threads: 64,
                ..smr_core::SmrConfig::default()
            },
            ..BenchParams::default()
        }
    }

    #[test]
    fn every_supported_combo_runs() {
        let p = quick();
        for &scheme in ALL_SCHEMES {
            for &structure in STRUCTURES {
                let result = run_combo(scheme, structure, &p);
                assert_eq!(
                    result.is_some(),
                    supports(scheme, structure),
                    "combo {scheme}/{structure}"
                );
                if let Some(r) = result {
                    assert!(r.ops > 0, "{scheme}/{structure} did no work");
                }
            }
        }
    }

    #[test]
    fn bonsai_excludes_pointer_schemes() {
        assert!(!supports("HP", "bonsai"));
        assert!(!supports("HE", "bonsai"));
        assert!(!supports("LFRC", "bonsai"));
        assert!(supports("IBR", "bonsai"));
        assert!(supports("Hyaline-S", "bonsai"));
    }

    #[test]
    fn unknown_names_rejected() {
        assert!(run_combo("RCU", "list", &quick()).is_none());
        assert!(run_combo("Epoch", "splay", &quick()).is_none());
    }

    #[test]
    fn recorded_runs_land_in_the_sink_with_provenance() {
        use crate::results::{Provenance, ResultSink};
        let mut sink = ResultSink::new(Provenance {
            git_sha: Some("deadbeef".into()),
            host_cores: 4,
            timestamp: "123".into(),
        });
        let p = quick();
        let r = run_combo_recorded(
            "Fig 8c",
            "Hyaline-S-adaptive",
            "Hyaline-S",
            "hashmap",
            &p,
            &mut Some(&mut sink),
        )
        .expect("supported combo");
        // Unsupported combos record nothing.
        assert!(run_combo_recorded("f", "HP", "HP", "bonsai", &p, &mut Some(&mut sink)).is_none());
        // A `None` sink is a plain run.
        assert!(run_combo_recorded("f", "Epoch", "Epoch", "list", &p, &mut None).is_some());
        assert_eq!(sink.records().len(), 1);
        let rec = &sink.records()[0];
        assert_eq!(rec.scheme, "Hyaline-S-adaptive");
        assert_eq!(rec.structure, "hashmap");
        assert_eq!(rec.mix, "write-intensive");
        assert_eq!(rec.threads, p.threads as u64);
        assert_eq!(rec.slots, p.config.slots as u64);
        assert_eq!(rec.git_sha.as_deref(), Some("deadbeef"));
        assert_eq!(rec.mops, r.mops);
    }
}
