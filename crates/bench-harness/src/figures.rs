//! High-level drivers that regenerate each figure of the paper.

use smr_core::SmrConfig;

use crate::driver::BenchParams;
use crate::registry::{run_combo, run_combo_recorded, supports, FIGURE_SCHEMES};
use crate::report::FigureTable;
use crate::results::ResultSink;
use crate::workload::OpMix;

/// Structure display names as used in the paper's captions.
pub fn structure_caption(structure: &str) -> &'static str {
    match structure {
        "list" => "Harris & Michael list",
        "hashmap" => "Michael hash map",
        "bonsai" => "Bonsai tree",
        "nmtree" => "Natarajan & Mittal tree",
        "skiplist" => "Lock-free skip list",
        "mpmc" => "Bounded MPMC queue",
        _ => "unknown structure",
    }
}

/// Runs a full thread sweep for one structure and mix, producing both the
/// throughput figure (Fig 8/11/13/15 panels) and the unreclaimed-objects
/// figure (Fig 9/12/14/16 panels) from the same runs.
pub fn throughput_figures(
    fig_throughput: &str,
    fig_unreclaimed: &str,
    structure: &str,
    mix: OpMix,
    threads: &[usize],
    base: &BenchParams,
) -> (FigureTable, FigureTable) {
    throughput_figures_recorded(
        fig_throughput,
        fig_unreclaimed,
        structure,
        mix,
        threads,
        base,
        FIGURE_SCHEMES,
        None,
    )
}

/// [`throughput_figures`] over a chosen scheme subset, optionally recording
/// each run into `sink` (one [`crate::results::BenchRecord`] per
/// `(scheme, threads)` cell, carrying both metrics) so the persistent JSONL
/// trajectory is built from the same measurements as the rendered tables.
#[allow(clippy::too_many_arguments)]
pub fn throughput_figures_recorded(
    fig_throughput: &str,
    fig_unreclaimed: &str,
    structure: &str,
    mix: OpMix,
    threads: &[usize],
    base: &BenchParams,
    schemes: &[&str],
    mut sink: Option<&mut ResultSink>,
) -> (FigureTable, FigureTable) {
    let caption = structure_caption(structure);
    let mut tput = FigureTable::new(
        format!("{fig_throughput} — {caption}, {}", mix.label()),
        "threads",
        "Mops/s",
        schemes,
    );
    let mut unrec = FigureTable::new(
        format!("{fig_unreclaimed} — {caption}, {}", mix.label()),
        "threads",
        "unreclaimed objects",
        schemes,
    );
    for &t in threads {
        let mut tput_row = Vec::with_capacity(schemes.len());
        let mut unrec_row = Vec::with_capacity(schemes.len());
        for &scheme in schemes {
            if !supports(scheme, structure) {
                tput_row.push(None);
                unrec_row.push(None);
                continue;
            }
            let params = BenchParams {
                threads: t,
                mix,
                ..base.clone()
            };
            let r = run_combo_recorded(fig_throughput, scheme, scheme, structure, &params, &mut sink)
                .expect("supported combo");
            tput_row.push(Some(r.mops));
            unrec_row.push(Some(r.avg_unreclaimed));
        }
        tput.push_row(t, tput_row);
        unrec.push_row(t, unrec_row);
    }
    (tput, unrec)
}

/// The robustness experiment (Figure 10a): a fixed number of active threads
/// while the number of *stalled* threads (parked inside an operation)
/// sweeps. Plots unreclaimed objects per scheme; Hyaline-S appears twice —
/// capped at `capped_slots` slots (the paper's "ran out of slots at 57"
/// series) and with §4.3 adaptive resizing.
pub fn robustness_figure(
    active: usize,
    stalled_counts: &[usize],
    capped_slots: usize,
    base: &BenchParams,
) -> FigureTable {
    robustness_figure_recorded(active, stalled_counts, capped_slots, base, None)
}

/// [`robustness_figure`] with optional JSONL recording: each `(series,
/// stalled)` run lands in `sink` under its series name (so the capped and
/// adaptive Hyaline-S configurations stay distinguishable) with the exact
/// `SmrConfig` it ran under.
pub fn robustness_figure_recorded(
    active: usize,
    stalled_counts: &[usize],
    capped_slots: usize,
    base: &BenchParams,
    mut sink: Option<&mut ResultSink>,
) -> FigureTable {
    const SCHEMES: &[&str] = &[
        "Hyaline",
        "Hyaline-1",
        "Hyaline-S",
        "Hyaline-S-adaptive",
        "Hyaline-1S",
        "Epoch",
        "IBR",
        "HE",
        "HP",
    ];
    let mut table = FigureTable::new(
        format!(
            "Fig 10a — robustness, Michael hash map, {} active threads, Hyaline-S capped at {} slots",
            active, capped_slots
        ),
        "stalled",
        "unreclaimed objects",
        SCHEMES,
    );
    for &stalled in stalled_counts {
        let mut row = Vec::with_capacity(SCHEMES.len());
        for &scheme in SCHEMES {
            let (name, config) = match scheme {
                "Hyaline-S" => (
                    "Hyaline-S",
                    SmrConfig {
                        slots: capped_slots,
                        adaptive: false,
                        ..base.config.clone()
                    },
                ),
                "Hyaline-S-adaptive" => (
                    "Hyaline-S",
                    SmrConfig {
                        slots: capped_slots,
                        adaptive: true,
                        ..base.config.clone()
                    },
                ),
                other => (other, base.config.clone()),
            };
            let params = BenchParams {
                threads: active,
                stalled,
                mix: OpMix::WriteIntensive,
                config,
                ..base.clone()
            };
            row.push(
                run_combo_recorded("Fig 10a", scheme, name, "hashmap", &params, &mut sink)
                    .map(|r| r.avg_unreclaimed),
            );
        }
        table.push_row(stalled, row);
    }
    table
}

/// The trimming experiment (Figure 10b): hash-map throughput with the slot
/// count capped low, comparing Hyaline(-S) driven by `trim` against plain
/// `leave`/`enter`.
pub fn trim_figure(threads: &[usize], capped_slots: usize, base: &BenchParams) -> FigureTable {
    const SERIES: &[&str] = &[
        "Hyaline (trim)",
        "Hyaline-S (trim)",
        "Hyaline",
        "Hyaline-S",
    ];
    let mut table = FigureTable::new(
        format!("Fig 10b — trimming, Michael hash map, k <= {capped_slots}"),
        "threads",
        "Mops/s",
        SERIES,
    );
    for &t in threads {
        let mut row = Vec::with_capacity(SERIES.len());
        for &series in SERIES {
            let (scheme, use_trim) = match series {
                "Hyaline (trim)" => ("Hyaline", true),
                "Hyaline-S (trim)" => ("Hyaline-S", true),
                "Hyaline" => ("Hyaline", false),
                "Hyaline-S" => ("Hyaline-S", false),
                _ => unreachable!(),
            };
            let params = BenchParams {
                threads: t,
                mix: OpMix::WriteIntensive,
                use_trim,
                config: SmrConfig {
                    slots: capped_slots,
                    ..base.config.clone()
                },
                ..base.clone()
            };
            row.push(run_combo(scheme, "hashmap", &params).map(|r| r.mops));
        }
        table.push_row(t, row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> BenchParams {
        BenchParams {
            secs: 0.02,
            prefill: 64,
            key_range: 128,
            config: SmrConfig {
                slots: 4,
                max_threads: 64,
                ..SmrConfig::default()
            },
            ..BenchParams::default()
        }
    }

    #[test]
    fn throughput_figures_fill_all_cells() {
        let (tput, unrec) =
            throughput_figures("Fig 8c", "Fig 9c", "hashmap", OpMix::WriteIntensive, &[1, 2], &quick());
        assert_eq!(tput.rows.len(), 2);
        assert_eq!(unrec.rows.len(), 2);
        assert!(tput.value(1, "Hyaline").unwrap() > 0.0);
        assert!(tput.value(2, "Epoch").unwrap() > 0.0);
    }

    #[test]
    fn bonsai_figure_marks_hp_unsupported() {
        let (tput, _) =
            throughput_figures("Fig 8b", "Fig 9b", "bonsai", OpMix::WriteIntensive, &[1], &quick());
        assert!(tput.value(1, "HP").is_none());
        assert!(tput.value(1, "Hyaline").is_some());
    }

    #[test]
    fn recorded_figures_emit_one_record_per_cell() {
        use crate::results::{Provenance, ResultSink};
        let mut sink = ResultSink::new(Provenance {
            git_sha: None,
            host_cores: 1,
            timestamp: "0".into(),
        });
        let (tput, _) = throughput_figures_recorded(
            "Fig 8c",
            "Fig 9c",
            "hashmap",
            OpMix::WriteIntensive,
            &[1, 2],
            &quick(),
            &["Hyaline", "Epoch"],
            Some(&mut sink),
        );
        assert_eq!(tput.schemes, vec!["Hyaline", "Epoch"]);
        assert_eq!(sink.records().len(), 4);
        assert!(sink
            .records()
            .iter()
            .any(|r| r.scheme == "Epoch" && r.threads == 2 && r.figure == "Fig 8c"));
        // The table cell and the record carry the same measurement.
        let rec = sink
            .records()
            .iter()
            .find(|r| r.scheme == "Hyaline" && r.threads == 1)
            .unwrap();
        assert_eq!(tput.value(1, "Hyaline"), Some(rec.mops));
    }

    #[test]
    fn recorded_robustness_keeps_series_distinct() {
        use crate::results::{Provenance, ResultSink};
        let mut sink = ResultSink::new(Provenance {
            git_sha: None,
            host_cores: 1,
            timestamp: "0".into(),
        });
        let table = robustness_figure_recorded(2, &[1], 4, &quick(), Some(&mut sink));
        assert_eq!(sink.records().len(), table.schemes.len());
        let adaptive = sink
            .records()
            .iter()
            .find(|r| r.scheme == "Hyaline-S-adaptive")
            .expect("adaptive series recorded");
        assert!(adaptive.adaptive);
        assert_eq!(adaptive.slots, 4);
        let capped = sink
            .records()
            .iter()
            .find(|r| r.scheme == "Hyaline-S")
            .expect("capped series recorded");
        assert!(!capped.adaptive);
    }

    #[test]
    fn trim_figure_has_four_series() {
        let table = trim_figure(&[2], 4, &quick());
        assert_eq!(table.schemes.len(), 4);
        assert!(table.value(2, "Hyaline (trim)").unwrap() > 0.0);
    }
}
