//! Minimal argument/environment configuration for the bench binaries.
//!
//! Benchmarks read their scale from (in priority order) command-line flags
//! after `--`, then `HYALINE_BENCH_*` environment variables, then scaled
//! defaults. The paper's full-scale parameters (10 s runs, 5 trials, 50 000
//! prefill over 100 000 keys, threads up to 144) are reachable via:
//!
//! ```text
//! cargo bench -p bench --bench fig8_9_write -- \
//!     --secs 10 --trials 5 --prefill 50000 --key-range 100000 \
//!     --threads 1,9,18,...,144
//! ```

use smr_core::SmrConfig;

use crate::driver::BenchParams;

/// Scale configuration shared by the bench binaries.
#[derive(Debug, Clone)]
pub struct BenchScale {
    /// Thread counts to sweep.
    pub threads: Vec<usize>,
    /// Stalled-thread counts for the robustness figure.
    pub stalled: Vec<usize>,
    /// Base parameters (duration, prefill, range, trials, config).
    pub base: BenchParams,
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.parse().ok()
}

fn env_f64(name: &str) -> Option<f64> {
    std::env::var(name).ok()?.parse().ok()
}

fn parse_list(s: &str) -> Vec<usize> {
    s.split(',')
        .filter_map(|part| part.trim().parse().ok())
        .collect()
}

impl Default for BenchScale {
    fn default() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        // Sweep through and past the core count: the paper's oversubscribed
        // regime (threads >> cores) is where Hyaline's asynchronous tracking
        // shines, so keep several oversubscribed points.
        let threads = vec![1, 2, cores.max(2), cores * 2, cores * 4, cores * 8]
            .into_iter()
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        Self {
            threads,
            stalled: vec![0, 1, 2, 4, 8, 12],
            base: BenchParams {
                secs: 0.25,
                trials: 1,
                prefill: 1_024,
                key_range: 2_048,
                config: SmrConfig {
                    slots: (cores * 2).next_power_of_two(),
                    max_threads: 512,
                    // The paper's 8192 assumes 10-second runs; scaled-down
                    // runs need Ack saturation (stalled-slot avoidance) to
                    // kick in correspondingly sooner.
                    ack_threshold: 256,
                    ..SmrConfig::default()
                },
                ..BenchParams::default()
            },
        }
    }
}

impl BenchScale {
    /// Builds the scale from defaults, environment, then CLI arguments.
    pub fn from_env_and_args() -> Self {
        let mut scale = Self::default();
        if let Some(v) = env_f64("HYALINE_BENCH_SECS") {
            scale.base.secs = v;
        }
        if let Some(v) = env_u64("HYALINE_BENCH_TRIALS") {
            scale.base.trials = v as usize;
        }
        if let Some(v) = env_u64("HYALINE_BENCH_PREFILL") {
            scale.base.prefill = v as usize;
        }
        if let Some(v) = env_u64("HYALINE_BENCH_KEY_RANGE") {
            scale.base.key_range = v;
        }
        if let Some(v) = env_u64("HYALINE_BENCH_ACK_THRESHOLD") {
            scale.base.config.ack_threshold = v as i64;
        }
        if let Ok(v) = std::env::var("HYALINE_BENCH_THREADS") {
            let list = parse_list(&v);
            if !list.is_empty() {
                scale.threads = list;
            }
        }
        if let Ok(v) = std::env::var("HYALINE_BENCH_STALLED") {
            let list = parse_list(&v);
            if !list.is_empty() {
                scale.stalled = list;
            }
        }

        let args: Vec<String> = std::env::args().collect();
        let mut i = 0;
        while i < args.len() {
            let take = |i: &mut usize| -> Option<String> {
                *i += 1;
                args.get(*i).cloned()
            };
            match args[i].as_str() {
                "--secs" => {
                    if let Some(v) = take(&mut i).and_then(|v| v.parse().ok()) {
                        scale.base.secs = v;
                    }
                }
                "--trials" => {
                    if let Some(v) = take(&mut i).and_then(|v| v.parse().ok()) {
                        scale.base.trials = v;
                    }
                }
                "--prefill" => {
                    if let Some(v) = take(&mut i).and_then(|v| v.parse().ok()) {
                        scale.base.prefill = v;
                    }
                }
                "--key-range" => {
                    if let Some(v) = take(&mut i).and_then(|v| v.parse().ok()) {
                        scale.base.key_range = v;
                    }
                }
                "--threads" => {
                    if let Some(v) = take(&mut i) {
                        let list = parse_list(&v);
                        if !list.is_empty() {
                            scale.threads = list;
                        }
                    }
                }
                "--stalled" => {
                    if let Some(v) = take(&mut i) {
                        let list = parse_list(&v);
                        if !list.is_empty() {
                            scale.stalled = list;
                        }
                    }
                }
                _ => {}
            }
            i += 1;
        }
        scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_include_oversubscription() {
        let scale = BenchScale::default();
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert!(scale.threads.iter().any(|&t| t > cores));
        assert!(scale.threads.contains(&1));
    }

    #[test]
    fn parse_list_handles_spaces() {
        assert_eq!(parse_list("1, 2,4"), vec![1, 2, 4]);
        assert_eq!(parse_list("x"), Vec::<usize>::new());
    }
}
