//! Minimal argument/environment configuration for the bench binaries.
//!
//! Benchmarks read their scale from (in priority order) command-line flags
//! after `--`, then `HYALINE_BENCH_*` environment variables, then scaled
//! defaults. Besides the workload scale, the reclamation layout is
//! settable: `--slots`/`--shards` (powers of two; `HYALINE_BENCH_SLOTS`,
//! `HYALINE_BENCH_SHARDS`) pin the slot budget and shard count so runs on
//! hosts with different core counts produce comparable perf-gate keys,
//! `--routing by-key|by-pointer` (`HYALINE_BENCH_ROUTING`) selects the
//! sharded routing mode,
//! `--handle-churn N` (`HYALINE_BENCH_HANDLE_CHURN`) makes workers return
//! their handles to a shared pool every `N` operations,
//! `--connections N` (`HYALINE_BENCH_CONNECTIONS`) sets the simulated
//! connection count of the async `kv-service` sweep,
//! `--recycle on|off` (`HYALINE_BENCH_RECYCLE`) toggles the node-recycling
//! layer (reclaimed nodes feed a per-domain pool that `alloc` reuses), and
//! `--max-threads N` (`HYALINE_BENCH_MAX_THREADS`) pins the registry/pool
//! capacity (set it below the thread count to exercise oversubscribed
//! pooling with host-independent perf-gate keys).
//!
//! The paper's full-scale parameters (10 s runs, 5 trials, 50 000
//! prefill over 100 000 keys, threads up to 144) are reachable via:
//!
//! ```text
//! cargo bench -p bench --bench fig8_9_write -- \
//!     --secs 10 --trials 5 --prefill 50000 --key-range 100000 \
//!     --threads 1,9,18,...,144
//! ```
//!
//! Only the arguments the invoking tool actually forwarded are scanned: if
//! the binary's own argv contains a literal `--` separator everything before
//! it belongs to the harness (cargo/criterion/libtest flags) and is ignored;
//! otherwise the whole argv tail is ours (cargo strips its `--` before
//! handing the rest to `cargo run`/`cargo bench` targets). Unparsable values
//! of known flags and malformed `HYALINE_BENCH_*` variables are *not*
//! silently dropped: each one produces a warning on stderr and the previous
//! (environment or default) value is kept.

use smr_core::{ShardRouting, SmrConfig};

use crate::driver::BenchParams;

/// Scale configuration shared by the bench binaries.
#[derive(Debug, Clone)]
pub struct BenchScale {
    /// Thread counts to sweep.
    pub threads: Vec<usize>,
    /// Stalled-thread counts for the robustness figure.
    pub stalled: Vec<usize>,
    /// Base parameters (duration, prefill, range, trials, config).
    pub base: BenchParams,
}

/// The slice of this process's argv that belongs to the benchmark, not to
/// cargo or the bench harness: everything after the first literal `--` if
/// one is present, else everything after the program name.
pub fn cli_args() -> Vec<String> {
    own_args(std::env::args().collect())
}

fn own_args(argv: Vec<String>) -> Vec<String> {
    match argv.iter().position(|a| a == "--") {
        Some(sep) => argv[sep + 1..].to_vec(),
        None => argv.into_iter().skip(1).collect(),
    }
}

/// Parses a power-of-two count (slot and shard layouts require one).
fn parse_pow2(raw: &str) -> Option<usize> {
    raw.parse().ok().filter(|v: &usize| v.is_power_of_two())
}

/// Parses a nonzero count (registry/pool capacities must not be zero).
fn parse_nonzero(raw: &str) -> Option<usize> {
    raw.parse().ok().filter(|v: &usize| *v > 0)
}

/// Parses an on/off toggle (`on`/`off`, `true`/`false`, `1`/`0`).
fn parse_bool(raw: &str) -> Option<bool> {
    match raw {
        "on" | "true" | "1" => Some(true),
        "off" | "false" | "0" => Some(false),
        _ => None,
    }
}

/// Parses a comma-separated list of counts, rejecting the whole value if
/// any entry is unparsable (so `1,x,8` cannot silently become `[1,8]`).
fn parse_list(s: &str) -> Result<Vec<usize>, String> {
    let mut out = Vec::new();
    for part in s.split(',') {
        let part = part.trim();
        out.push(
            part.parse()
                .map_err(|_| format!("`{part}` in `{s}` is not a thread count"))?,
        );
    }
    Ok(out)
}

impl Default for BenchScale {
    fn default() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        // Sweep through and past the core count: the paper's oversubscribed
        // regime (threads >> cores) is where Hyaline's asynchronous tracking
        // shines, so keep several oversubscribed points.
        let threads = vec![1, 2, cores.max(2), cores * 2, cores * 4, cores * 8]
            .into_iter()
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        Self {
            threads,
            stalled: vec![0, 1, 2, 4, 8, 12],
            base: BenchParams {
                secs: 0.25,
                trials: 1,
                prefill: 1_024,
                key_range: 2_048,
                config: SmrConfig {
                    slots: (cores * 2).next_power_of_two(),
                    max_threads: 512,
                    // The paper's 8192 assumes 10-second runs; scaled-down
                    // runs need Ack saturation (stalled-slot avoidance) to
                    // kick in correspondingly sooner.
                    ack_threshold: 256,
                    ..SmrConfig::default()
                },
                ..BenchParams::default()
            },
        }
    }
}

impl BenchScale {
    /// Builds the scale from defaults, environment, then CLI arguments.
    ///
    /// Every malformed value encountered along the way is reported on
    /// stderr (the benchmark still runs, with that value ignored).
    pub fn from_env_and_args() -> Self {
        let mut scale = Self::default();
        let mut warnings = scale.apply_env();
        warnings.extend(scale.apply_args(&cli_args()));
        for w in &warnings {
            eprintln!("bench-harness: warning: {w}");
        }
        scale
    }

    /// Applies `HYALINE_BENCH_*` environment variables, returning a warning
    /// per variable that is set but malformed.
    pub fn apply_env(&mut self) -> Vec<String> {
        let mut warnings = Vec::new();
        let mut scalar = |name: &str, expect: &str, apply: &mut dyn FnMut(&str) -> bool| {
            if let Ok(raw) = std::env::var(name) {
                if !apply(&raw) {
                    warnings.push(format!("ignoring {name}={raw}: expected {expect}"));
                }
            }
        };
        scalar("HYALINE_BENCH_SECS", "a number", &mut |raw| {
            raw.parse().map(|v| self.base.secs = v).is_ok()
        });
        scalar("HYALINE_BENCH_TRIALS", "a number", &mut |raw| {
            raw.parse().map(|v| self.base.trials = v).is_ok()
        });
        scalar("HYALINE_BENCH_PREFILL", "a number", &mut |raw| {
            raw.parse().map(|v| self.base.prefill = v).is_ok()
        });
        scalar("HYALINE_BENCH_KEY_RANGE", "a number", &mut |raw| {
            raw.parse().map(|v| self.base.key_range = v).is_ok()
        });
        scalar("HYALINE_BENCH_ACK_THRESHOLD", "a number", &mut |raw| {
            raw.parse().map(|v| self.base.config.ack_threshold = v).is_ok()
        });
        scalar("HYALINE_BENCH_SLOTS", "a power of two", &mut |raw| {
            parse_pow2(raw).map(|v| self.base.config.slots = v).is_some()
        });
        scalar("HYALINE_BENCH_SHARDS", "a power of two", &mut |raw| {
            parse_pow2(raw).map(|v| self.base.config.shards = v).is_some()
        });
        scalar("HYALINE_BENCH_HANDLE_CHURN", "a number", &mut |raw| {
            raw.parse().map(|v| self.base.handle_churn = v).is_ok()
        });
        scalar("HYALINE_BENCH_CONNECTIONS", "a number", &mut |raw| {
            raw.parse().map(|v| self.base.connections = v).is_ok()
        });
        scalar("HYALINE_BENCH_RECYCLE", "on or off", &mut |raw| {
            parse_bool(raw)
                .map(|v| self.base.config.recycle = v)
                .is_some()
        });
        scalar("HYALINE_BENCH_MAX_THREADS", "a nonzero count", &mut |raw| {
            parse_nonzero(raw)
                .map(|v| self.base.config.max_threads = v)
                .is_some()
        });
        scalar("HYALINE_BENCH_ROUTING", "by-key or by-pointer", &mut |raw| {
            ShardRouting::from_short_label(raw)
                .map(|v| self.base.config.routing = v)
                .is_some()
        });
        let mut list = |name: &str, apply: &mut dyn FnMut(Vec<usize>)| {
            if let Ok(raw) = std::env::var(name) {
                match parse_list(&raw) {
                    Ok(list) if !list.is_empty() => apply(list),
                    Ok(_) => warnings.push(format!("ignoring {name}: empty list")),
                    Err(e) => warnings.push(format!("ignoring {name}: {e}")),
                }
            }
        };
        list("HYALINE_BENCH_THREADS", &mut |l| self.threads = l);
        list("HYALINE_BENCH_STALLED", &mut |l| self.stalled = l);
        warnings
    }

    /// Applies benchmark flags from `args` (already stripped of harness
    /// flags by [`cli_args`]), returning a warning per malformed value.
    /// Unknown flags are ignored — they belong to the individual binary
    /// (`--scheme`, `--out`, ...) or to criterion.
    pub fn apply_args(&mut self, args: &[String]) -> Vec<String> {
        let mut warnings = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let flag = args[i].as_str();
            let known = matches!(
                flag,
                "--secs"
                    | "--trials"
                    | "--prefill"
                    | "--key-range"
                    | "--threads"
                    | "--stalled"
                    | "--slots"
                    | "--shards"
                    | "--routing"
                    | "--handle-churn"
                    | "--connections"
                    | "--max-threads"
                    | "--recycle"
            );
            if !known {
                i += 1;
                continue;
            }
            let Some(raw) = args.get(i + 1) else {
                warnings.push(format!("flag {flag} is missing its value"));
                break;
            };
            let ok = match flag {
                "--secs" => raw.parse().map(|v| self.base.secs = v).is_ok(),
                "--slots" => parse_pow2(raw).map(|v| self.base.config.slots = v).is_some(),
                "--shards" => parse_pow2(raw).map(|v| self.base.config.shards = v).is_some(),
                "--routing" => ShardRouting::from_short_label(raw)
                    .map(|v| self.base.config.routing = v)
                    .is_some(),
                "--handle-churn" => raw.parse().map(|v| self.base.handle_churn = v).is_ok(),
                "--connections" => raw.parse().map(|v| self.base.connections = v).is_ok(),
                "--recycle" => parse_bool(raw)
                    .map(|v| self.base.config.recycle = v)
                    .is_some(),
                "--max-threads" => parse_nonzero(raw)
                    .map(|v| self.base.config.max_threads = v)
                    .is_some(),
                "--trials" => raw.parse().map(|v| self.base.trials = v).is_ok(),
                "--prefill" => raw.parse().map(|v| self.base.prefill = v).is_ok(),
                "--key-range" => raw.parse().map(|v| self.base.key_range = v).is_ok(),
                "--threads" | "--stalled" => match parse_list(raw) {
                    Ok(list) if !list.is_empty() => {
                        if flag == "--threads" {
                            self.threads = list;
                        } else {
                            self.stalled = list;
                        }
                        true
                    }
                    Ok(_) => false,
                    Err(e) => {
                        warnings.push(format!("ignoring {flag} {raw}: {e}"));
                        i += 2;
                        continue;
                    }
                },
                _ => unreachable!(),
            };
            if !ok {
                let expect = match flag {
                    "--slots" | "--shards" => "a power of two",
                    "--routing" => "by-key or by-pointer",
                    "--max-threads" => "a nonzero count",
                    "--recycle" => "on or off",
                    "--threads" | "--stalled" => "a comma-separated list of counts",
                    _ => "a number",
                };
                warnings.push(format!("ignoring {flag} {raw}: expected {expect}"));
            }
            i += 2;
        }
        warnings
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_include_oversubscription() {
        let scale = BenchScale::default();
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert!(scale.threads.iter().any(|&t| t > cores));
        assert!(scale.threads.contains(&1));
    }

    #[test]
    fn parse_list_handles_spaces_and_rejects_junk() {
        assert_eq!(parse_list("1, 2,4").unwrap(), vec![1, 2, 4]);
        assert!(parse_list("x").is_err());
        // The bug this PR fixes: `1,x,8` must not silently become `[1,8]`.
        assert!(parse_list("1,x,8").is_err());
    }

    #[test]
    fn own_args_only_takes_flags_after_separator() {
        // cargo/criterion flags before `--` must be invisible to us.
        let argv = strings(&["bench-bin", "--bench", "--secs", "99", "--", "--secs", "7"]);
        assert_eq!(own_args(argv), strings(&["--secs", "7"]));
        // Without a separator the whole tail is ours (cargo strips its
        // own `--` before exec'ing run/bench targets).
        let argv = strings(&["bench-bin", "--secs", "7"]);
        assert_eq!(own_args(argv), strings(&["--secs", "7"]));
    }

    #[test]
    fn apply_args_sets_values_without_warnings() {
        let mut scale = BenchScale::default();
        let warnings = scale.apply_args(&strings(&[
            "--secs", "1.5", "--trials", "3", "--prefill", "10", "--key-range", "20",
            "--threads", "2,4", "--stalled", "0,1",
        ]));
        assert!(warnings.is_empty(), "{warnings:?}");
        assert_eq!(scale.base.secs, 1.5);
        assert_eq!(scale.base.trials, 3);
        assert_eq!(scale.base.prefill, 10);
        assert_eq!(scale.base.key_range, 20);
        assert_eq!(scale.threads, vec![2, 4]);
        assert_eq!(scale.stalled, vec![0, 1]);
    }

    #[test]
    fn apply_args_warns_on_bad_values_and_keeps_previous() {
        let mut scale = BenchScale::default();
        let default_threads = scale.threads.clone();
        let warnings = scale.apply_args(&strings(&[
            "--threads", "1,x,8", "--secs", "fast", "--trials",
        ]));
        assert_eq!(warnings.len(), 3, "{warnings:?}");
        assert!(warnings[0].contains("--threads"), "{warnings:?}");
        assert!(warnings[1].contains("--secs"), "{warnings:?}");
        assert!(warnings[2].contains("missing its value"), "{warnings:?}");
        assert_eq!(scale.threads, default_threads);
        assert_eq!(scale.base.secs, 0.25);
    }

    #[test]
    fn layout_flags_set_config_and_reject_non_powers_of_two() {
        let mut scale = BenchScale::default();
        let warnings = scale.apply_args(&strings(&[
            "--slots", "64", "--shards", "8", "--handle-churn", "32", "--connections", "10000",
        ]));
        assert!(warnings.is_empty(), "{warnings:?}");
        assert_eq!(scale.base.config.slots, 64);
        assert_eq!(scale.base.config.shards, 8);
        assert_eq!(scale.base.handle_churn, 32);
        assert_eq!(scale.base.connections, 10_000);
        let default_slots = scale.base.config.slots;
        let warnings = scale.apply_args(&strings(&["--slots", "6", "--shards", "0"]));
        assert_eq!(warnings.len(), 2, "{warnings:?}");
        assert_eq!(scale.base.config.slots, default_slots);
        assert_eq!(scale.base.config.shards, 8);
    }

    #[test]
    fn recycle_flag_toggles_and_rejects_junk() {
        let mut scale = BenchScale::default();
        assert!(!scale.base.config.recycle);
        let warnings = scale.apply_args(&strings(&["--recycle", "on"]));
        assert!(warnings.is_empty(), "{warnings:?}");
        assert!(scale.base.config.recycle);
        let warnings = scale.apply_args(&strings(&["--recycle", "maybe"]));
        assert_eq!(warnings.len(), 1, "{warnings:?}");
        assert!(warnings[0].contains("on or off"), "{warnings:?}");
        assert!(scale.base.config.recycle, "bad value must keep previous");
        let warnings = scale.apply_args(&strings(&["--recycle", "0"]));
        assert!(warnings.is_empty(), "{warnings:?}");
        assert!(!scale.base.config.recycle);
    }

    #[test]
    fn apply_args_ignores_unknown_flags_silently() {
        let mut scale = BenchScale::default();
        let warnings = scale.apply_args(&strings(&[
            "--scheme", "Hyaline", "--out", "x.jsonl", "--secs", "2.0", "--nocapture",
        ]));
        assert!(warnings.is_empty(), "{warnings:?}");
        assert_eq!(scale.base.secs, 2.0);
    }
}
