//! The benchmark harness reproducing the Hyaline paper's evaluation.
//!
//! The paper (Section 6 + Appendix A) evaluates nine reclamation schemes on
//! four lock-free data structures with two operation mixes, plus a
//! robustness experiment with stalled threads and a trimming experiment.
//! This crate provides:
//!
//! * [`workload`] — the paper's operation mixes and key distribution.
//! * [`driver`] — the measured run loop: prefill, fixed-duration mixed
//!   workload, throughput and unreclaimed-object sampling, stalled-thread
//!   injection, and §3.3 `trim`-driven operation windows.
//! * [`registry`] — string-keyed dispatch over every scheme × structure
//!   combination (mirroring the paper's figure legends, including the
//!   structural exclusions of HP/HE from the Bonsai tree).
//! * [`figures`] — one function per paper figure, returning render-ready
//!   [`report::FigureTable`]s.
//! * [`cli`] — scale configuration (duration, threads, prefill) from
//!   environment variables or arguments, with laptop-scale defaults.
//! * [`results`] — persistent JSONL benchmark records with full
//!   configuration provenance (dependency-free encoder/decoder), written by
//!   the `sweep` binary and the `--record` flag of the figure drivers.
//! * [`gate`] — the perf-regression gate consumed by the `perfgate` binary:
//!   compares two JSONL files with per-metric noise bands.
//!
//! # Example
//!
//! ```no_run
//! use bench_harness::driver::BenchParams;
//! use bench_harness::figures::throughput_figures;
//! use bench_harness::workload::OpMix;
//!
//! let (throughput, unreclaimed) = throughput_figures(
//!     "Fig 8c", "Fig 9c", "hashmap", OpMix::WriteIntensive, &[1, 2, 4], &BenchParams::default(),
//! );
//! println!("{throughput}\n{unreclaimed}");
//! ```

#![warn(missing_docs)]

pub mod cli;
pub mod driver;
pub mod figures;
pub mod gate;
pub mod registry;
pub mod report;
pub mod results;
pub mod workload;

pub use driver::{run_bench, BenchParams, RunResult};
pub use report::FigureTable;
pub use results::{BenchRecord, Provenance, ResultSink};
