//! The perf-regression gate: compares two JSONL result files.
//!
//! Records are grouped by configuration key (scheme, structure, mix,
//! threads, stalled, trim mode), duplicate records per key are averaged
//! (repeated sweeps appended to the same file act as extra trials), and each
//! key present in both files gets a per-metric verdict with a noise band:
//!
//! * **Mops/s** — lower than `baseline * (1 - tolerance)` is a regression.
//! * **avg unreclaimed** — higher than `baseline * (1 + tolerance) + slack`
//!   is a regression (the unreclaimed metric is far noisier than
//!   throughput, so its band is wider and carries an absolute slack for
//!   near-zero baselines).
//!
//! Identical files always pass: every delta is zero, inside any band.

use std::collections::BTreeMap;
use std::fmt;

use crate::results::BenchRecord;

/// Noise bands used by [`compare`].
#[derive(Debug, Clone, Copy)]
pub struct Tolerance {
    /// Fractional Mops/s band (0.10 = a 10% drop is still noise).
    pub mops_frac: f64,
    /// Fractional unreclaimed band.
    pub unreclaimed_frac: f64,
    /// Absolute unreclaimed slack added on top of the fractional band.
    pub unreclaimed_slack: f64,
}

impl Default for Tolerance {
    fn default() -> Self {
        Self {
            mops_frac: 0.10,
            unreclaimed_frac: 0.50,
            unreclaimed_slack: 64.0,
        }
    }
}

/// Identifies one benchmark configuration across files.
///
/// The key covers *every* parameter that shapes the measurement — the
/// workload (mix, threads, stalled, duration, prefill, key range, seed,
/// sampling, trim window) and the full `SmrConfig` — so records measured
/// under different configurations are never averaged together or compared
/// as if they were trials of one another. Only metrics and environment
/// provenance (git sha, host cores, timestamp) stay out of the key: those
/// are what the gate compares *across*.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ComboKey {
    /// Scheme series name.
    pub scheme: String,
    /// Structure name.
    pub structure: String,
    /// Operation-mix short label.
    pub mix: String,
    /// Active threads.
    pub threads: u64,
    /// Stalled threads.
    pub stalled: u64,
    /// Trim-driven operations.
    pub use_trim: bool,
    /// Measured seconds per trial, as raw bits (`f64` is not `Ord`;
    /// bit-equality is exactly what "same configuration" means here).
    pub secs_bits: u64,
    /// Elements prefilled.
    pub prefill: u64,
    /// Key range.
    pub key_range: u64,
    /// Sampling period.
    pub sample_every: u64,
    /// Trim window.
    pub trim_window: u64,
    /// RNG seed.
    pub seed: u64,
    /// `SmrConfig`: slot count.
    pub slots: u64,
    /// `SmrConfig`: minimum batch size.
    pub batch_min: u64,
    /// `SmrConfig`: era-advance frequency.
    pub era_freq: u64,
    /// `SmrConfig`: scan threshold.
    pub scan_threshold: u64,
    /// `SmrConfig`: protection indices.
    pub max_protect: u64,
    /// `SmrConfig`: Ack saturation threshold.
    pub ack_threshold: i64,
    /// `SmrConfig`: adaptive resizing.
    pub adaptive: bool,
    /// `SmrConfig`: registry capacity.
    pub max_threads: u64,
    /// `SmrConfig`: shard count (1 = unsharded).
    pub shards: u64,
    /// Operations per pooled-handle checkout (0 = no handle churn).
    pub handle_churn: u64,
    /// Shard routing mode label ("by-key" / "by-pointer").
    pub routing: String,
    /// Crystalline handoff threshold (pre-schema-4 lines decode as 8).
    pub handoff_attempts: u64,
    /// Node recycling enabled (pre-schema-5 lines decode as false).
    pub recycle: bool,
    /// Recycle-pool capacity as configured.
    pub recycle_capacity: u64,
    /// Recycle-magazine capacity as configured.
    pub recycle_magazine: u64,
    /// Simulated connections (0 = thread-driven run).
    pub connections: u64,
}

impl ComboKey {
    fn of(r: &BenchRecord) -> Self {
        Self {
            scheme: r.scheme.clone(),
            structure: r.structure.clone(),
            mix: r.mix.clone(),
            threads: r.threads,
            stalled: r.stalled,
            use_trim: r.use_trim,
            secs_bits: r.secs.to_bits(),
            prefill: r.prefill,
            key_range: r.key_range,
            sample_every: r.sample_every,
            trim_window: r.trim_window,
            seed: r.seed,
            slots: r.slots,
            batch_min: r.batch_min,
            era_freq: r.era_freq,
            scan_threshold: r.scan_threshold,
            max_protect: r.max_protect,
            ack_threshold: r.ack_threshold,
            adaptive: r.adaptive,
            max_threads: r.max_threads,
            shards: r.shards,
            handle_churn: r.handle_churn,
            routing: r.routing.clone(),
            handoff_attempts: r.handoff_attempts,
            recycle: r.recycle,
            recycle_capacity: r.recycle_capacity,
            recycle_magazine: r.recycle_magazine,
            connections: r.connections,
        }
    }
}

impl fmt::Display for ComboKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} {} t={}",
            self.scheme, self.structure, self.mix, self.threads
        )?;
        if self.stalled > 0 {
            write!(f, " stalled={}", self.stalled)?;
        }
        if self.use_trim {
            write!(f, " trim")?;
        }
        // Enough of the configuration to tell colliding-looking lines
        // apart; the JSONL files hold the rest.
        if self.shards > 1 {
            write!(f, " shards={} routing={}", self.shards, self.routing)?;
        }
        if self.handle_churn > 0 {
            write!(f, " churn={}", self.handle_churn)?;
        }
        if self.connections > 0 {
            write!(f, " conns={}", self.connections)?;
        }
        if self.handoff_attempts != 8 {
            write!(f, " handoff={}", self.handoff_attempts)?;
        }
        if self.recycle {
            write!(f, " recycle")?;
        }
        write!(
            f,
            " [secs={} range={} slots={}{}]",
            f64::from_bits(self.secs_bits),
            self.key_range,
            self.slots,
            if self.adaptive { " adaptive" } else { "" },
        )
    }
}

/// Verdict for one metric of one configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Outside the band in the bad direction.
    Regressed,
    /// Outside the band in the good direction.
    Improved,
    /// Inside the noise band.
    WithinNoise,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Verdict::Regressed => "REGRESSED",
            Verdict::Improved => "improved",
            Verdict::WithinNoise => "ok",
        })
    }
}

/// Per-configuration comparison of baseline vs candidate.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// The configuration compared.
    pub key: ComboKey,
    /// Baseline Mops/s (averaged over duplicate records).
    pub baseline_mops: f64,
    /// Candidate Mops/s.
    pub candidate_mops: f64,
    /// Throughput verdict.
    pub mops_verdict: Verdict,
    /// Baseline avg unreclaimed.
    pub baseline_unreclaimed: f64,
    /// Candidate avg unreclaimed.
    pub candidate_unreclaimed: f64,
    /// Unreclaimed verdict.
    pub unreclaimed_verdict: Verdict,
}

impl Comparison {
    /// Fractional throughput change, candidate vs baseline (−0.2 = 20% slower).
    pub fn mops_delta_frac(&self) -> f64 {
        if self.baseline_mops == 0.0 {
            0.0
        } else {
            self.candidate_mops / self.baseline_mops - 1.0
        }
    }
}

/// The full gate outcome.
#[derive(Debug, Clone, Default)]
pub struct GateReport {
    /// Per-configuration comparisons, key-ordered.
    pub comparisons: Vec<Comparison>,
    /// Configurations only the baseline has (coverage shrank).
    pub only_in_baseline: Vec<ComboKey>,
    /// Configurations only the candidate has (new coverage; never a failure).
    pub only_in_candidate: Vec<ComboKey>,
}

impl GateReport {
    /// Whether any metric of any configuration regressed.
    pub fn has_regression(&self) -> bool {
        self.comparisons.iter().any(|c| {
            c.mops_verdict == Verdict::Regressed || c.unreclaimed_verdict == Verdict::Regressed
        })
    }

    /// The `--require-overlap` verdict: `None` when at least one comparison
    /// happened and every baseline configuration found its candidate
    /// counterpart; otherwise the failure text naming *each* baseline combo
    /// that was never compared, so the log shows which key drifted (scheme
    /// renamed, a config flag or host default changed) instead of only how
    /// many.
    pub fn overlap_failure(&self) -> Option<String> {
        if !self.comparisons.is_empty() && self.only_in_baseline.is_empty() {
            return None;
        }
        let mut msg = if self.comparisons.is_empty() {
            "nothing was compared".to_string()
        } else {
            format!(
                "{} of {} baseline configuration(s) have no candidate counterpart",
                self.only_in_baseline.len(),
                self.comparisons.len() + self.only_in_baseline.len()
            )
        };
        for k in &self.only_in_baseline {
            msg.push_str("\n  not compared: ");
            msg.push_str(&k.to_string());
        }
        Some(msg)
    }

    /// Counts of (regressed, improved, within-noise) across both metrics.
    pub fn tallies(&self) -> (usize, usize, usize) {
        let mut t = (0, 0, 0);
        for v in self
            .comparisons
            .iter()
            .flat_map(|c| [c.mops_verdict, c.unreclaimed_verdict])
        {
            match v {
                Verdict::Regressed => t.0 += 1,
                Verdict::Improved => t.1 += 1,
                Verdict::WithinNoise => t.2 += 1,
            }
        }
        t
    }
}

impl fmt::Display for GateReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let width = self
            .comparisons
            .iter()
            .map(|c| &c.key)
            .chain(&self.only_in_baseline)
            .chain(&self.only_in_candidate)
            .map(|k| k.to_string().len())
            .max()
            .unwrap_or(0)
            .max(55);
        for c in &self.comparisons {
            writeln!(
                f,
                "{:<width$} mops {:>9.4} -> {:>9.4} ({:+6.1}%) {:<9}  unreclaimed {:>10.1} -> {:>10.1} {}",
                c.key.to_string(),
                c.baseline_mops,
                c.candidate_mops,
                100.0 * c.mops_delta_frac(),
                c.mops_verdict.to_string(),
                c.baseline_unreclaimed,
                c.candidate_unreclaimed,
                c.unreclaimed_verdict,
            )?;
        }
        for k in &self.only_in_baseline {
            writeln!(f, "{:<width$} missing from candidate (not compared)", k.to_string())?;
        }
        for k in &self.only_in_candidate {
            writeln!(f, "{:<width$} new in candidate (no baseline yet)", k.to_string())?;
        }
        let (reg, imp, noise) = self.tallies();
        writeln!(
            f,
            "verdicts: {reg} regressed, {imp} improved, {noise} within noise \
             ({} compared, {} baseline-only, {} candidate-only)",
            self.comparisons.len(),
            self.only_in_baseline.len(),
            self.only_in_candidate.len(),
        )
    }
}

#[derive(Default)]
struct Averaged {
    mops: f64,
    unreclaimed: f64,
    n: u64,
}

fn aggregate(records: &[BenchRecord]) -> BTreeMap<ComboKey, Averaged> {
    let mut map: BTreeMap<ComboKey, Averaged> = BTreeMap::new();
    for r in records {
        let e = map.entry(ComboKey::of(r)).or_default();
        e.mops += r.mops;
        e.unreclaimed += r.avg_unreclaimed;
        e.n += 1;
    }
    for e in map.values_mut() {
        e.mops /= e.n as f64;
        e.unreclaimed /= e.n as f64;
    }
    map
}

/// Compares candidate records against a baseline under `tol`.
pub fn compare(baseline: &[BenchRecord], candidate: &[BenchRecord], tol: Tolerance) -> GateReport {
    let base = aggregate(baseline);
    let mut cand = aggregate(candidate);
    let mut report = GateReport::default();
    for (key, b) in base {
        let Some(c) = cand.remove(&key) else {
            report.only_in_baseline.push(key);
            continue;
        };
        let mops_verdict = if c.mops < b.mops * (1.0 - tol.mops_frac) {
            Verdict::Regressed
        } else if c.mops > b.mops * (1.0 + tol.mops_frac) {
            Verdict::Improved
        } else {
            Verdict::WithinNoise
        };
        let unrec_high = b.unreclaimed * (1.0 + tol.unreclaimed_frac) + tol.unreclaimed_slack;
        let unrec_low = b.unreclaimed * (1.0 - tol.unreclaimed_frac) - tol.unreclaimed_slack;
        let unreclaimed_verdict = if c.unreclaimed > unrec_high {
            Verdict::Regressed
        } else if c.unreclaimed < unrec_low {
            Verdict::Improved
        } else {
            Verdict::WithinNoise
        };
        report.comparisons.push(Comparison {
            key,
            baseline_mops: b.mops,
            candidate_mops: c.mops,
            mops_verdict,
            baseline_unreclaimed: b.unreclaimed,
            candidate_unreclaimed: c.unreclaimed,
            unreclaimed_verdict,
        });
    }
    report.only_in_candidate.extend(cand.into_keys());
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{BenchParams, RunResult};
    use crate::results::{BenchRecord, Provenance};
    use crate::workload::OpMix;

    fn record(scheme: &str, threads: usize, mops: f64, unreclaimed: f64) -> BenchRecord {
        let params = BenchParams {
            threads,
            mix: OpMix::WriteIntensive,
            ..BenchParams::default()
        };
        let result = RunResult {
            mops,
            avg_unreclaimed: unreclaimed,
            ops: (mops * 1e6) as u64,
            ..RunResult::default()
        };
        let prov = Provenance {
            git_sha: None,
            host_cores: 4,
            timestamp: "0".into(),
        };
        BenchRecord::from_run("test", scheme, "hashmap", &params, &result, &prov)
    }

    #[test]
    fn identical_files_pass() {
        let recs = vec![record("Hyaline", 4, 10.0, 100.0), record("Epoch", 4, 8.0, 500.0)];
        let report = compare(&recs, &recs, Tolerance::default());
        assert!(!report.has_regression());
        assert_eq!(report.comparisons.len(), 2);
        assert!(report
            .comparisons
            .iter()
            .all(|c| c.mops_verdict == Verdict::WithinNoise
                && c.unreclaimed_verdict == Verdict::WithinNoise));
    }

    #[test]
    fn clear_regression_detected() {
        // 20% throughput drop against a 10% band: regression.
        let base = vec![record("Hyaline", 4, 10.0, 100.0)];
        let cand = vec![record("Hyaline", 4, 8.0, 100.0)];
        let report = compare(&base, &cand, Tolerance::default());
        assert!(report.has_regression());
        assert_eq!(report.comparisons[0].mops_verdict, Verdict::Regressed);
        assert_eq!(
            report.comparisons[0].unreclaimed_verdict,
            Verdict::WithinNoise
        );
        assert!((report.comparisons[0].mops_delta_frac() + 0.2).abs() < 1e-12);
    }

    #[test]
    fn clear_improvement_detected() {
        let base = vec![record("Hyaline", 4, 10.0, 1000.0)];
        let cand = vec![record("Hyaline", 4, 13.0, 100.0)];
        let report = compare(&base, &cand, Tolerance::default());
        assert!(!report.has_regression());
        assert_eq!(report.comparisons[0].mops_verdict, Verdict::Improved);
        assert_eq!(report.comparisons[0].unreclaimed_verdict, Verdict::Improved);
    }

    #[test]
    fn within_noise_passes() {
        // 5% drop inside the 10% band; unreclaimed up but inside frac+slack.
        let base = vec![record("Hyaline", 4, 10.0, 100.0)];
        let cand = vec![record("Hyaline", 4, 9.5, 140.0)];
        let report = compare(&base, &cand, Tolerance::default());
        assert!(!report.has_regression());
        let c = &report.comparisons[0];
        assert_eq!(c.mops_verdict, Verdict::WithinNoise);
        assert_eq!(c.unreclaimed_verdict, Verdict::WithinNoise);
    }

    #[test]
    fn unreclaimed_blowup_is_a_regression() {
        let base = vec![record("Hyaline-S", 8, 10.0, 100.0)];
        let cand = vec![record("Hyaline-S", 8, 10.0, 500.0)];
        let report = compare(&base, &cand, Tolerance::default());
        assert!(report.has_regression());
        assert_eq!(report.comparisons[0].mops_verdict, Verdict::WithinNoise);
        assert_eq!(report.comparisons[0].unreclaimed_verdict, Verdict::Regressed);
    }

    #[test]
    fn duplicate_records_average_as_trials() {
        // Baseline 10.0; candidate trials 8.0 and 12.0 average to 10.0.
        let base = vec![record("Hyaline", 4, 10.0, 0.0)];
        let cand = vec![record("Hyaline", 4, 8.0, 0.0), record("Hyaline", 4, 12.0, 0.0)];
        let report = compare(&base, &cand, Tolerance::default());
        assert!(!report.has_regression());
        assert!((report.comparisons[0].candidate_mops - 10.0).abs() < 1e-12);
    }

    #[test]
    fn coverage_changes_reported_not_failed() {
        let base = vec![record("Hyaline", 4, 10.0, 0.0), record("Epoch", 4, 8.0, 0.0)];
        let cand = vec![record("Hyaline", 4, 10.0, 0.0), record("HP", 4, 2.0, 0.0)];
        let report = compare(&base, &cand, Tolerance::default());
        assert!(!report.has_regression());
        assert_eq!(report.only_in_baseline.len(), 1);
        assert_eq!(report.only_in_candidate.len(), 1);
        assert_eq!(report.only_in_baseline[0].scheme, "Epoch");
        assert_eq!(report.only_in_candidate[0].scheme, "HP");
        let text = report.to_string();
        assert!(text.contains("missing from candidate"));
        assert!(text.contains("new in candidate"));
    }

    #[test]
    fn different_configs_never_average_or_compare() {
        let a = record("Hyaline", 4, 10.0, 0.0);
        // Same scheme/structure/mix/threads but a different key range:
        // a different experiment, so the records must not be compared.
        let mut b = record("Hyaline", 4, 2.0, 0.0);
        b.key_range = 100_000;
        let report = compare(
            std::slice::from_ref(&a),
            std::slice::from_ref(&b),
            Tolerance::default(),
        );
        assert!(!report.has_regression());
        assert!(report.comparisons.is_empty());
        assert_eq!(report.only_in_baseline.len(), 1);
        assert_eq!(report.only_in_candidate.len(), 1);
        // Within one file, different SmrConfigs keep separate keys instead
        // of silently averaging (e.g. capped vs default slots).
        let mut c = record("Hyaline", 4, 100.0, 0.0);
        c.slots += 1;
        let report = compare(&[a.clone(), c.clone()], &[a, c], Tolerance::default());
        assert_eq!(report.comparisons.len(), 2);
        assert!(!report.has_regression());
    }

    #[test]
    fn sharded_and_churn_configs_key_separately() {
        // A sharded run and a handle-churn run of the same scheme must not
        // be averaged with (or compared against) the plain configuration.
        let plain = record("Hyaline", 4, 10.0, 0.0);
        let mut sharded = record("Hyaline", 4, 14.0, 0.0);
        sharded.shards = 4;
        let mut churn = record("Hyaline", 4, 6.0, 0.0);
        churn.handle_churn = 32;
        let file = vec![plain, sharded.clone(), churn];
        let report = compare(&file, &file, Tolerance::default());
        assert_eq!(report.comparisons.len(), 3);
        assert!(!report.has_regression());
        let line = ComboKey::of(&sharded).to_string();
        assert!(line.contains("shards=4"), "{line}");
    }

    #[test]
    fn recycling_configs_key_separately() {
        // A pooled (recycle on) run of the same scheme must not be averaged
        // with or compared against the malloc configuration.
        let malloc = record("Hyaline", 4, 10.0, 0.0);
        let mut pooled = record("Hyaline", 4, 13.0, 0.0);
        pooled.recycle = true;
        let file = vec![malloc, pooled.clone()];
        let report = compare(&file, &file, Tolerance::default());
        assert_eq!(report.comparisons.len(), 2);
        assert!(!report.has_regression());
        let line = ComboKey::of(&pooled).to_string();
        assert!(line.contains(" recycle"), "{line}");
    }

    #[test]
    fn overlap_failure_names_each_missing_combo() {
        let shared = record("Hyaline", 4, 10.0, 0.0);
        let gone = record("Epoch", 8, 8.0, 0.0);
        // Full overlap: no failure.
        let ok = compare(
            std::slice::from_ref(&shared),
            std::slice::from_ref(&shared),
            Tolerance::default(),
        );
        assert_eq!(ok.overlap_failure(), None);
        // Partial overlap: the verdict names exactly the vanished combo.
        let partial = compare(
            &[shared.clone(), gone.clone()],
            std::slice::from_ref(&shared),
            Tolerance::default(),
        );
        let msg = partial.overlap_failure().expect("partial overlap must fail");
        assert_eq!(
            msg,
            format!(
                "1 of 2 baseline configuration(s) have no candidate counterpart\
                 \n  not compared: {}",
                ComboKey::of(&gone)
            )
        );
        // Disjoint files: "nothing was compared", listing every baseline combo.
        let disjoint = compare(
            &[shared.clone(), gone.clone()],
            &[record("HP", 2, 1.0, 0.0)],
            Tolerance::default(),
        );
        let msg = disjoint.overlap_failure().expect("disjoint files must fail");
        assert_eq!(
            msg,
            format!(
                "nothing was compared\n  not compared: {}\n  not compared: {}",
                ComboKey::of(&gone),
                ComboKey::of(&shared)
            )
        );
        // Candidate-only combos never trip the overlap check.
        let grown = compare(
            std::slice::from_ref(&shared),
            &[shared.clone(), gone],
            Tolerance::default(),
        );
        assert_eq!(grown.overlap_failure(), None);
    }

    #[test]
    fn zero_baseline_mops_does_not_divide_by_zero() {
        let base = vec![record("Hyaline", 4, 0.0, 0.0)];
        let cand = vec![record("Hyaline", 4, 0.0, 0.0)];
        let report = compare(&base, &cand, Tolerance::default());
        assert!(!report.has_regression());
        assert_eq!(report.comparisons[0].mops_delta_frac(), 0.0);
    }
}
