//! Stand-in for Figures 13–16 (the paper's PowerPC evaluation).
//!
//! The paper reruns the write-intensive and read-mostly sweeps on an 8-core
//! (64 hardware thread) POWER machine using the single-width LL/SC
//! implementation of Section 4.4 (Figure 7). No PPC hardware is available
//! here, so per DESIGN.md's substitution table this target:
//!
//! 1. exercises the Figure 7 LL/SC *algorithm* through the software
//!    reservation-granule model in `hyaline::llsc` (the paper-specific
//!    logic: reservation loss on granule sharing, the delayed `HPtr := 0`
//!    claim when `HRef` reaches zero), and
//! 2. reruns a reduced thread sweep of both workloads on this machine —
//!    "although absolute numbers are different, overall trends in Hyaline
//!    remain the same" is exactly the paper's own observation for PPC.

use bench_harness::cli::BenchScale;
use bench_harness::figures::throughput_figures;
use bench_harness::workload::OpMix;
use hyaline::llsc::{dw_cas_ptr, dw_cas_ref, LlscHead, Pair};

fn exercise_llsc_model() {
    println!("-- Section 4.4 LL/SC model (Figure 7 operations) --");
    // dwFAA keeps HPtr intact while incrementing HRef.
    let head = LlscHead::new();
    for _ in 0..1_000 {
        head.enter();
    }
    assert_eq!(head.pair(), Pair { href: 1_000, hptr: 0 });
    println!("   dwFAA x1000: HRef=1000, HPtr intact");

    // Concurrent hammering: enters, pushes and leaves with the granule
    // model; the pair must end balanced.
    let head = &LlscHead::new();
    std::thread::scope(|s| {
        for t in 1..=4u32 {
            s.spawn(move || {
                for i in 0..50_000u32 {
                    head.enter();
                    let mut cur = head.pair();
                    loop {
                        if cur.href == 0 {
                            break;
                        }
                        match head.push(cur, t * 1_000_000 + i) {
                            Ok(()) => break,
                            Err(seen) => cur = seen,
                        }
                    }
                    head.leave();
                }
            });
        }
    });
    assert_eq!(head.pair(), Pair { href: 0, hptr: 0 });
    println!("   4 threads x 50k enter/push/leave cycles: head returned to [0, null]");

    // The weak-CAS flavors validate both words.
    let g = hyaline::llsc::Granule::new();
    assert!(dw_cas_ptr(&g, Pair { href: 0, hptr: 0 }, 5));
    assert!(!dw_cas_ref(&g, Pair { href: 0, hptr: 0 }, 1), "stale pair must fail");
    assert!(dw_cas_ref(&g, Pair { href: 0, hptr: 5 }, 1));
    println!("   dwCAS_Ptr/dwCAS_Ref validate the full [HRef, HPtr] pair\n");
}

fn main() {
    println!("== Figures 13-16: PowerPC evaluation (x86-64 stand-in, see DESIGN.md) ==\n");
    exercise_llsc_model();

    let mut scale = BenchScale::from_env_and_args();
    // A reduced sweep: the full curves live in fig8_9_write / fig11_12_read.
    if scale.threads.len() > 3 {
        let n = scale.threads.len();
        scale.threads = vec![
            scale.threads[0],
            scale.threads[n / 2],
            scale.threads[n - 1],
        ];
    }
    for (fig_t, fig_u, structure, mix) in [
        ("Fig 13c", "Fig 14c", "hashmap", OpMix::WriteIntensive),
        ("Fig 15c", "Fig 16c", "hashmap", OpMix::ReadMostly),
    ] {
        let (tput, unrec) =
            throughput_figures(fig_t, fig_u, structure, mix, &scale.threads, &scale.base);
        println!("{tput}");
        println!("{unrec}");
    }
}
