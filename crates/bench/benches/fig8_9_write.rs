//! Regenerates Figures 8a–8d (throughput) and 9a–9d (unreclaimed objects
//! per operation) for the write-intensive workload (50% insert / 50%
//! delete) across the four benchmark structures.
//!
//! Absolute numbers depend on the host; the paper's qualitative shape to
//! check is: all Hyaline variants at or above Epoch, with the gap growing
//! once threads exceed cores (oversubscription), HP slowest, and the
//! Hyaline variants keeping the smallest unreclaimed counts.
//!
//! Pass `--record FILE.jsonl` to append one provenance-stamped JSONL
//! record per measured cell (see `bench_harness::results`) from the same
//! runs that fill the printed tables.

use bench_harness::cli::{cli_args, BenchScale};
use bench_harness::figures::throughput_figures_recorded;
use bench_harness::registry::FIGURE_SCHEMES;
use bench_harness::results::{wall_clock_timestamp, Provenance, ResultSink};
use bench_harness::workload::OpMix;

fn main() {
    let scale = BenchScale::from_env_and_args();
    let record_path = bench::record_path_from(&cli_args());
    let mut sink = record_path
        .as_ref()
        .map(|_| ResultSink::new(Provenance::detect(wall_clock_timestamp())));
    println!(
        "== Write-intensive workload, {} trial(s) x {:.2}s, prefill {} of {} keys ==\n",
        scale.base.trials, scale.base.secs, scale.base.prefill, scale.base.key_range
    );
    let panels = [
        ("Fig 8a", "Fig 9a", "list"),
        ("Fig 8b", "Fig 9b", "bonsai"),
        ("Fig 8c", "Fig 9c", "hashmap"),
        ("Fig 8d", "Fig 9d", "nmtree"),
    ];
    for (fig_t, fig_u, structure) in panels {
        let (tput, unrec) = throughput_figures_recorded(
            fig_t,
            fig_u,
            structure,
            OpMix::WriteIntensive,
            &scale.threads,
            &scale.base,
            FIGURE_SCHEMES,
            sink.as_mut(),
        );
        println!("{tput}");
        println!("{unrec}");
    }
    bench::flush_records(record_path.as_deref(), sink.as_ref());
}
