//! Regenerates Figures 11a–11d (throughput) and 12a–12d (unreclaimed
//! objects) for the read-mostly workload (90% get / 10% put) on x86-64
//! (the paper's Appendix A).

use bench_harness::cli::BenchScale;
use bench_harness::figures::throughput_figures;
use bench_harness::workload::OpMix;

fn main() {
    let scale = BenchScale::from_env_and_args();
    println!(
        "== Read-mostly workload, {} trial(s) x {:.2}s, prefill {} of {} keys ==\n",
        scale.base.trials, scale.base.secs, scale.base.prefill, scale.base.key_range
    );
    let panels = [
        ("Fig 11a", "Fig 12a", "list"),
        ("Fig 11b", "Fig 12b", "bonsai"),
        ("Fig 11c", "Fig 12c", "hashmap"),
        ("Fig 11d", "Fig 12d", "nmtree"),
    ];
    for (fig_t, fig_u, structure) in panels {
        let (tput, unrec) = throughput_figures(
            fig_t,
            fig_u,
            structure,
            OpMix::ReadMostly,
            &scale.threads,
            &scale.base,
        );
        println!("{tput}");
        println!("{unrec}");
    }
}
