//! Theorem 3: the reclamation cost in all Hyaline variants is ≈ O(1) per
//! operation, irrespective of the total number of threads.
//!
//! This target isolates the pure reclamation path — no data structure, just
//! `enter; alloc; retire; leave` churn per thread — and sweeps the thread
//! count far past the core count. The paper's claim to check: aggregate
//! retire throughput of the Hyaline variants stays roughly flat once cores
//! saturate (each retire is an O(1) batch append; each leave walks only
//! batches retired during the operation), while scan-based schemes pay an
//! O(n)-in-threads scan whenever they reclaim, so their aggregate
//! throughput decays as threads are added.

use bench_harness::cli::BenchScale;
use bench_harness::report::FigureTable;
use hyaline::{Hyaline, Hyaline1, Hyaline1S, HyalineS};
use smr_baselines::{Ebr, He, Hp, Ibr};
use smr_core::{Smr, SmrConfig, SmrHandle};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;
use std::time::Instant;

/// Aggregate alloc+retire throughput (Mops) for one scheme at `threads`.
fn churn_mops<S: Smr<u64>>(threads: usize, secs: f64, config: &SmrConfig) -> f64 {
    let domain = &S::with_config(config.clone());
    let stop = &AtomicBool::new(false);
    let barrier = &Barrier::new(threads + 1);
    let total: u64 = std::thread::scope(|s| {
        let workers: Vec<_> = (0..threads)
            .map(|t| {
                s.spawn(move || {
                    let mut h = domain.handle();
                    let mut ops = 0u64;
                    barrier.wait();
                    while !stop.load(Ordering::Relaxed) {
                        h.enter();
                        let node = h.alloc(t as u64 + ops);
                        unsafe { h.retire(node) };
                        h.leave();
                        ops += 1;
                    }
                    h.flush();
                    ops
                })
            })
            .collect();
        barrier.wait();
        let start = Instant::now();
        std::thread::sleep(std::time::Duration::from_secs_f64(secs));
        stop.store(true, Ordering::SeqCst);
        let _ = start;
        workers.into_iter().map(|w| w.join().unwrap()).sum()
    });
    assert!(
        domain.stats().balanced(),
        "{}: unbalanced after quiescence",
        S::name()
    );
    total as f64 / secs / 1e6
}

fn main() {
    let scale = BenchScale::from_env_and_args();
    let secs = scale.base.secs;
    let config = scale.base.config.clone();
    const SCHEMES: &[&str] = &[
        "Hyaline",
        "Hyaline-1",
        "Hyaline-S",
        "Hyaline-1S",
        "Epoch",
        "IBR",
        "HE",
        "HP",
    ];
    println!(
        "== Theorem 3: pure alloc+retire churn, {secs:.2}s per cell, {} slots ==\n",
        config.slots
    );
    let mut table = FigureTable::new(
        "Theorem 3 — aggregate retire throughput vs thread count".to_string(),
        "threads",
        "Mops/s",
        SCHEMES,
    );
    for &t in &scale.threads {
        let row = SCHEMES
            .iter()
            .map(|&scheme| {
                Some(match scheme {
                    "Hyaline" => churn_mops::<Hyaline<u64>>(t, secs, &config),
                    "Hyaline-1" => churn_mops::<Hyaline1<u64>>(t, secs, &config),
                    "Hyaline-S" => churn_mops::<HyalineS<u64>>(t, secs, &config),
                    "Hyaline-1S" => churn_mops::<Hyaline1S<u64>>(t, secs, &config),
                    "Epoch" => churn_mops::<Ebr<u64>>(t, secs, &config),
                    "IBR" => churn_mops::<Ibr<u64>>(t, secs, &config),
                    "HE" => churn_mops::<He<u64>>(t, secs, &config),
                    "HP" => churn_mops::<Hp<u64>>(t, secs, &config),
                    _ => unreachable!(),
                })
            })
            .collect();
        table.push_row(t, row);
    }
    println!("{table}");
    println!(
        "Shape to check (Theorem 3): Hyaline columns stay roughly flat past the\n\
         core count; scan-based schemes decay as each reclaiming scan visits\n\
         every registered thread."
    );
}
