//! Regenerates Figure 10b: hash-map throughput with the Hyaline slot count
//! capped low (the paper uses k <= 32 on a 72-core box, i.e. well below the
//! core count), comparing §3.3 `trim`-driven operation windows against
//! plain per-operation `enter`/`leave`.
//!
//! The paper's shape to check: with few threads trimming helps only
//! marginally; as threads grow past the slot count, trimming alleviates
//! the Head contention significantly.

use bench_harness::cli::BenchScale;
use bench_harness::figures::trim_figure;

fn main() {
    let scale = BenchScale::from_env_and_args();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // Cap slots below the sweep's maximum thread count (k << threads).
    let capped_slots = cores.max(2).next_power_of_two() / 2;
    let capped_slots = capped_slots.max(2);
    println!(
        "== Trimming: Michael hash map, slots capped at {capped_slots}, threads {:?} ==\n",
        scale.threads
    );
    let table = trim_figure(&scale.threads, capped_slots, &scale.base);
    println!("{table}");
}
