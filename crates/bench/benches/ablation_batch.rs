//! Ablations for the design choices DESIGN.md calls out:
//!
//! 1. **Batch size** (§3.2: "batch size impacts the cost of retirement in a
//!    way that is similar to the frequency of epoch counter increments") —
//!    hash-map write throughput as `batch_min` sweeps.
//! 2. **Slot count** (§3.1 vs §3.2: the simplified single-list version is
//!    "more prone to CAS contention") — throughput as `slots` sweeps from 1
//!    (the simplified version) upward.
//! 3. **Era frequency** for Hyaline-S (Figure 5's `Freq`) — throughput vs
//!    unreclaimed-objects trade-off.
//! 4. **Ack threshold** for Hyaline-S (§4.2: "after some threshold (e.g.,
//!    8192), enter can assume that the corresponding slot is occupied by
//!    stalled threads") — how fast active threads abandon stalled slots,
//!    measured as unreclaimed objects under injected stalls.

use bench_harness::cli::BenchScale;
use bench_harness::driver::BenchParams;
use bench_harness::registry::run_combo;
use bench_harness::report::FigureTable;
use bench_harness::workload::OpMix;
use smr_core::SmrConfig;

fn main() {
    let scale = BenchScale::from_env_and_args();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let threads = cores * 2; // mildly oversubscribed, the interesting regime

    // 1. Batch size.
    {
        let mut table = FigureTable::new(
            format!("Ablation A1 — Hyaline batch size (hash map, write-intensive, {threads} threads)"),
            "batch_min",
            "Mops/s",
            &["Hyaline", "Hyaline-S"],
        );
        for batch_min in [8usize, 16, 32, 64, 128, 256] {
            let params = BenchParams {
                threads,
                mix: OpMix::WriteIntensive,
                config: SmrConfig {
                    batch_min,
                    ..scale.base.config.clone()
                },
                ..scale.base.clone()
            };
            let row = ["Hyaline", "Hyaline-S"]
                .iter()
                .map(|s| run_combo(s, "hashmap", &params).map(|r| r.mops))
                .collect();
            table.push_row(batch_min, row);
        }
        println!("{table}");
    }

    // 2. Slot count (k = 1 is the paper's §3.1 simplified single-list form).
    {
        let mut table = FigureTable::new(
            format!("Ablation A2 — Hyaline slot count (hash map, write-intensive, {threads} threads; k=1 is the simplified single-list version)"),
            "slots",
            "Mops/s",
            &["Hyaline"],
        );
        for slots in [1usize, 2, 4, 8, 16, 32] {
            let params = BenchParams {
                threads,
                mix: OpMix::WriteIntensive,
                config: SmrConfig {
                    slots,
                    ..scale.base.config.clone()
                },
                ..scale.base.clone()
            };
            let row = vec![run_combo("Hyaline", "hashmap", &params).map(|r| r.mops)];
            table.push_row(slots, row);
        }
        println!("{table}");
    }

    // 3. Hyaline-S era frequency.
    {
        let mut tput = FigureTable::new(
            format!("Ablation A3 — Hyaline-S era frequency (hash map, write-intensive, {threads} threads)"),
            "era_freq",
            "Mops/s",
            &["Hyaline-S"],
        );
        let mut unrec = FigureTable::new(
            "Ablation A3 — unreclaimed objects vs era frequency".to_string(),
            "era_freq",
            "unreclaimed objects",
            &["Hyaline-S"],
        );
        for era_freq in [16u64, 64, 256, 1024] {
            let params = BenchParams {
                threads,
                mix: OpMix::WriteIntensive,
                config: SmrConfig {
                    era_freq,
                    ..scale.base.config.clone()
                },
                ..scale.base.clone()
            };
            let r = run_combo("Hyaline-S", "hashmap", &params);
            tput.push_row(era_freq as usize, vec![r.map(|r| r.mops)]);
            unrec.push_row(era_freq as usize, vec![r.map(|r| r.avg_unreclaimed)]);
        }
        println!("{tput}");
        println!("{unrec}");
    }

    // 4. Hyaline-S Ack threshold under stalled threads.
    {
        let stalled = 2;
        let mut table = FigureTable::new(
            format!(
                "Ablation A4 — Hyaline-S ack threshold (hash map, write-intensive, \
                 {threads} active + {stalled} stalled threads)"
            ),
            "ack_threshold",
            "unreclaimed objects",
            &["Hyaline-S", "Hyaline-1S"],
        );
        for ack_threshold in [32i64, 128, 512, 2048, 8192] {
            let params = BenchParams {
                threads,
                stalled,
                mix: OpMix::WriteIntensive,
                config: SmrConfig {
                    ack_threshold,
                    ..scale.base.config.clone()
                },
                ..scale.base.clone()
            };
            let row = ["Hyaline-S", "Hyaline-1S"]
                .iter()
                .map(|s| run_combo(s, "hashmap", &params).map(|r| r.avg_unreclaimed))
                .collect();
            table.push_row(ack_threshold as usize, row);
        }
        println!("{table}");
    }
}
