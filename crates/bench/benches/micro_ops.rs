//! Criterion micro-benchmarks of the SMR primitives per scheme:
//! `enter`+`leave` (reservation cost), `protect` (guarded pointer read),
//! and `alloc`+`retire` (reclamation cost per node).
//!
//! These back several design claims of the paper: §3.3's "CAS on Head in
//! Hyaline is not a source of any measurable performance penalty"
//! (enter/leave: Hyaline's FAA+CAS vs Hyaline-1's plain writes vs EBR's),
//! HP's expensive per-read fence vs era schemes, and the ≈O(1) retire cost.

use criterion::{criterion_group, criterion_main, Criterion};
use hyaline::{Hyaline, Hyaline1, Hyaline1S, HyalineS};
use smr_baselines::{Ebr, He, Hp, Ibr, Leaky, Lfrc};
use smr_core::{Atomic, Smr, SmrConfig, SmrHandle};
use std::hint::black_box;

fn cfg() -> SmrConfig {
    SmrConfig {
        slots: 8,
        max_threads: 64,
        ..SmrConfig::default()
    }
}

fn bench_scheme<S: Smr<u64>>(c: &mut Criterion, name: &str) {
    // enter + leave.
    {
        let domain = S::with_config(cfg());
        let mut h = domain.handle();
        c.bench_function(&format!("enter_leave/{name}"), |b| {
            b.iter(|| {
                h.enter();
                h.leave();
            })
        });
    }
    // protect (guarded read) of a stable pointer.
    {
        let domain = S::with_config(cfg());
        let mut h = domain.handle();
        h.enter();
        let node = h.alloc(42);
        let link = Atomic::new(node);
        c.bench_function(&format!("protect/{name}"), |b| {
            b.iter(|| black_box(h.protect(0, black_box(&link))))
        });
        h.leave();
        // Leave the node to the domain teardown (Leaky leaks it by design).
        h.enter();
        unsafe { h.retire(node) };
        h.leave();
        h.flush();
    }
    // alloc + retire churn (the full reclamation path amortized).
    {
        let domain = S::with_config(cfg());
        let mut h = domain.handle();
        c.bench_function(&format!("alloc_retire/{name}"), |b| {
            b.iter(|| {
                h.enter();
                let node = h.alloc(black_box(7u64));
                unsafe { h.retire(node) };
                h.leave();
            })
        });
        h.flush();
    }
}

fn benches(c: &mut Criterion) {
    bench_scheme::<Leaky<u64>>(c, "Leaky");
    bench_scheme::<Ebr<u64>>(c, "Epoch");
    bench_scheme::<Hyaline<u64>>(c, "Hyaline");
    bench_scheme::<Hyaline1<u64>>(c, "Hyaline-1");
    bench_scheme::<HyalineS<u64>>(c, "Hyaline-S");
    bench_scheme::<Hyaline1S<u64>>(c, "Hyaline-1S");
    bench_scheme::<Ibr<u64>>(c, "IBR");
    bench_scheme::<He<u64>>(c, "HE");
    bench_scheme::<Hp<u64>>(c, "HP");
    bench_scheme::<Lfrc<u64>>(c, "LFRC");
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(700))
}

criterion_group! {
    name = micro;
    config = configured();
    targets = benches
}
criterion_main!(micro);
