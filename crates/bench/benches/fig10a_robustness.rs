//! Regenerates Figure 10a: unreclaimed objects with a fixed number of
//! active threads while stalled threads (parked inside an operation) sweep.
//!
//! The paper's shape to check: Hyaline, Hyaline-1 and Epoch blow up with
//! even one stalled thread; HP/HE/IBR/Hyaline-1S stay flat; Hyaline-S with
//! a capped slot count stays flat until the stalled threads outnumber the
//! slots ("ran out of slots at 57" in the paper) and then interferes, while
//! Hyaline-S with §4.3 adaptive resizing stays flat throughout.
//!
//! Pass `--record FILE.jsonl` to append one provenance-stamped JSONL
//! record per `(series, stalled)` run.

use bench_harness::cli::{cli_args, BenchScale};
use bench_harness::figures::robustness_figure_recorded;
use bench_harness::results::{wall_clock_timestamp, Provenance, ResultSink};

fn main() {
    let scale = BenchScale::from_env_and_args();
    let record_path = bench::record_path_from(&cli_args());
    let mut sink = record_path
        .as_ref()
        .map(|_| ResultSink::new(Provenance::detect(wall_clock_timestamp())));
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let active = cores.max(2);
    // Cap Hyaline-S slots *below* the largest stalled count so the
    // "ran out of slots" regime of the figure is visible.
    let max_stalled = scale.stalled.iter().copied().max().unwrap_or(8);
    let capped_slots = (max_stalled / 2).max(2).next_power_of_two();
    println!(
        "== Robustness: {} active threads, stalled sweep {:?}, Hyaline-S capped at {} slots ==\n",
        active, scale.stalled, capped_slots
    );
    let table =
        robustness_figure_recorded(active, &scale.stalled, capped_slots, &scale.base, sink.as_mut());
    println!("{table}");
    bench::flush_records(record_path.as_deref(), sink.as_ref());
}
