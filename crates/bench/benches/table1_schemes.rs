//! Regenerates Table 1: the qualitative comparison of SMR schemes, with
//! two measured columns backing the paper's "Performance" ratings.
//!
//! The qualitative columns come from the algorithms themselves (robustness
//! and trim support are queried from the implementations); the measured
//! columns run the Michael hash map at the core count, once write-intensive
//! and once read-mostly. The paper's ratings to check: LFRC far slowest
//! (especially reading), HP slow, Epoch/HE/IBR fast, Hyaline variants very
//! fast.

use bench_harness::cli::BenchScale;
use bench_harness::driver::BenchParams;
use bench_harness::registry::{run_combo, ALL_SCHEMES};
use bench_harness::workload::OpMix;
use hyaline::{Hyaline, Hyaline1, Hyaline1S, HyalineS};
use smr_baselines::{Ebr, He, Hp, Ibr, Leaky, Lfrc};
use smr_core::Smr;

/// Static rows of Table 1 (scheme, based-on, reclamation cost, usage/API).
fn qualitative(scheme: &str) -> (&'static str, &'static str, &'static str) {
    match scheme {
        "Leaky" => ("-", "none (leaks)", "none"),
        "LFRC" => ("-", "O(1) (swap)", "intrusive"),
        "HP" => ("-", "O(mn)", "harder"),
        "Epoch" => ("RCU", "O(n)", "very simple"),
        "HE" => ("EBR, HP", "O(mn)", "harder"),
        "IBR" => ("EBR, HP", "O(n)", "simple (2GE)"),
        "Hyaline" => ("-", "~O(1)", "very simple"),
        "Hyaline-1" => ("-", "O(1)", "very simple"),
        "Hyaline-S" => ("Hyaline, part. HE/IBR", "~O(1)", "simple"),
        "Hyaline-1S" => ("Hyaline-1, part. HE/IBR", "O(1)", "simple"),
        _ => ("?", "?", "?"),
    }
}

fn robust(scheme: &str) -> &'static str {
    // Queried from the implementations (Smr::robust), spelled out here per
    // scheme name; Hyaline-S is "Yes**" as in the paper (needs §4.3
    // adaptive slots to be fully robust).
    match scheme {
        "HP" => {
            assert!(<Hp<u64> as Smr<u64>>::robust());
            "yes"
        }
        "HE" => {
            assert!(<He<u64> as Smr<u64>>::robust());
            "yes"
        }
        "IBR" => {
            assert!(<Ibr<u64> as Smr<u64>>::robust());
            "yes"
        }
        "LFRC" => {
            assert!(<Lfrc<u64> as Smr<u64>>::robust());
            "yes"
        }
        "Hyaline-S" => {
            assert!(<HyalineS<u64> as Smr<u64>>::robust());
            "yes**"
        }
        "Hyaline-1S" => {
            assert!(<Hyaline1S<u64> as Smr<u64>>::robust());
            "yes"
        }
        "Epoch" => {
            assert!(!<Ebr<u64> as Smr<u64>>::robust());
            "no"
        }
        "Hyaline" => {
            assert!(!<Hyaline<u64> as Smr<u64>>::robust());
            "no"
        }
        "Hyaline-1" => {
            assert!(!<Hyaline1<u64> as Smr<u64>>::robust());
            "no"
        }
        "Leaky" => {
            assert!(!<Leaky<u64> as Smr<u64>>::robust());
            "no"
        }
        _ => "?",
    }
}

fn transparent(scheme: &str) -> &'static str {
    match scheme {
        "Hyaline" | "Hyaline-S" => "yes",
        "Hyaline-1" | "Hyaline-1S" => "almost",
        "LFRC" => "partially",
        "Leaky" => "yes",
        _ => "no",
    }
}

fn main() {
    let scale = BenchScale::from_env_and_args();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "== Table 1: scheme comparison (measured on Michael hash map, {} threads, {:.2}s) ==\n",
        cores, scale.base.secs
    );
    println!(
        "{:<11}{:<25}{:>7}{:>13}{:>14}{:>15}{:>12}{:>12}",
        "Scheme", "Based on", "Robust", "Transparent", "Reclam.", "Usage/API", "write Mops", "read Mops"
    );
    for &scheme in ALL_SCHEMES {
        let (based_on, cost, usage) = qualitative(scheme);
        let write = run_combo(
            scheme,
            "hashmap",
            &BenchParams {
                threads: cores,
                mix: OpMix::WriteIntensive,
                ..scale.base.clone()
            },
        );
        let read = run_combo(
            scheme,
            "hashmap",
            &BenchParams {
                threads: cores,
                mix: OpMix::ReadMostly,
                ..scale.base.clone()
            },
        );
        println!(
            "{:<11}{:<25}{:>7}{:>13}{:>14}{:>15}{:>12}{:>12}",
            scheme,
            based_on,
            robust(scheme),
            transparent(scheme),
            cost,
            usage,
            write.map_or("-".into(), |r| format!("{:.3}", r.mops)),
            read.map_or("-".into(), |r| format!("{:.3}", r.mops)),
        );
    }
    println!(
        "\n** capped Hyaline-S interferes once stalled threads exceed the slot count; \
         fully robust with the §4.3 adaptive extension (see fig10a_robustness)."
    );
}
