//! Benchmark targets for the Hyaline reproduction.
//!
//! Every table and figure of the paper's evaluation has a bench target
//! (`cargo bench -p bench --bench <name>`); see `DESIGN.md`'s
//! per-experiment index for the mapping. All targets accept the scale
//! flags documented in [`bench_harness::cli`], and the figure drivers
//! additionally accept `--record FILE.jsonl` to append provenance-stamped
//! [`bench_harness::results`] records from the same measured runs.

use std::path::{Path, PathBuf};

pub use bench_harness;

use bench_harness::results::ResultSink;

/// Extracts the `--record FILE` flag from already-separated benchmark
/// arguments (see [`bench_harness::cli::cli_args`]). Returns `None` when
/// recording was not requested; exits with an error when the flag is
/// present but valueless.
pub fn record_path_from(args: &[String]) -> Option<PathBuf> {
    let i = args.iter().position(|a| a == "--record")?;
    match args.get(i + 1) {
        Some(path) => Some(PathBuf::from(path)),
        None => {
            eprintln!("error: --record is missing its file argument");
            std::process::exit(2);
        }
    }
}

/// Appends a sink's accumulated records to `path` (both `None` when
/// recording is off), reporting the outcome on stdout/stderr.
pub fn flush_records(path: Option<&Path>, sink: Option<&ResultSink>) {
    let (Some(path), Some(sink)) = (path, sink) else {
        return;
    };
    match sink.append_to(path) {
        Ok(n) => println!("appended {n} records to {}", path.display()),
        Err(e) => {
            eprintln!("error: cannot write {}: {e}", path.display());
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn record_flag_extraction() {
        assert_eq!(record_path_from(&strings(&["--secs", "1"])), None);
        assert_eq!(
            record_path_from(&strings(&["--secs", "1", "--record", "x.jsonl"])),
            Some(PathBuf::from("x.jsonl"))
        );
    }
}
