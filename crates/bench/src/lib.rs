//! Benchmark targets for the Hyaline reproduction.
//!
//! Every table and figure of the paper's evaluation has a bench target
//! (`cargo bench -p bench --bench <name>`); see `DESIGN.md`'s
//! per-experiment index for the mapping. All targets accept the scale
//! flags documented in [`bench_harness::cli`].

pub use bench_harness;
