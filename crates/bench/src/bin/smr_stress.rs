//! Stress/bisect tool: runs a single `(scheme, structure)` benchmark cell
//! in isolation so crashes can be attributed to one combination.
//!
//! ```text
//! cargo run --release -p bench --bin smr_stress -- \
//!     --scheme Hyaline --structure hashmap --secs 1 --threads 8 \
//!     [--record BENCH_stress.jsonl]
//! ```

use bench_harness::cli::{cli_args, BenchScale};
use bench_harness::registry::{run_combo_recorded, ALL_SCHEMES, STRUCTURES};
use bench_harness::results::{wall_clock_timestamp, Provenance, ResultSink};
use bench_harness::workload::OpMix;

fn main() {
    let scale = BenchScale::from_env_and_args();
    let args = cli_args();
    let record_path = bench::record_path_from(&args);
    let mut sink = record_path
        .as_ref()
        .map(|_| ResultSink::new(Provenance::detect(wall_clock_timestamp())));
    let mut scheme = "Hyaline".to_string();
    let mut structure = "hashmap".to_string();
    let mut mix = OpMix::WriteIntensive;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scheme" => {
                if let Some(v) = args.get(i + 1) {
                    scheme = v.clone();
                    i += 1;
                }
            }
            "--structure" => {
                if let Some(v) = args.get(i + 1) {
                    structure = v.clone();
                    i += 1;
                }
            }
            "--read-mostly" => mix = OpMix::ReadMostly,
            _ => {}
        }
        i += 1;
    }
    if !ALL_SCHEMES.contains(&scheme.as_str()) {
        eprintln!("unknown scheme {scheme}; known: {ALL_SCHEMES:?}");
        std::process::exit(2);
    }
    if !STRUCTURES.contains(&structure.as_str()) {
        eprintln!("unknown structure {structure}; known: {STRUCTURES:?}");
        std::process::exit(2);
    }
    for &threads in &scale.threads {
        let params = bench_harness::driver::BenchParams {
            threads,
            mix,
            ..scale.base.clone()
        };
        let mut sink_ref = sink.as_mut();
        match run_combo_recorded("smr_stress", &scheme, &scheme, &structure, &params, &mut sink_ref)
        {
            Some(r) => println!(
                "{scheme:>10} {structure:>8} t={threads:<3} {:.4} Mops/s, unreclaimed {:.1}, ops {}, retired {}, freed {}",
                r.mops, r.avg_unreclaimed, r.ops, r.retired, r.freed
            ),
            None => println!("{scheme:>10} {structure:>8} t={threads:<3} unsupported"),
        }
    }
    bench::flush_records(record_path.as_deref(), sink.as_ref());
}
