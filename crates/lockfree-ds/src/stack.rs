//! A Treiber stack, generic over the reclamation scheme.
//!
//! Not part of the paper's figures; used by the examples, integration tests
//! and micro-benchmarks as the smallest realistic SMR client. Written
//! against the typed-pointer layer (`smr_core::typed`), it is also the
//! README's "writing a structure" walk-through: the only `unsafe` left is
//! the retire-safety argument in `pop`.

use smr_core::typed::{Atomic, Guard, Ptr};
use smr_core::{Smr, SmrConfig};

/// A stack node.
pub struct StackNode<T> {
    value: T,
    next: Atomic<StackNode<T>>,
}

impl<T: std::fmt::Debug> std::fmt::Debug for StackNode<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StackNode")
            .field("value", &self.value)
            .finish_non_exhaustive()
    }
}

/// A lock-free LIFO stack.
///
/// # Example
///
/// ```
/// use hyaline::Hyaline;
/// use lockfree_ds::TreiberStack;
/// use smr_core::SmrHandle;
///
/// let stack: TreiberStack<u64, Hyaline<_>> = TreiberStack::new();
/// let mut h = stack.smr_handle();
/// h.enter();
/// stack.push(&mut h, 1);
/// stack.push(&mut h, 2);
/// assert_eq!(stack.pop(&mut h), Some(2));
/// assert_eq!(stack.pop(&mut h), Some(1));
/// assert_eq!(stack.pop(&mut h), None);
/// h.leave();
/// ```
pub struct TreiberStack<T, S>
where
    T: Clone + Send + Sync + 'static,
    S: Smr<StackNode<T>>,
{
    domain: S,
    top: Atomic<StackNode<T>>,
}

impl<T, S> std::fmt::Debug for TreiberStack<T, S>
where
    T: Clone + Send + Sync + 'static,
    S: Smr<StackNode<T>>,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TreiberStack")
            .field("scheme", &S::name())
            .finish_non_exhaustive()
    }
}

impl<T, S> Default for TreiberStack<T, S>
where
    T: Clone + Send + Sync + 'static,
    S: Smr<StackNode<T>>,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<T, S> TreiberStack<T, S>
where
    T: Clone + Send + Sync + 'static,
    S: Smr<StackNode<T>>,
{
    /// An empty stack with a default-configured domain.
    pub fn new() -> Self {
        Self::with_config(SmrConfig::default())
    }

    /// An empty stack whose reclamation domain uses `config`.
    pub fn with_config(config: SmrConfig) -> Self {
        Self::with_domain(S::with_config(config))
    }

    /// An empty stack over a pre-built reclamation domain (e.g. a
    /// configured [`smr_core::Sharded`] adapter).
    pub fn with_domain(domain: S) -> Self {
        Self {
            domain,
            top: Atomic::null(),
        }
    }

    /// The underlying reclamation domain.
    pub fn domain(&self) -> &S {
        &self.domain
    }

    /// A per-thread SMR handle for operating on this stack.
    pub fn smr_handle(&self) -> S::Handle<'_> {
        self.domain.handle()
    }

    /// Pushes a value. Must be called between `enter` and `leave`.
    pub fn push<'a>(&'a self, h: &mut S::Handle<'a>, value: T) {
        let g = Guard::over(h);
        let mut node = g.alloc(StackNode {
            value,
            next: Atomic::null(),
        });
        let mut top = self.top.fetch();
        loop {
            node.as_ref().next.store(top);
            match self.top.compare_exchange_weak_owned(top, node) {
                Ok(_) => return,
                Err((now, back)) => {
                    top = now;
                    node = back;
                }
            }
        }
    }

    /// Pops the most recent value. Must be called between `enter` and
    /// `leave`.
    pub fn pop<'a>(&'a self, h: &mut S::Handle<'a>) -> Option<T> {
        let g = Guard::over(h);
        loop {
            let top = self.top.load(0, &g);
            let top_ref = top.as_ref()?;
            let next = top_ref.next.fetch();
            if self.top.compare_exchange(top, next).is_ok() {
                let value = top_ref.value.clone();
                // SAFETY: the successful CAS unlinked `top`; only the
                // winning popper reaches this retire, and pushes only ever
                // link fresh nodes, so no new reference to it can form.
                unsafe { g.defer_retire(top) };
                return Some(value);
            }
        }
    }

    /// Whether the stack is currently empty.
    pub fn is_empty(&self) -> bool {
        self.top.fetch().is_null()
    }
}

impl<T, S> Drop for TreiberStack<T, S>
where
    T: Clone + Send + Sync + 'static,
    S: Smr<StackNode<T>>,
{
    fn drop(&mut self) {
        let mut handle = self.domain.handle();
        let g = Guard::over(&mut handle);
        let mut curr = self.top.fetch();
        while !curr.is_null() {
            // SAFETY: `Drop` has `&mut self` — no concurrent access; every
            // remaining node is exclusively ours to walk and free.
            let next: Ptr<_> = unsafe { curr.deref() }.next.fetch();
            // SAFETY: same exclusive-teardown argument.
            unsafe { g.dealloc(curr) };
            curr = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyaline::{Hyaline, HyalineS};
    use smr_baselines::{Ebr, Hp, Lfrc};
    use smr_core::SmrHandle;
    use std::sync::atomic::Ordering;

    fn cfg() -> SmrConfig {
        SmrConfig {
            slots: 4,
            batch_min: 8,
            scan_threshold: 16,
            max_threads: 64,
            ..SmrConfig::default()
        }
    }

    fn lifo_order<S: Smr<StackNode<u64>>>() {
        let stack: TreiberStack<u64, S> = TreiberStack::with_config(cfg());
        let mut h = stack.smr_handle();
        h.enter();
        for i in 0..10 {
            stack.push(&mut h, i);
        }
        for i in (0..10).rev() {
            assert_eq!(stack.pop(&mut h), Some(i));
        }
        assert_eq!(stack.pop(&mut h), None);
        h.leave();
    }

    #[test]
    fn lifo_all_schemes() {
        lifo_order::<Hyaline<_>>();
        lifo_order::<HyalineS<_>>();
        lifo_order::<Ebr<_>>();
        lifo_order::<Hp<_>>();
        lifo_order::<Lfrc<_>>();
    }

    #[test]
    fn concurrent_push_pop_conserves_elements() {
        let stack: &TreiberStack<u64, Hyaline<_>> = &TreiberStack::with_config(cfg());
        let popped = std::sync::atomic::AtomicU64::new(0);
        const PER_THREAD: u64 = 2_000;
        std::thread::scope(|s| {
            for t in 0..2u64 {
                s.spawn(move || {
                    let mut h = stack.smr_handle();
                    for i in 0..PER_THREAD {
                        h.enter();
                        stack.push(&mut h, t * PER_THREAD + i);
                        h.leave();
                    }
                });
            }
            for _ in 0..2 {
                s.spawn(|| {
                    let mut h = stack.smr_handle();
                    let mut got = 0;
                    while got < PER_THREAD {
                        h.enter();
                        if stack.pop(&mut h).is_some() {
                            got += 1;
                        }
                        h.leave();
                    }
                    popped.fetch_add(got, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(popped.load(Ordering::Relaxed), 2 * PER_THREAD);
        assert!(stack.is_empty());
    }
}
