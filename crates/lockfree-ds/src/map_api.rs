//! A uniform map interface over the benchmark data structures.
//!
//! The paper's evaluation runs the same workloads over four different
//! structures; the harness drives them through this trait with `u64` keys
//! and values (the framework of \[35\] likewise benchmarks integer maps).

use smr_core::{Smr, SmrConfig, SmrStats};

use crate::{
    BonsaiNode, BonsaiTree, HarrisMichaelList, ListNode, MichaelHashMap, NatarajanMittalTree,
    NmNode,
};

/// A concurrent map of `u64 -> u64`, generic over the reclamation scheme.
///
/// Operations must be bracketed by the handle's `enter`/`leave`, exactly as
/// in the paper's programming model.
pub trait ConcurrentMap<S: Smr<Self::Node>>: Send + Sync + Sized {
    /// The node type managed by the reclamation domain.
    type Node: Send + 'static;

    /// Structure name as used in the paper's figures.
    const NAME: &'static str;

    /// Builds the map with the given reclamation configuration.
    fn with_config(config: SmrConfig) -> Self;

    /// The reclamation domain's statistics.
    fn stats(&self) -> &SmrStats;

    /// A per-thread handle.
    fn handle(&self) -> S::Handle<'_>;

    /// Looks up a key.
    fn map_get<'a>(&'a self, h: &mut S::Handle<'a>, key: u64) -> Option<u64>;

    /// Inserts a key; `false` if present.
    fn map_insert<'a>(&'a self, h: &mut S::Handle<'a>, key: u64, value: u64) -> bool;

    /// Removes a key, returning its value.
    fn map_remove<'a>(&'a self, h: &mut S::Handle<'a>, key: u64) -> Option<u64>;
}

impl<S: Smr<ListNode<u64, u64>>> ConcurrentMap<S> for HarrisMichaelList<u64, u64, S> {
    type Node = ListNode<u64, u64>;
    const NAME: &'static str = "list";

    fn with_config(config: SmrConfig) -> Self {
        HarrisMichaelList::with_config(config)
    }

    fn stats(&self) -> &SmrStats {
        self.domain().stats()
    }

    fn handle(&self) -> S::Handle<'_> {
        self.smr_handle()
    }

    fn map_get<'a>(&'a self, h: &mut S::Handle<'a>, key: u64) -> Option<u64> {
        self.get(h, &key)
    }

    fn map_insert<'a>(&'a self, h: &mut S::Handle<'a>, key: u64, value: u64) -> bool {
        self.insert(h, key, value)
    }

    fn map_remove<'a>(&'a self, h: &mut S::Handle<'a>, key: u64) -> Option<u64> {
        self.remove(h, &key)
    }
}

impl<S: Smr<ListNode<u64, u64>>> ConcurrentMap<S> for MichaelHashMap<u64, u64, S> {
    type Node = ListNode<u64, u64>;
    const NAME: &'static str = "hashmap";

    fn with_config(config: SmrConfig) -> Self {
        MichaelHashMap::with_config(config)
    }

    fn stats(&self) -> &SmrStats {
        self.domain().stats()
    }

    fn handle(&self) -> S::Handle<'_> {
        self.smr_handle()
    }

    fn map_get<'a>(&'a self, h: &mut S::Handle<'a>, key: u64) -> Option<u64> {
        self.get(h, &key)
    }

    fn map_insert<'a>(&'a self, h: &mut S::Handle<'a>, key: u64, value: u64) -> bool {
        self.insert(h, key, value)
    }

    fn map_remove<'a>(&'a self, h: &mut S::Handle<'a>, key: u64) -> Option<u64> {
        self.remove(h, &key)
    }
}

impl<S: Smr<NmNode<u64, u64>>> ConcurrentMap<S> for NatarajanMittalTree<u64, u64, S> {
    type Node = NmNode<u64, u64>;
    const NAME: &'static str = "nmtree";

    fn with_config(config: SmrConfig) -> Self {
        NatarajanMittalTree::with_config(config)
    }

    fn stats(&self) -> &SmrStats {
        self.domain().stats()
    }

    fn handle(&self) -> S::Handle<'_> {
        self.smr_handle()
    }

    fn map_get<'a>(&'a self, h: &mut S::Handle<'a>, key: u64) -> Option<u64> {
        self.get(h, &key)
    }

    fn map_insert<'a>(&'a self, h: &mut S::Handle<'a>, key: u64, value: u64) -> bool {
        self.insert(h, key, value)
    }

    fn map_remove<'a>(&'a self, h: &mut S::Handle<'a>, key: u64) -> Option<u64> {
        self.remove(h, &key)
    }
}

impl<S: Smr<BonsaiNode<u64, u64>>> ConcurrentMap<S> for BonsaiTree<u64, u64, S> {
    type Node = BonsaiNode<u64, u64>;
    const NAME: &'static str = "bonsai";

    fn with_config(config: SmrConfig) -> Self {
        BonsaiTree::with_config(config)
    }

    fn stats(&self) -> &SmrStats {
        self.domain().stats()
    }

    fn handle(&self) -> S::Handle<'_> {
        self.smr_handle()
    }

    fn map_get<'a>(&'a self, h: &mut S::Handle<'a>, key: u64) -> Option<u64> {
        self.get(h, &key)
    }

    fn map_insert<'a>(&'a self, h: &mut S::Handle<'a>, key: u64, value: u64) -> bool {
        self.insert(h, key, value)
    }

    fn map_remove<'a>(&'a self, h: &mut S::Handle<'a>, key: u64) -> Option<u64> {
        self.remove(h, &key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyaline::Hyaline;
    use smr_core::SmrHandle;

    fn exercise<S, M>()
    where
        M: ConcurrentMap<S>,
        S: Smr<M::Node>,
    {
        let map = M::with_config(SmrConfig {
            slots: 4,
            max_threads: 16,
            ..SmrConfig::default()
        });
        let mut h = map.handle();
        h.enter();
        assert!(map.map_insert(&mut h, 1, 11));
        assert_eq!(map.map_get(&mut h, 1), Some(11));
        assert_eq!(map.map_remove(&mut h, 1), Some(11));
        assert_eq!(map.map_get(&mut h, 1), None);
        h.leave();
    }

    #[test]
    fn all_structures_through_trait() {
        exercise::<Hyaline<_>, HarrisMichaelList<u64, u64, _>>();
        exercise::<Hyaline<_>, MichaelHashMap<u64, u64, _>>();
        exercise::<Hyaline<_>, NatarajanMittalTree<u64, u64, _>>();
        exercise::<Hyaline<_>, BonsaiTree<u64, u64, _>>();
    }
}
