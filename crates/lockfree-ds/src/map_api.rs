//! A uniform map interface over the benchmark data structures.
//!
//! The paper's evaluation runs the same workloads over four different
//! structures; the harness drives them through this trait with `u64` keys
//! and values (the framework of \[35\] likewise benchmarks integer maps).

use smr_core::{Smr, SmrConfig, SmrStats};

use crate::{
    BonsaiNode, BonsaiTree, BoundedMpmcQueue, HarrisMichaelList, ListNode, MichaelHashMap,
    NatarajanMittalTree, NmNode, QueueNode, SkipListMap, SkipNode,
};

/// A concurrent map of `u64 -> u64`, generic over the reclamation scheme.
///
/// Operations must be bracketed by the handle's `enter`/`leave`, exactly as
/// in the paper's programming model.
pub trait ConcurrentMap<S: Smr<Self::Node>>: Send + Sync + Sized {
    /// The node type managed by the reclamation domain.
    type Node: Send + 'static;

    /// Structure name as used in the paper's figures.
    const NAME: &'static str;

    /// Builds the map with the given reclamation configuration.
    ///
    /// `S` may itself be a [`smr_core::Sharded`] adapter: the structure is
    /// built *through* the scheme abstraction, so the same code path serves
    /// single-shard and sharded domains (`config.shards` selects which).
    fn with_config(config: SmrConfig) -> Self;

    /// The reclamation domain the structure retires into. Gives harnesses
    /// access to domain-level adapters (e.g. [`smr_core::HandlePool`]).
    fn domain(&self) -> &S;

    /// The reclamation domain's statistics.
    fn stats(&self) -> &SmrStats {
        self.domain().stats()
    }

    /// A per-thread handle.
    fn handle(&self) -> S::Handle<'_> {
        self.domain().handle()
    }

    /// Looks up a key.
    fn map_get<'a>(&'a self, h: &mut S::Handle<'a>, key: u64) -> Option<u64>;

    /// Inserts a key; `false` if present.
    fn map_insert<'a>(&'a self, h: &mut S::Handle<'a>, key: u64, value: u64) -> bool;

    /// Removes a key, returning its value.
    fn map_remove<'a>(&'a self, h: &mut S::Handle<'a>, key: u64) -> Option<u64>;
}

/// Implements [`ConcurrentMap`] for a map-shaped structure whose inherent
/// API is `with_config`/`domain`/`get`/`insert`/`remove` — the whole
/// delegation boilerplate in one place.
macro_rules! impl_concurrent_map {
    ($map:ident over $node:ident, $name:literal) => {
        impl<S: Smr<$node<u64, u64>>> ConcurrentMap<S> for $map<u64, u64, S> {
            type Node = $node<u64, u64>;
            const NAME: &'static str = $name;

            fn with_config(config: SmrConfig) -> Self {
                $map::with_config(config)
            }

            fn domain(&self) -> &S {
                $map::domain(self)
            }

            fn map_get<'a>(&'a self, h: &mut S::Handle<'a>, key: u64) -> Option<u64> {
                self.get(h, &key)
            }

            fn map_insert<'a>(&'a self, h: &mut S::Handle<'a>, key: u64, value: u64) -> bool {
                self.insert(h, key, value)
            }

            fn map_remove<'a>(&'a self, h: &mut S::Handle<'a>, key: u64) -> Option<u64> {
                self.remove(h, &key)
            }
        }
    };
}

impl_concurrent_map!(HarrisMichaelList over ListNode, "list");
impl_concurrent_map!(MichaelHashMap over ListNode, "hashmap");
impl_concurrent_map!(NatarajanMittalTree over NmNode, "nmtree");
impl_concurrent_map!(BonsaiTree over BonsaiNode, "bonsai");
impl_concurrent_map!(SkipListMap over SkipNode, "skiplist");

/// Capacity the benchmark harness gives [`BoundedMpmcQueue`]: deep enough
/// that the bound rarely binds under the paper's get/insert/remove mixes,
/// shallow enough that full-queue displacement is exercised.
const MPMC_BENCH_CAPACITY: usize = 1024;

/// The bounded queue driven as a map: `insert` enqueues the value
/// (displacing the oldest entry when full), `get` peeks, `remove`
/// dequeues. Keys only order the workload; the FIFO ignores them.
impl<S: Smr<QueueNode<u64>>> ConcurrentMap<S> for BoundedMpmcQueue<u64, S> {
    type Node = QueueNode<u64>;
    const NAME: &'static str = "mpmc";

    fn with_config(config: SmrConfig) -> Self {
        BoundedMpmcQueue::with_config(config, MPMC_BENCH_CAPACITY)
    }

    fn domain(&self) -> &S {
        BoundedMpmcQueue::domain(self)
    }

    fn map_get<'a>(&'a self, h: &mut S::Handle<'a>, _key: u64) -> Option<u64> {
        self.peek(h)
    }

    fn map_insert<'a>(&'a self, h: &mut S::Handle<'a>, _key: u64, value: u64) -> bool {
        match self.try_enqueue(h, value) {
            Ok(()) => true,
            Err(value) => {
                // Full: displace the oldest entry, then retry once (another
                // producer may still win the freed slot).
                self.dequeue(h);
                self.try_enqueue(h, value).is_ok()
            }
        }
    }

    fn map_remove<'a>(&'a self, h: &mut S::Handle<'a>, _key: u64) -> Option<u64> {
        self.dequeue(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyaline::Hyaline;
    use smr_core::SmrHandle;

    fn exercise<S, M>()
    where
        M: ConcurrentMap<S>,
        S: Smr<M::Node>,
    {
        let map = M::with_config(SmrConfig {
            slots: 4,
            max_threads: 16,
            ..SmrConfig::default()
        });
        let mut h = map.handle();
        h.enter();
        assert!(map.map_insert(&mut h, 1, 11));
        assert_eq!(map.map_get(&mut h, 1), Some(11));
        assert_eq!(map.map_remove(&mut h, 1), Some(11));
        assert_eq!(map.map_get(&mut h, 1), None);
        h.leave();
    }

    #[test]
    fn all_structures_through_trait() {
        exercise::<Hyaline<_>, HarrisMichaelList<u64, u64, _>>();
        exercise::<Hyaline<_>, MichaelHashMap<u64, u64, _>>();
        exercise::<Hyaline<_>, NatarajanMittalTree<u64, u64, _>>();
        exercise::<Hyaline<_>, BonsaiTree<u64, u64, _>>();
        exercise::<Hyaline<_>, SkipListMap<u64, u64, _>>();
        // The queue adapter ignores keys but satisfies the same contract
        // for the single-key exercise above.
        exercise::<Hyaline<_>, BoundedMpmcQueue<u64, _>>();
    }

    #[test]
    fn new_structures_through_trait_on_sharded_domains() {
        use smr_core::Sharded;
        exercise::<Sharded<Hyaline<_>>, SkipListMap<u64, u64, _>>();
        exercise::<Sharded<Hyaline<_>>, BoundedMpmcQueue<u64, _>>();
    }

    #[test]
    fn all_structures_through_trait_on_sharded_domains() {
        use hyaline::HyalineS;
        use smr_core::Sharded;
        // The same generic plumbing must compile and run when the scheme is
        // the sharded adapter; only the hash map actually pins shards, the
        // others stay single-shard (shard 0) by construction.
        exercise::<Sharded<Hyaline<_>>, HarrisMichaelList<u64, u64, _>>();
        exercise::<Sharded<Hyaline<_>>, MichaelHashMap<u64, u64, _>>();
        exercise::<Sharded<Hyaline<_>>, NatarajanMittalTree<u64, u64, _>>();
        exercise::<Sharded<Hyaline<_>>, BonsaiTree<u64, u64, _>>();
        exercise::<Sharded<HyalineS<_>>, MichaelHashMap<u64, u64, _>>();
    }

    #[test]
    fn sharded_hashmap_splits_retire_traffic_per_bucket_group() {
        use smr_core::{Sharded, Smr as _};
        let domain: Sharded<Hyaline<ListNode<u64, u64>>> =
            Sharded::with_config(SmrConfig {
                slots: 16,
                shards: 4,
                batch_min: 2,
                max_threads: 16,
                ..SmrConfig::default()
            });
        let map = MichaelHashMap::with_domain_and_buckets(domain, 64);
        let mut h = map.smr_handle();
        for key in 0..512u64 {
            h.enter();
            map.insert(&mut h, key, key);
            map.remove(&mut h, &key);
            h.leave();
        }
        h.flush();
        drop(h);
        // Every shard saw some of the retire traffic: the bucket-group
        // pinning routed work to all four inner domains.
        for i in 0..map.domain().shard_count() {
            assert!(
                map.domain().shard(i).stats().retired() > 0,
                "shard {i} never received retire traffic"
            );
        }
        let stats = map.stats();
        assert_eq!(stats.retired(), stats.freed() + stats.unreclaimed());
    }
}
