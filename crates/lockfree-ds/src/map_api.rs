//! A uniform map interface over the benchmark data structures.
//!
//! The paper's evaluation runs the same workloads over four different
//! structures; the harness drives them through this trait with `u64` keys
//! and values (the framework of \[35\] likewise benchmarks integer maps).

use smr_core::{Smr, SmrConfig, SmrStats};

use crate::{
    BonsaiNode, BonsaiTree, HarrisMichaelList, ListNode, MichaelHashMap, NatarajanMittalTree,
    NmNode,
};

/// A concurrent map of `u64 -> u64`, generic over the reclamation scheme.
///
/// Operations must be bracketed by the handle's `enter`/`leave`, exactly as
/// in the paper's programming model.
pub trait ConcurrentMap<S: Smr<Self::Node>>: Send + Sync + Sized {
    /// The node type managed by the reclamation domain.
    type Node: Send + 'static;

    /// Structure name as used in the paper's figures.
    const NAME: &'static str;

    /// Builds the map with the given reclamation configuration.
    ///
    /// `S` may itself be a [`smr_core::Sharded`] adapter: the structure is
    /// built *through* the scheme abstraction, so the same code path serves
    /// single-shard and sharded domains (`config.shards` selects which).
    fn with_config(config: SmrConfig) -> Self;

    /// The reclamation domain the structure retires into. Gives harnesses
    /// access to domain-level adapters (e.g. [`smr_core::HandlePool`]).
    fn domain(&self) -> &S;

    /// The reclamation domain's statistics.
    fn stats(&self) -> &SmrStats {
        self.domain().stats()
    }

    /// A per-thread handle.
    fn handle(&self) -> S::Handle<'_> {
        self.domain().handle()
    }

    /// Looks up a key.
    fn map_get<'a>(&'a self, h: &mut S::Handle<'a>, key: u64) -> Option<u64>;

    /// Inserts a key; `false` if present.
    fn map_insert<'a>(&'a self, h: &mut S::Handle<'a>, key: u64, value: u64) -> bool;

    /// Removes a key, returning its value.
    fn map_remove<'a>(&'a self, h: &mut S::Handle<'a>, key: u64) -> Option<u64>;
}

impl<S: Smr<ListNode<u64, u64>>> ConcurrentMap<S> for HarrisMichaelList<u64, u64, S> {
    type Node = ListNode<u64, u64>;
    const NAME: &'static str = "list";

    fn with_config(config: SmrConfig) -> Self {
        HarrisMichaelList::with_config(config)
    }

    fn domain(&self) -> &S {
        HarrisMichaelList::domain(self)
    }

    fn map_get<'a>(&'a self, h: &mut S::Handle<'a>, key: u64) -> Option<u64> {
        self.get(h, &key)
    }

    fn map_insert<'a>(&'a self, h: &mut S::Handle<'a>, key: u64, value: u64) -> bool {
        self.insert(h, key, value)
    }

    fn map_remove<'a>(&'a self, h: &mut S::Handle<'a>, key: u64) -> Option<u64> {
        self.remove(h, &key)
    }
}

impl<S: Smr<ListNode<u64, u64>>> ConcurrentMap<S> for MichaelHashMap<u64, u64, S> {
    type Node = ListNode<u64, u64>;
    const NAME: &'static str = "hashmap";

    fn with_config(config: SmrConfig) -> Self {
        MichaelHashMap::with_config(config)
    }

    fn domain(&self) -> &S {
        MichaelHashMap::domain(self)
    }

    fn map_get<'a>(&'a self, h: &mut S::Handle<'a>, key: u64) -> Option<u64> {
        self.get(h, &key)
    }

    fn map_insert<'a>(&'a self, h: &mut S::Handle<'a>, key: u64, value: u64) -> bool {
        self.insert(h, key, value)
    }

    fn map_remove<'a>(&'a self, h: &mut S::Handle<'a>, key: u64) -> Option<u64> {
        self.remove(h, &key)
    }
}

impl<S: Smr<NmNode<u64, u64>>> ConcurrentMap<S> for NatarajanMittalTree<u64, u64, S> {
    type Node = NmNode<u64, u64>;
    const NAME: &'static str = "nmtree";

    fn with_config(config: SmrConfig) -> Self {
        NatarajanMittalTree::with_config(config)
    }

    fn domain(&self) -> &S {
        NatarajanMittalTree::domain(self)
    }

    fn map_get<'a>(&'a self, h: &mut S::Handle<'a>, key: u64) -> Option<u64> {
        self.get(h, &key)
    }

    fn map_insert<'a>(&'a self, h: &mut S::Handle<'a>, key: u64, value: u64) -> bool {
        self.insert(h, key, value)
    }

    fn map_remove<'a>(&'a self, h: &mut S::Handle<'a>, key: u64) -> Option<u64> {
        self.remove(h, &key)
    }
}

impl<S: Smr<BonsaiNode<u64, u64>>> ConcurrentMap<S> for BonsaiTree<u64, u64, S> {
    type Node = BonsaiNode<u64, u64>;
    const NAME: &'static str = "bonsai";

    fn with_config(config: SmrConfig) -> Self {
        BonsaiTree::with_config(config)
    }

    fn domain(&self) -> &S {
        BonsaiTree::domain(self)
    }

    fn map_get<'a>(&'a self, h: &mut S::Handle<'a>, key: u64) -> Option<u64> {
        self.get(h, &key)
    }

    fn map_insert<'a>(&'a self, h: &mut S::Handle<'a>, key: u64, value: u64) -> bool {
        self.insert(h, key, value)
    }

    fn map_remove<'a>(&'a self, h: &mut S::Handle<'a>, key: u64) -> Option<u64> {
        self.remove(h, &key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyaline::Hyaline;
    use smr_core::SmrHandle;

    fn exercise<S, M>()
    where
        M: ConcurrentMap<S>,
        S: Smr<M::Node>,
    {
        let map = M::with_config(SmrConfig {
            slots: 4,
            max_threads: 16,
            ..SmrConfig::default()
        });
        let mut h = map.handle();
        h.enter();
        assert!(map.map_insert(&mut h, 1, 11));
        assert_eq!(map.map_get(&mut h, 1), Some(11));
        assert_eq!(map.map_remove(&mut h, 1), Some(11));
        assert_eq!(map.map_get(&mut h, 1), None);
        h.leave();
    }

    #[test]
    fn all_structures_through_trait() {
        exercise::<Hyaline<_>, HarrisMichaelList<u64, u64, _>>();
        exercise::<Hyaline<_>, MichaelHashMap<u64, u64, _>>();
        exercise::<Hyaline<_>, NatarajanMittalTree<u64, u64, _>>();
        exercise::<Hyaline<_>, BonsaiTree<u64, u64, _>>();
    }

    #[test]
    fn all_structures_through_trait_on_sharded_domains() {
        use hyaline::HyalineS;
        use smr_core::Sharded;
        // The same generic plumbing must compile and run when the scheme is
        // the sharded adapter; only the hash map actually pins shards, the
        // others stay single-shard (shard 0) by construction.
        exercise::<Sharded<Hyaline<_>>, HarrisMichaelList<u64, u64, _>>();
        exercise::<Sharded<Hyaline<_>>, MichaelHashMap<u64, u64, _>>();
        exercise::<Sharded<Hyaline<_>>, NatarajanMittalTree<u64, u64, _>>();
        exercise::<Sharded<Hyaline<_>>, BonsaiTree<u64, u64, _>>();
        exercise::<Sharded<HyalineS<_>>, MichaelHashMap<u64, u64, _>>();
    }

    #[test]
    fn sharded_hashmap_splits_retire_traffic_per_bucket_group() {
        use smr_core::{Sharded, Smr as _};
        let domain: Sharded<Hyaline<ListNode<u64, u64>>> =
            Sharded::with_config(SmrConfig {
                slots: 16,
                shards: 4,
                batch_min: 2,
                max_threads: 16,
                ..SmrConfig::default()
            });
        let map = MichaelHashMap::with_domain_and_buckets(domain, 64);
        let mut h = map.smr_handle();
        for key in 0..512u64 {
            h.enter();
            map.insert(&mut h, key, key);
            map.remove(&mut h, &key);
            h.leave();
        }
        h.flush();
        drop(h);
        // Every shard saw some of the retire traffic: the bucket-group
        // pinning routed work to all four inner domains.
        for i in 0..map.domain().shard_count() {
            assert!(
                map.domain().shard(i).stats().retired() > 0,
                "shard {i} never received retire traffic"
            );
        }
        let stats = map.stats();
        assert_eq!(stats.retired(), stats.freed() + stats.unreclaimed());
    }
}
