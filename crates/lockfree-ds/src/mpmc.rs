//! A capacity-bounded multi-producer/multi-consumer queue built entirely
//! from safe pieces: the typed-layer [`MsQueue`] provides the lock-free
//! FIFO, and an atomic admission counter enforces the bound.
//!
//! The counter is an *admission ticket* scheme: `try_enqueue` optimistically
//! takes a ticket with `fetch_add` and rolls it back when the queue is
//! full, so the queue never holds more than `capacity` values. The bound is
//! linearizable (no successful enqueue ever observes more than `capacity`
//! outstanding tickets); emptiness remains as transient as in any
//! Michael–Scott queue.
//!
//! This module contains no `unsafe` at all — the point of the typed layer
//! is that composing structures stays in safe Rust.

use smr_core::{Smr, SmrConfig};
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::queue::{MsQueue, QueueNode};

/// A bounded MPMC FIFO queue, generic over the reclamation scheme.
///
/// # Example
///
/// ```
/// use hyaline::Hyaline;
/// use lockfree_ds::BoundedMpmcQueue;
/// use smr_core::SmrHandle;
///
/// let q: BoundedMpmcQueue<u64, Hyaline<_>> = BoundedMpmcQueue::new(2);
/// let mut h = q.smr_handle();
/// h.enter();
/// assert!(q.try_enqueue(&mut h, 1).is_ok());
/// assert!(q.try_enqueue(&mut h, 2).is_ok());
/// assert_eq!(q.try_enqueue(&mut h, 3), Err(3)); // full
/// assert_eq!(q.dequeue(&mut h), Some(1));
/// assert!(q.try_enqueue(&mut h, 3).is_ok());
/// h.leave();
/// ```
pub struct BoundedMpmcQueue<T, S>
where
    T: Clone + Send + Sync + 'static,
    S: Smr<QueueNode<T>>,
{
    queue: MsQueue<T, S>,
    /// Admission tickets currently outstanding (≤ `capacity` after a
    /// successful enqueue; may transiently overshoot inside `try_enqueue`
    /// before the rollback).
    len: AtomicUsize,
    capacity: usize,
}

impl<T, S> std::fmt::Debug for BoundedMpmcQueue<T, S>
where
    T: Clone + Send + Sync + 'static,
    S: Smr<QueueNode<T>>,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoundedMpmcQueue")
            .field("scheme", &S::name())
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

impl<T, S> BoundedMpmcQueue<T, S>
where
    T: Clone + Send + Sync + 'static,
    S: Smr<QueueNode<T>>,
{
    /// An empty queue holding at most `capacity` values, with a
    /// default-configured domain.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        Self::with_config(SmrConfig::default(), capacity)
    }

    /// An empty bounded queue whose reclamation domain uses `config`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_config(config: SmrConfig, capacity: usize) -> Self {
        Self::with_domain(S::with_config(config), capacity)
    }

    /// An empty bounded queue over a pre-built reclamation domain.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_domain(domain: S, capacity: usize) -> Self {
        assert!(capacity > 0, "a bounded queue needs capacity >= 1");
        Self {
            queue: MsQueue::with_domain(domain),
            len: AtomicUsize::new(0),
            capacity,
        }
    }

    /// The underlying reclamation domain.
    pub fn domain(&self) -> &S {
        self.queue.domain()
    }

    /// A per-thread SMR handle for operating on this queue.
    pub fn smr_handle(&self) -> S::Handle<'_> {
        self.queue.domain().handle()
    }

    /// The maximum number of values the queue admits at once.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The number of values currently admitted. Like any concurrent size,
    /// this is a point-in-time snapshot.
    pub fn len(&self) -> usize {
        // Clamp: `try_enqueue` may transiently overshoot before rollback.
        self.len.load(Ordering::Acquire).min(self.capacity)
    }

    /// Whether the queue currently holds no values (snapshot semantics,
    /// like [`len`](Self::len)).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends `value`, or hands it back when the queue is full. Must be
    /// called between `enter` and `leave`.
    pub fn try_enqueue<'a>(&'a self, h: &mut S::Handle<'a>, value: T) -> Result<(), T> {
        // Take an admission ticket; give it back if the queue was full.
        if self.len.fetch_add(1, Ordering::AcqRel) >= self.capacity {
            self.len.fetch_sub(1, Ordering::AcqRel);
            return Err(value);
        }
        self.queue.enqueue(h, value);
        Ok(())
    }

    /// Removes and returns the oldest value. Must be called between
    /// `enter` and `leave`.
    pub fn dequeue<'a>(&'a self, h: &mut S::Handle<'a>) -> Option<T> {
        let value = self.queue.dequeue(h)?;
        // Release the ticket only after the value actually left the FIFO.
        self.len.fetch_sub(1, Ordering::AcqRel);
        Some(value)
    }

    /// A clone of the oldest value without removing it. Must be called
    /// between `enter` and `leave`.
    pub fn peek<'a>(&'a self, h: &mut S::Handle<'a>) -> Option<T> {
        self.queue.peek(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyaline::{Hyaline, Hyaline1S, HyalineS};
    use smr_baselines::{Ebr, He, Hp, Ibr, Lfrc};
    use smr_core::SmrHandle;

    fn cfg() -> SmrConfig {
        SmrConfig {
            slots: 4,
            batch_min: 8,
            era_freq: 8,
            scan_threshold: 16,
            max_threads: 64,
            ..SmrConfig::default()
        }
    }

    fn smoke<S: Smr<QueueNode<u64>>>() {
        let q: BoundedMpmcQueue<u64, S> = BoundedMpmcQueue::with_config(cfg(), 8);
        let mut h = q.smr_handle();
        h.enter();
        assert!(q.is_empty());
        for i in 0..8 {
            assert_eq!(q.try_enqueue(&mut h, i), Ok(()));
        }
        assert_eq!(q.len(), 8);
        assert_eq!(q.try_enqueue(&mut h, 99), Err(99));
        assert_eq!(q.peek(&mut h), Some(0));
        for i in 0..8 {
            assert_eq!(q.dequeue(&mut h), Some(i));
        }
        assert_eq!(q.dequeue(&mut h), None);
        assert!(q.is_empty());
        h.leave();
    }

    #[test]
    fn smoke_all_schemes() {
        smoke::<Hyaline<_>>();
        smoke::<HyalineS<_>>();
        smoke::<Hyaline1S<_>>();
        smoke::<Ebr<_>>();
        smoke::<Hp<_>>();
        smoke::<He<_>>();
        smoke::<Ibr<_>>();
        smoke::<Lfrc<_>>();
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _: BoundedMpmcQueue<u64, Ebr<_>> = BoundedMpmcQueue::with_config(cfg(), 0);
    }

    #[test]
    fn capacity_never_exceeded_under_contention() {
        let q: &BoundedMpmcQueue<u64, Hyaline<_>> = &BoundedMpmcQueue::with_config(cfg(), 4);
        let max_seen = &AtomicUsize::new(0);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                s.spawn(move || {
                    let mut h = q.smr_handle();
                    for i in 0..2_000 {
                        h.enter();
                        if t % 2 == 0 {
                            let _ = q.try_enqueue(&mut h, i);
                        } else {
                            q.dequeue(&mut h);
                        }
                        max_seen.fetch_max(q.len(), Ordering::Relaxed);
                        h.leave();
                    }
                });
            }
        });
        assert!(max_seen.load(Ordering::Relaxed) <= 4);
    }

    #[test]
    fn all_values_accounted_for() {
        // Everything successfully enqueued is dequeued exactly once.
        let q: &BoundedMpmcQueue<u64, HyalineS<_>> = &BoundedMpmcQueue::with_config(cfg(), 16);
        let produced = &AtomicUsize::new(0);
        let consumed = &AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(move || {
                    let mut h = q.smr_handle();
                    for i in 0..1_000u64 {
                        loop {
                            h.enter();
                            let r = q.try_enqueue(&mut h, i);
                            h.leave();
                            if r.is_ok() {
                                produced.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                });
            }
            for _ in 0..2 {
                s.spawn(move || {
                    let mut h = q.smr_handle();
                    while consumed.load(Ordering::Relaxed) < 2_000 {
                        h.enter();
                        if q.dequeue(&mut h).is_some() {
                            consumed.fetch_add(1, Ordering::Relaxed);
                        }
                        h.leave();
                        std::thread::yield_now();
                    }
                });
            }
        });
        assert_eq!(produced.load(Ordering::Relaxed), 2_000);
        assert_eq!(consumed.load(Ordering::Relaxed), 2_000);
    }
}
