//! The Harris–Michael sorted linked list.
//!
//! Harris's lock-free list \[20\] with Michael's hazard-pointer-compatible
//! amendment \[26\]: traversals never walk *past* a logically deleted
//! (marked) node — they unlink it first (retiring it timely) or restart.
//! This is the variant every scheme can run, robust ones included; the
//! Hyaline paper's §2.4 notes that robust schemes *require* this
//! modification while basic Hyaline could also run Harris's original.
//!
//! The traversal core is shared with [`MichaelHashMap`](crate::MichaelHashMap),
//! which is an array of these lists \[26\].

use smr_core::{Atomic, Shared, Smr, SmrConfig, SmrHandle};
use std::sync::atomic::Ordering;

/// Mark bit on a node's `next` pointer: the node is logically deleted.
const MARK: usize = 1;

/// Protection indices used during traversal (rotated as the window slides).
const IDX_A: usize = 0;
const IDX_B: usize = 1;
const IDX_C: usize = 2;

/// A node of the sorted list: key, value and a markable next link.
pub struct ListNode<K, V> {
    key: K,
    value: V,
    next: Atomic<ListNode<K, V>>,
}

impl<K: std::fmt::Debug, V: std::fmt::Debug> std::fmt::Debug for ListNode<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ListNode")
            .field("key", &self.key)
            .field("value", &self.value)
            .finish_non_exhaustive()
    }
}

impl<K, V> ListNode<K, V> {
    /// The node's key.
    pub fn key(&self) -> &K {
        &self.key
    }

    /// The node's value.
    pub fn value(&self) -> &V {
        &self.value
    }
}

/// Result of the `find` traversal: the window `(prev, curr)` where `curr`
/// is the first node with `key >= target` (or null).
pub(crate) struct FindResult<K, V> {
    pub(crate) found: bool,
    /// Link holding `curr` (either the head or `prev`'s next field). The
    /// node owning the link is protected by one of the rotation indices.
    pub(crate) prev_link: *const Atomic<ListNode<K, V>>,
    pub(crate) curr: Shared<ListNode<K, V>>,
    /// `curr`'s successor at observation time (unmarked).
    pub(crate) next: Shared<ListNode<K, V>>,
}

/// Michael's `find`: positions the window, unlinking (and retiring) marked
/// nodes on the way.
///
/// # Safety
///
/// `head` must outlive the call and be a list head whose nodes were
/// allocated through `handle`'s domain. The caller must be inside an
/// operation (`enter`).
pub(crate) unsafe fn find<K, V, H>(
    handle: &mut H,
    head: &Atomic<ListNode<K, V>>,
    key: &K,
) -> FindResult<K, V>
where
    K: Ord,
    H: SmrHandle<ListNode<K, V>>,
{
    'retry: loop {
        let mut prev_link: *const Atomic<ListNode<K, V>> = head;
        // Rotating protection indices for (prev-node, curr, next).
        let mut idx = [IDX_A, IDX_B, IDX_C];
        let mut curr = handle.protect(idx[1], &*prev_link);
        loop {
            if curr.is_null() {
                return FindResult {
                    found: false,
                    prev_link,
                    curr,
                    next: Shared::null(),
                };
            }
            debug_assert_eq!(curr.tag(), 0, "links always store untagged pointers");
            let curr_ref = curr.deref();
            let next = handle.protect(idx[2], &curr_ref.next);
            // Validate the window: prev must still link to an unmarked curr
            // (Michael's re-check; also re-establishes that curr was not
            // unlinked while we protected next).
            if (*prev_link).load(Ordering::Acquire) != curr {
                continue 'retry;
            }
            if next.tag() == MARK {
                // curr is logically deleted: unlink it here and now.
                let next_clean = next.untagged();
                if (*prev_link)
                    .compare_exchange(curr, next_clean, Ordering::AcqRel, Ordering::Acquire)
                    .is_err()
                {
                    continue 'retry;
                }
                handle.retire(curr);
                // next (protected by idx[2]) becomes curr.
                idx.swap(1, 2);
                curr = next_clean;
            } else {
                if curr_ref.key >= *key {
                    return FindResult {
                        found: curr_ref.key == *key,
                        prev_link,
                        curr,
                        next,
                    };
                }
                // Slide the window: curr becomes prev, next becomes curr.
                prev_link = &curr_ref.next;
                idx.rotate_left(1);
                curr = next;
            }
        }
    }
}

/// Looks `key` up, cloning its value.
pub(crate) unsafe fn get<K, V, H>(
    handle: &mut H,
    head: &Atomic<ListNode<K, V>>,
    key: &K,
) -> Option<V>
where
    K: Ord,
    V: Clone,
    H: SmrHandle<ListNode<K, V>>,
{
    let r = find(handle, head, key);
    r.found.then(|| r.curr.deref().value.clone())
}

/// Inserts `key -> value`; fails if the key is present.
pub(crate) unsafe fn insert<K, V, H>(
    handle: &mut H,
    head: &Atomic<ListNode<K, V>>,
    key: K,
    value: V,
) -> bool
where
    K: Ord,
    H: SmrHandle<ListNode<K, V>>,
{
    let r = find(handle, head, &key);
    if r.found {
        return false;
    }
    let node = handle.alloc(ListNode {
        key,
        value,
        next: Atomic::null(),
    });
    insert_retry(handle, head, node, r)
}

/// Continues an insert once the node exists (borrow-friendly split: `key`
/// now lives inside the node).
unsafe fn insert_retry<K, V, H>(
    handle: &mut H,
    head: &Atomic<ListNode<K, V>>,
    node: Shared<ListNode<K, V>>,
    first: FindResult<K, V>,
) -> bool
where
    K: Ord,
    H: SmrHandle<ListNode<K, V>>,
{
    let mut r = first;
    loop {
        if r.found {
            handle.dealloc(node);
            return false;
        }
        if try_link(node, &r) {
            return true;
        }
        r = find(handle, head, &node.deref().key);
    }
}

/// Single link attempt of a fresh, exclusively owned node.
unsafe fn try_link<K, V>(node: Shared<ListNode<K, V>>, r: &FindResult<K, V>) -> bool
where
    K: Ord,
{
    node.deref().next.store(r.curr, Ordering::Relaxed);
    (*r.prev_link)
        .compare_exchange(r.curr, node, Ordering::AcqRel, Ordering::Acquire)
        .is_ok()
}

/// Removes `key`, returning its value.
pub(crate) unsafe fn remove<K, V, H>(
    handle: &mut H,
    head: &Atomic<ListNode<K, V>>,
    key: &K,
) -> Option<V>
where
    K: Ord,
    V: Clone,
    H: SmrHandle<ListNode<K, V>>,
{
    loop {
        let r = find(handle, head, key);
        if !r.found {
            return None;
        }
        let curr_ref = r.curr.deref();
        // Logically delete: mark curr's next. Only one remover wins.
        if curr_ref
            .next
            .compare_exchange(
                r.next,
                r.next.with_tag(MARK),
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_err()
        {
            // Either a racing remover marked it, or next changed: retry.
            continue;
        }
        let value = curr_ref.value.clone();
        // Physical unlink; on failure some find() will do it (and retire).
        if (*r.prev_link)
            .compare_exchange(r.curr, r.next, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            handle.retire(r.curr);
        } else {
            let _ = find(handle, head, key);
        }
        return Some(value);
    }
}

/// Frees all nodes of a list given exclusive access (for `Drop`).
pub(crate) unsafe fn drop_all<K, V, H>(handle: &mut H, head: &Atomic<ListNode<K, V>>)
where
    H: SmrHandle<ListNode<K, V>>,
{
    let mut curr = head.load(Ordering::Acquire);
    head.store(Shared::null(), Ordering::Relaxed);
    while !curr.is_null() {
        let next = curr.deref().next.load(Ordering::Acquire);
        handle.dealloc(curr.untagged());
        curr = next.untagged();
    }
}

/// The Harris–Michael sorted linked list, generic over the reclamation
/// scheme (the paper's Figure 8a/9a benchmark structure).
///
/// # Example
///
/// ```
/// use hyaline::Hyaline;
/// use lockfree_ds::HarrisMichaelList;
/// use smr_core::SmrHandle;
///
/// let list: HarrisMichaelList<u64, u64, Hyaline<_>> = HarrisMichaelList::new();
/// let mut h = list.smr_handle();
/// h.enter();
/// assert!(list.insert(&mut h, 1, 10));
/// assert_eq!(list.get(&mut h, &1), Some(10));
/// assert_eq!(list.remove(&mut h, &1), Some(10));
/// h.leave();
/// ```
pub struct HarrisMichaelList<K, V, S>
where
    K: Ord + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    S: Smr<ListNode<K, V>>,
{
    domain: S,
    head: Atomic<ListNode<K, V>>,
}

impl<K, V, S> std::fmt::Debug for HarrisMichaelList<K, V, S>
where
    K: Ord + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    S: Smr<ListNode<K, V>>,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HarrisMichaelList")
            .field("scheme", &S::name())
            .finish_non_exhaustive()
    }
}

impl<K, V, S> Default for HarrisMichaelList<K, V, S>
where
    K: Ord + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    S: Smr<ListNode<K, V>>,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V, S> HarrisMichaelList<K, V, S>
where
    K: Ord + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    S: Smr<ListNode<K, V>>,
{
    /// An empty list with a default-configured domain.
    pub fn new() -> Self {
        Self::with_config(SmrConfig::default())
    }

    /// An empty list whose reclamation domain uses `config`.
    pub fn with_config(config: SmrConfig) -> Self {
        Self::with_domain(S::with_config(config))
    }

    /// An empty list over a pre-built reclamation domain — the way to hand
    /// in a configured [`smr_core::Sharded`] adapter.
    pub fn with_domain(domain: S) -> Self {
        Self {
            domain,
            head: Atomic::null(),
        }
    }

    /// The underlying reclamation domain (statistics, etc.).
    pub fn domain(&self) -> &S {
        &self.domain
    }

    /// A per-thread SMR handle for operating on this list.
    pub fn smr_handle(&self) -> S::Handle<'_> {
        self.domain.handle()
    }

    /// Looks up `key`. Must be called between `enter` and `leave`.
    pub fn get<'a>(&'a self, handle: &mut S::Handle<'a>, key: &K) -> Option<V> {
        unsafe { get(handle, &self.head, key) }
    }

    /// Whether `key` is present. Must be called between `enter` and `leave`.
    pub fn contains<'a>(&'a self, handle: &mut S::Handle<'a>, key: &K) -> bool {
        unsafe { find(handle, &self.head, key).found }
    }

    /// Inserts `key -> value`; `false` if the key already exists. Must be
    /// called between `enter` and `leave`.
    pub fn insert<'a>(&'a self, handle: &mut S::Handle<'a>, key: K, value: V) -> bool {
        unsafe { insert(handle, &self.head, key, value) }
    }

    /// Removes `key`, returning its value. Must be called between `enter`
    /// and `leave`.
    pub fn remove<'a>(&'a self, handle: &mut S::Handle<'a>, key: &K) -> Option<V> {
        unsafe { remove(handle, &self.head, key) }
    }
}

impl<K, V, S> Drop for HarrisMichaelList<K, V, S>
where
    K: Ord + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    S: Smr<ListNode<K, V>>,
{
    fn drop(&mut self) {
        let mut handle = self.domain.handle();
        unsafe { drop_all(&mut handle, &self.head) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyaline::{Hyaline, Hyaline1, Hyaline1S, HyalineS};
    use smr_baselines::{Ebr, He, Hp, Ibr, Leaky, Lfrc};

    fn cfg() -> SmrConfig {
        SmrConfig {
            slots: 4,
            batch_min: 8,
            era_freq: 8,
            scan_threshold: 16,
            max_threads: 64,
            ..SmrConfig::default()
        }
    }

    fn smoke<S: Smr<ListNode<u64, u64>>>() {
        let list: HarrisMichaelList<u64, u64, S> = HarrisMichaelList::with_config(cfg());
        let mut h = list.smr_handle();
        h.enter();
        assert!(list.insert(&mut h, 2, 20));
        assert!(list.insert(&mut h, 1, 10));
        assert!(list.insert(&mut h, 3, 30));
        assert!(!list.insert(&mut h, 2, 99), "duplicate rejected");
        assert_eq!(list.get(&mut h, &1), Some(10));
        assert_eq!(list.get(&mut h, &2), Some(20));
        assert_eq!(list.get(&mut h, &3), Some(30));
        assert_eq!(list.get(&mut h, &4), None);
        assert_eq!(list.remove(&mut h, &2), Some(20));
        assert_eq!(list.remove(&mut h, &2), None);
        assert_eq!(list.get(&mut h, &2), None);
        assert!(list.contains(&mut h, &1));
        h.leave();
    }

    #[test]
    fn smoke_all_schemes() {
        smoke::<Hyaline<_>>();
        smoke::<Hyaline1<_>>();
        smoke::<HyalineS<_>>();
        smoke::<Hyaline1S<_>>();
        smoke::<Ebr<_>>();
        smoke::<Hp<_>>();
        smoke::<He<_>>();
        smoke::<Ibr<_>>();
        smoke::<Leaky<_>>();
        smoke::<Lfrc<_>>();
    }

    fn concurrent_churn<S: Smr<ListNode<u64, u64>>>() {
        let list: &HarrisMichaelList<u64, u64, S> = &HarrisMichaelList::with_config(cfg());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                s.spawn(move || {
                    let mut h = list.smr_handle();
                    let mut x = t.wrapping_mul(0x9E3779B97F4A7C15) | 1;
                    for _ in 0..2_000 {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let key = x % 64;
                        h.enter();
                        match x % 3 {
                            0 => {
                                list.insert(&mut h, key, key);
                            }
                            1 => {
                                list.remove(&mut h, &key);
                            }
                            _ => {
                                if let Some(v) = list.get(&mut h, &key) {
                                    assert_eq!(v, key, "value corrupted");
                                }
                            }
                        }
                        h.leave();
                    }
                });
            }
        });
    }

    #[test]
    fn churn_hyaline() {
        concurrent_churn::<Hyaline<_>>();
    }

    #[test]
    fn churn_hyaline1() {
        concurrent_churn::<Hyaline1<_>>();
    }

    #[test]
    fn churn_hyaline_s() {
        concurrent_churn::<HyalineS<_>>();
    }

    #[test]
    fn churn_hyaline1_s() {
        concurrent_churn::<Hyaline1S<_>>();
    }

    #[test]
    fn churn_ebr() {
        concurrent_churn::<Ebr<_>>();
    }

    #[test]
    fn churn_hp() {
        concurrent_churn::<Hp<_>>();
    }

    #[test]
    fn churn_he() {
        concurrent_churn::<He<_>>();
    }

    #[test]
    fn churn_ibr() {
        concurrent_churn::<Ibr<_>>();
    }

    #[test]
    fn churn_lfrc() {
        concurrent_churn::<Lfrc<_>>();
    }

    #[test]
    fn drop_frees_remaining_nodes() {
        let list: HarrisMichaelList<u64, u64, Hyaline<_>> =
            HarrisMichaelList::with_config(cfg());
        {
            let mut h = list.smr_handle();
            h.enter();
            for i in 0..100 {
                list.insert(&mut h, i, i);
            }
            h.leave();
        }
        let stats_alloc = list.domain().stats().allocated();
        drop(list);
        // Can't inspect stats after drop; the assertion is that no leak
        // checker / payload counter fires in the integration suite. Here we
        // at least exercised the path.
        assert_eq!(stats_alloc, 100);
    }

    #[test]
    fn sorted_order_maintained() {
        let list: HarrisMichaelList<u64, u64, Ebr<_>> = HarrisMichaelList::with_config(cfg());
        let mut h = list.smr_handle();
        h.enter();
        for &k in &[5u64, 1, 9, 3, 7] {
            assert!(list.insert(&mut h, k, k * 10));
        }
        for &k in &[1u64, 3, 5, 7, 9] {
            assert_eq!(list.get(&mut h, &k), Some(k * 10));
        }
        h.leave();
    }
}
