//! The Harris–Michael sorted linked list.
//!
//! Harris's lock-free list \[20\] with Michael's hazard-pointer-compatible
//! amendment \[26\]: traversals never walk *past* a logically deleted
//! (marked) node — they unlink it first (retiring it timely) or restart.
//! This is the variant every scheme can run, robust ones included; the
//! Hyaline paper's §2.4 notes that robust schemes *require* this
//! modification while basic Hyaline could also run Harris's original.
//!
//! The traversal core is shared with [`MichaelHashMap`](crate::MichaelHashMap),
//! which is an array of these lists \[26\]. It is written against the
//! typed-pointer layer: `find` returns borrow-branded pointers (and a
//! `&Atomic` window link whose owning node is protected by the rotation
//! indices), so the only remaining `unsafe` is the retire argument at the
//! two unlink sites and the exclusive teardown in `drop_all`.

use smr_core::typed::{Atomic, Guard, Owned, Shared};
use smr_core::{Smr, SmrConfig, SmrHandle};

/// Mark bit on a node's `next` pointer: the node is logically deleted.
const MARK: usize = 1;

/// Protection indices used during traversal (rotated as the window slides).
const IDX_A: usize = 0;
const IDX_B: usize = 1;
const IDX_C: usize = 2;

/// A node of the sorted list: key, value and a markable next link.
pub struct ListNode<K, V> {
    key: K,
    value: V,
    next: Atomic<ListNode<K, V>>,
}

impl<K: std::fmt::Debug, V: std::fmt::Debug> std::fmt::Debug for ListNode<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ListNode")
            .field("key", &self.key)
            .field("value", &self.value)
            .finish_non_exhaustive()
    }
}

impl<K, V> ListNode<K, V> {
    /// The node's key.
    pub fn key(&self) -> &K {
        &self.key
    }

    /// The node's value.
    pub fn value(&self) -> &V {
        &self.value
    }
}

/// Result of the `find` traversal: the window `(prev, curr)` where `curr`
/// is the first node with `key >= target` (or null).
pub(crate) struct FindResult<'g, K, V> {
    pub(crate) found: bool,
    /// Link holding `curr` (either the list head or `prev`'s next field).
    /// The node owning the link is protected by one of the rotation
    /// indices for as long as the guard borrow `'g` lasts, which is what
    /// makes holding a real `&Atomic` into it sound.
    pub(crate) prev_link: &'g Atomic<ListNode<K, V>>,
    pub(crate) curr: Shared<'g, ListNode<K, V>>,
    /// `curr`'s successor at observation time (unmarked).
    pub(crate) next: Shared<'g, ListNode<K, V>>,
}

/// Michael's `find`: positions the window, unlinking (and retiring) marked
/// nodes on the way. The caller must be inside an operation (the guard's
/// bracketing contract).
pub(crate) fn find<'g, K, V, H>(
    g: &'g Guard<'_, ListNode<K, V>, H>,
    head: &'g Atomic<ListNode<K, V>>,
    key: &K,
) -> FindResult<'g, K, V>
where
    K: Ord,
    H: SmrHandle<ListNode<K, V>>,
{
    'retry: loop {
        let mut prev_link = head;
        // Rotating protection indices for (prev-node, curr, next).
        let mut idx = [IDX_A, IDX_B, IDX_C];
        let mut curr = prev_link.load(idx[1], g);
        loop {
            let Some(curr_ref) = curr.as_ref() else {
                return FindResult {
                    found: false,
                    prev_link,
                    curr,
                    next: Shared::null(),
                };
            };
            debug_assert_eq!(curr.tag(), 0, "links always store untagged pointers");
            let next = curr_ref.next.load(idx[2], g);
            // Validate the window: prev must still link to an unmarked curr
            // (Michael's re-check; also re-establishes that curr was not
            // unlinked while we protected next).
            if prev_link.fetch() != curr {
                continue 'retry;
            }
            if next.tag() == MARK {
                // curr is logically deleted: unlink it here and now.
                let next_clean = next.untagged();
                if prev_link.compare_exchange(curr, next_clean).is_err() {
                    continue 'retry;
                }
                // SAFETY: the successful CAS removed `curr` from the list
                // (it was already marked, so no insert can re-link it);
                // only the unlink winner retires.
                unsafe { g.defer_retire(curr) };
                // next (protected by idx[2]) becomes curr.
                idx.swap(1, 2);
                curr = next_clean;
            } else {
                if curr_ref.key >= *key {
                    return FindResult {
                        found: curr_ref.key == *key,
                        prev_link,
                        curr,
                        next,
                    };
                }
                // Slide the window: curr becomes prev, next becomes curr.
                prev_link = &curr_ref.next;
                idx.rotate_left(1);
                curr = next;
            }
        }
    }
}

/// Looks `key` up, cloning its value.
pub(crate) fn get<K, V, H>(
    g: &Guard<'_, ListNode<K, V>, H>,
    head: &Atomic<ListNode<K, V>>,
    key: &K,
) -> Option<V>
where
    K: Ord,
    V: Clone,
    H: SmrHandle<ListNode<K, V>>,
{
    let r = find(g, head, key);
    r.found.then(|| r.curr.deref().value.clone())
}

/// Inserts `key -> value`; fails if the key is present.
pub(crate) fn insert<K, V, H>(
    g: &Guard<'_, ListNode<K, V>, H>,
    head: &Atomic<ListNode<K, V>>,
    key: K,
    value: V,
) -> bool
where
    K: Ord,
    H: SmrHandle<ListNode<K, V>>,
{
    let r = find(g, head, &key);
    if r.found {
        return false;
    }
    let node = g.alloc(ListNode {
        key,
        value,
        next: Atomic::null(),
    });
    insert_retry(g, head, node, r)
}

/// Continues an insert once the node exists (borrow-friendly split: `key`
/// now lives inside the node).
fn insert_retry<'g, K, V, H>(
    g: &'g Guard<'_, ListNode<K, V>, H>,
    head: &'g Atomic<ListNode<K, V>>,
    node: Owned<ListNode<K, V>>,
    first: FindResult<'g, K, V>,
) -> bool
where
    K: Ord,
    H: SmrHandle<ListNode<K, V>>,
{
    let mut node = node;
    let mut r = first;
    loop {
        if r.found {
            g.discard(node);
            return false;
        }
        node.as_ref().next.store(r.curr);
        match r.prev_link.compare_exchange_owned(r.curr, node) {
            Ok(_) => return true,
            Err((_, back)) => {
                node = back;
                r = find(g, head, &node.as_ref().key);
            }
        }
    }
}

/// Removes `key`, returning its value.
pub(crate) fn remove<K, V, H>(
    g: &Guard<'_, ListNode<K, V>, H>,
    head: &Atomic<ListNode<K, V>>,
    key: &K,
) -> Option<V>
where
    K: Ord,
    V: Clone,
    H: SmrHandle<ListNode<K, V>>,
{
    loop {
        let r = find(g, head, key);
        if !r.found {
            return None;
        }
        let curr_ref = r.curr.deref();
        // Logically delete: mark curr's next. Only one remover wins.
        if curr_ref
            .next
            .compare_exchange(r.next, r.next.with_tag(MARK))
            .is_err()
        {
            // Either a racing remover marked it, or next changed: retry.
            continue;
        }
        let value = curr_ref.value.clone();
        // Physical unlink; on failure some find() will do it (and retire).
        if r.prev_link.compare_exchange(r.curr, r.next).is_ok() {
            // SAFETY: we marked curr and won the unlink CAS — curr is out
            // of the list, no insert can re-link a marked node, and the
            // mark guarantees exactly one retirer (us).
            unsafe { g.defer_retire(r.curr) };
        } else {
            let _ = find(g, head, key);
        }
        return Some(value);
    }
}

/// Frees all nodes of a list.
///
/// # Safety
///
/// The caller must have exclusive access to the list (e.g. `Drop` with
/// `&mut self`): nodes are walked and freed without protection.
pub(crate) unsafe fn drop_all<K, V, H>(
    g: &Guard<'_, ListNode<K, V>, H>,
    head: &Atomic<ListNode<K, V>>,
) where
    H: SmrHandle<ListNode<K, V>>,
{
    let mut curr = head.fetch();
    head.store(smr_core::typed::Ptr::null());
    while !curr.is_null() {
        // SAFETY: exclusive access per this function's contract.
        let next = unsafe { curr.deref() }.next.fetch();
        // SAFETY: same exclusive-teardown argument.
        unsafe { g.dealloc(curr) };
        curr = next.untagged();
    }
}

/// The Harris–Michael sorted linked list, generic over the reclamation
/// scheme (the paper's Figure 8a/9a benchmark structure).
///
/// # Example
///
/// ```
/// use hyaline::Hyaline;
/// use lockfree_ds::HarrisMichaelList;
/// use smr_core::SmrHandle;
///
/// let list: HarrisMichaelList<u64, u64, Hyaline<_>> = HarrisMichaelList::new();
/// let mut h = list.smr_handle();
/// h.enter();
/// assert!(list.insert(&mut h, 1, 10));
/// assert_eq!(list.get(&mut h, &1), Some(10));
/// assert_eq!(list.remove(&mut h, &1), Some(10));
/// h.leave();
/// ```
pub struct HarrisMichaelList<K, V, S>
where
    K: Ord + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    S: Smr<ListNode<K, V>>,
{
    domain: S,
    head: Atomic<ListNode<K, V>>,
}

impl<K, V, S> std::fmt::Debug for HarrisMichaelList<K, V, S>
where
    K: Ord + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    S: Smr<ListNode<K, V>>,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HarrisMichaelList")
            .field("scheme", &S::name())
            .finish_non_exhaustive()
    }
}

impl<K, V, S> Default for HarrisMichaelList<K, V, S>
where
    K: Ord + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    S: Smr<ListNode<K, V>>,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V, S> HarrisMichaelList<K, V, S>
where
    K: Ord + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    S: Smr<ListNode<K, V>>,
{
    /// An empty list with a default-configured domain.
    pub fn new() -> Self {
        Self::with_config(SmrConfig::default())
    }

    /// An empty list whose reclamation domain uses `config`.
    pub fn with_config(config: SmrConfig) -> Self {
        Self::with_domain(S::with_config(config))
    }

    /// An empty list over a pre-built reclamation domain — the way to hand
    /// in a configured [`smr_core::Sharded`] adapter.
    pub fn with_domain(domain: S) -> Self {
        Self {
            domain,
            head: Atomic::null(),
        }
    }

    /// The underlying reclamation domain (statistics, etc.).
    pub fn domain(&self) -> &S {
        &self.domain
    }

    /// A per-thread SMR handle for operating on this list.
    pub fn smr_handle(&self) -> S::Handle<'_> {
        self.domain.handle()
    }

    /// Looks up `key`. Must be called between `enter` and `leave`.
    pub fn get<'a>(&'a self, handle: &mut S::Handle<'a>, key: &K) -> Option<V> {
        get(&Guard::over(handle), &self.head, key)
    }

    /// Whether `key` is present. Must be called between `enter` and `leave`.
    pub fn contains<'a>(&'a self, handle: &mut S::Handle<'a>, key: &K) -> bool {
        find(&Guard::over(handle), &self.head, key).found
    }

    /// Inserts `key -> value`; `false` if the key already exists. Must be
    /// called between `enter` and `leave`.
    pub fn insert<'a>(&'a self, handle: &mut S::Handle<'a>, key: K, value: V) -> bool {
        insert(&Guard::over(handle), &self.head, key, value)
    }

    /// Removes `key`, returning its value. Must be called between `enter`
    /// and `leave`.
    pub fn remove<'a>(&'a self, handle: &mut S::Handle<'a>, key: &K) -> Option<V> {
        remove(&Guard::over(handle), &self.head, key)
    }
}

impl<K, V, S> Drop for HarrisMichaelList<K, V, S>
where
    K: Ord + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    S: Smr<ListNode<K, V>>,
{
    fn drop(&mut self) {
        let mut handle = self.domain.handle();
        // SAFETY: `Drop` has `&mut self` — exclusive access to the list.
        unsafe { drop_all(&Guard::over(&mut handle), &self.head) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyaline::{Hyaline, Hyaline1, Hyaline1S, HyalineS};
    use smr_baselines::{Ebr, He, Hp, Ibr, Leaky, Lfrc};

    fn cfg() -> SmrConfig {
        SmrConfig {
            slots: 4,
            batch_min: 8,
            era_freq: 8,
            scan_threshold: 16,
            max_threads: 64,
            ..SmrConfig::default()
        }
    }

    fn smoke<S: Smr<ListNode<u64, u64>>>() {
        let list: HarrisMichaelList<u64, u64, S> = HarrisMichaelList::with_config(cfg());
        let mut h = list.smr_handle();
        h.enter();
        assert!(list.insert(&mut h, 2, 20));
        assert!(list.insert(&mut h, 1, 10));
        assert!(list.insert(&mut h, 3, 30));
        assert!(!list.insert(&mut h, 2, 99), "duplicate rejected");
        assert_eq!(list.get(&mut h, &1), Some(10));
        assert_eq!(list.get(&mut h, &2), Some(20));
        assert_eq!(list.get(&mut h, &3), Some(30));
        assert_eq!(list.get(&mut h, &4), None);
        assert_eq!(list.remove(&mut h, &2), Some(20));
        assert_eq!(list.remove(&mut h, &2), None);
        assert_eq!(list.get(&mut h, &2), None);
        assert!(list.contains(&mut h, &1));
        h.leave();
    }

    #[test]
    fn smoke_all_schemes() {
        smoke::<Hyaline<_>>();
        smoke::<Hyaline1<_>>();
        smoke::<HyalineS<_>>();
        smoke::<Hyaline1S<_>>();
        smoke::<Ebr<_>>();
        smoke::<Hp<_>>();
        smoke::<He<_>>();
        smoke::<Ibr<_>>();
        smoke::<Leaky<_>>();
        smoke::<Lfrc<_>>();
    }

    fn concurrent_churn<S: Smr<ListNode<u64, u64>>>() {
        let list: &HarrisMichaelList<u64, u64, S> = &HarrisMichaelList::with_config(cfg());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                s.spawn(move || {
                    let mut h = list.smr_handle();
                    let mut x = t.wrapping_mul(0x9E3779B97F4A7C15) | 1;
                    for _ in 0..2_000 {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let key = x % 64;
                        h.enter();
                        match x % 3 {
                            0 => {
                                list.insert(&mut h, key, key);
                            }
                            1 => {
                                list.remove(&mut h, &key);
                            }
                            _ => {
                                if let Some(v) = list.get(&mut h, &key) {
                                    assert_eq!(v, key, "value corrupted");
                                }
                            }
                        }
                        h.leave();
                    }
                });
            }
        });
    }

    #[test]
    fn churn_hyaline() {
        concurrent_churn::<Hyaline<_>>();
    }

    #[test]
    fn churn_hyaline1() {
        concurrent_churn::<Hyaline1<_>>();
    }

    #[test]
    fn churn_hyaline_s() {
        concurrent_churn::<HyalineS<_>>();
    }

    #[test]
    fn churn_hyaline1_s() {
        concurrent_churn::<Hyaline1S<_>>();
    }

    #[test]
    fn churn_ebr() {
        concurrent_churn::<Ebr<_>>();
    }

    #[test]
    fn churn_hp() {
        concurrent_churn::<Hp<_>>();
    }

    #[test]
    fn churn_he() {
        concurrent_churn::<He<_>>();
    }

    #[test]
    fn churn_ibr() {
        concurrent_churn::<Ibr<_>>();
    }

    #[test]
    fn churn_lfrc() {
        concurrent_churn::<Lfrc<_>>();
    }

    #[test]
    fn drop_frees_remaining_nodes() {
        let list: HarrisMichaelList<u64, u64, Hyaline<_>> =
            HarrisMichaelList::with_config(cfg());
        {
            let mut h = list.smr_handle();
            h.enter();
            for i in 0..100 {
                list.insert(&mut h, i, i);
            }
            h.leave();
        }
        let stats_alloc = list.domain().stats().allocated();
        drop(list);
        // Can't inspect stats after drop; the assertion is that no leak
        // checker / payload counter fires in the integration suite. Here we
        // at least exercised the path.
        assert_eq!(stats_alloc, 100);
    }

    #[test]
    fn sorted_order_maintained() {
        let list: HarrisMichaelList<u64, u64, Ebr<_>> = HarrisMichaelList::with_config(cfg());
        let mut h = list.smr_handle();
        h.enter();
        for &k in &[5u64, 1, 9, 3, 7] {
            assert!(list.insert(&mut h, k, k * 10));
        }
        for &k in &[1u64, 3, 5, 7, 9] {
            assert_eq!(list.get(&mut h, &k), Some(k * 10));
        }
        h.leave();
    }
}
