//! Michael's lock-free hash map \[26\]: a fixed array of Harris–Michael
//! sorted-list buckets (the paper's Figure 8c/9c benchmark structure).

use smr_core::typed::{Atomic, Guard};
use smr_core::{Smr, SmrConfig, SmrHandle};
use std::hash::{BuildHasher, BuildHasherDefault, Hash};

use crate::list::{self, ListNode};

/// Default number of buckets. The paper's workload spreads 100 000 keys; a
/// load factor near one keeps bucket traversals short, matching \[35\].
pub const DEFAULT_BUCKETS: usize = 1 << 16;

/// A deterministic hasher (fixed seed) so benchmark runs are reproducible.
type MapHasher = BuildHasherDefault<std::collections::hash_map::DefaultHasher>;

/// Michael's lock-free hash map, generic over the reclamation scheme.
///
/// # Example
///
/// ```
/// use hyaline::HyalineS;
/// use lockfree_ds::MichaelHashMap;
/// use smr_core::SmrHandle;
///
/// let map: MichaelHashMap<u64, String, HyalineS<_>> = MichaelHashMap::new();
/// let mut h = map.smr_handle();
/// h.enter();
/// assert!(map.insert(&mut h, 7, "seven".into()));
/// assert_eq!(map.get(&mut h, &7).as_deref(), Some("seven"));
/// assert!(map.remove(&mut h, &7).is_some());
/// h.leave();
/// ```
pub struct MichaelHashMap<K, V, S>
where
    K: Ord + Hash + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    S: Smr<ListNode<K, V>>,
{
    domain: S,
    buckets: Box<[Atomic<ListNode<K, V>>]>,
    hasher: MapHasher,
}

impl<K, V, S> std::fmt::Debug for MichaelHashMap<K, V, S>
where
    K: Ord + Hash + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    S: Smr<ListNode<K, V>>,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MichaelHashMap")
            .field("scheme", &S::name())
            .field("buckets", &self.buckets.len())
            .finish_non_exhaustive()
    }
}

impl<K, V, S> Default for MichaelHashMap<K, V, S>
where
    K: Ord + Hash + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    S: Smr<ListNode<K, V>>,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V, S> MichaelHashMap<K, V, S>
where
    K: Ord + Hash + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    S: Smr<ListNode<K, V>>,
{
    /// An empty map with [`DEFAULT_BUCKETS`] buckets and a default domain.
    pub fn new() -> Self {
        Self::with_config_and_buckets(SmrConfig::default(), DEFAULT_BUCKETS)
    }

    /// An empty map with a configured domain and [`DEFAULT_BUCKETS`].
    pub fn with_config(config: SmrConfig) -> Self {
        Self::with_config_and_buckets(config, DEFAULT_BUCKETS)
    }

    /// An empty map with `buckets` buckets (rounded up to a power of two).
    pub fn with_config_and_buckets(config: SmrConfig, buckets: usize) -> Self {
        Self::with_domain_and_buckets(S::with_config(config), buckets)
    }

    /// An empty map over a pre-built domain and [`DEFAULT_BUCKETS`] — the
    /// way to hand in a configured [`smr_core::Sharded`] adapter.
    pub fn with_domain(domain: S) -> Self {
        Self::with_domain_and_buckets(domain, DEFAULT_BUCKETS)
    }

    /// An empty map over a pre-built domain with `buckets` buckets (rounded
    /// up to a power of two).
    pub fn with_domain_and_buckets(domain: S, buckets: usize) -> Self {
        let buckets = buckets.next_power_of_two();
        Self {
            domain,
            buckets: (0..buckets).map(|_| Atomic::null()).collect(),
            hasher: MapHasher::default(),
        }
    }

    fn bucket_index(&self, key: &K) -> usize {
        let h = self.hasher.hash_one(key) as usize;
        h & (self.buckets.len() - 1)
    }

    /// Pins `handle` to the shard owning bucket `index` and returns the
    /// bucket head.
    ///
    /// Every node of a bucket is allocated, protected and retired through a
    /// handle pinned to that bucket, so under a [`smr_core::Sharded`] domain
    /// with `ByKey` routing each *bucket group* (the buckets whose index is
    /// congruent modulo the shard count) forms a self-contained shard: the
    /// map's retire traffic splits per group instead of funneling into one
    /// domain. Plain domains ignore the pin.
    fn pinned_bucket<'a, 'b>(
        &'a self,
        handle: &mut S::Handle<'b>,
        index: usize,
    ) -> &'a Atomic<ListNode<K, V>> {
        handle.pin_shard(index as u64);
        &self.buckets[index]
    }

    /// The underlying reclamation domain (statistics, etc.).
    pub fn domain(&self) -> &S {
        &self.domain
    }

    /// A per-thread SMR handle for operating on this map.
    pub fn smr_handle(&self) -> S::Handle<'_> {
        self.domain.handle()
    }

    /// Looks up `key`. Must be called between `enter` and `leave`.
    pub fn get<'a>(&'a self, handle: &mut S::Handle<'a>, key: &K) -> Option<V> {
        let bucket = self.pinned_bucket(handle, self.bucket_index(key));
        list::get(&Guard::over(handle), bucket, key)
    }

    /// Whether `key` is present. Must be called between `enter` and `leave`.
    pub fn contains<'a>(&'a self, handle: &mut S::Handle<'a>, key: &K) -> bool {
        self.get(handle, key).is_some()
    }

    /// Inserts `key -> value`; `false` if present. Must be called between
    /// `enter` and `leave`.
    pub fn insert<'a>(&'a self, handle: &mut S::Handle<'a>, key: K, value: V) -> bool {
        let bucket = self.pinned_bucket(handle, self.bucket_index(&key));
        list::insert(&Guard::over(handle), bucket, key, value)
    }

    /// Removes `key`, returning its value. Must be called between `enter`
    /// and `leave`.
    pub fn remove<'a>(&'a self, handle: &mut S::Handle<'a>, key: &K) -> Option<V> {
        let bucket = self.pinned_bucket(handle, self.bucket_index(key));
        list::remove(&Guard::over(handle), bucket, key)
    }
}

impl<K, V, S> Drop for MichaelHashMap<K, V, S>
where
    K: Ord + Hash + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    S: Smr<ListNode<K, V>>,
{
    fn drop(&mut self) {
        let mut handle = self.domain.handle();
        let mut g = Guard::over(&mut handle);
        for (index, bucket) in self.buckets.iter().enumerate() {
            // Pin per bucket so each shard deallocates its own nodes.
            g.pin_shard(index as u64);
            // SAFETY: `Drop` has `&mut self` — exclusive access to every
            // bucket list.
            unsafe { list::drop_all(&g, bucket) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyaline::{Hyaline, HyalineS};
    use smr_baselines::{Ebr, Hp, Ibr};
    use smr_core::SmrHandle;

    fn cfg() -> SmrConfig {
        SmrConfig {
            slots: 4,
            batch_min: 8,
            era_freq: 8,
            scan_threshold: 16,
            max_threads: 64,
            ..SmrConfig::default()
        }
    }

    fn map<S: Smr<ListNode<u64, u64>>>() -> MichaelHashMap<u64, u64, S> {
        MichaelHashMap::with_config_and_buckets(cfg(), 64)
    }

    fn smoke<S: Smr<ListNode<u64, u64>>>() {
        let m = map::<S>();
        let mut h = m.smr_handle();
        h.enter();
        for i in 0..200 {
            assert!(m.insert(&mut h, i, i * 2));
        }
        for i in 0..200 {
            assert_eq!(m.get(&mut h, &i), Some(i * 2));
        }
        for i in (0..200).step_by(2) {
            assert_eq!(m.remove(&mut h, &i), Some(i * 2));
        }
        for i in 0..200 {
            assert_eq!(m.get(&mut h, &i).is_some(), i % 2 == 1);
        }
        h.leave();
    }

    #[test]
    fn smoke_several_schemes() {
        smoke::<Hyaline<_>>();
        smoke::<HyalineS<_>>();
        smoke::<Ebr<_>>();
        smoke::<Hp<_>>();
        smoke::<Ibr<_>>();
    }

    #[test]
    fn concurrent_mixed_workload() {
        let m: &MichaelHashMap<u64, u64, Hyaline<_>> = &map();
        std::thread::scope(|s| {
            for t in 0..6u64 {
                s.spawn(move || {
                    let mut h = m.smr_handle();
                    let mut x = (t + 1).wrapping_mul(0x9E3779B97F4A7C15) | 1;
                    for _ in 0..3_000 {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let key = x % 256;
                        h.enter();
                        match x % 4 {
                            0 => {
                                m.insert(&mut h, key, key * 2);
                            }
                            1 => {
                                m.remove(&mut h, &key);
                            }
                            _ => {
                                if let Some(v) = m.get(&mut h, &key) {
                                    assert_eq!(v, key * 2);
                                }
                            }
                        }
                        h.leave();
                    }
                });
            }
        });
    }

    #[test]
    fn bucket_count_rounds_to_power_of_two() {
        let m: MichaelHashMap<u64, u64, Ebr<_>> =
            MichaelHashMap::with_config_and_buckets(cfg(), 100);
        assert_eq!(m.buckets.len(), 128);
    }

    #[test]
    fn string_values() {
        let m: MichaelHashMap<u64, String, Hyaline<_>> =
            MichaelHashMap::with_config_and_buckets(cfg(), 16);
        let mut h = m.smr_handle();
        h.enter();
        assert!(m.insert(&mut h, 1, "one".into()));
        assert_eq!(m.get(&mut h, &1).as_deref(), Some("one"));
        h.leave();
    }
}
