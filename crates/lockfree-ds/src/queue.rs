//! A Michael–Scott queue, generic over the reclamation scheme.
//!
//! Not part of the paper's figures; used by the examples (per-client work
//! queues in the server scenario), the integration tests, and as the inner
//! queue of the bounded [`crate::BoundedMpmcQueue`]. Written against the
//! typed-pointer layer: the remaining `unsafe` is the sentinel-retire
//! argument in `dequeue` and the exclusive teardown in `Drop`.

use smr_core::typed::{Atomic, Guard, Ptr};
use smr_core::{Smr, SmrConfig};

/// A queue node: the sentinel head carries `None`.
pub struct QueueNode<T> {
    value: Option<T>,
    next: Atomic<QueueNode<T>>,
}

impl<T: std::fmt::Debug> std::fmt::Debug for QueueNode<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueueNode")
            .field("value", &self.value)
            .finish_non_exhaustive()
    }
}

/// A lock-free FIFO queue.
///
/// # Example
///
/// ```
/// use hyaline::Hyaline;
/// use lockfree_ds::MsQueue;
/// use smr_core::SmrHandle;
///
/// let queue: MsQueue<String, Hyaline<_>> = MsQueue::new();
/// let mut h = queue.smr_handle();
/// h.enter();
/// queue.enqueue(&mut h, "a".to_string());
/// queue.enqueue(&mut h, "b".to_string());
/// assert_eq!(queue.dequeue(&mut h).as_deref(), Some("a"));
/// assert_eq!(queue.dequeue(&mut h).as_deref(), Some("b"));
/// assert_eq!(queue.dequeue(&mut h), None);
/// h.leave();
/// ```
pub struct MsQueue<T, S>
where
    T: Clone + Send + Sync + 'static,
    S: Smr<QueueNode<T>>,
{
    domain: S,
    head: Atomic<QueueNode<T>>,
    tail: Atomic<QueueNode<T>>,
}

impl<T, S> std::fmt::Debug for MsQueue<T, S>
where
    T: Clone + Send + Sync + 'static,
    S: Smr<QueueNode<T>>,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MsQueue")
            .field("scheme", &S::name())
            .finish_non_exhaustive()
    }
}

impl<T, S> Default for MsQueue<T, S>
where
    T: Clone + Send + Sync + 'static,
    S: Smr<QueueNode<T>>,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<T, S> MsQueue<T, S>
where
    T: Clone + Send + Sync + 'static,
    S: Smr<QueueNode<T>>,
{
    /// An empty queue with a default-configured domain.
    pub fn new() -> Self {
        Self::with_config(SmrConfig::default())
    }

    /// An empty queue whose reclamation domain uses `config`.
    pub fn with_config(config: SmrConfig) -> Self {
        Self::with_domain(S::with_config(config))
    }

    /// An empty queue over a pre-built reclamation domain (e.g. a
    /// configured [`smr_core::Sharded`] adapter).
    pub fn with_domain(domain: S) -> Self {
        let mut handle = domain.handle();
        let sentinel = {
            let g = Guard::over(&mut handle);
            g.alloc(QueueNode {
                value: None,
                next: Atomic::null(),
            })
            .into_ptr()
        };
        drop(handle);
        Self {
            domain,
            head: Atomic::new(sentinel),
            tail: Atomic::new(sentinel),
        }
    }

    /// The underlying reclamation domain.
    pub fn domain(&self) -> &S {
        &self.domain
    }

    /// A per-thread SMR handle for operating on this queue.
    pub fn smr_handle(&self) -> S::Handle<'_> {
        self.domain.handle()
    }

    /// Appends a value. Must be called between `enter` and `leave`.
    pub fn enqueue<'a>(&'a self, h: &mut S::Handle<'a>, value: T) {
        let g = Guard::over(h);
        let mut node = g.alloc(QueueNode {
            value: Some(value),
            next: Atomic::null(),
        });
        loop {
            let tail = self.tail.load(0, &g);
            let tail_ref = tail.deref();
            let next = tail_ref.next.fetch();
            if !next.is_null() {
                // Help the lagging tail along.
                let _ = self.tail.compare_exchange(tail, next);
                continue;
            }
            match tail_ref.next.compare_exchange_owned(Ptr::null(), node) {
                Ok(published) => {
                    let _ = self.tail.compare_exchange(tail, published);
                    return;
                }
                Err((_, back)) => node = back,
            }
        }
    }

    /// Removes the oldest value. Must be called between `enter` and `leave`.
    pub fn dequeue<'a>(&'a self, h: &mut S::Handle<'a>) -> Option<T> {
        let g = Guard::over(h);
        loop {
            let head = self.head.load(0, &g);
            let head_ref = head.deref();
            let next = head_ref.next.load(1, &g);
            if next.is_null() {
                return None;
            }
            let tail = self.tail.fetch();
            if tail == head {
                // Tail lags behind: help.
                let _ = self.tail.compare_exchange(tail, next);
                continue;
            }
            // Michael's re-validation (step D07 of the original algorithm):
            // `head` must still be the sentinel *after* `next`'s protection
            // was published. A dequeued sentinel's `next` is frozen, so the
            // protection of `next` alone cannot detect that `next` itself
            // was already dequeued and retired — dereferencing it below
            // would be a use after free under HP/HE.
            if self.head.fetch() != head {
                continue;
            }
            // Read the value before the CAS: `next` becomes the new
            // sentinel and may be popped (and retired) immediately after.
            let value = next
                .deref()
                .value
                .clone()
                .expect("non-sentinel nodes carry values");
            if self.head.compare_exchange(head, next).is_ok() {
                // SAFETY: the successful CAS displaced `head` as the
                // sentinel; only the winning dequeuer reaches this retire,
                // and the queue never links back to an old sentinel.
                unsafe { g.defer_retire(head) };
                return Some(value);
            }
        }
    }

    /// Reads (clones) the oldest value without removing it. Must be called
    /// between `enter` and `leave`.
    pub fn peek<'a>(&'a self, h: &mut S::Handle<'a>) -> Option<T> {
        let g = Guard::over(h);
        loop {
            let head = self.head.load(0, &g);
            let head_ref = head.deref();
            let next = head_ref.next.load(1, &g);
            if next.is_null() {
                return None;
            }
            // Same D07-style re-validation as `dequeue`: without it,
            // `next` could be a long-retired node read off a frozen
            // sentinel under the per-access-protection schemes.
            if self.head.fetch() != head {
                continue;
            }
            return Some(
                next.deref()
                    .value
                    .clone()
                    .expect("non-sentinel nodes carry values"),
            );
        }
    }

    /// Whether the queue appears empty right now. Must be called between
    /// `enter` and `leave` (the check walks through the live sentinel).
    pub fn is_empty<'a>(&'a self, h: &mut S::Handle<'a>) -> bool {
        let g = Guard::over(h);
        let head = self.head.load(0, &g);
        head.deref().next.fetch().is_null()
    }
}

impl<T, S> Drop for MsQueue<T, S>
where
    T: Clone + Send + Sync + 'static,
    S: Smr<QueueNode<T>>,
{
    fn drop(&mut self) {
        let mut handle = self.domain.handle();
        let g = Guard::over(&mut handle);
        let mut curr = self.head.fetch();
        while !curr.is_null() {
            // SAFETY: `Drop` has `&mut self` — no concurrent access; the
            // remaining chain is exclusively ours to walk and free.
            let next = unsafe { curr.deref() }.next.fetch();
            // SAFETY: same exclusive-teardown argument.
            unsafe { g.dealloc(curr) };
            curr = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyaline::{Hyaline, Hyaline1S};
    use smr_baselines::{Ebr, Hp};
    use smr_core::SmrHandle;
    use std::sync::atomic::Ordering;

    fn cfg() -> SmrConfig {
        SmrConfig {
            slots: 4,
            batch_min: 8,
            scan_threshold: 16,
            max_threads: 64,
            ..SmrConfig::default()
        }
    }

    fn fifo_order<S: Smr<QueueNode<u64>>>() {
        let q: MsQueue<u64, S> = MsQueue::with_config(cfg());
        let mut h = q.smr_handle();
        h.enter();
        assert_eq!(q.dequeue(&mut h), None);
        assert!(q.is_empty(&mut h));
        for i in 0..10 {
            q.enqueue(&mut h, i);
        }
        assert_eq!(q.peek(&mut h), Some(0));
        for i in 0..10 {
            assert_eq!(q.peek(&mut h), Some(i));
            assert_eq!(q.dequeue(&mut h), Some(i));
        }
        assert_eq!(q.dequeue(&mut h), None);
        assert_eq!(q.peek(&mut h), None);
        h.leave();
    }

    #[test]
    fn fifo_all_schemes() {
        fifo_order::<Hyaline<_>>();
        fifo_order::<Hyaline1S<_>>();
        fifo_order::<Ebr<_>>();
        fifo_order::<Hp<_>>();
    }

    #[test]
    fn concurrent_producers_consumers() {
        let q: &MsQueue<u64, Hyaline<_>> = &MsQueue::with_config(cfg());
        const PER_THREAD: u64 = 3_000;
        let sum = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..2u64 {
                s.spawn(move || {
                    let mut h = q.smr_handle();
                    for i in 0..PER_THREAD {
                        h.enter();
                        q.enqueue(&mut h, t * PER_THREAD + i);
                        h.leave();
                    }
                });
            }
            for _ in 0..2 {
                s.spawn(|| {
                    let mut h = q.smr_handle();
                    let mut local = 0u64;
                    let mut got = 0;
                    while got < PER_THREAD {
                        h.enter();
                        if let Some(v) = q.dequeue(&mut h) {
                            local += v;
                            got += 1;
                        }
                        h.leave();
                    }
                    sum.fetch_add(local, Ordering::Relaxed);
                });
            }
        });
        let expect: u64 = (0..2 * PER_THREAD).sum();
        assert_eq!(sum.load(Ordering::Relaxed), expect);
        let mut h = q.smr_handle();
        h.enter();
        assert!(q.is_empty(&mut h));
        h.leave();
    }
}
