//! A Michael–Scott queue, generic over the reclamation scheme.
//!
//! Not part of the paper's figures; used by the examples (per-client work
//! queues in the server scenario) and the integration tests.

use smr_core::{Atomic, Shared, Smr, SmrConfig, SmrHandle};
use std::sync::atomic::Ordering;

/// A queue node: the sentinel head carries `None`.
pub struct QueueNode<T> {
    value: Option<T>,
    next: Atomic<QueueNode<T>>,
}

impl<T: std::fmt::Debug> std::fmt::Debug for QueueNode<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueueNode")
            .field("value", &self.value)
            .finish_non_exhaustive()
    }
}

/// A lock-free FIFO queue.
///
/// # Example
///
/// ```
/// use hyaline::Hyaline;
/// use lockfree_ds::MsQueue;
/// use smr_core::SmrHandle;
///
/// let queue: MsQueue<String, Hyaline<_>> = MsQueue::new();
/// let mut h = queue.smr_handle();
/// h.enter();
/// queue.enqueue(&mut h, "a".to_string());
/// queue.enqueue(&mut h, "b".to_string());
/// assert_eq!(queue.dequeue(&mut h).as_deref(), Some("a"));
/// assert_eq!(queue.dequeue(&mut h).as_deref(), Some("b"));
/// assert_eq!(queue.dequeue(&mut h), None);
/// h.leave();
/// ```
pub struct MsQueue<T, S>
where
    T: Clone + Send + Sync + 'static,
    S: Smr<QueueNode<T>>,
{
    domain: S,
    head: Atomic<QueueNode<T>>,
    tail: Atomic<QueueNode<T>>,
}

impl<T, S> std::fmt::Debug for MsQueue<T, S>
where
    T: Clone + Send + Sync + 'static,
    S: Smr<QueueNode<T>>,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MsQueue")
            .field("scheme", &S::name())
            .finish_non_exhaustive()
    }
}

impl<T, S> Default for MsQueue<T, S>
where
    T: Clone + Send + Sync + 'static,
    S: Smr<QueueNode<T>>,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<T, S> MsQueue<T, S>
where
    T: Clone + Send + Sync + 'static,
    S: Smr<QueueNode<T>>,
{
    /// An empty queue with a default-configured domain.
    pub fn new() -> Self {
        Self::with_config(SmrConfig::default())
    }

    /// An empty queue whose reclamation domain uses `config`.
    pub fn with_config(config: SmrConfig) -> Self {
        Self::with_domain(S::with_config(config))
    }

    /// An empty queue over a pre-built reclamation domain (e.g. a
    /// configured [`smr_core::Sharded`] adapter).
    pub fn with_domain(domain: S) -> Self {
        let mut handle = domain.handle();
        let sentinel = handle.alloc(QueueNode {
            value: None,
            next: Atomic::null(),
        });
        drop(handle);
        Self {
            domain,
            head: Atomic::new(sentinel),
            tail: Atomic::new(sentinel),
        }
    }

    /// The underlying reclamation domain.
    pub fn domain(&self) -> &S {
        &self.domain
    }

    /// A per-thread SMR handle for operating on this queue.
    pub fn smr_handle(&self) -> S::Handle<'_> {
        self.domain.handle()
    }

    /// Appends a value. Must be called between `enter` and `leave`.
    pub fn enqueue<'a>(&'a self, h: &mut S::Handle<'a>, value: T) {
        let node = h.alloc(QueueNode {
            value: Some(value),
            next: Atomic::null(),
        });
        loop {
            let tail = h.protect(0, &self.tail);
            let tail_ref = unsafe { tail.deref() };
            let next = tail_ref.next.load(Ordering::Acquire);
            if !next.is_null() {
                // Help the lagging tail along.
                let _ = self.tail.compare_exchange(
                    tail,
                    next,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                );
                continue;
            }
            if tail_ref
                .next
                .compare_exchange(Shared::null(), node, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                let _ = self.tail.compare_exchange(
                    tail,
                    node,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                );
                return;
            }
        }
    }

    /// Removes the oldest value. Must be called between `enter` and `leave`.
    pub fn dequeue<'a>(&'a self, h: &mut S::Handle<'a>) -> Option<T> {
        loop {
            let head = h.protect(0, &self.head);
            let head_ref = unsafe { head.deref() };
            let next = h.protect(1, &head_ref.next);
            if next.is_null() {
                return None;
            }
            let tail = self.tail.load(Ordering::Acquire);
            if head == tail {
                // Tail lags behind: help.
                let _ = self.tail.compare_exchange(
                    tail,
                    next,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                );
                continue;
            }
            // Michael's re-validation (step D07 of the original algorithm):
            // `head` must still be the sentinel *after* `next`'s protection
            // was published. A dequeued sentinel's `next` is frozen, so the
            // protection of `next` alone cannot detect that `next` itself
            // was already dequeued and retired — dereferencing it below
            // would be a use after free under HP/HE.
            if self.head.load(Ordering::Acquire) != head {
                continue;
            }
            // Read the value before the CAS: `next` becomes the new
            // sentinel and may be popped (and retired) immediately after.
            let value = unsafe { next.deref() }
                .value
                .clone()
                .expect("non-sentinel nodes carry values");
            if self
                .head
                .compare_exchange(head, next, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                unsafe { h.retire(head) };
                return Some(value);
            }
        }
    }

    /// Whether the queue appears empty right now.
    pub fn is_empty(&self) -> bool {
        let head = self.head.load(Ordering::Acquire);
        unsafe { head.deref() }.next.load(Ordering::Acquire).is_null()
    }
}

impl<T, S> Drop for MsQueue<T, S>
where
    T: Clone + Send + Sync + 'static,
    S: Smr<QueueNode<T>>,
{
    fn drop(&mut self) {
        let mut handle = self.domain.handle();
        let mut curr = self.head.load(Ordering::Acquire);
        while !curr.is_null() {
            let next = unsafe { curr.deref() }.next.load(Ordering::Acquire);
            unsafe { handle.dealloc(curr) };
            curr = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyaline::{Hyaline, Hyaline1S};
    use smr_baselines::{Ebr, Hp};

    fn cfg() -> SmrConfig {
        SmrConfig {
            slots: 4,
            batch_min: 8,
            scan_threshold: 16,
            max_threads: 64,
            ..SmrConfig::default()
        }
    }

    fn fifo_order<S: Smr<QueueNode<u64>>>() {
        let q: MsQueue<u64, S> = MsQueue::with_config(cfg());
        let mut h = q.smr_handle();
        h.enter();
        assert_eq!(q.dequeue(&mut h), None);
        for i in 0..10 {
            q.enqueue(&mut h, i);
        }
        for i in 0..10 {
            assert_eq!(q.dequeue(&mut h), Some(i));
        }
        assert_eq!(q.dequeue(&mut h), None);
        h.leave();
    }

    #[test]
    fn fifo_all_schemes() {
        fifo_order::<Hyaline<_>>();
        fifo_order::<Hyaline1S<_>>();
        fifo_order::<Ebr<_>>();
        fifo_order::<Hp<_>>();
    }

    #[test]
    fn concurrent_producers_consumers() {
        let q: &MsQueue<u64, Hyaline<_>> = &MsQueue::with_config(cfg());
        const PER_THREAD: u64 = 3_000;
        let sum = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..2u64 {
                s.spawn(move || {
                    let mut h = q.smr_handle();
                    for i in 0..PER_THREAD {
                        h.enter();
                        q.enqueue(&mut h, t * PER_THREAD + i);
                        h.leave();
                    }
                });
            }
            for _ in 0..2 {
                s.spawn(|| {
                    let mut h = q.smr_handle();
                    let mut local = 0u64;
                    let mut got = 0;
                    while got < PER_THREAD {
                        h.enter();
                        if let Some(v) = q.dequeue(&mut h) {
                            local += v;
                            got += 1;
                        }
                        h.leave();
                    }
                    sum.fetch_add(local, Ordering::Relaxed);
                });
            }
        });
        let expect: u64 = (0..2 * PER_THREAD).sum();
        assert_eq!(sum.load(Ordering::Relaxed), expect);
        assert!(q.is_empty());
    }
}
