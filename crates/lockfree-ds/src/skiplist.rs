//! A lock-free skip-list map in the Harris/Herlihy–Shavit style, written
//! against the typed-pointer layer (`smr_core::typed`).
//!
//! Each node carries a tower of `next` links; the level-0 list is the
//! ground truth and upper levels are index shortcuts. Every level is a
//! Harris–Michael list: a node is logically deleted at a level by marking
//! its `next` link (freezing it), and traversals unlink marked nodes
//! instead of walking past them, so the per-access schemes (HP, HE) are
//! safe with three rotating protection indices.
//!
//! # Retirement handshake
//!
//! A node may only be retired once it is unreachable from *every* level,
//! and an insert may still be linking upper levels while a remove tears
//! the node down. The two sides synchronize through a two-bit `state`
//! word:
//!
//! * the inserter sets [`LINKED`] once it has finished (or abandoned)
//!   linking the upper levels — no new links can form afterwards;
//! * the winner of the level-0 unlink sets [`UNLINKED`] — the node is
//!   logically gone.
//!
//! Whichever `fetch_or` observes the *other* bit already set inherits sole
//! responsibility for the node: it sweeps the upper levels (unlinking the
//! node wherever it is still reachable) and then retires it, exactly once.
//! Marks are placed top-down with level 0 last, so by the time either
//! side can sweep, every `next` link of the node is frozen.
//!
//! The only `unsafe` left is that handshake's ownership argument (plus the
//! usual exclusive teardown in `Drop`); every traversal dereference is a
//! safe, borrow-branded [`Shared`].

use smr_core::typed::{Atomic, Guard, Owned, Ptr, Shared};
use smr_core::{Smr, SmrConfig};
use std::sync::atomic::{AtomicU64, Ordering};

/// Mark bit on a node's `next` link: the node is deleted at that level.
const MARK: usize = 1;

/// Tallest tower: covers ~4k nodes at the expected 2x fan-out per level.
const MAX_HEIGHT: usize = 12;

/// `state` bit: the inserter finished (or abandoned) upper-level linking.
const LINKED: u64 = 1;
/// `state` bit: the node has been unlinked from level 0.
const UNLINKED: u64 = 2;

/// Protection indices used during traversal (rotated as the window slides).
const IDX_A: usize = 0;
const IDX_B: usize = 1;
const IDX_C: usize = 2;
/// Minimum `SmrConfig::max_protect` the skip list needs.
pub const SKIPLIST_MIN_PROTECT: usize = 3;

/// A skip-list node: a key/value pair under a tower of markable links.
pub struct SkipNode<K, V> {
    key: K,
    value: V,
    /// The [`LINKED`]/[`UNLINKED`] retirement handshake.
    state: AtomicU64,
    /// The tower; `next.len()` is the node's height (≥ 1).
    next: Box<[Atomic<SkipNode<K, V>>]>,
}

impl<K: std::fmt::Debug, V> std::fmt::Debug for SkipNode<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SkipNode")
            .field("key", &self.key)
            .field("height", &self.next.len())
            .finish_non_exhaustive()
    }
}

/// The level-0 window returned by the descent: the link holding `curr`
/// (the first level-0 node with key ≥ target, or null) and `curr` itself.
struct Window<'g, K, V> {
    found: bool,
    /// The node owning this link is protected by a rotation index (or is
    /// the head tower) for the guard borrow `'g`.
    pred_link: &'g Atomic<SkipNode<K, V>>,
    curr: Shared<'g, SkipNode<K, V>>,
}

/// A lock-free skip-list map, generic over the reclamation scheme.
///
/// # Example
///
/// ```
/// use hyaline::Hyaline;
/// use lockfree_ds::SkipListMap;
/// use smr_core::SmrHandle;
///
/// let map: SkipListMap<u64, u64, Hyaline<_>> = SkipListMap::new();
/// let mut h = map.smr_handle();
/// h.enter();
/// assert!(map.insert(&mut h, 3, 30));
/// assert_eq!(map.get(&mut h, &3), Some(30));
/// assert_eq!(map.remove(&mut h, &3), Some(30));
/// h.leave();
/// ```
pub struct SkipListMap<K, V, S>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    S: Smr<SkipNode<K, V>>,
{
    domain: S,
    /// The head tower: one entry link per level, never marked.
    head: [Atomic<SkipNode<K, V>>; MAX_HEIGHT],
    /// Counter seeding the splitmix64 height generator (deterministic per
    /// map, making single-threaded runs reproducible).
    seed: AtomicU64,
}

impl<K, V, S> std::fmt::Debug for SkipListMap<K, V, S>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    S: Smr<SkipNode<K, V>>,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SkipListMap")
            .field("scheme", &S::name())
            .finish_non_exhaustive()
    }
}

impl<K, V, S> Default for SkipListMap<K, V, S>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    S: Smr<SkipNode<K, V>>,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V, S> SkipListMap<K, V, S>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    S: Smr<SkipNode<K, V>>,
{
    /// An empty map with a default-configured domain.
    pub fn new() -> Self {
        Self::with_config(SmrConfig::default())
    }

    /// An empty map whose reclamation domain uses `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config.max_protect < SKIPLIST_MIN_PROTECT`.
    pub fn with_config(config: SmrConfig) -> Self {
        assert!(
            config.max_protect >= SKIPLIST_MIN_PROTECT,
            "skip list needs at least {SKIPLIST_MIN_PROTECT} protection indices"
        );
        Self::with_domain(S::with_config(config))
    }

    /// An empty map over a pre-built reclamation domain (e.g. a
    /// configured [`smr_core::Sharded`] adapter).
    pub fn with_domain(domain: S) -> Self {
        Self {
            domain,
            head: std::array::from_fn(|_| Atomic::null()),
            seed: AtomicU64::new(0),
        }
    }

    /// The underlying reclamation domain (statistics, etc.).
    pub fn domain(&self) -> &S {
        &self.domain
    }

    /// A per-thread SMR handle for operating on this map.
    pub fn smr_handle(&self) -> S::Handle<'_> {
        self.domain.handle()
    }

    /// A geometric (p = 1/2) tower height in `1..=MAX_HEIGHT`, from a
    /// splitmix64 stream over a shared counter.
    fn random_height(&self) -> usize {
        let n = self.seed.fetch_add(1, Ordering::Relaxed);
        let mut z = n.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z.trailing_zeros() as usize + 1).min(MAX_HEIGHT)
    }

    /// The full descent: walks from the top of the head tower down to
    /// level 0, unlinking marked nodes along the way, and returns the
    /// level-0 window for `key`. Winning a *level-0* unlink additionally
    /// runs the retirement [handshake](self) (and restarts, since the
    /// sweep reuses the protection indices).
    fn find0<'a: 'g, 'g>(
        &'a self,
        g: &'g Guard<'_, SkipNode<K, V>, S::Handle<'a>>,
        key: &K,
    ) -> Window<'g, K, V> {
        'restart: loop {
            let mut level = MAX_HEIGHT - 1;
            // The node owning `pred_link` (`None` = the head tower). While
            // set, it is protected by a rotation index: it entered as an
            // unmarked `curr` and its index is not reused until the window
            // slides past it.
            let mut pred: Option<&SkipNode<K, V>> = None;
            let mut pred_link: &Atomic<SkipNode<K, V>> = &self.head[level];
            // Rotating protection indices for (pred-node, curr, next).
            let mut idx = [IDX_A, IDX_B, IDX_C];
            let mut curr = pred_link.load(idx[1], g);
            loop {
                let Some(curr_ref) = curr.as_ref() else {
                    // Past the end of this level: descend through pred.
                    if level == 0 {
                        return Window {
                            found: false,
                            pred_link,
                            curr,
                        };
                    }
                    level -= 1;
                    pred_link = match pred {
                        Some(p) => &p.next[level],
                        None => &self.head[level],
                    };
                    curr = pred_link.load(idx[1], g);
                    if curr.tag() != 0 || pred_link.fetch() != curr {
                        // pred is being deleted at this level (or the link
                        // moved under the new protection): start over.
                        continue 'restart;
                    }
                    continue;
                };
                debug_assert_eq!(curr.tag(), 0, "links always store untagged pointers");
                let next = curr_ref.next[level].load(idx[2], g);
                // Validate the window: pred must still link to an unmarked
                // curr (Michael's re-check; also re-establishes that curr
                // was not unlinked while we protected next).
                if pred_link.fetch() != curr {
                    continue 'restart;
                }
                if next.tag() == MARK {
                    // curr is deleted at this level: unlink it here.
                    let next_clean = next.untagged();
                    if pred_link.compare_exchange(curr, next_clean).is_err() {
                        continue 'restart;
                    }
                    if level == 0 {
                        // We won the level-0 unlink: run the handshake. The
                        // sweep may reuse our indices, so restart after.
                        self.handoff(g, curr.into());
                        continue 'restart;
                    }
                    // next (protected by idx[2]) becomes curr.
                    idx.swap(1, 2);
                    curr = next_clean;
                } else if curr_ref.key < *key {
                    // Slide the window: curr becomes pred, next becomes curr.
                    pred = Some(curr_ref);
                    pred_link = &curr_ref.next[level];
                    idx.rotate_left(1);
                    curr = next;
                } else if level > 0 {
                    // First key ≥ target at this level: descend through pred.
                    level -= 1;
                    pred_link = match pred {
                        Some(p) => &p.next[level],
                        None => &self.head[level],
                    };
                    curr = pred_link.load(idx[1], g);
                    if curr.tag() != 0 || pred_link.fetch() != curr {
                        continue 'restart;
                    }
                } else {
                    return Window {
                        found: curr_ref.key == *key,
                        pred_link,
                        curr,
                    };
                }
            }
        }
    }

    /// Walks level `level` (≥ 1) and returns the window before the first
    /// node with key ≥ `key` — or, when `target` is given, the link still
    /// holding exactly that node (skipping other nodes of equal key).
    /// Marked nodes are unlinked in passing; upper-level unlinks never
    /// retire (that is the [handshake](self)'s job).
    fn level_search<'a: 'g, 'g>(
        &'a self,
        g: &'g Guard<'_, SkipNode<K, V>, S::Handle<'a>>,
        level: usize,
        key: &K,
        target: Option<Ptr<SkipNode<K, V>>>,
    ) -> Window<'g, K, V> {
        debug_assert!(level >= 1, "level 0 goes through find0");
        'restart: loop {
            let mut pred_link: &Atomic<SkipNode<K, V>> = &self.head[level];
            let mut idx = [IDX_A, IDX_B, IDX_C];
            let mut curr = pred_link.load(idx[1], g);
            loop {
                let Some(curr_ref) = curr.as_ref() else {
                    return Window {
                        found: false,
                        pred_link,
                        curr,
                    };
                };
                debug_assert_eq!(curr.tag(), 0, "links always store untagged pointers");
                if target.is_some_and(|t| t == curr) {
                    return Window {
                        found: true,
                        pred_link,
                        curr,
                    };
                }
                let next = curr_ref.next[level].load(idx[2], g);
                if pred_link.fetch() != curr {
                    continue 'restart;
                }
                if next.tag() == MARK {
                    let next_clean = next.untagged();
                    if pred_link.compare_exchange(curr, next_clean).is_err() {
                        continue 'restart;
                    }
                    idx.swap(1, 2);
                    curr = next_clean;
                } else if curr_ref.key < *key || (target.is_some() && curr_ref.key == *key) {
                    // With a target, equal-key nodes that are not it (a
                    // fresh reinsert of the same key) are walked past.
                    pred_link = &curr_ref.next[level];
                    idx.rotate_left(1);
                    curr = next;
                } else {
                    return Window {
                        found: target.is_none() && curr_ref.key == *key,
                        pred_link,
                        curr,
                    };
                }
            }
        }
    }

    /// One side of the retirement handshake: called by the winner of the
    /// level-0 unlink.
    fn handoff<'a>(
        &'a self,
        g: &Guard<'_, SkipNode<K, V>, S::Handle<'a>>,
        node: Ptr<SkipNode<K, V>>,
    ) {
        // SAFETY: retiring requires both handshake bits, and `UNLINKED` is
        // set only below — the node is still live.
        let node_ref = unsafe { node.deref() };
        if node_ref.state.fetch_or(UNLINKED, Ordering::AcqRel) & LINKED != 0 {
            // The inserter already finished: upper levels are ours to clear.
            self.sweep(g, node);
        }
    }

    /// Second half of the handshake: unlinks `node` from every upper level
    /// it is still reachable on, then retires it. Runs on exactly one
    /// thread — whichever `fetch_or` saw the other side's bit.
    fn sweep<'a>(
        &'a self,
        g: &Guard<'_, SkipNode<K, V>, S::Handle<'a>>,
        node: Ptr<SkipNode<K, V>>,
    ) {
        // SAFETY: both handshake bits are set and we are the thread that
        // completed the pair, so we hold exclusive retirement rights; the
        // node stays live until the `defer_retire` below.
        let node_ref = unsafe { node.deref() };
        for level in 1..node_ref.next.len() {
            loop {
                let w = self.level_search(g, level, &node_ref.key, Some(node));
                if !w.found {
                    break;
                }
                // The node's links are all frozen (marks are placed
                // top-down before the level-0 unlink), so its successor at
                // this level is stable.
                let succ = node_ref.next[level].fetch().untagged();
                if w.pred_link.compare_exchange(node, succ).is_ok() {
                    break;
                }
            }
        }
        // SAFETY: the node is marked at every level (no new links can
        // form), unlinked from every level, and ours alone to retire.
        unsafe { g.defer_retire(node) };
    }

    /// Looks up `key`. Must be called between `enter` and `leave`.
    pub fn get<'a>(&'a self, h: &mut S::Handle<'a>, key: &K) -> Option<V> {
        let g = Guard::over(h);
        let w = self.find0(&g, key);
        w.found.then(|| w.curr.deref().value.clone())
    }

    /// Whether `key` is present. Must be called between `enter` and `leave`.
    pub fn contains<'a>(&'a self, h: &mut S::Handle<'a>, key: &K) -> bool {
        let g = Guard::over(h);
        self.find0(&g, key).found
    }

    /// Inserts `key -> value`; `false` if present. Must be called between
    /// `enter` and `leave`.
    pub fn insert<'a>(&'a self, h: &mut S::Handle<'a>, key: K, value: V) -> bool {
        let g = Guard::over(h);
        // The value moves into the node the first time one is allocated.
        let mut value = Some(value);
        // The node survives CAS-failure rounds until it is published.
        let mut node: Option<Owned<SkipNode<K, V>>> = None;
        let node_ptr = loop {
            let w = self.find0(&g, &key);
            if w.found {
                if let Some(unpublished) = node.take() {
                    g.discard(unpublished);
                }
                return false;
            }
            let owned = node.get_or_insert_with(|| {
                let height = self.random_height();
                g.alloc(SkipNode {
                    key: key.clone(),
                    value: value.take().expect("the node is allocated only once"),
                    state: AtomicU64::new(0),
                    next: (0..height).map(|_| Atomic::null()).collect(),
                })
            });
            // Aim the still-private node at its level-0 successor, then
            // publish: the level-0 CAS is the linearization point.
            owned.as_ref().next[0].store(w.curr);
            let ptr = owned.ptr();
            if w.pred_link.compare_exchange(w.curr, ptr).is_ok() {
                // Ownership moved into the list.
                node.take().map(Owned::into_ptr);
                break ptr;
            }
        };
        // SAFETY: retiring the node requires both handshake bits and ours
        // (`LINKED`) is only set below, so the node stays live while we
        // link the upper levels.
        let node_ref = unsafe { node_ptr.deref() };
        'linking: for level in 1..node_ref.next.len() {
            loop {
                let w = self.level_search(&g, level, &key, None);
                let cur = node_ref.next[level].fetch();
                if cur.tag() != 0 {
                    // A removal overtook us: leave the rest unlinked.
                    break 'linking;
                }
                // Aim the node at its successor first; a failure means a
                // concurrent mark froze the link (checked next round).
                if node_ref.next[level].compare_exchange(cur, w.curr).is_err() {
                    continue;
                }
                // `w.curr` is protected, so this CAS cannot ABA.
                if w.pred_link.compare_exchange(w.curr, node_ptr).is_ok() {
                    break;
                }
            }
        }
        if node_ref.state.fetch_or(LINKED, Ordering::AcqRel) & UNLINKED != 0 {
            // A removal finished mid-linking and handed the node to us.
            self.sweep(&g, node_ptr);
        }
        true
    }

    /// Removes `key`, returning its value. Must be called between `enter`
    /// and `leave`.
    pub fn remove<'a>(&'a self, h: &mut S::Handle<'a>, key: &K) -> Option<V> {
        let g = Guard::over(h);
        let w = self.find0(&g, key);
        if !w.found {
            return None;
        }
        let node_ref = w.curr.deref();
        // Freeze the tower top-down; the level-0 mark is the linearization
        // point and decides the race among concurrent removers.
        for level in (1..node_ref.next.len()).rev() {
            node_ref.next[level].fetch_or_tag(MARK);
        }
        if node_ref.next[0].fetch_or_tag(MARK).tag() != 0 {
            // Another remover already owned the deletion.
            return None;
        }
        let value = node_ref.value.clone();
        // Make the deletion physical before returning: the descent unlinks
        // the marked node (whoever wins runs the handshake).
        let _ = self.find0(&g, key);
        Some(value)
    }
}

impl<K, V, S> Drop for SkipListMap<K, V, S>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    S: Smr<SkipNode<K, V>>,
{
    fn drop(&mut self) {
        let mut handle = self.domain.handle();
        let g = Guard::over(&mut handle);
        // Every live node is on the level-0 list (retired ones left it).
        let mut curr = self.head[0].fetch().untagged();
        while !curr.is_null() {
            // SAFETY: `Drop` has `&mut self` — no concurrent access; the
            // remaining chain is exclusively ours to walk and free.
            let next = unsafe { curr.deref() }.next[0].fetch();
            // SAFETY: same exclusive-teardown argument.
            unsafe { g.dealloc(curr) };
            curr = next.untagged();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyaline::{Hyaline, Hyaline1, Hyaline1S, HyalineS};
    use smr_baselines::{Ebr, He, Hp, Ibr, Leaky, Lfrc};
    use smr_core::SmrHandle;

    fn cfg() -> SmrConfig {
        SmrConfig {
            slots: 4,
            batch_min: 8,
            era_freq: 8,
            scan_threshold: 16,
            max_threads: 64,
            ..SmrConfig::default()
        }
    }

    fn smoke<S: Smr<SkipNode<u64, u64>>>() {
        let map: SkipListMap<u64, u64, S> = SkipListMap::with_config(cfg());
        let mut h = map.smr_handle();
        h.enter();
        assert_eq!(map.get(&mut h, &1), None);
        for i in 0..200 {
            assert!(map.insert(&mut h, i, i * 2), "insert {i}");
        }
        assert!(!map.insert(&mut h, 100, 0));
        for i in 0..200 {
            assert_eq!(map.get(&mut h, &i), Some(i * 2));
            assert!(map.contains(&mut h, &i));
        }
        for i in (0..200).step_by(2) {
            assert_eq!(map.remove(&mut h, &i), Some(i * 2));
        }
        assert_eq!(map.remove(&mut h, &0), None);
        for i in 0..200 {
            assert_eq!(map.get(&mut h, &i).is_some(), i % 2 == 1, "key {i}");
        }
        h.leave();
    }

    #[test]
    fn smoke_all_schemes() {
        smoke::<Hyaline<_>>();
        smoke::<Hyaline1<_>>();
        smoke::<HyalineS<_>>();
        smoke::<Hyaline1S<_>>();
        smoke::<Ebr<_>>();
        smoke::<Hp<_>>();
        smoke::<He<_>>();
        smoke::<Ibr<_>>();
        smoke::<Lfrc<_>>();
        smoke::<Leaky<_>>();
    }

    #[test]
    fn towers_spread_heights() {
        let map: SkipListMap<u64, u64, Ebr<_>> = SkipListMap::with_config(cfg());
        let mut tall = 0;
        for _ in 0..1_000 {
            if map.random_height() > 1 {
                tall += 1;
            }
        }
        // p = 1/2 per extra level: wildly loose bounds, just not degenerate.
        assert!(tall > 300 && tall < 700, "suspicious height spread: {tall}");
    }

    #[test]
    fn delete_down_to_empty_and_reinsert() {
        let map: SkipListMap<u64, u64, Ebr<_>> = SkipListMap::with_config(cfg());
        let mut h = map.smr_handle();
        for round in 0..3 {
            h.enter();
            for i in 0..100 {
                assert!(map.insert(&mut h, i, i + round), "round {round} insert {i}");
            }
            for i in 0..100 {
                assert_eq!(map.remove(&mut h, &i), Some(i + round));
            }
            for i in 0..100 {
                assert_eq!(map.get(&mut h, &i), None);
            }
            h.leave();
        }
    }

    fn concurrent_churn<S: Smr<SkipNode<u64, u64>>>() {
        let map: &SkipListMap<u64, u64, S> = &SkipListMap::with_config(cfg());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                s.spawn(move || {
                    let mut h = map.smr_handle();
                    let mut x = (t + 1).wrapping_mul(0x9E3779B97F4A7C15) | 1;
                    for _ in 0..2_500 {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let key = x % 128;
                        h.enter();
                        match x % 3 {
                            0 => {
                                map.insert(&mut h, key, key * 7);
                            }
                            1 => {
                                map.remove(&mut h, &key);
                            }
                            _ => {
                                if let Some(v) = map.get(&mut h, &key) {
                                    assert_eq!(v, key * 7, "torn value for {key}");
                                }
                            }
                        }
                        h.leave();
                    }
                });
            }
        });
    }

    #[test]
    fn churn_hyaline() {
        concurrent_churn::<Hyaline<_>>();
    }

    #[test]
    fn churn_hyaline_s() {
        concurrent_churn::<HyalineS<_>>();
    }

    #[test]
    fn churn_hyaline1s() {
        concurrent_churn::<Hyaline1S<_>>();
    }

    #[test]
    fn churn_ebr() {
        concurrent_churn::<Ebr<_>>();
    }

    #[test]
    fn churn_hp() {
        concurrent_churn::<Hp<_>>();
    }

    #[test]
    fn churn_he() {
        concurrent_churn::<He<_>>();
    }

    #[test]
    fn churn_ibr() {
        concurrent_churn::<Ibr<_>>();
    }

    #[test]
    fn concurrent_same_key_removes() {
        // Exactly one of many racing removers gets the value.
        let map: &SkipListMap<u64, u64, Hyaline<_>> = &SkipListMap::with_config(cfg());
        for _ in 0..100 {
            {
                let mut h = map.smr_handle();
                h.enter();
                assert!(map.insert(&mut h, 42, 4200));
                h.leave();
            }
            let winners = std::sync::atomic::AtomicUsize::new(0);
            std::thread::scope(|s| {
                for _ in 0..4 {
                    s.spawn(|| {
                        let mut h = map.smr_handle();
                        h.enter();
                        if map.remove(&mut h, &42).is_some() {
                            winners.fetch_add(1, Ordering::Relaxed);
                        }
                        h.leave();
                    });
                }
            });
            assert_eq!(winners.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn insert_remove_race_on_tall_towers() {
        // Hammer the LINKED/UNLINKED handshake: one thread inserts keys,
        // another removes them as fast as it can.
        let map: &SkipListMap<u64, u64, HyalineS<_>> = &SkipListMap::with_config(cfg());
        std::thread::scope(|s| {
            s.spawn(|| {
                let mut h = map.smr_handle();
                for i in 0..5_000u64 {
                    h.enter();
                    map.insert(&mut h, i % 64, i);
                    h.leave();
                }
            });
            s.spawn(|| {
                let mut h = map.smr_handle();
                for i in 0..5_000u64 {
                    h.enter();
                    map.remove(&mut h, &(i % 64));
                    h.leave();
                }
            });
        });
    }
}
