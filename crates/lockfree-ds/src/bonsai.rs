//! The Bonsai tree benchmark structure (the paper's Figure 8b/9b): a
//! path-copying weight-balanced binary tree behind a CAS'd root, after
//! Clements et al.'s RCU-balanced trees \[13\] as adapted by the IBR
//! framework \[35\].
//!
//! Readers traverse an immutable snapshot. Writers rebuild the access path
//! (and any rebalancing rotations) as fresh nodes and install the new root
//! with a single CAS, *retiring every replaced node* — which is what makes
//! this structure a reclamation stress test: every update retires O(log n)
//! nodes at once.
//!
//! Like the paper's benchmark, this structure supports the schemes with
//! zero-or-cheap per-read protection (Leaky, EBR, the Hyaline family, IBR).
//! HP/HE cannot run it: a bounded set of hazard indices cannot cover an
//! unboundedly deep snapshot traversal ("HP and HE are not implemented for
//! this benchmark due to the complexity of the tree rotation operations"
//! \[35\]). Interval/era schemes cover it because the protected load is
//! repeated on every hop, ratcheting the reservation.
//!
//! Written against the typed-pointer layer (`smr_core::typed`): the
//! traversals are safe code, and the remaining `unsafe` is the write-set
//! ownership argument (fresh nodes are exclusively ours until the root CAS
//! publishes them) plus the exclusive teardown in `Drop`.

use smr_core::typed::{Atomic, Guard, Ptr, Shared};
use smr_core::{Smr, SmrConfig, SmrHandle};

/// Weight-balance constants (the proven-correct Adams pair).
const DELTA: usize = 3;
const RATIO: usize = 2;

/// Protection index for the root snapshot.
const I_ROOT: usize = 0;
/// Protection index for traversal hops.
const I_TRAV: usize = 1;

/// An immutable tree node: fields are written before the publishing root
/// CAS and never mutated afterwards.
pub struct BonsaiNode<K, V> {
    key: K,
    value: V,
    size: usize,
    left: Atomic<BonsaiNode<K, V>>,
    right: Atomic<BonsaiNode<K, V>>,
}

impl<K: std::fmt::Debug, V> std::fmt::Debug for BonsaiNode<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BonsaiNode")
            .field("key", &self.key)
            .field("size", &self.size)
            .finish_non_exhaustive()
    }
}

/// The Bonsai path-copying weight-balanced tree, generic over the
/// reclamation scheme.
///
/// # Example
///
/// ```
/// use hyaline::Hyaline;
/// use lockfree_ds::BonsaiTree;
/// use smr_core::SmrHandle;
///
/// let tree: BonsaiTree<u64, u64, Hyaline<_>> = BonsaiTree::new();
/// let mut h = tree.smr_handle();
/// h.enter();
/// assert!(tree.insert(&mut h, 10, 100));
/// assert_eq!(tree.get(&mut h, &10), Some(100));
/// assert_eq!(tree.remove(&mut h, &10), Some(100));
/// h.leave();
/// ```
pub struct BonsaiTree<K, V, S>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    S: Smr<BonsaiNode<K, V>>,
{
    domain: S,
    root: Atomic<BonsaiNode<K, V>>,
}

impl<K, V, S> std::fmt::Debug for BonsaiTree<K, V, S>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    S: Smr<BonsaiNode<K, V>>,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BonsaiTree")
            .field("scheme", &S::name())
            .finish_non_exhaustive()
    }
}

impl<K, V, S> Default for BonsaiTree<K, V, S>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    S: Smr<BonsaiNode<K, V>>,
{
    fn default() -> Self {
        Self::new()
    }
}

/// Per-write bookkeeping: nodes created for the new version and snapshot
/// nodes the new version replaces.
struct WriteSet<K, V> {
    fresh: Vec<Ptr<BonsaiNode<K, V>>>,
    replaced: Vec<Ptr<BonsaiNode<K, V>>>,
}

impl<K, V> WriteSet<K, V> {
    fn new() -> Self {
        Self {
            fresh: Vec::with_capacity(16),
            replaced: Vec::with_capacity(16),
        }
    }

    /// Records that `node` does not appear in the new version: fresh nodes
    /// are deallocated immediately (never published), snapshot nodes are
    /// retired once the root CAS succeeds.
    fn discard<H: SmrHandle<BonsaiNode<K, V>>>(
        &mut self,
        g: &Guard<'_, BonsaiNode<K, V>, H>,
        node: Ptr<BonsaiNode<K, V>>,
    ) {
        if let Some(pos) = self.fresh.iter().rposition(|&f| f == node) {
            self.fresh.swap_remove(pos);
            // SAFETY: `node` came out of `fresh` — it was allocated by this
            // write attempt and never published, so it is exclusively ours.
            unsafe { g.dealloc(node) };
        } else {
            self.replaced.push(node);
        }
    }
}

impl<K, V, S> BonsaiTree<K, V, S>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    S: Smr<BonsaiNode<K, V>>,
{
    /// An empty tree with a default-configured domain.
    pub fn new() -> Self {
        Self::with_config(SmrConfig::default())
    }

    /// An empty tree whose reclamation domain uses `config`.
    pub fn with_config(config: SmrConfig) -> Self {
        Self::with_domain(S::with_config(config))
    }

    /// An empty tree over a pre-built reclamation domain (e.g. a
    /// configured [`smr_core::Sharded`] adapter).
    pub fn with_domain(domain: S) -> Self {
        Self {
            domain,
            root: Atomic::null(),
        }
    }

    /// The underlying reclamation domain (statistics, etc.).
    pub fn domain(&self) -> &S {
        &self.domain
    }

    /// A per-thread SMR handle for operating on this tree.
    pub fn smr_handle(&self) -> S::Handle<'_> {
        self.domain.handle()
    }

    fn size(node: Shared<'_, BonsaiNode<K, V>>) -> usize {
        node.as_ref().map_or(0, |n| n.size)
    }

    fn mk<'a, 'g>(
        &'a self,
        g: &'g Guard<'_, BonsaiNode<K, V>, S::Handle<'a>>,
        ws: &mut WriteSet<K, V>,
        key: K,
        value: V,
        left: Shared<'g, BonsaiNode<K, V>>,
        right: Shared<'g, BonsaiNode<K, V>>,
    ) -> Shared<'g, BonsaiNode<K, V>> {
        let node = g
            .alloc(BonsaiNode {
                key,
                value,
                size: 1 + Self::size(left) + Self::size(right),
                left: Atomic::new(left),
                right: Atomic::new(right),
            })
            .into_ptr();
        ws.fresh.push(node);
        // SAFETY: the node is unpublished and tracked by the write set; it
        // stays ours (and live) until the root CAS either publishes it or
        // the rollback in `publish` deallocates it — both within this guard.
        unsafe { node.as_shared(g) }
    }

    /// Adams' rebalancing smart constructor: joins `left`/`right` under
    /// `(key, value)`, rotating (with fresh copies) when one side outweighs
    /// the other by more than `DELTA`.
    fn join<'a, 'g>(
        &'a self,
        g: &'g Guard<'_, BonsaiNode<K, V>, S::Handle<'a>>,
        ws: &mut WriteSet<K, V>,
        key: K,
        value: V,
        left: Shared<'g, BonsaiNode<K, V>>,
        right: Shared<'g, BonsaiNode<K, V>>,
    ) -> Shared<'g, BonsaiNode<K, V>> {
        let ls = Self::size(left);
        let rs = Self::size(right);
        if ls + rs <= 1 {
            return self.mk(g, ws, key, value, left, right);
        }
        if rs > DELTA * ls {
            // Right-heavy: rotate left.
            let r_ref = right.deref();
            let rl = r_ref.left.load(I_TRAV, g);
            let rr = r_ref.right.load(I_TRAV, g);
            let (rk, rv) = (r_ref.key.clone(), r_ref.value.clone());
            ws.discard(g, right.into());
            if Self::size(rl) < RATIO * Self::size(rr) {
                // Single rotation.
                let new_left = self.join(g, ws, key, value, left, rl);
                self.mk(g, ws, rk, rv, new_left, rr)
            } else {
                // Double rotation through rl.
                let rl_ref = rl.deref();
                let rll = rl_ref.left.load(I_TRAV, g);
                let rlr = rl_ref.right.load(I_TRAV, g);
                let (rlk, rlv) = (rl_ref.key.clone(), rl_ref.value.clone());
                ws.discard(g, rl.into());
                let new_left = self.join(g, ws, key, value, left, rll);
                let new_right = self.mk(g, ws, rk, rv, rlr, rr);
                self.mk(g, ws, rlk, rlv, new_left, new_right)
            }
        } else if ls > DELTA * rs {
            // Left-heavy: rotate right.
            let l_ref = left.deref();
            let ll = l_ref.left.load(I_TRAV, g);
            let lr = l_ref.right.load(I_TRAV, g);
            let (lk, lv) = (l_ref.key.clone(), l_ref.value.clone());
            ws.discard(g, left.into());
            if Self::size(lr) < RATIO * Self::size(ll) {
                let new_right = self.join(g, ws, key, value, lr, right);
                self.mk(g, ws, lk, lv, ll, new_right)
            } else {
                let lr_ref = lr.deref();
                let lrl = lr_ref.left.load(I_TRAV, g);
                let lrr = lr_ref.right.load(I_TRAV, g);
                let (lrk, lrv) = (lr_ref.key.clone(), lr_ref.value.clone());
                ws.discard(g, lr.into());
                let new_left = self.mk(g, ws, lk, lv, ll, lrl);
                let new_right = self.join(g, ws, key, value, lrr, right);
                self.mk(g, ws, lrk, lrv, new_left, new_right)
            }
        } else {
            self.mk(g, ws, key, value, left, right)
        }
    }

    /// Rebuilds the path for an insert; `None` if the key already exists.
    fn do_insert<'a, 'g>(
        &'a self,
        g: &'g Guard<'_, BonsaiNode<K, V>, S::Handle<'a>>,
        ws: &mut WriteSet<K, V>,
        node: Shared<'g, BonsaiNode<K, V>>,
        key: &K,
        value: &V,
    ) -> Option<Shared<'g, BonsaiNode<K, V>>> {
        let Some(n) = node.as_ref() else {
            return Some(self.mk(
                g,
                ws,
                key.clone(),
                value.clone(),
                Shared::null(),
                Shared::null(),
            ));
        };
        if *key == n.key {
            return None;
        }
        let left = n.left.load(I_TRAV, g);
        let right = n.right.load(I_TRAV, g);
        let (nk, nv) = (n.key.clone(), n.value.clone());
        let joined = if *key < n.key {
            let new_left = self.do_insert(g, ws, left, key, value)?;
            ws.discard(g, node.into());
            self.join(g, ws, nk, nv, new_left, right)
        } else {
            let new_right = self.do_insert(g, ws, right, key, value)?;
            ws.discard(g, node.into());
            self.join(g, ws, nk, nv, left, new_right)
        };
        Some(joined)
    }

    /// Pops the minimum of a non-null snapshot subtree.
    fn remove_min<'a, 'g>(
        &'a self,
        g: &'g Guard<'_, BonsaiNode<K, V>, S::Handle<'a>>,
        ws: &mut WriteSet<K, V>,
        node: Shared<'g, BonsaiNode<K, V>>,
    ) -> (K, V, Shared<'g, BonsaiNode<K, V>>) {
        let n = node.deref();
        let left = n.left.load(I_TRAV, g);
        let right = n.right.load(I_TRAV, g);
        if left.is_null() {
            ws.discard(g, node.into());
            return (n.key.clone(), n.value.clone(), right);
        }
        let (nk, nv) = (n.key.clone(), n.value.clone());
        let (mk, mv, new_left) = self.remove_min(g, ws, left);
        ws.discard(g, node.into());
        (mk, mv, self.join(g, ws, nk, nv, new_left, right))
    }

    /// Rebuilds the path for a remove; `None` if the key is absent.
    fn do_remove<'a, 'g>(
        &'a self,
        g: &'g Guard<'_, BonsaiNode<K, V>, S::Handle<'a>>,
        ws: &mut WriteSet<K, V>,
        node: Shared<'g, BonsaiNode<K, V>>,
        key: &K,
    ) -> Option<(Shared<'g, BonsaiNode<K, V>>, V)> {
        let n = node.as_ref()?;
        let left = n.left.load(I_TRAV, g);
        let right = n.right.load(I_TRAV, g);
        if *key == n.key {
            let value = n.value.clone();
            ws.discard(g, node.into());
            let merged = if left.is_null() {
                right
            } else if right.is_null() {
                left
            } else {
                let (mk, mv, new_right) = self.remove_min(g, ws, right);
                self.join(g, ws, mk, mv, left, new_right)
            };
            return Some((merged, value));
        }
        let (nk, nv) = (n.key.clone(), n.value.clone());
        let joined = if *key < n.key {
            let (new_left, value) = self.do_remove(g, ws, left, key)?;
            ws.discard(g, node.into());
            (self.join(g, ws, nk, nv, new_left, right), value)
        } else {
            let (new_right, value) = self.do_remove(g, ws, right, key)?;
            ws.discard(g, node.into());
            (self.join(g, ws, nk, nv, left, new_right), value)
        };
        Some(joined)
    }

    /// Looks up `key` in the current snapshot. Must be called between
    /// `enter` and `leave`.
    pub fn get<'a>(&'a self, h: &mut S::Handle<'a>, key: &K) -> Option<V> {
        let g = Guard::over(h);
        let mut node = self.root.load(I_ROOT, &g);
        while let Some(n) = node.as_ref() {
            node = if *key < n.key {
                n.left.load(I_TRAV, &g)
            } else if *key > n.key {
                n.right.load(I_TRAV, &g)
            } else {
                return Some(n.value.clone());
            };
        }
        None
    }

    /// Whether `key` is present. Must be called between `enter` and `leave`.
    pub fn contains<'a>(&'a self, h: &mut S::Handle<'a>, key: &K) -> bool {
        self.get(h, key).is_some()
    }

    /// Inserts `key -> value`; `false` if present. Must be called between
    /// `enter` and `leave`.
    pub fn insert<'a>(&'a self, h: &mut S::Handle<'a>, key: K, value: V) -> bool {
        let g = Guard::over(h);
        loop {
            let root = self.root.load(I_ROOT, &g);
            let mut ws = WriteSet::new();
            let Some(new_root) = self.do_insert(&g, &mut ws, root, &key, &value) else {
                debug_assert!(ws.fresh.is_empty());
                return false;
            };
            if self.publish(&g, ws, root, new_root) {
                return true;
            }
        }
    }

    /// Removes `key`, returning its value. Must be called between `enter`
    /// and `leave`.
    pub fn remove<'a>(&'a self, h: &mut S::Handle<'a>, key: &K) -> Option<V> {
        let g = Guard::over(h);
        loop {
            let root = self.root.load(I_ROOT, &g);
            let mut ws = WriteSet::new();
            let Some((new_root, value)) = self.do_remove(&g, &mut ws, root, key) else {
                debug_assert!(ws.fresh.is_empty());
                return None;
            };
            if self.publish(&g, ws, root, new_root) {
                return Some(value);
            }
        }
    }

    /// Installs a new version; on failure rolls the write set back.
    fn publish<'a>(
        &'a self,
        g: &Guard<'_, BonsaiNode<K, V>, S::Handle<'a>>,
        ws: WriteSet<K, V>,
        old_root: Shared<'_, BonsaiNode<K, V>>,
        new_root: Shared<'_, BonsaiNode<K, V>>,
    ) -> bool {
        if self.root.compare_exchange(old_root, new_root).is_ok() {
            for node in ws.replaced {
                // SAFETY: the root CAS displaced the snapshot these nodes
                // belonged to; path-copying means no later version links to
                // them, and only the CAS winner walks this write set, so
                // each node is retired exactly once.
                unsafe { g.defer_retire(node) };
            }
            true
        } else {
            for node in ws.fresh {
                // SAFETY: the CAS failed, so none of the fresh nodes were
                // ever published — they are still exclusively ours.
                unsafe { g.dealloc(node) };
            }
            false
        }
    }

    /// Number of keys in the current snapshot.
    pub fn len<'a>(&'a self, h: &mut S::Handle<'a>) -> usize {
        let g = Guard::over(h);
        Self::size(self.root.load(I_ROOT, &g))
    }

    /// Whether the tree is empty.
    pub fn is_empty<'a>(&'a self, h: &mut S::Handle<'a>) -> bool {
        self.len(h) == 0
    }
}

impl<K, V, S> Drop for BonsaiTree<K, V, S>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    S: Smr<BonsaiNode<K, V>>,
{
    fn drop(&mut self) {
        let mut handle = self.domain.handle();
        let g = Guard::over(&mut handle);
        let mut stack = vec![self.root.fetch()];
        while let Some(node) = stack.pop() {
            if node.is_null() {
                continue;
            }
            // SAFETY: `Drop` has `&mut self` — no concurrent access; the
            // final snapshot is exclusively ours to walk and free.
            let n = unsafe { node.deref() };
            stack.push(n.left.fetch());
            stack.push(n.right.fetch());
            // SAFETY: same exclusive-teardown argument.
            unsafe { g.dealloc(node) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyaline::{Hyaline, Hyaline1, Hyaline1S, HyalineS};
    use smr_baselines::{Ebr, Ibr, Leaky};

    fn cfg() -> SmrConfig {
        SmrConfig {
            slots: 4,
            batch_min: 8,
            era_freq: 8,
            scan_threshold: 16,
            max_threads: 64,
            ..SmrConfig::default()
        }
    }

    fn smoke<S: Smr<BonsaiNode<u64, u64>>>() {
        let tree: BonsaiTree<u64, u64, S> = BonsaiTree::with_config(cfg());
        let mut h = tree.smr_handle();
        h.enter();
        for i in 0..100 {
            assert!(tree.insert(&mut h, i, i * 3));
        }
        assert!(!tree.insert(&mut h, 50, 0));
        assert_eq!(tree.len(&mut h), 100);
        for i in 0..100 {
            assert_eq!(tree.get(&mut h, &i), Some(i * 3));
        }
        for i in (0..100).step_by(2) {
            assert_eq!(tree.remove(&mut h, &i), Some(i * 3));
        }
        assert_eq!(tree.len(&mut h), 50);
        for i in 0..100 {
            assert_eq!(tree.get(&mut h, &i).is_some(), i % 2 == 1);
        }
        h.leave();
    }

    #[test]
    fn smoke_supported_schemes() {
        smoke::<Hyaline<_>>();
        smoke::<Hyaline1<_>>();
        smoke::<HyalineS<_>>();
        smoke::<Hyaline1S<_>>();
        smoke::<Ebr<_>>();
        smoke::<Ibr<_>>();
        smoke::<Leaky<_>>();
    }

    /// The weight-balance invariant, checked recursively on a quiesced tree.
    fn check_balance(node: Ptr<BonsaiNode<u64, u64>>) -> usize {
        if node.is_null() {
            return 0;
        }
        // SAFETY: the callers hold `&tree` with every writer quiesced (the
        // test is single-threaded at this point), so no node can be retired
        // or freed during the walk.
        let n = unsafe { node.deref() };
        let ls = check_balance(n.left.fetch());
        let rs = check_balance(n.right.fetch());
        assert_eq!(n.size, 1 + ls + rs, "size field corrupt");
        if ls + rs > 1 {
            assert!(ls <= DELTA * rs, "left-heavy violation: {ls} vs {rs}");
            assert!(rs <= DELTA * ls, "right-heavy violation: {ls} vs {rs}");
        }
        n.size
    }

    #[test]
    fn stays_weight_balanced() {
        let tree: BonsaiTree<u64, u64, Ebr<_>> = BonsaiTree::with_config(cfg());
        let mut h = tree.smr_handle();
        h.enter();
        // Sorted insertion is the classic worst case for unbalanced trees.
        for i in 0..1_000 {
            tree.insert(&mut h, i, i);
        }
        check_balance(tree.root.fetch());
        for i in 0..500 {
            tree.remove(&mut h, &(i * 2));
        }
        check_balance(tree.root.fetch());
        h.leave();
    }

    fn concurrent_churn<S: Smr<BonsaiNode<u64, u64>>>() {
        let tree: &BonsaiTree<u64, u64, S> = &BonsaiTree::with_config(cfg());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                s.spawn(move || {
                    let mut h = tree.smr_handle();
                    let mut x = (t + 1).wrapping_mul(0x9E3779B97F4A7C15) | 1;
                    for _ in 0..1_500 {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let key = x % 128;
                        h.enter();
                        match x % 3 {
                            0 => {
                                tree.insert(&mut h, key, key * 11);
                            }
                            1 => {
                                tree.remove(&mut h, &key);
                            }
                            _ => {
                                if let Some(v) = tree.get(&mut h, &key) {
                                    assert_eq!(v, key * 11);
                                }
                            }
                        }
                        h.leave();
                    }
                });
            }
        });
    }

    #[test]
    fn churn_hyaline() {
        concurrent_churn::<Hyaline<_>>();
    }

    #[test]
    fn churn_hyaline_s() {
        concurrent_churn::<HyalineS<_>>();
    }

    #[test]
    fn churn_ebr() {
        concurrent_churn::<Ebr<_>>();
    }

    #[test]
    fn churn_ibr() {
        concurrent_churn::<Ibr<_>>();
    }

    #[test]
    fn writes_retire_whole_paths() {
        // The defining property: one update retires O(log n) nodes.
        let tree: BonsaiTree<u64, u64, Ebr<_>> = BonsaiTree::with_config(SmrConfig {
            scan_threshold: 1 << 30, // never scan: count retires precisely
            ..cfg()
        });
        let mut h = tree.smr_handle();
        h.enter();
        for i in 0..1_024 {
            tree.insert(&mut h, i, i);
        }
        let before = tree.domain().stats().retired();
        tree.insert(&mut h, 5_000, 1);
        h.flush();
        let after = tree.domain().stats().retired();
        assert!(
            after - before >= 5,
            "an insert into a 1k tree should retire a path, got {}",
            after - before
        );
        h.leave();
    }
}
