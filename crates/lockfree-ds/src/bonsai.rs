//! The Bonsai tree benchmark structure (the paper's Figure 8b/9b): a
//! path-copying weight-balanced binary tree behind a CAS'd root, after
//! Clements et al.'s RCU-balanced trees \[13\] as adapted by the IBR
//! framework \[35\].
//!
//! Readers traverse an immutable snapshot. Writers rebuild the access path
//! (and any rebalancing rotations) as fresh nodes and install the new root
//! with a single CAS, *retiring every replaced node* — which is what makes
//! this structure a reclamation stress test: every update retires O(log n)
//! nodes at once.
//!
//! Like the paper's benchmark, this structure supports the schemes with
//! zero-or-cheap per-read protection (Leaky, EBR, the Hyaline family, IBR).
//! HP/HE cannot run it: a bounded set of hazard indices cannot cover an
//! unboundedly deep snapshot traversal ("HP and HE are not implemented for
//! this benchmark due to the complexity of the tree rotation operations"
//! \[35\]). Interval/era schemes cover it because [`SmrHandle::protect`] is
//! called on every hop, ratcheting the reservation.

use smr_core::{Atomic, Shared, Smr, SmrConfig, SmrHandle};
use std::sync::atomic::Ordering;

/// Weight-balance constants (the proven-correct Adams pair).
const DELTA: usize = 3;
const RATIO: usize = 2;

/// Protection index for the root snapshot.
const I_ROOT: usize = 0;
/// Protection index for traversal hops.
const I_TRAV: usize = 1;

/// An immutable tree node: fields are written before the publishing root
/// CAS and never mutated afterwards.
pub struct BonsaiNode<K, V> {
    key: K,
    value: V,
    size: usize,
    left: Atomic<BonsaiNode<K, V>>,
    right: Atomic<BonsaiNode<K, V>>,
}

impl<K: std::fmt::Debug, V> std::fmt::Debug for BonsaiNode<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BonsaiNode")
            .field("key", &self.key)
            .field("size", &self.size)
            .finish_non_exhaustive()
    }
}

/// The Bonsai path-copying weight-balanced tree, generic over the
/// reclamation scheme.
///
/// # Example
///
/// ```
/// use hyaline::Hyaline;
/// use lockfree_ds::BonsaiTree;
/// use smr_core::SmrHandle;
///
/// let tree: BonsaiTree<u64, u64, Hyaline<_>> = BonsaiTree::new();
/// let mut h = tree.smr_handle();
/// h.enter();
/// assert!(tree.insert(&mut h, 10, 100));
/// assert_eq!(tree.get(&mut h, &10), Some(100));
/// assert_eq!(tree.remove(&mut h, &10), Some(100));
/// h.leave();
/// ```
pub struct BonsaiTree<K, V, S>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    S: Smr<BonsaiNode<K, V>>,
{
    domain: S,
    root: Atomic<BonsaiNode<K, V>>,
}

impl<K, V, S> std::fmt::Debug for BonsaiTree<K, V, S>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    S: Smr<BonsaiNode<K, V>>,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BonsaiTree")
            .field("scheme", &S::name())
            .finish_non_exhaustive()
    }
}

impl<K, V, S> Default for BonsaiTree<K, V, S>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    S: Smr<BonsaiNode<K, V>>,
{
    fn default() -> Self {
        Self::new()
    }
}

/// Per-write bookkeeping: nodes created for the new version and snapshot
/// nodes the new version replaces.
struct WriteSet<K, V> {
    fresh: Vec<Shared<BonsaiNode<K, V>>>,
    replaced: Vec<Shared<BonsaiNode<K, V>>>,
}

impl<K, V> WriteSet<K, V> {
    fn new() -> Self {
        Self {
            fresh: Vec::with_capacity(16),
            replaced: Vec::with_capacity(16),
        }
    }

    /// Records that `node` does not appear in the new version: fresh nodes
    /// are deallocated immediately (never published), snapshot nodes are
    /// retired once the root CAS succeeds.
    fn discard<H: SmrHandle<BonsaiNode<K, V>>>(&mut self, h: &mut H, node: Shared<BonsaiNode<K, V>>) {
        if let Some(pos) = self.fresh.iter().rposition(|&f| f == node) {
            self.fresh.swap_remove(pos);
            unsafe { h.dealloc(node) };
        } else {
            self.replaced.push(node);
        }
    }
}

impl<K, V, S> BonsaiTree<K, V, S>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    S: Smr<BonsaiNode<K, V>>,
{
    /// An empty tree with a default-configured domain.
    pub fn new() -> Self {
        Self::with_config(SmrConfig::default())
    }

    /// An empty tree whose reclamation domain uses `config`.
    pub fn with_config(config: SmrConfig) -> Self {
        Self::with_domain(S::with_config(config))
    }

    /// An empty tree over a pre-built reclamation domain (e.g. a
    /// configured [`smr_core::Sharded`] adapter).
    pub fn with_domain(domain: S) -> Self {
        Self {
            domain,
            root: Atomic::null(),
        }
    }

    /// The underlying reclamation domain (statistics, etc.).
    pub fn domain(&self) -> &S {
        &self.domain
    }

    /// A per-thread SMR handle for operating on this tree.
    pub fn smr_handle(&self) -> S::Handle<'_> {
        self.domain.handle()
    }

    fn size(node: Shared<BonsaiNode<K, V>>) -> usize {
        if node.is_null() {
            0
        } else {
            unsafe { node.deref() }.size
        }
    }

    fn mk<'a>(
        &'a self,
        h: &mut S::Handle<'a>,
        ws: &mut WriteSet<K, V>,
        key: K,
        value: V,
        left: Shared<BonsaiNode<K, V>>,
        right: Shared<BonsaiNode<K, V>>,
    ) -> Shared<BonsaiNode<K, V>> {
        let node = h.alloc(BonsaiNode {
            key,
            value,
            size: 1 + Self::size(left) + Self::size(right),
            left: Atomic::new(left),
            right: Atomic::new(right),
        });
        ws.fresh.push(node);
        node
    }

    /// Adams' rebalancing smart constructor: joins `left`/`right` under
    /// `(key, value)`, rotating (with fresh copies) when one side outweighs
    /// the other by more than `DELTA`.
    fn join<'a>(
        &'a self,
        h: &mut S::Handle<'a>,
        ws: &mut WriteSet<K, V>,
        key: K,
        value: V,
        left: Shared<BonsaiNode<K, V>>,
        right: Shared<BonsaiNode<K, V>>,
    ) -> Shared<BonsaiNode<K, V>> {
        let ls = Self::size(left);
        let rs = Self::size(right);
        if ls + rs <= 1 {
            return self.mk(h, ws, key, value, left, right);
        }
        if rs > DELTA * ls {
            // Right-heavy: rotate left.
            let r_ref = unsafe { right.deref() };
            let rl = h.protect(I_TRAV, &r_ref.left);
            let rr = h.protect(I_TRAV, &r_ref.right);
            let (rk, rv) = (r_ref.key.clone(), r_ref.value.clone());
            ws.discard(h, right);
            if Self::size(rl) < RATIO * Self::size(rr) {
                // Single rotation.
                let new_left = self.join(h, ws, key, value, left, rl);
                self.mk(h, ws, rk, rv, new_left, rr)
            } else {
                // Double rotation through rl.
                let rl_ref = unsafe { rl.deref() };
                let rll = h.protect(I_TRAV, &rl_ref.left);
                let rlr = h.protect(I_TRAV, &rl_ref.right);
                let (rlk, rlv) = (rl_ref.key.clone(), rl_ref.value.clone());
                ws.discard(h, rl);
                let new_left = self.join(h, ws, key, value, left, rll);
                let new_right = self.mk(h, ws, rk, rv, rlr, rr);
                self.mk(h, ws, rlk, rlv, new_left, new_right)
            }
        } else if ls > DELTA * rs {
            // Left-heavy: rotate right.
            let l_ref = unsafe { left.deref() };
            let ll = h.protect(I_TRAV, &l_ref.left);
            let lr = h.protect(I_TRAV, &l_ref.right);
            let (lk, lv) = (l_ref.key.clone(), l_ref.value.clone());
            ws.discard(h, left);
            if Self::size(lr) < RATIO * Self::size(ll) {
                let new_right = self.join(h, ws, key, value, lr, right);
                self.mk(h, ws, lk, lv, ll, new_right)
            } else {
                let lr_ref = unsafe { lr.deref() };
                let lrl = h.protect(I_TRAV, &lr_ref.left);
                let lrr = h.protect(I_TRAV, &lr_ref.right);
                let (lrk, lrv) = (lr_ref.key.clone(), lr_ref.value.clone());
                ws.discard(h, lr);
                let new_left = self.mk(h, ws, lk, lv, ll, lrl);
                let new_right = self.join(h, ws, key, value, lrr, right);
                self.mk(h, ws, lrk, lrv, new_left, new_right)
            }
        } else {
            self.mk(h, ws, key, value, left, right)
        }
    }

    /// Rebuilds the path for an insert; `None` if the key already exists.
    fn do_insert<'a>(
        &'a self,
        h: &mut S::Handle<'a>,
        ws: &mut WriteSet<K, V>,
        node: Shared<BonsaiNode<K, V>>,
        key: &K,
        value: &V,
    ) -> Option<Shared<BonsaiNode<K, V>>> {
        if node.is_null() {
            return Some(self.mk(h, ws, key.clone(), value.clone(), Shared::null(), Shared::null()));
        }
        let n = unsafe { node.deref() };
        if *key == n.key {
            return None;
        }
        let left = h.protect(I_TRAV, &n.left);
        let right = h.protect(I_TRAV, &n.right);
        let (nk, nv) = (n.key.clone(), n.value.clone());
        let joined = if *key < n.key {
            let new_left = self.do_insert(h, ws, left, key, value)?;
            ws.discard(h, node);
            self.join(h, ws, nk, nv, new_left, right)
        } else {
            let new_right = self.do_insert(h, ws, right, key, value)?;
            ws.discard(h, node);
            self.join(h, ws, nk, nv, left, new_right)
        };
        Some(joined)
    }

    /// Pops the minimum of a non-null snapshot subtree.
    fn remove_min<'a>(
        &'a self,
        h: &mut S::Handle<'a>,
        ws: &mut WriteSet<K, V>,
        node: Shared<BonsaiNode<K, V>>,
    ) -> (K, V, Shared<BonsaiNode<K, V>>) {
        let n = unsafe { node.deref() };
        let left = h.protect(I_TRAV, &n.left);
        let right = h.protect(I_TRAV, &n.right);
        if left.is_null() {
            ws.discard(h, node);
            return (n.key.clone(), n.value.clone(), right);
        }
        let (nk, nv) = (n.key.clone(), n.value.clone());
        let (mk, mv, new_left) = self.remove_min(h, ws, left);
        ws.discard(h, node);
        (mk, mv, self.join(h, ws, nk, nv, new_left, right))
    }

    /// Rebuilds the path for a remove; `None` if the key is absent.
    fn do_remove<'a>(
        &'a self,
        h: &mut S::Handle<'a>,
        ws: &mut WriteSet<K, V>,
        node: Shared<BonsaiNode<K, V>>,
        key: &K,
    ) -> Option<(Shared<BonsaiNode<K, V>>, V)> {
        if node.is_null() {
            return None;
        }
        let n = unsafe { node.deref() };
        let left = h.protect(I_TRAV, &n.left);
        let right = h.protect(I_TRAV, &n.right);
        if *key == n.key {
            let value = n.value.clone();
            ws.discard(h, node);
            let merged = if left.is_null() {
                right
            } else if right.is_null() {
                left
            } else {
                let (mk, mv, new_right) = self.remove_min(h, ws, right);
                self.join(h, ws, mk, mv, left, new_right)
            };
            return Some((merged, value));
        }
        let (nk, nv) = (n.key.clone(), n.value.clone());
        let joined = if *key < n.key {
            let (new_left, value) = self.do_remove(h, ws, left, key)?;
            ws.discard(h, node);
            (self.join(h, ws, nk, nv, new_left, right), value)
        } else {
            let (new_right, value) = self.do_remove(h, ws, right, key)?;
            ws.discard(h, node);
            (self.join(h, ws, nk, nv, left, new_right), value)
        };
        Some(joined)
    }

    /// Looks up `key` in the current snapshot. Must be called between
    /// `enter` and `leave`.
    pub fn get<'a>(&'a self, h: &mut S::Handle<'a>, key: &K) -> Option<V> {
        let mut node = h.protect(I_ROOT, &self.root);
        while !node.is_null() {
            let n = unsafe { node.deref() };
            node = if *key < n.key {
                h.protect(I_TRAV, &n.left)
            } else if *key > n.key {
                h.protect(I_TRAV, &n.right)
            } else {
                return Some(n.value.clone());
            };
        }
        None
    }

    /// Whether `key` is present. Must be called between `enter` and `leave`.
    pub fn contains<'a>(&'a self, h: &mut S::Handle<'a>, key: &K) -> bool {
        self.get(h, key).is_some()
    }

    /// Inserts `key -> value`; `false` if present. Must be called between
    /// `enter` and `leave`.
    pub fn insert<'a>(&'a self, h: &mut S::Handle<'a>, key: K, value: V) -> bool {
        loop {
            let root = h.protect(I_ROOT, &self.root);
            let mut ws = WriteSet::new();
            let Some(new_root) = self.do_insert(h, &mut ws, root, &key, &value) else {
                debug_assert!(ws.fresh.is_empty());
                return false;
            };
            if self.publish(h, ws, root, new_root) {
                return true;
            }
        }
    }

    /// Removes `key`, returning its value. Must be called between `enter`
    /// and `leave`.
    pub fn remove<'a>(&'a self, h: &mut S::Handle<'a>, key: &K) -> Option<V> {
        loop {
            let root = h.protect(I_ROOT, &self.root);
            let mut ws = WriteSet::new();
            let Some((new_root, value)) = self.do_remove(h, &mut ws, root, key) else {
                debug_assert!(ws.fresh.is_empty());
                return None;
            };
            if self.publish(h, ws, root, new_root) {
                return Some(value);
            }
        }
    }

    /// Installs a new version; on failure rolls the write set back.
    fn publish<'a>(
        &'a self,
        h: &mut S::Handle<'a>,
        ws: WriteSet<K, V>,
        old_root: Shared<BonsaiNode<K, V>>,
        new_root: Shared<BonsaiNode<K, V>>,
    ) -> bool {
        if self
            .root
            .compare_exchange(old_root, new_root, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            for node in ws.replaced {
                unsafe { h.retire(node) };
            }
            true
        } else {
            for node in ws.fresh {
                unsafe { h.dealloc(node) };
            }
            false
        }
    }

    /// Number of keys in the current snapshot.
    pub fn len<'a>(&'a self, h: &mut S::Handle<'a>) -> usize {
        Self::size(h.protect(I_ROOT, &self.root))
    }

    /// Whether the tree is empty.
    pub fn is_empty<'a>(&'a self, h: &mut S::Handle<'a>) -> bool {
        self.len(h) == 0
    }
}

impl<K, V, S> Drop for BonsaiTree<K, V, S>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    S: Smr<BonsaiNode<K, V>>,
{
    fn drop(&mut self) {
        let mut handle = self.domain.handle();
        let mut stack = vec![self.root.load(Ordering::Acquire)];
        while let Some(node) = stack.pop() {
            if node.is_null() {
                continue;
            }
            let n = unsafe { node.deref() };
            stack.push(n.left.load(Ordering::Acquire));
            stack.push(n.right.load(Ordering::Acquire));
            unsafe { handle.dealloc(node) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyaline::{Hyaline, Hyaline1, Hyaline1S, HyalineS};
    use smr_baselines::{Ebr, Ibr, Leaky};

    fn cfg() -> SmrConfig {
        SmrConfig {
            slots: 4,
            batch_min: 8,
            era_freq: 8,
            scan_threshold: 16,
            max_threads: 64,
            ..SmrConfig::default()
        }
    }

    fn smoke<S: Smr<BonsaiNode<u64, u64>>>() {
        let tree: BonsaiTree<u64, u64, S> = BonsaiTree::with_config(cfg());
        let mut h = tree.smr_handle();
        h.enter();
        for i in 0..100 {
            assert!(tree.insert(&mut h, i, i * 3));
        }
        assert!(!tree.insert(&mut h, 50, 0));
        assert_eq!(tree.len(&mut h), 100);
        for i in 0..100 {
            assert_eq!(tree.get(&mut h, &i), Some(i * 3));
        }
        for i in (0..100).step_by(2) {
            assert_eq!(tree.remove(&mut h, &i), Some(i * 3));
        }
        assert_eq!(tree.len(&mut h), 50);
        for i in 0..100 {
            assert_eq!(tree.get(&mut h, &i).is_some(), i % 2 == 1);
        }
        h.leave();
    }

    #[test]
    fn smoke_supported_schemes() {
        smoke::<Hyaline<_>>();
        smoke::<Hyaline1<_>>();
        smoke::<HyalineS<_>>();
        smoke::<Hyaline1S<_>>();
        smoke::<Ebr<_>>();
        smoke::<Ibr<_>>();
        smoke::<Leaky<_>>();
    }

    /// The weight-balance invariant, checked recursively on a quiesced tree.
    fn check_balance(node: Shared<BonsaiNode<u64, u64>>) -> usize {
        if node.is_null() {
            return 0;
        }
        let n = unsafe { node.deref() };
        let ls = check_balance(n.left.load(Ordering::Acquire));
        let rs = check_balance(n.right.load(Ordering::Acquire));
        assert_eq!(n.size, 1 + ls + rs, "size field corrupt");
        if ls + rs > 1 {
            assert!(ls <= DELTA * rs, "left-heavy violation: {ls} vs {rs}");
            assert!(rs <= DELTA * ls, "right-heavy violation: {ls} vs {rs}");
        }
        n.size
    }

    #[test]
    fn stays_weight_balanced() {
        let tree: BonsaiTree<u64, u64, Ebr<_>> = BonsaiTree::with_config(cfg());
        let mut h = tree.smr_handle();
        h.enter();
        // Sorted insertion is the classic worst case for unbalanced trees.
        for i in 0..1_000 {
            tree.insert(&mut h, i, i);
        }
        check_balance(tree.root.load(Ordering::Acquire));
        for i in 0..500 {
            tree.remove(&mut h, &(i * 2));
        }
        check_balance(tree.root.load(Ordering::Acquire));
        h.leave();
    }

    fn concurrent_churn<S: Smr<BonsaiNode<u64, u64>>>() {
        let tree: &BonsaiTree<u64, u64, S> = &BonsaiTree::with_config(cfg());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                s.spawn(move || {
                    let mut h = tree.smr_handle();
                    let mut x = (t + 1).wrapping_mul(0x9E3779B97F4A7C15) | 1;
                    for _ in 0..1_500 {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let key = x % 128;
                        h.enter();
                        match x % 3 {
                            0 => {
                                tree.insert(&mut h, key, key * 11);
                            }
                            1 => {
                                tree.remove(&mut h, &key);
                            }
                            _ => {
                                if let Some(v) = tree.get(&mut h, &key) {
                                    assert_eq!(v, key * 11);
                                }
                            }
                        }
                        h.leave();
                    }
                });
            }
        });
    }

    #[test]
    fn churn_hyaline() {
        concurrent_churn::<Hyaline<_>>();
    }

    #[test]
    fn churn_hyaline_s() {
        concurrent_churn::<HyalineS<_>>();
    }

    #[test]
    fn churn_ebr() {
        concurrent_churn::<Ebr<_>>();
    }

    #[test]
    fn churn_ibr() {
        concurrent_churn::<Ibr<_>>();
    }

    #[test]
    fn writes_retire_whole_paths() {
        // The defining property: one update retires O(log n) nodes.
        let tree: BonsaiTree<u64, u64, Ebr<_>> = BonsaiTree::with_config(SmrConfig {
            scan_threshold: 1 << 30, // never scan: count retires precisely
            ..cfg()
        });
        let mut h = tree.smr_handle();
        h.enter();
        for i in 0..1_024 {
            tree.insert(&mut h, i, i);
        }
        let before = tree.domain().stats().retired();
        tree.insert(&mut h, 5_000, 1);
        h.flush();
        let after = tree.domain().stats().retired();
        assert!(
            after - before >= 5,
            "an insert into a 1k tree should retire a path, got {}",
            after - before
        );
        h.leave();
    }
}
