//! A read-mostly snapshot cell in the RCU style, on the typed-pointer
//! layer.
//!
//! The cell always points at one immutable snapshot. Readers take a
//! protected load and look at (or clone) the snapshot without ever
//! blocking a writer; writers publish a fresh snapshot with a swap or CAS
//! and retire the displaced one through the reclamation scheme — the
//! scheme plays the role of RCU's grace period. The single `unsafe` per
//! write path is the retire-safety argument: the winner of the
//! displacement is the sole retirer.

use smr_core::typed::{Atomic, Guard, Owned};
use smr_core::{Smr, SmrConfig};

/// Protection index used by readers and writers (the cell needs just one).
const IDX_SNAP: usize = 0;

/// A read-mostly RCU-style cell holding one immutable snapshot, generic
/// over the reclamation scheme.
///
/// # Example
///
/// ```
/// use hyaline::Hyaline;
/// use lockfree_ds::SnapshotCell;
/// use smr_core::SmrHandle;
///
/// let cell: SnapshotCell<Vec<u64>, Hyaline<_>> = SnapshotCell::new(vec![1, 2]);
/// let mut h = cell.smr_handle();
/// h.enter();
/// assert_eq!(cell.with(&mut h, |v| v.len()), 2);
/// cell.update(&mut h, |v| {
///     let mut v = v.clone();
///     v.push(3);
///     v
/// });
/// assert_eq!(cell.read(&mut h), vec![1, 2, 3]);
/// h.leave();
/// ```
pub struct SnapshotCell<T, S>
where
    T: Send + Sync + 'static,
    S: Smr<T>,
{
    domain: S,
    /// The current snapshot; never null.
    head: Atomic<T>,
}

impl<T, S> std::fmt::Debug for SnapshotCell<T, S>
where
    T: Send + Sync + 'static,
    S: Smr<T>,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotCell")
            .field("scheme", &S::name())
            .finish_non_exhaustive()
    }
}

impl<T, S> SnapshotCell<T, S>
where
    T: Send + Sync + 'static,
    S: Smr<T>,
{
    /// A cell holding `initial`, with a default-configured domain.
    pub fn new(initial: T) -> Self {
        Self::with_config(SmrConfig::default(), initial)
    }

    /// A cell holding `initial` whose reclamation domain uses `config`.
    pub fn with_config(config: SmrConfig, initial: T) -> Self {
        Self::with_domain(S::with_config(config), initial)
    }

    /// A cell holding `initial` over a pre-built reclamation domain.
    pub fn with_domain(domain: S, initial: T) -> Self {
        let mut handle = domain.handle();
        let first = Guard::over(&mut handle).alloc(initial).into_ptr();
        drop(handle);
        Self {
            domain,
            head: Atomic::new(first),
        }
    }

    /// The underlying reclamation domain.
    pub fn domain(&self) -> &S {
        &self.domain
    }

    /// A per-thread SMR handle for operating on this cell.
    pub fn smr_handle(&self) -> S::Handle<'_> {
        self.domain.handle()
    }

    /// Applies `f` to the current snapshot. Must be called between
    /// `enter` and `leave`.
    pub fn with<'a, R>(&'a self, h: &mut S::Handle<'a>, f: impl FnOnce(&T) -> R) -> R {
        let g = Guard::over(h);
        // The head is never null, so `deref` cannot panic.
        f(self.head.load(IDX_SNAP, &g).deref())
    }

    /// A clone of the current snapshot. Must be called between `enter`
    /// and `leave`.
    pub fn read<'a>(&'a self, h: &mut S::Handle<'a>) -> T
    where
        T: Clone,
    {
        self.with(h, T::clone)
    }

    /// Publishes `value` as the new snapshot, retiring the old one. Must
    /// be called between `enter` and `leave`.
    pub fn store<'a>(&'a self, h: &mut S::Handle<'a>, value: T) {
        let g = Guard::over(h);
        let displaced = self.head.swap(g.alloc(value).into_ptr());
        // SAFETY: the swap unlinked exactly one snapshot and handed it to
        // us alone; readers still looking at it hold protections, which
        // the scheme's deferred reclamation honors.
        unsafe { g.defer_retire(displaced) };
    }

    /// Publishes `f(current)` atomically: retries (re-reading the current
    /// snapshot) until the CAS succeeds, so concurrent updates are never
    /// lost. Must be called between `enter` and `leave`.
    pub fn update<'a>(&'a self, h: &mut S::Handle<'a>, f: impl Fn(&T) -> T) {
        let g = Guard::over(h);
        loop {
            let curr = self.head.load(IDX_SNAP, &g);
            let new: Owned<T> = g.alloc(f(curr.deref()));
            match self.head.compare_exchange(curr, new.ptr()) {
                Ok(()) => {
                    let _ = new.into_ptr();
                    // SAFETY: our CAS displaced `curr`; the winner of the
                    // displacement is the sole retirer, and protected
                    // readers are covered by deferred reclamation.
                    unsafe { g.defer_retire(curr) };
                    return;
                }
                // Lost the race: the speculative snapshot was never
                // published, so it is simply discarded.
                Err(_) => g.discard(new),
            }
        }
    }
}

impl<T, S> Drop for SnapshotCell<T, S>
where
    T: Send + Sync + 'static,
    S: Smr<T>,
{
    fn drop(&mut self) {
        let mut handle = self.domain.handle();
        let g = Guard::over(&mut handle);
        // SAFETY: `Drop` has `&mut self` — no reader can hold the final
        // snapshot, which is ours alone to free.
        unsafe { g.dealloc(self.head.fetch()) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyaline::{Hyaline, Hyaline1, Hyaline1S, HyalineS};
    use smr_baselines::{Ebr, He, Hp, Ibr, Leaky, Lfrc};
    use smr_core::SmrHandle;
    use std::sync::atomic::{AtomicBool, Ordering};

    fn cfg() -> SmrConfig {
        SmrConfig {
            slots: 4,
            batch_min: 8,
            era_freq: 8,
            scan_threshold: 16,
            max_threads: 64,
            ..SmrConfig::default()
        }
    }

    fn smoke<S: Smr<u64>>() {
        let cell: SnapshotCell<u64, S> = SnapshotCell::with_config(cfg(), 1);
        let mut h = cell.smr_handle();
        h.enter();
        assert_eq!(cell.read(&mut h), 1);
        cell.store(&mut h, 2);
        assert_eq!(cell.with(&mut h, |v| v * 10), 20);
        for _ in 0..100 {
            cell.update(&mut h, |v| v + 1);
        }
        assert_eq!(cell.read(&mut h), 102);
        h.leave();
    }

    #[test]
    fn smoke_all_schemes() {
        smoke::<Hyaline<_>>();
        smoke::<Hyaline1<_>>();
        smoke::<HyalineS<_>>();
        smoke::<Hyaline1S<_>>();
        smoke::<Ebr<_>>();
        smoke::<Hp<_>>();
        smoke::<He<_>>();
        smoke::<Ibr<_>>();
        smoke::<Lfrc<_>>();
        smoke::<Leaky<_>>();
    }

    #[test]
    fn concurrent_updates_never_lose_increments() {
        let cell: &SnapshotCell<u64, HyalineS<_>> = &SnapshotCell::with_config(cfg(), 0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(move || {
                    let mut h = cell.smr_handle();
                    for _ in 0..1_000 {
                        h.enter();
                        cell.update(&mut h, |v| v + 1);
                        h.leave();
                    }
                });
            }
        });
        let mut h = cell.smr_handle();
        h.enter();
        assert_eq!(cell.read(&mut h), 4_000);
        h.leave();
    }

    #[test]
    fn readers_see_consistent_snapshots() {
        // Snapshots are immutable: a reader never observes a torn pair.
        let cell: &SnapshotCell<(u64, u64), Hyaline<_>> =
            &SnapshotCell::with_config(cfg(), (0, 0));
        let stop = &AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(move || {
                let mut h = cell.smr_handle();
                for i in 1..=2_000 {
                    h.enter();
                    cell.store(&mut h, (i, i * 2));
                    h.leave();
                }
                stop.store(true, Ordering::Release);
            });
            for _ in 0..3 {
                s.spawn(move || {
                    let mut h = cell.smr_handle();
                    while !stop.load(Ordering::Acquire) {
                        h.enter();
                        let (a, b) = cell.read(&mut h);
                        assert_eq!(b, a * 2, "torn snapshot ({a}, {b})");
                        h.leave();
                    }
                });
            }
        });
    }
}
