//! The Natarajan–Mittal lock-free external binary search tree \[29\]
//! (the paper's Figure 8d/9d benchmark structure).
//!
//! Keys live in leaves; internal nodes only route. Deletion is two-phase
//! edge marking: *injection* FLAGs the edge to the doomed leaf, *cleanup*
//! TAGs (freezes) the sibling edge and swings the deepest clean ancestor
//! edge over the frozen chain, unlinking the leaf, its parent, and any
//! doomed nodes accumulated between them. Operations that stumble on
//! marked edges help complete the pending deletion.
//!
//! Written against the typed-pointer layer (`smr_core::typed`). The
//! remaining `unsafe` is confined to three arguments: promoting the
//! immortal `R`/`S` sentinels to protected [`Shared`]s, the
//! exclusively-owned chain walk after a successful `cleanup` swing, and
//! the exclusive teardown in `Drop`.

use smr_core::typed::{Atomic, Guard, Ptr, Shared};
use smr_core::{Smr, SmrConfig};

/// Edge bit: the leaf below this edge is being deleted (injection).
const FLAG: usize = 1;
/// Edge bit: the edge is frozen; its target is about to be relocated.
const TAG: usize = 2;

/// Protection indices for the seek record plus the sliding cursor.
const I_ANC: usize = 0;
const I_SUC: usize = 1;
const I_PAR: usize = 2;
const I_LEAF: usize = 3;
const I_CUR: usize = 4;
/// Minimum `SmrConfig::max_protect` the tree needs.
pub const NM_MIN_PROTECT: usize = 5;

/// A tree key: finite keys sort below the two sentinel infinities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TreeKey<K> {
    /// An application key.
    Fin(K),
    /// First sentinel (root of the real tree routes through it).
    Inf1,
    /// Second sentinel (tree root).
    Inf2,
}

/// A tree node. Internal nodes carry `value: None`; leaves carry `Some` and
/// have null children.
pub struct NmNode<K, V> {
    key: TreeKey<K>,
    value: Option<V>,
    left: Atomic<NmNode<K, V>>,
    right: Atomic<NmNode<K, V>>,
}

impl<K: std::fmt::Debug, V> std::fmt::Debug for NmNode<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NmNode")
            .field("key", &self.key)
            .field("is_leaf", &self.value.is_some())
            .finish_non_exhaustive()
    }
}

impl<K, V> NmNode<K, V> {
    fn leaf(key: TreeKey<K>, value: Option<V>) -> Self {
        NmNode {
            key,
            value,
            left: Atomic::null(),
            right: Atomic::null(),
        }
    }
}

/// The seek record: the deepest clean edge (`ancestor` → `successor`) above
/// the doomed chain, the leaf's `parent`, and the `leaf` itself. Each field
/// is protected at its namesake index for the guard borrow `'g`.
struct SeekRecord<'g, K, V> {
    ancestor: Shared<'g, NmNode<K, V>>,
    successor: Shared<'g, NmNode<K, V>>,
    parent: Shared<'g, NmNode<K, V>>,
    leaf: Shared<'g, NmNode<K, V>>,
}

/// The Natarajan–Mittal lock-free BST, generic over the reclamation scheme.
///
/// # Example
///
/// ```
/// use hyaline::Hyaline;
/// use lockfree_ds::NatarajanMittalTree;
/// use smr_core::SmrHandle;
///
/// let tree: NatarajanMittalTree<u64, u64, Hyaline<_>> = NatarajanMittalTree::new();
/// let mut h = tree.smr_handle();
/// h.enter();
/// assert!(tree.insert(&mut h, 5, 50));
/// assert_eq!(tree.get(&mut h, &5), Some(50));
/// assert_eq!(tree.remove(&mut h, &5), Some(50));
/// h.leave();
/// ```
pub struct NatarajanMittalTree<K, V, S>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    S: Smr<NmNode<K, V>>,
{
    domain: S,
    /// The sentinel root `R` (key `Inf2`); never retired.
    root: Atomic<NmNode<K, V>>,
}

impl<K, V, S> std::fmt::Debug for NatarajanMittalTree<K, V, S>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    S: Smr<NmNode<K, V>>,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NatarajanMittalTree")
            .field("scheme", &S::name())
            .finish_non_exhaustive()
    }
}

impl<K, V, S> Default for NatarajanMittalTree<K, V, S>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    S: Smr<NmNode<K, V>>,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V, S> NatarajanMittalTree<K, V, S>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    S: Smr<NmNode<K, V>>,
{
    /// An empty tree with a default-configured domain.
    pub fn new() -> Self {
        Self::with_config(SmrConfig::default())
    }

    /// An empty tree whose reclamation domain uses `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config.max_protect < NM_MIN_PROTECT`.
    pub fn with_config(config: SmrConfig) -> Self {
        assert!(
            config.max_protect >= NM_MIN_PROTECT,
            "Natarajan-Mittal tree needs at least {NM_MIN_PROTECT} protection indices"
        );
        Self::with_domain(S::with_config(config))
    }

    /// An empty tree over a pre-built reclamation domain (e.g. a
    /// configured [`smr_core::Sharded`] adapter).
    pub fn with_domain(domain: S) -> Self {
        let mut handle = domain.handle();
        let root = {
            let g = Guard::over(&mut handle);
            // R{Inf2}: left = S, right = leaf(Inf2); S{Inf1}: leaves Inf1/Inf2.
            let s_l = g.alloc(NmNode::leaf(TreeKey::Inf1, None)).into_ptr();
            let s_r = g.alloc(NmNode::leaf(TreeKey::Inf2, None)).into_ptr();
            let s = g
                .alloc(NmNode {
                    key: TreeKey::Inf1,
                    value: None,
                    left: Atomic::new(s_l),
                    right: Atomic::new(s_r),
                })
                .into_ptr();
            let r_r = g.alloc(NmNode::leaf(TreeKey::Inf2, None)).into_ptr();
            g.alloc(NmNode {
                key: TreeKey::Inf2,
                value: None,
                left: Atomic::new(s),
                right: Atomic::new(r_r),
            })
            .into_ptr()
        };
        drop(handle);
        Self {
            domain,
            root: Atomic::new(root),
        }
    }

    /// The underlying reclamation domain (statistics, etc.).
    pub fn domain(&self) -> &S {
        &self.domain
    }

    /// A per-thread SMR handle for operating on this tree.
    pub fn smr_handle(&self) -> S::Handle<'_> {
        self.domain.handle()
    }

    /// Which child edge of `node` the search for `key` follows.
    fn child_edge<'a>(node: &'a NmNode<K, V>, key: &TreeKey<K>) -> &'a Atomic<NmNode<K, V>> {
        if *key < node.key {
            &node.left
        } else {
            &node.right
        }
    }

    /// The other child edge.
    fn sibling_edge<'a>(node: &'a NmNode<K, V>, key: &TreeKey<K>) -> &'a Atomic<NmNode<K, V>> {
        if *key < node.key {
            &node.right
        } else {
            &node.left
        }
    }

    /// Re-checks that the traversal window is still linked into the tree
    /// (only for schemes with per-access protection, see
    /// [`Smr::needs_seek_validation`]).
    ///
    /// Two invariants are re-read after every new protection:
    ///
    /// 1. the edge into `leaf` still holds exactly the value we crossed
    ///    (pointer *and* mark bits), and
    /// 2. the deepest clean edge recorded so far (`ancestor` → `successor`)
    ///    is still intact and clean.
    ///
    /// If a concurrent `cleanup` swung an edge above us, one of the two
    /// re-reads differs (tags are permanent and swings replace the deepest
    /// clean edge's value), proving the freshly protected node may already
    /// be retired — the caller restarts from the root. Conversely, when both
    /// re-reads pass, every unlink that could retire the protected node
    /// happened after the protection was published, so the scheme's
    /// publish-then-validate protocol covers it.
    fn window_intact(
        key: &TreeKey<K>,
        ancestor: Shared<'_, NmNode<K, V>>,
        successor: Shared<'_, NmNode<K, V>>,
        parent: Shared<'_, NmNode<K, V>>,
        parent_field: Shared<'_, NmNode<K, V>>,
    ) -> bool {
        if Self::child_edge(parent.deref(), key).fetch() != parent_field {
            return false;
        }
        Self::child_edge(ancestor.deref(), key).fetch() == successor
    }

    /// The paper's `seek`: descends to the leaf for `key`, tracking the
    /// deepest untagged edge as the (ancestor, successor) pair.
    fn seek<'a, 'g>(
        &'a self,
        g: &'g Guard<'_, NmNode<K, V>, S::Handle<'a>>,
        key: &TreeKey<K>,
    ) -> SeekRecord<'g, K, V> {
        let validate = S::needs_seek_validation();
        'restart: loop {
            // SAFETY: R and S are sentinels allocated in `with_domain` and
            // never retired; they may be promoted to protected `Shared`s
            // without holding a protection index.
            let (r, s) = unsafe {
                let r = self.root.fetch().as_shared(g);
                let s = r.deref().left.fetch().untagged().as_shared(g);
                (r, s)
            };

            let mut ancestor = r;
            let mut successor = s;
            let mut parent = s;
            // The source of this protection (S) is immortal, so the
            // publish-then-revalidate inside the protected load suffices on
            // its own.
            let mut parent_field = s.deref().left.load(I_LEAF, g);
            let mut leaf = parent_field.untagged();
            let mut current_field = Self::child_edge(leaf.deref(), key).load(I_CUR, g);
            if validate && !Self::window_intact(key, ancestor, successor, parent, parent_field) {
                continue 'restart;
            }
            loop {
                let current = current_field.untagged();
                if current.is_null() {
                    break;
                }
                if parent_field.tag() & TAG == 0 {
                    // The edge into `leaf` is clean: deepest clean point so far.
                    g.copy_protection(I_PAR, I_ANC);
                    ancestor = parent;
                    g.copy_protection(I_LEAF, I_SUC);
                    successor = leaf;
                }
                g.copy_protection(I_LEAF, I_PAR);
                parent = leaf;
                g.copy_protection(I_CUR, I_LEAF);
                leaf = current;
                parent_field = current_field;
                current_field = Self::child_edge(leaf.deref(), key).load(I_CUR, g);
                if validate
                    && !Self::window_intact(key, ancestor, successor, parent, parent_field)
                {
                    continue 'restart;
                }
            }
            return SeekRecord {
                ancestor,
                successor,
                parent,
                leaf,
            };
        }
    }

    /// The paper's `cleanup`: freezes the survivor edge and swings the
    /// ancestor edge over the doomed chain. Returns whether this call
    /// performed the unlink (and the retirement).
    fn cleanup<'a>(
        &'a self,
        g: &Guard<'_, NmNode<K, V>, S::Handle<'a>>,
        key: &TreeKey<K>,
        sr: &SeekRecord<'_, K, V>,
    ) -> bool {
        let parent_ref = sr.parent.deref();
        let path_edge = Self::child_edge(parent_ref, key);
        let other_edge = Self::sibling_edge(parent_ref, key);
        let path_val = path_edge.fetch();
        // The flagged edge leads to the leaf being removed; the other child
        // survives. When helping, the flag may sit on either side.
        let (survivor_edge, flagged_edge) = if path_val.tag() & FLAG != 0 {
            (other_edge, path_edge)
        } else {
            (path_edge, other_edge)
        };
        // Freeze the survivor edge so its target cannot change underneath
        // the swing below.
        survivor_edge.fetch_or_tag(TAG);
        let survivor = survivor_edge.fetch();
        // The survivor keeps its own FLAG (it may itself be a doomed leaf).
        let new_val = survivor.untagged().with_tag(survivor.tag() & FLAG);

        let anc_edge = Self::child_edge(sr.ancestor.deref(), key);
        if anc_edge.compare_exchange(sr.successor, new_val).is_err() {
            return false;
        }

        // SAFETY: the successful ancestor CAS unlinked the chain
        // `successor ..= parent` plus every flagged leaf hanging off it;
        // nothing else can reach, retire or free those nodes now, so the
        // walk may dereference them and this thread alone retires each one.
        unsafe {
            let mut cur = Ptr::from(sr.successor);
            while cur != sr.parent {
                let cur_ref = cur.deref();
                // Interior chain nodes are doomed: path child frozen by TAG,
                // other child a flagged leaf completing some pending delete.
                let doomed_leaf = Self::sibling_edge(cur_ref, key).fetch();
                debug_assert!(!doomed_leaf.is_null());
                g.defer_retire(doomed_leaf);
                let next = Self::child_edge(cur_ref, key).fetch();
                g.defer_retire(cur);
                cur = next.untagged();
            }
            let removed_leaf = flagged_edge.fetch();
            debug_assert!(!removed_leaf.is_null());
            g.defer_retire(removed_leaf);
            g.defer_retire(sr.parent);
        }
        true
    }

    /// Looks up `key`. Must be called between `enter` and `leave`.
    pub fn get<'a>(&'a self, h: &mut S::Handle<'a>, key: &K) -> Option<V> {
        let g = Guard::over(h);
        let key = TreeKey::Fin(key.clone());
        let sr = self.seek(&g, &key);
        let leaf_ref = sr.leaf.deref();
        (leaf_ref.key == key).then(|| leaf_ref.value.clone().expect("leaves carry values"))
    }

    /// Whether `key` is present. Must be called between `enter` and `leave`.
    pub fn contains<'a>(&'a self, h: &mut S::Handle<'a>, key: &K) -> bool {
        let g = Guard::over(h);
        let key = TreeKey::Fin(key.clone());
        self.seek(&g, &key).leaf.deref().key == key
    }

    /// Inserts `key -> value`; `false` if present. Must be called between
    /// `enter` and `leave`.
    pub fn insert<'a>(&'a self, h: &mut S::Handle<'a>, key: K, value: V) -> bool {
        let g = Guard::over(h);
        let tkey = TreeKey::Fin(key);
        // The new leaf survives CAS-failure rounds until it is published.
        let mut new_leaf = None;
        loop {
            let sr = self.seek(&g, &tkey);
            let leaf_ref = sr.leaf.deref();
            if leaf_ref.key == tkey {
                if let Some(unpublished) = new_leaf.take() {
                    g.discard(unpublished);
                }
                return false;
            }
            let leaf_ptr = new_leaf
                .get_or_insert_with(|| {
                    let TreeKey::Fin(k) = &tkey else { unreachable!() };
                    g.alloc(NmNode::leaf(TreeKey::Fin(k.clone()), Some(value.clone())))
                })
                .ptr();
            // Build the replacement internal node: its key is the larger of
            // the two leaf keys; smaller key goes left.
            let (left, right, ikey) = if tkey < leaf_ref.key {
                (leaf_ptr, Ptr::from(sr.leaf), leaf_ref.key.clone())
            } else {
                (Ptr::from(sr.leaf), leaf_ptr, tkey.clone())
            };
            let internal = g.alloc(NmNode {
                key: ikey,
                value: None,
                left: Atomic::new(left),
                right: Atomic::new(right),
            });
            let edge = Self::child_edge(sr.parent.deref(), &tkey);
            match edge.compare_exchange_owned(sr.leaf, internal) {
                Ok(_) => {
                    // The new leaf is now reachable as a child of the
                    // published internal node: ownership moved into the tree.
                    new_leaf.take().map(smr_core::typed::Owned::into_ptr);
                    return true;
                }
                Err((seen, unpublished)) => {
                    // The internal node was never published; the leaf is
                    // reused on the next attempt.
                    g.discard(unpublished);
                    if seen.untagged() == sr.leaf && seen.tag() != 0 {
                        // Our target leaf is under deletion: help finish.
                        self.cleanup(&g, &tkey, &sr);
                    }
                }
            }
        }
    }

    /// Removes `key`, returning its value. Must be called between `enter`
    /// and `leave`.
    pub fn remove<'a>(&'a self, h: &mut S::Handle<'a>, key: &K) -> Option<V> {
        let g = Guard::over(h);
        let tkey = TreeKey::Fin(key.clone());
        // Injection mode: flag the edge to the target leaf.
        let (value, mut target) = loop {
            let sr = self.seek(&g, &tkey);
            let leaf_ref = sr.leaf.deref();
            if leaf_ref.key != tkey {
                return None;
            }
            let edge = Self::child_edge(sr.parent.deref(), &tkey);
            match edge.compare_exchange(sr.leaf, sr.leaf.with_tag(FLAG)) {
                Ok(()) => {
                    // We own the logical deletion (linearization point).
                    let value = leaf_ref.value.clone().expect("leaves carry values");
                    if self.cleanup(&g, &tkey, &sr) {
                        return Some(value);
                    }
                    break (value, Ptr::from(sr.leaf));
                }
                Err(seen) => {
                    if seen.untagged() == sr.leaf && seen.tag() != 0 {
                        // Another operation marked this leaf: help, retry.
                        self.cleanup(&g, &tkey, &sr);
                    }
                }
            }
        };
        // Cleanup mode: keep seeking until our flagged leaf is gone.
        loop {
            let sr = self.seek(&g, &tkey);
            if target != sr.leaf {
                // Someone else performed the unlink for us.
                return Some(value);
            }
            if self.cleanup(&g, &tkey, &sr) {
                return Some(value);
            }
            // Re-read the (possibly relocated) flagged leaf each round.
            target = Ptr::from(sr.leaf);
        }
    }
}

impl<K, V, S> Drop for NatarajanMittalTree<K, V, S>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    S: Smr<NmNode<K, V>>,
{
    fn drop(&mut self) {
        let mut handle = self.domain.handle();
        let g = Guard::over(&mut handle);
        let mut stack = vec![self.root.fetch().untagged()];
        while let Some(node) = stack.pop() {
            if node.is_null() {
                continue;
            }
            // SAFETY: `Drop` has `&mut self` — no concurrent access; the
            // whole tree is exclusively ours to walk and free.
            let node_ref = unsafe { node.deref() };
            stack.push(node_ref.left.fetch().untagged());
            stack.push(node_ref.right.fetch().untagged());
            // SAFETY: same exclusive-teardown argument.
            unsafe { g.dealloc(node) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyaline::{Hyaline, Hyaline1, Hyaline1S, HyalineS};
    use smr_baselines::{Ebr, He, Hp, Ibr, Leaky};
    use smr_core::SmrHandle;
    use std::sync::atomic::Ordering;

    fn cfg() -> SmrConfig {
        SmrConfig {
            slots: 4,
            batch_min: 8,
            era_freq: 8,
            scan_threshold: 16,
            max_protect: 8,
            max_threads: 64,
            ..SmrConfig::default()
        }
    }

    fn smoke<S: Smr<NmNode<u64, u64>>>() {
        let tree: NatarajanMittalTree<u64, u64, S> = NatarajanMittalTree::with_config(cfg());
        let mut h = tree.smr_handle();
        h.enter();
        assert_eq!(tree.get(&mut h, &5), None);
        assert!(tree.insert(&mut h, 5, 50));
        assert!(tree.insert(&mut h, 3, 30));
        assert!(tree.insert(&mut h, 8, 80));
        assert!(!tree.insert(&mut h, 5, 99));
        assert_eq!(tree.get(&mut h, &5), Some(50));
        assert_eq!(tree.get(&mut h, &3), Some(30));
        assert_eq!(tree.get(&mut h, &8), Some(80));
        assert_eq!(tree.remove(&mut h, &5), Some(50));
        assert_eq!(tree.remove(&mut h, &5), None);
        assert_eq!(tree.get(&mut h, &5), None);
        assert_eq!(tree.get(&mut h, &3), Some(30));
        assert_eq!(tree.get(&mut h, &8), Some(80));
        h.leave();
    }

    #[test]
    fn smoke_all_schemes() {
        smoke::<Hyaline<_>>();
        smoke::<Hyaline1<_>>();
        smoke::<HyalineS<_>>();
        smoke::<Hyaline1S<_>>();
        smoke::<Ebr<_>>();
        smoke::<Hp<_>>();
        smoke::<He<_>>();
        smoke::<Ibr<_>>();
        smoke::<Leaky<_>>();
    }

    #[test]
    fn delete_down_to_empty_and_reinsert() {
        let tree: NatarajanMittalTree<u64, u64, Ebr<_>> =
            NatarajanMittalTree::with_config(cfg());
        let mut h = tree.smr_handle();
        for round in 0..3 {
            h.enter();
            for i in 0..50 {
                assert!(tree.insert(&mut h, i, i + round), "round {round} insert {i}");
            }
            for i in 0..50 {
                assert_eq!(tree.remove(&mut h, &i), Some(i + round));
            }
            for i in 0..50 {
                assert_eq!(tree.get(&mut h, &i), None);
            }
            h.leave();
        }
    }

    fn concurrent_churn<S: Smr<NmNode<u64, u64>>>() {
        let tree: &NatarajanMittalTree<u64, u64, S> =
            &NatarajanMittalTree::with_config(cfg());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                s.spawn(move || {
                    let mut h = tree.smr_handle();
                    let mut x = (t + 1).wrapping_mul(0x9E3779B97F4A7C15) | 1;
                    for _ in 0..2_500 {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let key = x % 128;
                        h.enter();
                        match x % 3 {
                            0 => {
                                tree.insert(&mut h, key, key * 7);
                            }
                            1 => {
                                tree.remove(&mut h, &key);
                            }
                            _ => {
                                if let Some(v) = tree.get(&mut h, &key) {
                                    assert_eq!(v, key * 7, "torn value for {key}");
                                }
                            }
                        }
                        h.leave();
                    }
                });
            }
        });
    }

    #[test]
    fn churn_hyaline() {
        concurrent_churn::<Hyaline<_>>();
    }

    #[test]
    fn churn_hyaline_s() {
        concurrent_churn::<HyalineS<_>>();
    }

    #[test]
    fn churn_hyaline1s() {
        concurrent_churn::<Hyaline1S<_>>();
    }

    #[test]
    fn churn_ebr() {
        concurrent_churn::<Ebr<_>>();
    }

    #[test]
    fn churn_hp() {
        concurrent_churn::<Hp<_>>();
    }

    #[test]
    fn churn_he() {
        concurrent_churn::<He<_>>();
    }

    #[test]
    fn churn_ibr() {
        concurrent_churn::<Ibr<_>>();
    }

    #[test]
    fn tree_key_ordering() {
        assert!(TreeKey::Fin(u64::MAX) < TreeKey::Inf1);
        assert!(TreeKey::Inf1 < TreeKey::<u64>::Inf2);
        assert!(TreeKey::Fin(1) < TreeKey::Fin(2));
    }

    #[test]
    fn concurrent_same_key_deletes() {
        // Exactly one of many racing removers gets the value.
        let tree: &NatarajanMittalTree<u64, u64, Hyaline<_>> =
            &NatarajanMittalTree::with_config(cfg());
        for _ in 0..100 {
            {
                let mut h = tree.smr_handle();
                h.enter();
                assert!(tree.insert(&mut h, 42, 4200));
                h.leave();
            }
            let winners = std::sync::atomic::AtomicUsize::new(0);
            std::thread::scope(|s| {
                for _ in 0..4 {
                    s.spawn(|| {
                        let mut h = tree.smr_handle();
                        h.enter();
                        if tree.remove(&mut h, &42).is_some() {
                            winners.fetch_add(1, Ordering::Relaxed);
                        }
                        h.leave();
                    });
                }
            });
            assert_eq!(winners.load(Ordering::Relaxed), 1);
        }
    }
}
