//! Lock-free data structures generic over safe-memory-reclamation schemes.
//!
//! These are the four benchmark structures of the Hyaline paper's
//! evaluation (Section 6) plus two extras used by examples and tests:
//!
//! * [`HarrisMichaelList`] — the Harris–Michael sorted linked list \[20, 26\]
//!   (Figures 8a/9a).
//! * [`MichaelHashMap`] — Michael's hash map of list buckets \[26\]
//!   (Figures 8c/9c).
//! * [`BonsaiTree`] — the path-copying weight-balanced tree \[13, 35\]
//!   (Figures 8b/9b); every update retires a whole path, stressing
//!   reclamation.
//! * [`NatarajanMittalTree`] — the lock-free external BST \[29\]
//!   (Figures 8d/9d).
//! * [`TreiberStack`], [`MsQueue`] — classic stack/queue for examples.
//! * [`SkipListMap`] — a lock-free skip list in the Harris/Herlihy–Shavit
//!   style, with a two-phase retirement handshake between inserters and
//!   removers.
//! * [`BoundedMpmcQueue`] — a capacity-bounded MPMC queue composed from
//!   [`MsQueue`] plus an atomic admission counter.
//! * [`SnapshotCell`] — a read-mostly RCU-style cell: readers clone a
//!   protected snapshot, writers swap in a fresh one and retire the old.
//!
//! Every structure takes the reclamation scheme as a type parameter
//! implementing [`smr_core::Smr`] and is written against the typed-pointer
//! layer ([`smr_core::typed`]): loads return borrow-branded
//! [`smr_core::typed::Shared`] pointers that route through the scheme's
//! `protect`, so the robust schemes (HP, HE, IBR, Hyaline-S, Hyaline-1S)
//! are safe and the only `unsafe` left in a structure is its
//! retire/teardown argument. Operations must be bracketed by
//! `enter`/`leave` on the handle — the paper's programming model
//! (Figure 1a).
//!
//! # Example
//!
//! ```
//! use hyaline::Hyaline;
//! use lockfree_ds::MichaelHashMap;
//! use smr_core::SmrHandle;
//!
//! let map: MichaelHashMap<u64, u64, Hyaline<_>> = MichaelHashMap::new();
//! let map = &map;
//! std::thread::scope(|s| {
//!     for t in 0..4 {
//!         s.spawn(move || {
//!             let mut h = map.smr_handle();
//!             h.enter();
//!             map.insert(&mut h, t, t * 10);
//!             h.leave();
//!         });
//!     }
//! });
//! ```

#![warn(missing_docs)]

mod bonsai;
mod hashmap;
mod list;
mod map_api;
mod mpmc;
mod nmtree;
mod queue;
mod skiplist;
mod snapshot;
mod stack;

pub use bonsai::{BonsaiNode, BonsaiTree};
pub use hashmap::{MichaelHashMap, DEFAULT_BUCKETS};
pub use list::{HarrisMichaelList, ListNode};
pub use map_api::ConcurrentMap;
pub use mpmc::BoundedMpmcQueue;
pub use nmtree::{NatarajanMittalTree, NmNode, TreeKey, NM_MIN_PROTECT};
pub use queue::{MsQueue, QueueNode};
pub use skiplist::{SkipListMap, SkipNode, SKIPLIST_MIN_PROTECT};
pub use snapshot::SnapshotCell;
pub use stack::{StackNode, TreiberStack};
