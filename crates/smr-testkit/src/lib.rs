//! Fault-injection and validation utilities for testing safe-memory-
//! reclamation (SMR) schemes.
//!
//! Reclamation bugs — use-after-free, double-free, leaks — are silent until
//! they corrupt something far away. This crate provides payload types and
//! harness helpers that turn those silent failures into immediate, attributable
//! panics:
//!
//! * [`drop_tracker`] — payloads that count live instances, so tests can
//!   assert "every allocation was dropped exactly once" after teardown.
//! * [`canary`] — payloads carrying a magic word that is poisoned on drop, so
//!   a read through a dangling pointer fails its checksum instead of returning
//!   plausible garbage.
//! * [`token`] — a mint for per-key unique values, so any value observed in a
//!   map can be traced back to the insert that produced it (a read of reused
//!   memory surfaces as an unmintable token).
//! * [`stall`] — deterministic stalled-thread injection (the adversary of the
//!   paper's robustness experiments).
//! * [`oracle`] — a sequential reference model for single-threaded
//!   linearizability checks, and a generator of reproducible operation
//!   sequences.
//!
//! # Example
//!
//! ```
//! use smr_testkit::drop_tracker::DropRegistry;
//!
//! let registry = DropRegistry::new();
//! let payload = registry.track(42u64);
//! assert_eq!(registry.live(), 1);
//! drop(payload);
//! assert_eq!(registry.live(), 0);
//! registry.assert_quiescent();
//! ```

#![warn(missing_docs)]

pub mod canary;
pub mod drop_tracker;
pub mod oracle;
pub mod stall;
pub mod token;

pub use canary::Canary;
pub use drop_tracker::{DropRegistry, Tracked};
pub use oracle::{MapOp, OpSequence, SequentialOracle};
pub use stall::StallPoint;
pub use token::TokenMint;
