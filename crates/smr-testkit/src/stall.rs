//! Deterministic stalled-thread injection.
//!
//! The robustness experiments of the Hyaline paper (Figure 10a) and the
//! robustness definition of §2.3 revolve around an adversary: a thread that
//! enters an operation and stops indefinitely. A [`StallPoint`] makes that
//! adversary deterministic in tests — the stalled thread parks exactly where
//! the test wants it, the test observes the system under stall, then releases
//! it and verifies recovery.

use std::sync::{Barrier, Condvar, Mutex};

/// A two-phase rendezvous for parking a thread mid-operation.
///
/// The stalling thread calls [`StallPoint::stall`] inside its operation; it
/// blocks until the test calls [`StallPoint::release`]. The test can wait for
/// the thread to actually arrive with [`StallPoint::wait_until_stalled`], so
/// assertions run strictly *while* the thread is parked.
///
/// # Example
///
/// ```
/// use smr_testkit::StallPoint;
///
/// let point = StallPoint::new();
/// std::thread::scope(|s| {
///     s.spawn(|| {
///         // ... enter an operation ...
///         point.stall();
///         // ... leave ...
///     });
///     point.wait_until_stalled();
///     // The spawned thread is now parked inside its operation.
///     point.release();
/// });
/// ```
#[derive(Debug)]
pub struct StallPoint {
    arrived: Barrier,
    released: Mutex<bool>,
    condvar: Condvar,
}

impl Default for StallPoint {
    fn default() -> Self {
        Self::new()
    }
}

impl StallPoint {
    /// A stall point for one stalled thread and one controller.
    pub fn new() -> Self {
        Self {
            arrived: Barrier::new(2),
            released: Mutex::new(false),
            condvar: Condvar::new(),
        }
    }

    /// Parks the calling thread until [`StallPoint::release`].
    ///
    /// Call from the thread that should stall, at the exact point in the
    /// operation where the stall should happen.
    pub fn stall(&self) {
        self.arrived.wait();
        let mut released = self.released.lock().unwrap();
        while !*released {
            released = self.condvar.wait(released).unwrap();
        }
    }

    /// Blocks the controller until the stalled thread has arrived at
    /// [`StallPoint::stall`].
    pub fn wait_until_stalled(&self) {
        self.arrived.wait();
    }

    /// Releases the stalled thread.
    pub fn release(&self) {
        let mut released = self.released.lock().unwrap();
        *released = true;
        self.condvar.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU8, Ordering};

    #[test]
    fn stall_orders_phases() {
        // Phases: 0 = before stall, 1 = stalled, 2 = released.
        let phase = AtomicU8::new(0);
        let point = StallPoint::new();
        std::thread::scope(|s| {
            s.spawn(|| {
                phase.store(1, Ordering::SeqCst);
                point.stall();
                phase.store(2, Ordering::SeqCst);
            });
            point.wait_until_stalled();
            assert_eq!(phase.load(Ordering::SeqCst), 1, "thread parked at stall");
            point.release();
        });
        assert_eq!(phase.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn release_before_stall_does_not_deadlock() {
        let point = StallPoint::new();
        std::thread::scope(|s| {
            s.spawn(|| {
                point.wait_until_stalled();
                point.release();
            });
            point.stall(); // Pairs with wait_until_stalled, then returns.
        });
    }
}
