//! A sequential reference model and reproducible operation sequences.
//!
//! Single-threaded linearizability checking: apply the same operation
//! sequence to the structure under test and to a [`SequentialOracle`]
//! (a `BTreeMap`), asserting equal results step by step. Sequences come from
//! [`OpSequence`], a small seeded generator, so failures reproduce from just
//! the seed.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// One map operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapOp {
    /// Look up a key.
    Get(u64),
    /// Insert a key/value pair (fails if the key is present).
    Insert(u64, u64),
    /// Remove a key.
    Remove(u64),
}

/// The result of applying a [`MapOp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapOutcome {
    /// Result of a get: the value found, if any.
    Found(Option<u64>),
    /// Result of an insert: whether the key was newly inserted.
    Inserted(bool),
    /// Result of a remove: the removed value, if any.
    Removed(Option<u64>),
}

/// A `BTreeMap`-backed reference model.
///
/// # Example
///
/// ```
/// use smr_testkit::oracle::{MapOp, MapOutcome, SequentialOracle};
///
/// let mut oracle = SequentialOracle::new();
/// assert_eq!(oracle.apply(MapOp::Insert(1, 10)), MapOutcome::Inserted(true));
/// assert_eq!(oracle.apply(MapOp::Get(1)), MapOutcome::Found(Some(10)));
/// assert_eq!(oracle.apply(MapOp::Remove(1)), MapOutcome::Removed(Some(10)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct SequentialOracle {
    model: BTreeMap<u64, u64>,
}

impl SequentialOracle {
    /// An empty oracle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies one operation, returning the model's outcome.
    ///
    /// Insert semantics match the benchmark structures: insert fails (and
    /// leaves the existing value) when the key is already present.
    pub fn apply(&mut self, op: MapOp) -> MapOutcome {
        match op {
            MapOp::Get(k) => MapOutcome::Found(self.model.get(&k).copied()),
            MapOp::Insert(k, v) => {
                if let std::collections::btree_map::Entry::Vacant(e) = self.model.entry(k) {
                    e.insert(v);
                    MapOutcome::Inserted(true)
                } else {
                    MapOutcome::Inserted(false)
                }
            }
            MapOp::Remove(k) => MapOutcome::Removed(self.model.remove(&k)),
        }
    }

    /// The value currently held under `key`.
    pub fn get(&self, key: u64) -> Option<u64> {
        self.model.get(&key).copied()
    }

    /// Number of keys in the model.
    pub fn len(&self) -> usize {
        self.model.len()
    }

    /// Whether the model is empty.
    pub fn is_empty(&self) -> bool {
        self.model.is_empty()
    }

    /// Iterates over the model's entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.model.iter().map(|(&k, &v)| (k, v))
    }
}

/// A seeded generator of operation sequences.
///
/// `read_permille` controls the fraction of `Get` operations (out of 1000);
/// the remainder splits evenly between inserts and removes, matching the
/// paper's workload mixes (0 → pure write stress, 900 → the read-mostly mix).
#[derive(Debug)]
pub struct OpSequence {
    rng: SmallRng,
    key_range: u64,
    read_permille: u16,
}

impl OpSequence {
    /// A generator over keys `0..key_range` with the given read share.
    ///
    /// # Panics
    ///
    /// Panics if `key_range` is zero or `read_permille > 1000`.
    pub fn new(seed: u64, key_range: u64, read_permille: u16) -> Self {
        assert!(key_range > 0, "key range must be non-empty");
        assert!(read_permille <= 1000, "permille out of range");
        Self {
            rng: SmallRng::seed_from_u64(seed),
            key_range,
            read_permille,
        }
    }
}

impl Iterator for OpSequence {
    type Item = MapOp;

    fn next(&mut self) -> Option<MapOp> {
        let key = self.rng.gen_range(0..self.key_range);
        let roll = self.rng.gen_range(0..1000u16);
        Some(if roll < self.read_permille {
            MapOp::Get(key)
        } else if (roll - self.read_permille).is_multiple_of(2) {
            MapOp::Insert(key, self.rng.gen())
        } else {
            MapOp::Remove(key)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_insert_get_remove() {
        let mut o = SequentialOracle::new();
        assert_eq!(o.apply(MapOp::Insert(5, 50)), MapOutcome::Inserted(true));
        assert_eq!(o.apply(MapOp::Insert(5, 99)), MapOutcome::Inserted(false));
        assert_eq!(o.get(5), Some(50), "failed insert must not overwrite");
        assert_eq!(o.apply(MapOp::Get(5)), MapOutcome::Found(Some(50)));
        assert_eq!(o.apply(MapOp::Remove(5)), MapOutcome::Removed(Some(50)));
        assert_eq!(o.apply(MapOp::Remove(5)), MapOutcome::Removed(None));
        assert!(o.is_empty());
    }

    #[test]
    fn sequences_reproduce_from_seed() {
        let a: Vec<_> = OpSequence::new(42, 100, 500).take(200).collect();
        let b: Vec<_> = OpSequence::new(42, 100, 500).take(200).collect();
        assert_eq!(a, b);
        let c: Vec<_> = OpSequence::new(43, 100, 500).take(200).collect();
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn read_share_is_respected() {
        let reads = OpSequence::new(7, 64, 900)
            .take(10_000)
            .filter(|op| matches!(op, MapOp::Get(_)))
            .count();
        assert!((8_500..=9_500).contains(&reads), "got {reads} reads");
        let none = OpSequence::new(7, 64, 0)
            .take(1_000)
            .filter(|op| matches!(op, MapOp::Get(_)))
            .count();
        assert_eq!(none, 0);
    }

    #[test]
    fn keys_stay_in_range() {
        for op in OpSequence::new(1, 10, 300).take(1_000) {
            let k = match op {
                MapOp::Get(k) | MapOp::Insert(k, _) | MapOp::Remove(k) => k,
            };
            assert!(k < 10);
        }
    }

    #[test]
    fn iter_is_key_ordered() {
        let mut o = SequentialOracle::new();
        o.apply(MapOp::Insert(3, 30));
        o.apply(MapOp::Insert(1, 10));
        o.apply(MapOp::Insert(2, 20));
        let keys: Vec<_> = o.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![1, 2, 3]);
        assert_eq!(o.len(), 3);
    }
}
