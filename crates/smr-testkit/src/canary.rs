//! Magic-word payloads that poison themselves on drop.
//!
//! A use-after-free read does not usually crash: it returns whatever bytes
//! happen to live at the address, which often look plausible. A [`Canary`]
//! payload makes the failure observable: while alive, [`Canary::check`]
//! validates a checksum over its fields; its `Drop` implementation overwrites
//! the magic word with a poison pattern, so a read through a dangling
//! reference fails the checksum (as long as the allocation has not been
//! rewritten by an unrelated allocation — pair with
//! [`TokenMint`](crate::token::TokenMint) to cover that case too).

use std::sync::atomic::{AtomicU64, Ordering};

/// Magic value stored in a live canary.
const ALIVE: u64 = 0x1DEA_C0DE_F00D_BEEF;

/// Poison value written by `Drop`.
const POISON: u64 = 0xDEAD_DEAD_DEAD_DEAD;

/// The error returned when a canary checksum fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CanaryViolation {
    /// The magic word observed (poison, or garbage from reused memory).
    pub observed_magic: u64,
    /// The payload value observed.
    pub observed_value: u64,
    /// The checksum observed.
    pub observed_checksum: u64,
}

impl std::fmt::Display for CanaryViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.observed_magic == POISON {
            write!(
                f,
                "use-after-free: canary is poisoned (value {:#x})",
                self.observed_value
            )
        } else {
            write!(
                f,
                "memory corruption: canary magic {:#x}, value {:#x}, checksum {:#x}",
                self.observed_magic, self.observed_value, self.observed_checksum
            )
        }
    }
}

impl std::error::Error for CanaryViolation {}

/// A self-validating payload for reclaimed nodes.
///
/// # Example
///
/// ```
/// use smr_testkit::Canary;
///
/// let canary = Canary::new(7);
/// assert_eq!(canary.check().unwrap(), 7);
/// ```
#[derive(Debug)]
pub struct Canary {
    magic: AtomicU64,
    value: u64,
    checksum: AtomicU64,
}

impl Canary {
    /// A live canary holding `value`.
    pub fn new(value: u64) -> Self {
        Self {
            magic: AtomicU64::new(ALIVE),
            value,
            checksum: AtomicU64::new(Self::expected_checksum(value)),
        }
    }

    fn expected_checksum(value: u64) -> u64 {
        ALIVE ^ value.rotate_left(17) ^ 0x5BD1_E995
    }

    /// Validates the canary and returns the stored value.
    ///
    /// # Errors
    ///
    /// Returns a [`CanaryViolation`] when the magic word or checksum does not
    /// match — the payload has been dropped (poisoned) or its memory reused.
    pub fn check(&self) -> Result<u64, CanaryViolation> {
        let magic = self.magic.load(Ordering::Acquire);
        let checksum = self.checksum.load(Ordering::Acquire);
        let value = self.value;
        if magic == ALIVE && checksum == Self::expected_checksum(value) {
            Ok(value)
        } else {
            Err(CanaryViolation {
                observed_magic: magic,
                observed_value: value,
                observed_checksum: checksum,
            })
        }
    }

    /// The stored value, without validation (for display in failure paths).
    pub fn value_unchecked(&self) -> u64 {
        self.value
    }
}

impl Drop for Canary {
    fn drop(&mut self) {
        self.magic.store(POISON, Ordering::Release);
        self.checksum.store(POISON, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_canary_checks_out() {
        let c = Canary::new(123);
        assert_eq!(c.check().unwrap(), 123);
        assert_eq!(c.value_unchecked(), 123);
    }

    #[test]
    fn dropped_canary_is_poisoned() {
        let c = Canary::new(9);
        // Drop in place, then inspect the bytes the allocation held. This is
        // exactly what a use-after-free does; we emulate it without UB by
        // keeping the storage alive in a ManuallyDrop.
        let slot = std::mem::ManuallyDrop::new(c);
        let alias: &Canary = &slot;
        unsafe {
            std::ptr::drop_in_place(&*slot as *const Canary as *mut Canary);
        }
        let err = alias.check().unwrap_err();
        assert_eq!(err.observed_magic, POISON);
        assert!(err.to_string().contains("use-after-free"));
    }

    #[test]
    fn corrupted_checksum_is_detected() {
        let c = Canary::new(1);
        c.checksum.store(42, Ordering::Relaxed);
        let err = c.check().unwrap_err();
        assert!(err.to_string().contains("corruption"));
        // Forget: the canary was deliberately corrupted; dropping is fine
        // but check() must have failed first.
        drop(c);
    }

    #[test]
    fn distinct_values_have_distinct_checksums() {
        let a = Canary::new(1);
        let b = Canary::new(2);
        assert_ne!(
            a.checksum.load(Ordering::Relaxed),
            b.checksum.load(Ordering::Relaxed)
        );
    }
}
