//! Live-instance accounting for reclaimed payloads.
//!
//! A [`DropRegistry`] hands out [`Tracked`] payloads. Each construction
//! increments a live counter; each drop decrements it and flips a per-instance
//! state flag. Dropping the same instance twice — the signature of a
//! double-free in the reclamation path — panics immediately at the second
//! drop, with the allocation id in the message. After a domain is torn down,
//! [`DropRegistry::assert_quiescent`] turns a leak into a test failure.

use std::mem::ManuallyDrop;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Shared accounting state behind a [`DropRegistry`] and all its payloads.
#[derive(Debug, Default)]
struct Counters {
    created: AtomicU64,
    dropped: AtomicU64,
    live: AtomicI64,
    double_drop: AtomicBool,
}

/// A registry counting live [`Tracked`] payloads.
///
/// Cloning the registry is cheap; clones share the same counters.
///
/// # Example
///
/// ```
/// use smr_testkit::drop_tracker::DropRegistry;
///
/// let registry = DropRegistry::new();
/// let a = registry.track("a");
/// let b = registry.track("b");
/// assert_eq!(registry.created(), 2);
/// drop(a);
/// assert_eq!(registry.live(), 1);
/// drop(b);
/// registry.assert_quiescent();
/// ```
#[derive(Debug, Clone, Default)]
pub struct DropRegistry {
    counters: Arc<Counters>,
}

impl DropRegistry {
    /// A fresh registry with zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps `value` in a tracked payload tied to this registry.
    ///
    /// The registry (or a clone of it) must outlive the returned payload:
    /// payloads report their drop through a pointer to the registry's shared
    /// counters. Test harnesses satisfy this naturally by keeping the
    /// registry on the stack above the domain under test.
    pub fn track<T>(&self, value: T) -> Tracked<T> {
        let id = self.counters.created.fetch_add(1, Ordering::Relaxed);
        self.counters.live.fetch_add(1, Ordering::Relaxed);
        Tracked {
            value: ManuallyDrop::new(value),
            id,
            dropped: AtomicBool::new(false),
            counters: Arc::as_ptr(&self.counters),
        }
    }

    /// Total payloads created.
    pub fn created(&self) -> u64 {
        self.counters.created.load(Ordering::Relaxed)
    }

    /// Total payloads dropped.
    pub fn dropped(&self) -> u64 {
        self.counters.dropped.load(Ordering::Relaxed)
    }

    /// Currently live payloads (`created - dropped`).
    pub fn live(&self) -> i64 {
        self.counters.live.load(Ordering::Relaxed)
    }

    /// Whether a double drop was detected on any payload.
    ///
    /// A double drop also panics at the offending drop site; this flag lets a
    /// test observe the failure even if the panic happened on another thread.
    pub fn double_drop_detected(&self) -> bool {
        self.counters.double_drop.load(Ordering::Relaxed)
    }

    /// Asserts that every created payload has been dropped exactly once.
    ///
    /// # Panics
    ///
    /// Panics if payloads are still live (a leak) or if a double drop was
    /// recorded.
    pub fn assert_quiescent(&self) {
        assert!(
            !self.double_drop_detected(),
            "double drop detected (see earlier panic for the allocation id)"
        );
        let live = self.live();
        assert_eq!(
            live,
            0,
            "leak: {live} of {} tracked payloads never dropped",
            self.created()
        );
    }
}

/// A payload whose drop is accounted in a [`DropRegistry`].
///
/// `Tracked<T>` derefs to `T` for convenient use inside data-structure nodes.
///
/// The fields are released manually on the *first* drop only: a buggy
/// reclamation path that drops the same payload twice gets a clean panic from
/// the second drop instead of heap corruption from double-releasing the
/// wrapped value.
#[derive(Debug)]
pub struct Tracked<T> {
    value: ManuallyDrop<T>,
    id: u64,
    dropped: AtomicBool,
    /// Non-owning pointer into the registry's shared counters; see
    /// [`DropRegistry::track`] for the lifetime contract.
    counters: *const Counters,
}

// SAFETY: `Tracked` is a value plus a pointer to atomic counters; the
// counters are only accessed through atomic operations, and the pointer's
// validity is the documented registry-outlives-payloads contract.
unsafe impl<T: Send> Send for Tracked<T> {}
// SAFETY: as above — shared access only touches the atomic counters.
unsafe impl<T: Sync> Sync for Tracked<T> {}

impl<T> Tracked<T> {
    fn counters(&self) -> &Counters {
        // SAFETY: the registry outlives its payloads (see `track`).
        unsafe { &*self.counters }
    }
}

impl<T> Tracked<T> {
    /// The unique allocation id assigned by the registry.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The wrapped value.
    pub fn value(&self) -> &T {
        &self.value
    }
}

impl<T> std::ops::Deref for Tracked<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

/// Cloning a tracked payload mints a *new* tracked instance (fresh id,
/// counted in the registry), so the created == dropped balance holds even
/// when data structures clone values out of their nodes.
impl<T: Clone> Clone for Tracked<T> {
    fn clone(&self) -> Self {
        let counters = self.counters();
        let id = counters.created.fetch_add(1, Ordering::Relaxed);
        counters.live.fetch_add(1, Ordering::Relaxed);
        Tracked {
            value: ManuallyDrop::new(T::clone(&self.value)),
            id,
            dropped: AtomicBool::new(false),
            counters: self.counters,
        }
    }
}

impl<T> Drop for Tracked<T> {
    fn drop(&mut self) {
        if self.dropped.swap(true, Ordering::AcqRel) {
            // Second drop: the value was already released on the first drop.
            // Only the counters (owned by the registry) are touched, so the
            // detector itself releases nothing twice.
            self.counters().double_drop.store(true, Ordering::Relaxed);
            panic!("double drop of tracked payload #{}", self.id);
        }
        self.counters().dropped.fetch_add(1, Ordering::Relaxed);
        let prev = self.counters().live.fetch_sub(1, Ordering::Relaxed);
        let corrupt = prev <= 0;
        if corrupt {
            self.counters().double_drop.store(true, Ordering::Relaxed);
        }
        unsafe {
            ManuallyDrop::drop(&mut self.value);
        }
        if corrupt {
            panic!(
                "drop of tracked payload #{} with non-positive live count {prev}",
                self.id
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_create_and_drop() {
        let r = DropRegistry::new();
        let a = r.track(1);
        let b = r.track(2);
        assert_eq!(r.created(), 2);
        assert_eq!(r.live(), 2);
        drop(a);
        assert_eq!(r.dropped(), 1);
        assert_eq!(r.live(), 1);
        drop(b);
        r.assert_quiescent();
    }

    #[test]
    fn deref_and_id() {
        let r = DropRegistry::new();
        let t = r.track(String::from("x"));
        assert_eq!(&*t, "x");
        assert_eq!(t.id(), 0);
        let u = r.track(String::from("y"));
        assert_eq!(u.id(), 1);
    }

    #[test]
    #[should_panic(expected = "leak")]
    fn leak_is_detected() {
        let r = DropRegistry::new();
        std::mem::forget(r.track(5));
        r.assert_quiescent();
    }

    #[test]
    fn double_drop_is_detected() {
        let r = DropRegistry::new();
        let t = r.track(7u8);
        // Simulate the reclamation bug: drop the same node twice in place.
        let mut slot = std::mem::ManuallyDrop::new(t);
        unsafe { std::mem::ManuallyDrop::drop(&mut slot) };
        let second = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unsafe {
            std::mem::ManuallyDrop::drop(&mut slot);
        }));
        assert!(second.is_err(), "second drop must panic");
        assert!(r.double_drop_detected());
    }

    #[test]
    fn concurrent_tracking_is_consistent() {
        let r = DropRegistry::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let r = r.clone();
                s.spawn(move || {
                    for i in 0..1000 {
                        let t = r.track(i);
                        drop(t);
                    }
                });
            }
        });
        assert_eq!(r.created(), 4000);
        r.assert_quiescent();
    }
}
