//! Provenance-checked map values.
//!
//! When a benchmark or test stores arbitrary integers in a concurrent map, a
//! read through freed-and-reused memory can return a stale value that is
//! indistinguishable from a legitimate one. A [`TokenMint`] closes that hole:
//! every value stored is a *token* that structurally encodes the key it was
//! minted for plus a per-mint nonce, and carries a parity seal. On every read,
//! [`TokenMint::validate`] checks that the token (a) is sealed correctly and
//! (b) was minted for the key it was found under. Reads of reused memory
//! surface as cross-key tokens or unsealed bit patterns.

use std::sync::atomic::{AtomicU64, Ordering};

/// Bits of the token reserved for the key.
const KEY_BITS: u32 = 24;
/// Bits reserved for the nonce.
const NONCE_BITS: u32 = 32;
/// Shift of the seal field.
const SEAL_SHIFT: u32 = KEY_BITS + NONCE_BITS;

/// The error returned for a token that fails validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenViolation {
    /// The token's parity seal is wrong: the bits were never produced by
    /// [`TokenMint::mint`] (garbage from corrupted or reused memory).
    BadSeal {
        /// The offending token.
        token: u64,
    },
    /// The token is sealed but was minted for a different key: a read
    /// returned another key's value (misplaced node or reused memory).
    WrongKey {
        /// The offending token.
        token: u64,
        /// The key the token was found under.
        found_under: u64,
        /// The key the token encodes.
        minted_for: u64,
    },
}

impl std::fmt::Display for TokenViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TokenViolation::BadSeal { token } => {
                write!(f, "token {token:#x} has a bad seal (memory corruption)")
            }
            TokenViolation::WrongKey {
                token,
                found_under,
                minted_for,
            } => write!(
                f,
                "token {token:#x} found under key {found_under} was minted for key {minted_for}"
            ),
        }
    }
}

impl std::error::Error for TokenViolation {}

/// A mint of provenance-checked values.
///
/// # Example
///
/// ```
/// use smr_testkit::TokenMint;
///
/// let mint = TokenMint::new();
/// let token = mint.mint(5);
/// mint.validate(5, token).unwrap();
/// assert!(mint.validate(6, token).is_err());
/// ```
#[derive(Debug, Default)]
pub struct TokenMint {
    nonce: AtomicU64,
}

impl TokenMint {
    /// A fresh mint.
    pub fn new() -> Self {
        Self::default()
    }

    /// Largest key encodable in a token.
    pub const MAX_KEY: u64 = (1 << KEY_BITS) - 1;

    fn seal(body: u64) -> u64 {
        // An 8-bit mix of the body placed in the top byte; cheap and enough
        // to make random bit patterns fail with probability 255/256.
        let x = body.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (x >> 56) ^ (x >> 24 & 0xff)
    }

    /// Mints a fresh token for `key`.
    ///
    /// # Panics
    ///
    /// Panics if `key` exceeds [`TokenMint::MAX_KEY`].
    pub fn mint(&self, key: u64) -> u64 {
        assert!(key <= Self::MAX_KEY, "key {key} exceeds token capacity");
        let nonce = self.nonce.fetch_add(1, Ordering::Relaxed) & ((1 << NONCE_BITS) - 1);
        let body = key | (nonce << KEY_BITS);
        body | (Self::seal(body) << SEAL_SHIFT)
    }

    /// The key a token encodes (without validating the seal).
    pub fn key_of(token: u64) -> u64 {
        token & Self::MAX_KEY
    }

    /// Validates that `token` is sealed and was minted for `key`.
    ///
    /// # Errors
    ///
    /// Returns [`TokenViolation::BadSeal`] for bit patterns never produced by
    /// this mint's `mint`, and [`TokenViolation::WrongKey`] for tokens minted
    /// under a different key.
    pub fn validate(&self, key: u64, token: u64) -> Result<(), TokenViolation> {
        let body = token & ((1u64 << SEAL_SHIFT) - 1);
        let seal = token >> SEAL_SHIFT;
        if seal != Self::seal(body) {
            return Err(TokenViolation::BadSeal { token });
        }
        let minted_for = Self::key_of(token);
        if minted_for != key {
            return Err(TokenViolation::WrongKey {
                token,
                found_under: key,
                minted_for,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mint_validate_roundtrip() {
        let mint = TokenMint::new();
        for key in [0, 1, 1000, TokenMint::MAX_KEY] {
            let t = mint.mint(key);
            mint.validate(key, t).unwrap();
            assert_eq!(TokenMint::key_of(t), key);
        }
    }

    #[test]
    fn tokens_are_unique_per_mint() {
        let mint = TokenMint::new();
        let a = mint.mint(3);
        let b = mint.mint(3);
        assert_ne!(a, b, "nonce must distinguish repeated mints");
    }

    #[test]
    fn wrong_key_is_flagged() {
        let mint = TokenMint::new();
        let t = mint.mint(10);
        match mint.validate(11, t) {
            Err(TokenViolation::WrongKey {
                found_under,
                minted_for,
                ..
            }) => {
                assert_eq!(found_under, 11);
                assert_eq!(minted_for, 10);
            }
            other => panic!("expected WrongKey, got {other:?}"),
        }
    }

    #[test]
    fn garbage_fails_the_seal() {
        let mint = TokenMint::new();
        let mut hits = 0;
        for garbage in [0u64, u64::MAX, 0xDEAD_DEAD_DEAD_DEAD, 12345, 1 << 60] {
            if mint.validate(TokenMint::key_of(garbage), garbage).is_err() {
                hits += 1;
            }
        }
        assert!(hits >= 4, "seal must reject nearly all garbage: {hits}/5");
    }

    #[test]
    #[should_panic(expected = "exceeds token capacity")]
    fn oversized_key_panics() {
        TokenMint::new().mint(TokenMint::MAX_KEY + 1);
    }

    #[test]
    fn concurrent_mints_stay_unique() {
        let mint = TokenMint::new();
        let mut all = std::sync::Mutex::new(std::collections::HashSet::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let mut local = Vec::new();
                    for _ in 0..1000 {
                        local.push(mint.mint(1));
                    }
                    all.lock().unwrap().extend(local);
                });
            }
        });
        assert_eq!(all.get_mut().unwrap().len(), 4000);
    }
}
