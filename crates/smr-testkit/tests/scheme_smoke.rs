//! Smoke matrix: every exported SMR scheme must survive an
//! allocate/publish/retire churn under 4 threads with exact drop balance.
//!
//! This is the cheap gate that keeps a future scheme (or a refactor of an
//! existing one) from silently leaking, double-freeing, or deadlocking: each
//! cell runs the same generic workload with [`DropRegistry`]-tracked payloads
//! and asserts afterwards that every tracked allocation was dropped exactly
//! once (`Leaky` asserts the complement: nothing was ever freed).

use smr_core::{Atomic, Shared, ShardRouting, Smr, SmrConfig, SmrHandle};
use smr_testkit::drop_tracker::{DropRegistry, Tracked};
use std::sync::atomic::Ordering;

const THREADS: usize = 4;
const OPS_PER_THREAD: u64 = 500;

fn cfg() -> SmrConfig {
    SmrConfig {
        slots: 4,
        batch_min: 8,
        era_freq: 16,
        scan_threshold: 16,
        max_threads: 64,
        ..SmrConfig::default()
    }
}

fn sharded_cfg(shards: usize, routing: ShardRouting) -> SmrConfig {
    SmrConfig {
        // Per-shard slot budget stays ≥ 1 for every tested shard count.
        slots: 8.max(shards),
        shards,
        routing,
        ..cfg()
    }
}

/// Runs the churn and returns the registry for scheme-specific assertions.
///
/// Each thread alternates between private churn (alloc + immediate retire)
/// and publishing through a shared slot (alloc, swap in, retire whatever the
/// swap displaced) so retirement of nodes allocated by *other* threads is
/// exercised too. The final slot occupant is retired during teardown.
fn churn<S: Smr<Tracked<u64>>>() -> DropRegistry {
    churn_with::<S>(cfg())
}

fn churn_with<S: Smr<Tracked<u64>>>(config: SmrConfig) -> DropRegistry {
    let registry = DropRegistry::new();
    {
        let domain = S::with_config(config);
        let slot: Atomic<Tracked<u64>> = Atomic::null();
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let registry = &registry;
                let domain = &domain;
                let slot = &slot;
                scope.spawn(move || {
                    let mut h = domain.handle();
                    for i in 0..OPS_PER_THREAD {
                        h.enter();
                        let value = registry.track(t as u64 * OPS_PER_THREAD + i);
                        let node = h.alloc(value);
                        if i % 2 == 0 {
                            let prev = slot.swap(node, Ordering::AcqRel);
                            if !prev.is_null() {
                                unsafe { h.retire(prev) };
                            }
                        } else {
                            unsafe { h.retire(node) };
                        }
                        h.leave();
                    }
                    h.flush();
                });
            }
        });
        // Teardown: pull the last published node back out and retire it.
        let mut h = domain.handle();
        h.enter();
        let last = slot.swap(Shared::null(), Ordering::AcqRel);
        if !last.is_null() {
            unsafe { h.retire(last) };
        }
        h.leave();
        h.flush();
        let stats = domain.stats();
        // `>=` rather than `==`: Hyaline finalizes partial batches by
        // padding them with internal dummy nodes, which are accounted as
        // allocations too. The exact payload balance is asserted through
        // the DropRegistry below.
        assert!(
            stats.allocated() >= THREADS as u64 * OPS_PER_THREAD,
            "{}: allocation accounting is off ({} < {})",
            S::name(),
            stats.allocated(),
            THREADS as u64 * OPS_PER_THREAD
        );
        drop(h);
        // Domain drop reclaims whatever reservations no longer pin.
    }
    registry
}

/// Reclaiming schemes: exact drop balance once the domain is gone.
macro_rules! smoke {
    ($($test:ident => $scheme:ty),+ $(,)?) => {$(
        #[test]
        fn $test() {
            let registry = churn::<$scheme>();
            registry.assert_quiescent();
            assert_eq!(
                registry.created(),
                THREADS as u64 * OPS_PER_THREAD,
                "payload count mismatch"
            );
        }
    )+};
}

smoke! {
    smoke_hyaline => hyaline::Hyaline<Tracked<u64>>,
    smoke_hyaline1 => hyaline::Hyaline1<Tracked<u64>>,
    smoke_hyaline_s => hyaline::HyalineS<Tracked<u64>>,
    smoke_hyaline1_s => hyaline::Hyaline1S<Tracked<u64>>,
    smoke_ebr => smr_baselines::Ebr<Tracked<u64>>,
    smoke_hp => smr_baselines::Hp<Tracked<u64>>,
    smoke_he => smr_baselines::He<Tracked<u64>>,
    smoke_ibr => smr_baselines::Ibr<Tracked<u64>>,
    smoke_lfrc => smr_baselines::Lfrc<Tracked<u64>>,
    smoke_crystalline_l => crystalline::CrystallineL<Tracked<u64>>,
    smoke_crystalline_w => crystalline::CrystallineW<Tracked<u64>>,
}

/// Crystalline with `handoff_attempts: 0`: every retire is forced through
/// the per-slot handoff cell — the wait-free path the scheme exists for.
/// Exact drop balance must survive pure handoff traffic too.
#[test]
fn smoke_crystalline_l_forced_handoff() {
    let registry = churn_with::<crystalline::CrystallineL<Tracked<u64>>>(SmrConfig {
        handoff_attempts: 0,
        ..cfg()
    });
    registry.assert_quiescent();
    assert_eq!(registry.created(), THREADS as u64 * OPS_PER_THREAD);
}

/// `Leaky` is the deliberate exception: retirement must never free anything,
/// so every payload stays live (the complement of `assert_quiescent`).
#[test]
fn smoke_leaky_leaks_everything() {
    let registry = churn::<smr_baselines::Leaky<Tracked<u64>>>();
    assert_eq!(registry.dropped(), 0, "Leaky must never drop a payload");
    assert_eq!(registry.live(), (THREADS as u64 * OPS_PER_THREAD) as i64);
}

/// The sharded churn: one shared slot **per shard**, and every operation
/// pins its shard before touching that shard's slot — the key-partition
/// discipline a `ByKey`-routed structure (the hash map) follows. Nodes are
/// allocated, published, displaced and retired strictly within one shard,
/// while the four threads keep rotating across all of them.
fn sharded_churn<S: Smr<Tracked<u64>>>(shards: usize) -> DropRegistry {
    let registry = DropRegistry::new();
    {
        let domain: smr_core::Sharded<S> =
            Smr::<Tracked<u64>>::with_config(sharded_cfg(shards, ShardRouting::ByKey));
        assert_eq!(domain.shard_count(), shards);
        let slots: Vec<Atomic<Tracked<u64>>> = (0..shards).map(|_| Atomic::null()).collect();
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let registry = &registry;
                let domain = &domain;
                let slots = &slots;
                scope.spawn(move || {
                    let mut h = domain.handle();
                    for i in 0..OPS_PER_THREAD {
                        let shard = (t as u64 + i) % shards as u64;
                        h.enter();
                        h.pin_shard(shard);
                        let value = registry.track(t as u64 * OPS_PER_THREAD + i);
                        let node = h.alloc(value);
                        if i % 2 == 0 {
                            let prev = slots[shard as usize].swap(node, Ordering::AcqRel);
                            if !prev.is_null() {
                                unsafe { h.retire(prev) };
                            }
                        } else {
                            unsafe { h.retire(node) };
                        }
                        h.leave();
                    }
                    h.flush();
                });
            }
        });
        let mut h = domain.handle();
        for (shard, slot) in slots.iter().enumerate() {
            h.enter();
            h.pin_shard(shard as u64);
            let last = slot.swap(Shared::null(), Ordering::AcqRel);
            if !last.is_null() {
                unsafe { h.retire(last) };
            }
            h.leave();
        }
        h.flush();
        // Every shard must have seen real traffic (the rotation covers all).
        for i in 0..shards {
            assert!(
                domain.shard(i).stats().retired() > 0,
                "{}: shard {i} received no retire traffic",
                S::name()
            );
        }
        drop(h);
    }
    registry
}

/// `Sharded<S>` entries of the matrix: every shard count gets the same
/// 4-thread churn + exact drop balance as the plain schemes.
macro_rules! sharded_smoke {
    ($($test:ident => $scheme:ty : $shards:expr),+ $(,)?) => {$(
        #[test]
        fn $test() {
            let registry = sharded_churn::<$scheme>($shards);
            registry.assert_quiescent();
            assert_eq!(
                registry.created(),
                THREADS as u64 * OPS_PER_THREAD,
                "payload count mismatch"
            );
        }
    )+};
}

sharded_smoke! {
    smoke_sharded_hyaline_x2 => hyaline::Hyaline<Tracked<u64>> : 2,
    smoke_sharded_hyaline_x4 => hyaline::Hyaline<Tracked<u64>> : 4,
    smoke_sharded_hyaline_x8 => hyaline::Hyaline<Tracked<u64>> : 8,
    smoke_sharded_hyaline_s_x2 => hyaline::HyalineS<Tracked<u64>> : 2,
    smoke_sharded_hyaline_s_x4 => hyaline::HyalineS<Tracked<u64>> : 4,
    smoke_sharded_hyaline_s_x8 => hyaline::HyalineS<Tracked<u64>> : 8,
    smoke_sharded_epoch_x4 => smr_baselines::Ebr<Tracked<u64>> : 4,
}

/// `ByPointer` routing needs no pin discipline: the plain churn (a single
/// shared slot swapped across shards) is exactly the pattern it must
/// survive — `enter` covers every shard and each retire routes by the
/// node's address.
#[test]
fn smoke_sharded_hyaline_by_pointer() {
    let registry = churn_with::<smr_core::Sharded<hyaline::Hyaline<Tracked<u64>>>>(sharded_cfg(
        4,
        ShardRouting::ByPointer,
    ));
    registry.assert_quiescent();
    assert_eq!(registry.created(), THREADS as u64 * OPS_PER_THREAD);
}
