//! Smoke matrix: every exported SMR scheme must survive an
//! allocate/publish/retire churn under 4 threads with exact drop balance.
//!
//! This is the cheap gate that keeps a future scheme (or a refactor of an
//! existing one) from silently leaking, double-freeing, or deadlocking: each
//! cell runs the same generic workload with [`DropRegistry`]-tracked payloads
//! and asserts afterwards that every tracked allocation was dropped exactly
//! once (`Leaky` asserts the complement: nothing was ever freed).

use smr_core::{Atomic, Shared, ShardRouting, Smr, SmrConfig, SmrHandle};
use smr_testkit::drop_tracker::{DropRegistry, Tracked};
use std::sync::atomic::Ordering;

const THREADS: usize = 4;
const OPS_PER_THREAD: u64 = 500;

fn cfg() -> SmrConfig {
    SmrConfig {
        slots: 4,
        batch_min: 8,
        era_freq: 16,
        scan_threshold: 16,
        max_threads: 64,
        ..SmrConfig::default()
    }
}

/// Recycling enabled with a small pool and magazine, so the churn exercises
/// magazine spill/refill and the capacity-overflow fallback, not just the
/// happy path of an effectively unbounded pool.
fn recycle_cfg() -> SmrConfig {
    SmrConfig {
        recycle: true,
        recycle_capacity: 256,
        recycle_magazine: 8,
        ..cfg()
    }
}

fn sharded_cfg(shards: usize, routing: ShardRouting) -> SmrConfig {
    SmrConfig {
        // Per-shard slot budget stays ≥ 1 for every tested shard count.
        slots: 8.max(shards),
        shards,
        routing,
        ..cfg()
    }
}

/// Runs the churn and returns the registry for scheme-specific assertions.
///
/// Each thread alternates between private churn (alloc + immediate retire)
/// and publishing through a shared slot (alloc, swap in, retire whatever the
/// swap displaced) so retirement of nodes allocated by *other* threads is
/// exercised too. The final slot occupant is retired during teardown.
fn churn<S: Smr<Tracked<u64>>>() -> DropRegistry {
    churn_with::<S>(cfg())
}

fn churn_with<S: Smr<Tracked<u64>>>(config: SmrConfig) -> DropRegistry {
    let registry = DropRegistry::new();
    {
        let domain = S::with_config(config);
        let slot: Atomic<Tracked<u64>> = Atomic::null();
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let registry = &registry;
                let domain = &domain;
                let slot = &slot;
                scope.spawn(move || {
                    let mut h = domain.handle();
                    for i in 0..OPS_PER_THREAD {
                        h.enter();
                        let value = registry.track(t as u64 * OPS_PER_THREAD + i);
                        let node = h.alloc(value);
                        if i % 2 == 0 {
                            let prev = slot.swap(node, Ordering::AcqRel);
                            if !prev.is_null() {
                                unsafe { h.retire(prev) };
                            }
                        } else {
                            unsafe { h.retire(node) };
                        }
                        h.leave();
                    }
                    h.flush();
                });
            }
        });
        // Teardown: pull the last published node back out and retire it.
        let mut h = domain.handle();
        h.enter();
        let last = slot.swap(Shared::null(), Ordering::AcqRel);
        if !last.is_null() {
            unsafe { h.retire(last) };
        }
        h.leave();
        h.flush();
        let stats = domain.stats();
        // `>=` rather than `==`: Hyaline finalizes partial batches by
        // padding them with internal dummy nodes, which are accounted as
        // allocations too. The exact payload balance is asserted through
        // the DropRegistry below.
        assert!(
            stats.allocated() >= THREADS as u64 * OPS_PER_THREAD,
            "{}: allocation accounting is off ({} < {})",
            S::name(),
            stats.allocated(),
            THREADS as u64 * OPS_PER_THREAD
        );
        drop(h);
        // Domain drop reclaims whatever reservations no longer pin.
    }
    registry
}

/// Reclaiming schemes: exact drop balance once the domain is gone.
macro_rules! smoke {
    ($($test:ident => $scheme:ty),+ $(,)?) => {$(
        #[test]
        fn $test() {
            let registry = churn::<$scheme>();
            registry.assert_quiescent();
            assert_eq!(
                registry.created(),
                THREADS as u64 * OPS_PER_THREAD,
                "payload count mismatch"
            );
        }
    )+};
}

smoke! {
    smoke_hyaline => hyaline::Hyaline<Tracked<u64>>,
    smoke_hyaline1 => hyaline::Hyaline1<Tracked<u64>>,
    smoke_hyaline_s => hyaline::HyalineS<Tracked<u64>>,
    smoke_hyaline1_s => hyaline::Hyaline1S<Tracked<u64>>,
    smoke_ebr => smr_baselines::Ebr<Tracked<u64>>,
    smoke_hp => smr_baselines::Hp<Tracked<u64>>,
    smoke_he => smr_baselines::He<Tracked<u64>>,
    smoke_ibr => smr_baselines::Ibr<Tracked<u64>>,
    smoke_lfrc => smr_baselines::Lfrc<Tracked<u64>>,
    smoke_crystalline_l => crystalline::CrystallineL<Tracked<u64>>,
    smoke_crystalline_w => crystalline::CrystallineW<Tracked<u64>>,
}

/// The reclaiming matrix again with node recycling enabled: reusing node
/// memory must not change payload semantics — every tracked payload still
/// drops exactly once even though the backing allocations cycle through the
/// pool and are handed out again (possibly on another thread).
macro_rules! recycle_smoke {
    ($($test:ident => $scheme:ty),+ $(,)?) => {$(
        #[test]
        fn $test() {
            let registry = churn_with::<$scheme>(recycle_cfg());
            registry.assert_quiescent();
            assert_eq!(
                registry.created(),
                THREADS as u64 * OPS_PER_THREAD,
                "payload count mismatch"
            );
        }
    )+};
}

recycle_smoke! {
    recycle_smoke_hyaline => hyaline::Hyaline<Tracked<u64>>,
    recycle_smoke_hyaline1 => hyaline::Hyaline1<Tracked<u64>>,
    recycle_smoke_hyaline_s => hyaline::HyalineS<Tracked<u64>>,
    recycle_smoke_hyaline1_s => hyaline::Hyaline1S<Tracked<u64>>,
    recycle_smoke_ebr => smr_baselines::Ebr<Tracked<u64>>,
    recycle_smoke_hp => smr_baselines::Hp<Tracked<u64>>,
    recycle_smoke_he => smr_baselines::He<Tracked<u64>>,
    recycle_smoke_ibr => smr_baselines::Ibr<Tracked<u64>>,
    recycle_smoke_crystalline_l => crystalline::CrystallineL<Tracked<u64>>,
    recycle_smoke_crystalline_w => crystalline::CrystallineW<Tracked<u64>>,
}

/// Recycling across shards: each inner domain owns its own pool, and
/// `ByPointer` routing retires nodes into shards other than the one that
/// allocated them — recycled memory must still balance exactly.
#[test]
fn recycle_smoke_sharded_hyaline_by_pointer() {
    let registry = churn_with::<smr_core::Sharded<hyaline::Hyaline<Tracked<u64>>>>(SmrConfig {
        recycle: true,
        recycle_capacity: 256,
        recycle_magazine: 8,
        ..sharded_cfg(4, ShardRouting::ByPointer)
    });
    registry.assert_quiescent();
    assert_eq!(registry.created(), THREADS as u64 * OPS_PER_THREAD);
}

/// Crystalline with `handoff_attempts: 0`: every retire is forced through
/// the per-slot handoff cell — the wait-free path the scheme exists for.
/// Exact drop balance must survive pure handoff traffic too.
#[test]
fn smoke_crystalline_l_forced_handoff() {
    let registry = churn_with::<crystalline::CrystallineL<Tracked<u64>>>(SmrConfig {
        handoff_attempts: 0,
        ..cfg()
    });
    registry.assert_quiescent();
    assert_eq!(registry.created(), THREADS as u64 * OPS_PER_THREAD);
}

/// `Leaky` is the deliberate exception: retirement must never free anything,
/// so every payload stays live (the complement of `assert_quiescent`).
#[test]
fn smoke_leaky_leaks_everything() {
    let registry = churn::<smr_baselines::Leaky<Tracked<u64>>>();
    assert_eq!(registry.dropped(), 0, "Leaky must never drop a payload");
    assert_eq!(registry.live(), (THREADS as u64 * OPS_PER_THREAD) as i64);
}

/// The sharded churn: one shared slot **per shard**, and every operation
/// pins its shard before touching that shard's slot — the key-partition
/// discipline a `ByKey`-routed structure (the hash map) follows. Nodes are
/// allocated, published, displaced and retired strictly within one shard,
/// while the four threads keep rotating across all of them.
fn sharded_churn<S: Smr<Tracked<u64>>>(shards: usize) -> DropRegistry {
    let registry = DropRegistry::new();
    {
        let domain: smr_core::Sharded<S> =
            Smr::<Tracked<u64>>::with_config(sharded_cfg(shards, ShardRouting::ByKey));
        assert_eq!(domain.shard_count(), shards);
        let slots: Vec<Atomic<Tracked<u64>>> = (0..shards).map(|_| Atomic::null()).collect();
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let registry = &registry;
                let domain = &domain;
                let slots = &slots;
                scope.spawn(move || {
                    let mut h = domain.handle();
                    for i in 0..OPS_PER_THREAD {
                        let shard = (t as u64 + i) % shards as u64;
                        h.enter();
                        h.pin_shard(shard);
                        let value = registry.track(t as u64 * OPS_PER_THREAD + i);
                        let node = h.alloc(value);
                        if i % 2 == 0 {
                            let prev = slots[shard as usize].swap(node, Ordering::AcqRel);
                            if !prev.is_null() {
                                unsafe { h.retire(prev) };
                            }
                        } else {
                            unsafe { h.retire(node) };
                        }
                        h.leave();
                    }
                    h.flush();
                });
            }
        });
        let mut h = domain.handle();
        for (shard, slot) in slots.iter().enumerate() {
            h.enter();
            h.pin_shard(shard as u64);
            let last = slot.swap(Shared::null(), Ordering::AcqRel);
            if !last.is_null() {
                unsafe { h.retire(last) };
            }
            h.leave();
        }
        h.flush();
        // Every shard must have seen real traffic (the rotation covers all).
        for i in 0..shards {
            assert!(
                domain.shard(i).stats().retired() > 0,
                "{}: shard {i} received no retire traffic",
                S::name()
            );
        }
        drop(h);
    }
    registry
}

/// `Sharded<S>` entries of the matrix: every shard count gets the same
/// 4-thread churn + exact drop balance as the plain schemes.
macro_rules! sharded_smoke {
    ($($test:ident => $scheme:ty : $shards:expr),+ $(,)?) => {$(
        #[test]
        fn $test() {
            let registry = sharded_churn::<$scheme>($shards);
            registry.assert_quiescent();
            assert_eq!(
                registry.created(),
                THREADS as u64 * OPS_PER_THREAD,
                "payload count mismatch"
            );
        }
    )+};
}

sharded_smoke! {
    smoke_sharded_hyaline_x2 => hyaline::Hyaline<Tracked<u64>> : 2,
    smoke_sharded_hyaline_x4 => hyaline::Hyaline<Tracked<u64>> : 4,
    smoke_sharded_hyaline_x8 => hyaline::Hyaline<Tracked<u64>> : 8,
    smoke_sharded_hyaline_s_x2 => hyaline::HyalineS<Tracked<u64>> : 2,
    smoke_sharded_hyaline_s_x4 => hyaline::HyalineS<Tracked<u64>> : 4,
    smoke_sharded_hyaline_s_x8 => hyaline::HyalineS<Tracked<u64>> : 8,
    smoke_sharded_epoch_x4 => smr_baselines::Ebr<Tracked<u64>> : 4,
}

/// `ByPointer` routing needs no pin discipline: the plain churn (a single
/// shared slot swapped across shards) is exactly the pattern it must
/// survive — `enter` covers every shard and each retire routes by the
/// node's address.
#[test]
fn smoke_sharded_hyaline_by_pointer() {
    let registry = churn_with::<smr_core::Sharded<hyaline::Hyaline<Tracked<u64>>>>(sharded_cfg(
        4,
        ShardRouting::ByPointer,
    ));
    registry.assert_quiescent();
    assert_eq!(registry.created(), THREADS as u64 * OPS_PER_THREAD);
}

// ---------------------------------------------------------------------------
// Typed-layer structures: the same all-scheme matrix, but driven through the
// three structures built purely on `smr_core::typed` (skip list, bounded
// MPMC queue, snapshot cell). Exact drop balance catches a structure that
// leaks nodes, double-retires, or retires something still reachable.
// ---------------------------------------------------------------------------

use lockfree_ds::{BoundedMpmcQueue, SkipListMap, SnapshotCell};

const STRUCT_OPS: u64 = 300;
const STRUCT_TOTAL: u64 = THREADS as u64 * STRUCT_OPS;

/// Disjoint per-thread key ranges make the counts exact: every insert
/// succeeds (one tracked payload moved into a node) and every remove
/// succeeds (one tracked clone handed back out and dropped here).
fn skiplist_churn<S: Smr<lockfree_ds::SkipNode<u64, Tracked<u64>>>>(
    config: SmrConfig,
) -> DropRegistry {
    let registry = DropRegistry::new();
    {
        let map: SkipListMap<u64, Tracked<u64>, S> = SkipListMap::with_config(config);
        let (reg, map) = (&registry, &map);
        std::thread::scope(|scope| {
            for t in 0..THREADS as u64 {
                scope.spawn(move || {
                    let mut h = map.smr_handle();
                    let base = t * 10_000;
                    for i in 0..STRUCT_OPS {
                        h.enter();
                        assert!(map.insert(&mut h, base + i, reg.track(base + i)));
                        h.leave();
                    }
                    for i in 0..STRUCT_OPS {
                        h.enter();
                        let v = map.remove(&mut h, &(base + i)).expect("own key present");
                        assert_eq!(*v, base + i, "value under wrong key");
                        h.leave();
                    }
                    h.flush();
                });
            }
        });
    } // Map drop frees whatever retirement had not reclaimed yet.
    registry
}

/// Each thread enqueues one payload then drains one, so the queue ends
/// empty: every payload was cloned out by a dequeue exactly once.
fn mpmc_churn<S: Smr<lockfree_ds::QueueNode<Tracked<u64>>>>(config: SmrConfig) -> DropRegistry {
    let registry = DropRegistry::new();
    {
        let queue: BoundedMpmcQueue<Tracked<u64>, S> =
            BoundedMpmcQueue::with_config(config, 16);
        let (reg, queue) = (&registry, &queue);
        std::thread::scope(|scope| {
            for t in 0..THREADS as u64 {
                scope.spawn(move || {
                    let mut h = queue.smr_handle();
                    for i in 0..STRUCT_OPS {
                        let mut value = reg.track(t * STRUCT_OPS + i);
                        loop {
                            h.enter();
                            let r = queue.try_enqueue(&mut h, value);
                            h.leave();
                            match r {
                                Ok(()) => break,
                                Err(v) => value = v,
                            }
                            std::thread::yield_now();
                        }
                        loop {
                            h.enter();
                            let got = queue.dequeue(&mut h);
                            h.leave();
                            if got.is_some() {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                    h.flush();
                });
            }
        });
        assert!(queue.is_empty(), "every enqueue was matched by a dequeue");
    }
    registry
}

/// Store-churn on the snapshot cell: every store displaces (and retires)
/// exactly one snapshot; only the final one survives to the cell's drop.
fn snapshot_churn<S: Smr<Tracked<u64>>>(config: SmrConfig) -> DropRegistry {
    let registry = DropRegistry::new();
    {
        let cell: SnapshotCell<Tracked<u64>, S> =
            SnapshotCell::with_config(config, registry.track(u64::MAX));
        let (reg, cell) = (&registry, &cell);
        std::thread::scope(|scope| {
            for t in 0..THREADS as u64 {
                scope.spawn(move || {
                    let mut h = cell.smr_handle();
                    for i in 0..STRUCT_OPS {
                        h.enter();
                        cell.store(&mut h, reg.track(t * STRUCT_OPS + i));
                        // Observe without cloning: `with` borrows in place.
                        let seen = cell.with(&mut h, |v| **v);
                        assert!(seen == u64::MAX || seen < STRUCT_TOTAL);
                        h.leave();
                    }
                    h.flush();
                });
            }
        });
    } // Cell drop frees the final snapshot.
    registry
}

/// Reclaiming schemes × typed structures: exact drop balance plus the
/// structure-specific payload count.
macro_rules! typed_structure_smoke {
    ($($test:ident => $churn:ident, $scheme:ty, $created:expr),+ $(,)?) => {$(
        #[test]
        fn $test() {
            let registry = $churn::<$scheme>(cfg());
            registry.assert_quiescent();
            assert_eq!(registry.created(), $created, "payload count mismatch");
        }
    )+};
}

/// Like [`typed_structure_smoke!`], but for structures whose operations can
/// clone payloads on *lost* races: the MPMC queue's dequeue must clone the
/// value before its head-CAS (the node may be retired the instant the CAS
/// succeeds elsewhere), so a lost race creates-and-drops an extra tracked
/// clone. Quiescence stays exact; the created count is a lower bound.
macro_rules! typed_structure_smoke_racy_clones {
    ($($test:ident => $churn:ident, $scheme:ty, $created:expr),+ $(,)?) => {$(
        #[test]
        fn $test() {
            let registry = $churn::<$scheme>(cfg());
            registry.assert_quiescent();
            assert!(registry.created() >= $created, "payload count mismatch");
        }
    )+};
}

typed_structure_smoke! {
    // Skip list: one payload per insert + one clone per remove.
    skiplist_smoke_hyaline => skiplist_churn, hyaline::Hyaline<_>, 2 * STRUCT_TOTAL,
    skiplist_smoke_hyaline1 => skiplist_churn, hyaline::Hyaline1<_>, 2 * STRUCT_TOTAL,
    skiplist_smoke_hyaline_s => skiplist_churn, hyaline::HyalineS<_>, 2 * STRUCT_TOTAL,
    skiplist_smoke_hyaline1_s => skiplist_churn, hyaline::Hyaline1S<_>, 2 * STRUCT_TOTAL,
    skiplist_smoke_ebr => skiplist_churn, smr_baselines::Ebr<_>, 2 * STRUCT_TOTAL,
    skiplist_smoke_hp => skiplist_churn, smr_baselines::Hp<_>, 2 * STRUCT_TOTAL,
    skiplist_smoke_he => skiplist_churn, smr_baselines::He<_>, 2 * STRUCT_TOTAL,
    skiplist_smoke_ibr => skiplist_churn, smr_baselines::Ibr<_>, 2 * STRUCT_TOTAL,
    skiplist_smoke_lfrc => skiplist_churn, smr_baselines::Lfrc<_>, 2 * STRUCT_TOTAL,
    skiplist_smoke_crystalline_l => skiplist_churn, crystalline::CrystallineL<_>, 2 * STRUCT_TOTAL,
    skiplist_smoke_crystalline_w => skiplist_churn, crystalline::CrystallineW<_>, 2 * STRUCT_TOTAL,
    // Snapshot cell: one payload per store + the initial snapshot.
    snapshot_smoke_hyaline => snapshot_churn, hyaline::Hyaline<_>, STRUCT_TOTAL + 1,
    snapshot_smoke_hyaline1 => snapshot_churn, hyaline::Hyaline1<_>, STRUCT_TOTAL + 1,
    snapshot_smoke_hyaline_s => snapshot_churn, hyaline::HyalineS<_>, STRUCT_TOTAL + 1,
    snapshot_smoke_hyaline1_s => snapshot_churn, hyaline::Hyaline1S<_>, STRUCT_TOTAL + 1,
    snapshot_smoke_ebr => snapshot_churn, smr_baselines::Ebr<_>, STRUCT_TOTAL + 1,
    snapshot_smoke_hp => snapshot_churn, smr_baselines::Hp<_>, STRUCT_TOTAL + 1,
    snapshot_smoke_he => snapshot_churn, smr_baselines::He<_>, STRUCT_TOTAL + 1,
    snapshot_smoke_ibr => snapshot_churn, smr_baselines::Ibr<_>, STRUCT_TOTAL + 1,
    snapshot_smoke_lfrc => snapshot_churn, smr_baselines::Lfrc<_>, STRUCT_TOTAL + 1,
    snapshot_smoke_crystalline_l => snapshot_churn, crystalline::CrystallineL<_>, STRUCT_TOTAL + 1,
    snapshot_smoke_crystalline_w => snapshot_churn, crystalline::CrystallineW<_>, STRUCT_TOTAL + 1,
}

typed_structure_smoke_racy_clones! {
    // MPMC queue: one payload per enqueue + one clone per *successful*
    // dequeue, plus a clone per lost dequeue race (see the macro docs).
    mpmc_smoke_hyaline => mpmc_churn, hyaline::Hyaline<_>, 2 * STRUCT_TOTAL,
    mpmc_smoke_hyaline1 => mpmc_churn, hyaline::Hyaline1<_>, 2 * STRUCT_TOTAL,
    mpmc_smoke_hyaline_s => mpmc_churn, hyaline::HyalineS<_>, 2 * STRUCT_TOTAL,
    mpmc_smoke_hyaline1_s => mpmc_churn, hyaline::Hyaline1S<_>, 2 * STRUCT_TOTAL,
    mpmc_smoke_ebr => mpmc_churn, smr_baselines::Ebr<_>, 2 * STRUCT_TOTAL,
    mpmc_smoke_hp => mpmc_churn, smr_baselines::Hp<_>, 2 * STRUCT_TOTAL,
    mpmc_smoke_he => mpmc_churn, smr_baselines::He<_>, 2 * STRUCT_TOTAL,
    mpmc_smoke_ibr => mpmc_churn, smr_baselines::Ibr<_>, 2 * STRUCT_TOTAL,
    mpmc_smoke_lfrc => mpmc_churn, smr_baselines::Lfrc<_>, 2 * STRUCT_TOTAL,
    mpmc_smoke_crystalline_l => mpmc_churn, crystalline::CrystallineL<_>, 2 * STRUCT_TOTAL,
    mpmc_smoke_crystalline_w => mpmc_churn, crystalline::CrystallineW<_>, 2 * STRUCT_TOTAL,
}

/// Crystalline-L with every retire forced through the handoff cell, per
/// structure: the wait-free path must preserve exact balance under real
/// structure traffic, not just the raw churn above.
#[test]
fn skiplist_smoke_crystalline_l_forced_handoff() {
    let registry = skiplist_churn::<crystalline::CrystallineL<_>>(SmrConfig {
        handoff_attempts: 0,
        ..cfg()
    });
    registry.assert_quiescent();
    assert_eq!(registry.created(), 2 * STRUCT_TOTAL);
}

#[test]
fn mpmc_smoke_crystalline_l_forced_handoff() {
    let registry = mpmc_churn::<crystalline::CrystallineL<_>>(SmrConfig {
        handoff_attempts: 0,
        ..cfg()
    });
    registry.assert_quiescent();
    // Lower bound: lost dequeue races add extra (immediately dropped)
    // clones — see `typed_structure_smoke_racy_clones!`.
    assert!(registry.created() >= 2 * STRUCT_TOTAL);
}

#[test]
fn snapshot_smoke_crystalline_l_forced_handoff() {
    let registry = snapshot_churn::<crystalline::CrystallineL<_>>(SmrConfig {
        handoff_attempts: 0,
        ..cfg()
    });
    registry.assert_quiescent();
    assert_eq!(registry.created(), STRUCT_TOTAL + 1);
}

/// Typed structures with node recycling: real structure traffic (towers,
/// queue links, snapshots) over pooled node memory, exact balance intact.
#[test]
fn skiplist_smoke_hyaline_recycled() {
    let registry = skiplist_churn::<hyaline::Hyaline<_>>(recycle_cfg());
    registry.assert_quiescent();
    assert_eq!(registry.created(), 2 * STRUCT_TOTAL);
}

#[test]
fn skiplist_smoke_crystalline_l_recycled() {
    let registry = skiplist_churn::<crystalline::CrystallineL<_>>(recycle_cfg());
    registry.assert_quiescent();
    assert_eq!(registry.created(), 2 * STRUCT_TOTAL);
}

#[test]
fn mpmc_smoke_hyaline_recycled() {
    let registry = mpmc_churn::<hyaline::Hyaline<_>>(recycle_cfg());
    registry.assert_quiescent();
    // Lower bound: lost dequeue races add extra (immediately dropped)
    // clones — see `typed_structure_smoke_racy_clones!`.
    assert!(registry.created() >= 2 * STRUCT_TOTAL);
}

#[test]
fn snapshot_smoke_ebr_recycled() {
    let registry = snapshot_churn::<smr_baselines::Ebr<_>>(recycle_cfg());
    registry.assert_quiescent();
    assert_eq!(registry.created(), STRUCT_TOTAL + 1);
}

/// `Leaky` complements: nothing a structure retires is ever freed, so the
/// survivors are exactly the payloads that went *into* nodes — only clones
/// handed back out (and payloads freed by direct teardown `dealloc`, which
/// bypasses retirement) ever drop.
#[test]
fn skiplist_smoke_leaky() {
    let registry = skiplist_churn::<smr_baselines::Leaky<_>>(cfg());
    // Removed nodes leak, so every inserted payload stays live; the
    // remove-clones dropped in the churn are the only drops.
    assert_eq!(registry.created(), 2 * STRUCT_TOTAL);
    assert_eq!(registry.dropped(), STRUCT_TOTAL);
    assert_eq!(registry.live(), STRUCT_TOTAL as i64);
}

#[test]
fn mpmc_smoke_leaky() {
    let registry = mpmc_churn::<smr_baselines::Leaky<_>>(cfg());
    // Dequeue clones drop in the churn; dequeued nodes leak with their
    // payloads except the last one, which survives as the queue's sentinel
    // and is freed by the queue's own teardown. Lost dequeue races add
    // extra clones to `created` and `dropped` in lockstep (they drop
    // immediately), so only `live` is exact.
    let extra = registry.created() - 2 * STRUCT_TOTAL;
    assert_eq!(registry.dropped(), STRUCT_TOTAL + 1 + extra);
    assert_eq!(registry.live(), STRUCT_TOTAL as i64 - 1);
}

#[test]
fn snapshot_smoke_leaky() {
    let registry = snapshot_churn::<smr_baselines::Leaky<_>>(cfg());
    // Every displaced snapshot leaks; only the final one is freed by the
    // cell's teardown.
    assert_eq!(registry.created(), STRUCT_TOTAL + 1);
    assert_eq!(registry.dropped(), 1);
    assert_eq!(registry.live(), STRUCT_TOTAL as i64);
}
