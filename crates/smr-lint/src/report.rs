//! Human-readable lint reports (terminal output and the CI artifact).

use std::fmt::Write as _;

use crate::baseline::{RatchetReport, Verdict};
use crate::rules::{FileAnalysis, OrderingInventory, Rule};
use crate::scan::Scan;

/// Renders the full report: ratchet verdicts, violation sites, and the
/// memory-ordering inventory. With `list_accepted`, every violation site is
/// listed (the CI-artifact mode); otherwise only files with regressions
/// have their sites printed, keeping local output focused on what changed.
pub fn render(scan: &Scan, ratchet: &RatchetReport, list_accepted: bool) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "smr-lint: scanned {} files", scan.files.len());

    let mut inventory = OrderingInventory::default();
    let mut unsafe_sites = 0usize;
    for (_, analysis) in &scan.files {
        inventory.relaxed += analysis.orderings.relaxed;
        inventory.acquire += analysis.orderings.acquire;
        inventory.release += analysis.orderings.release;
        inventory.acq_rel += analysis.orderings.acq_rel;
        inventory.seq_cst += analysis.orderings.seq_cst;
        unsafe_sites += analysis.unsafe_sites;
    }
    let _ = writeln!(
        s,
        "  unsafe sites: {unsafe_sites} | ordering sites: {} \
         (Relaxed {}, Acquire {}, Release {}, AcqRel {}, SeqCst {})",
        inventory.total(),
        inventory.relaxed,
        inventory.acquire,
        inventory.release,
        inventory.acq_rel,
        inventory.seq_cst,
    );

    let total_found: u64 = ratchet.entries.iter().map(|e| e.found).sum();
    let accepted: u64 = ratchet.entries.iter().map(|e| e.accepted).sum();
    let _ = writeln!(
        s,
        "  violations: {total_found} found, {accepted} accepted by baseline"
    );

    let regressions: Vec<_> = ratchet.with_verdict(Verdict::Regressed).collect();
    let stale: Vec<_> = ratchet.with_verdict(Verdict::Stale).collect();

    if !regressions.is_empty() {
        s.push_str("\nREGRESSIONS (above the ratchet):\n");
        for entry in &regressions {
            let _ = writeln!(
                s,
                "  {} [{}]: {} found, {} accepted (+{})",
                entry.file,
                entry.rule.as_str(),
                entry.found,
                entry.accepted,
                entry.found - entry.accepted
            );
            if let Some(analysis) = scan.analysis(&entry.file) {
                push_sites(&mut s, &entry.file, analysis, entry.rule);
            }
        }
    }

    if !stale.is_empty() {
        s.push_str("\nSTALE baseline entries (debt shrank — tighten the ratchet):\n");
        for entry in &stale {
            let _ = writeln!(
                s,
                "  {} [{}]: {} found, {} accepted",
                entry.file,
                entry.rule.as_str(),
                entry.found,
                entry.accepted
            );
        }
        s.push_str("  run `cargo run -p smr-lint -- --update-baseline` and commit.\n");
    }

    if list_accepted {
        s.push_str("\nAll violation sites:\n");
        let mut any = false;
        for (path, analysis) in &scan.files {
            if analysis.violations.is_empty() {
                continue;
            }
            any = true;
            for rule in Rule::ALL {
                if analysis.count(rule) > 0 {
                    push_sites(&mut s, path, analysis, rule);
                }
            }
        }
        if !any {
            s.push_str("  (none)\n");
        }
    }
    s
}

fn push_sites(s: &mut String, path: &str, analysis: &FileAnalysis, rule: Rule) {
    for v in analysis.violations.iter().filter(|v| v.rule == rule) {
        let _ = writeln!(s, "    {path}:{}: {}", v.line, v.message);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::Baseline;
    use crate::scan::Scan;

    fn scan_of(entries: &[(&str, &str)]) -> Scan {
        Scan::from_sources(entries.iter().map(|&(p, s)| (p.to_string(), s.to_string())))
    }

    #[test]
    fn report_lists_regressions_with_sites() {
        let scan = scan_of(&[(
            "crates/a/src/lib.rs",
            "fn f(p: *mut u8) { unsafe { *p = 1 } }\n",
        )]);
        let ratchet = scan.ratchet(&Baseline::default());
        let text = render(&scan, &ratchet, false);
        assert!(text.contains("REGRESSIONS"));
        assert!(text.contains("crates/a/src/lib.rs:1:"));
        assert!(text.contains("unsafe` block without"));
    }

    #[test]
    fn clean_scan_reports_no_sections() {
        let scan = scan_of(&[("crates/a/src/lib.rs", "fn f() {}\n")]);
        let ratchet = scan.ratchet(&Baseline::default());
        let text = render(&scan, &ratchet, false);
        assert!(!text.contains("REGRESSIONS"));
        assert!(!text.contains("STALE"));
        assert!(text.contains("violations: 0 found"));
    }

    #[test]
    fn stale_entries_point_at_update_baseline() {
        let dirty = scan_of(&[(
            "crates/a/src/lib.rs",
            "fn f(p: *mut u8) { unsafe { *p = 1 } }\n",
        )]);
        let baseline = dirty.to_baseline();
        let clean = scan_of(&[("crates/a/src/lib.rs", "fn f() {}\n")]);
        let text = render(&clean, &clean.ratchet(&baseline), false);
        assert!(text.contains("STALE"));
        assert!(text.contains("--update-baseline"));
    }

    #[test]
    fn list_mode_includes_accepted_sites() {
        let scan = scan_of(&[(
            "crates/a/src/lib.rs",
            "fn f(p: *mut u8) { unsafe { *p = 1 } }\n",
        )]);
        let baseline = scan.to_baseline();
        let ratchet = scan.ratchet(&baseline);
        let quiet = render(&scan, &ratchet, false);
        assert!(!quiet.contains("crates/a/src/lib.rs:1:"), "accepted debt is quiet");
        let loud = render(&scan, &ratchet, true);
        assert!(loud.contains("crates/a/src/lib.rs:1:"));
    }
}
