//! A hand-written, comment/string/raw-string aware Rust lexer.
//!
//! The rules in [`crate::rules`] are line-oriented: "is there a `// SAFETY:`
//! comment adjacent to this `unsafe` block?", "does this statement cast a
//! `Relaxed` load to a raw pointer?". So rather than a token tree, the lexer
//! produces a *split view* of the source: for every line, the code text with
//! all comments and literal contents blanked out, and separately the comment
//! text. Blanking (instead of deleting) keeps every surviving character at
//! its original line, so rule diagnostics point at real source lines.
//!
//! Handled surface:
//!
//! * line comments (`//`, `///`, `//!`), recorded as comment text;
//! * block comments (`/* .. */`) **with nesting**, including multi-line;
//! * string literals with escapes (`"\"unsafe\""` is not code);
//! * raw strings `r"…"` / `r#"…"#` / arbitrarily many hashes, plus the
//!   byte-string forms `b"…"`, `br#"…"#` — the word `unsafe` inside one is
//!   literal data, never code;
//! * char literals (`'a'`, `'\n'`, `'\u{1F600}'`, `b'x'`) distinguished
//!   from lifetimes (`'a` in `&'a T`).

/// The split view of one source file.
#[derive(Debug, Clone)]
pub struct Lexed {
    /// Per-line code text: comments and string/char-literal contents are
    /// replaced by spaces, so column positions are preserved. Lines are
    /// 0-indexed here; rules report them 1-indexed.
    pub code: Vec<String>,
    /// Per-line comment text (both `//…` bodies and block-comment bodies
    /// falling on that line), concatenated when a line carries several.
    pub comments: Vec<String>,
}

impl Lexed {
    /// Number of lines in the file.
    pub fn line_count(&self) -> usize {
        self.code.len()
    }

    /// 1-indexed accessor for a line's code text (empty past EOF).
    pub fn code_line(&self, line: usize) -> &str {
        line.checked_sub(1)
            .and_then(|i| self.code.get(i))
            .map(String::as_str)
            .unwrap_or("")
    }

    /// 1-indexed accessor for a line's comment text (empty past EOF).
    pub fn comment_line(&self, line: usize) -> &str {
        line.checked_sub(1)
            .and_then(|i| self.comments.get(i))
            .map(String::as_str)
            .unwrap_or("")
    }
}

/// What the scanner is currently inside of.
enum State {
    Code,
    LineComment,
    /// Nesting depth ≥ 1.
    BlockComment(u32),
    Str,
    /// Raw string terminated by `"` followed by this many `#`s.
    RawStr(u32),
}

/// Lexes one file into its code/comment split view.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut code_lines: Vec<String> = Vec::new();
    let mut comment_lines: Vec<String> = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut state = State::Code;
    // True when the previous code character could end an identifier or
    // literal, in which case a following `"` cannot start a (raw) string
    // prefix and a `'` is more likely a lifetime than a char literal.
    let mut prev_ident = false;
    let mut i = 0;

    macro_rules! newline {
        () => {{
            code_lines.push(std::mem::take(&mut code));
            comment_lines.push(std::mem::take(&mut comment));
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if matches!(state, State::LineComment) {
                state = State::Code;
            }
            newline!();
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    state = State::LineComment;
                    code.push_str("  ");
                    i += 2;
                    prev_ident = false;
                    continue;
                }
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(1);
                    code.push_str("  ");
                    i += 2;
                    prev_ident = false;
                    continue;
                }
                // Raw / byte string prefixes: r" r#" br" b" etc. Only when
                // not glued to a preceding identifier (`var"` is not Rust).
                if !prev_ident && (c == 'r' || c == 'b') {
                    if let Some((hashes, consumed)) = raw_string_start(&chars[i..]) {
                        state = State::RawStr(hashes);
                        for _ in 0..consumed {
                            code.push(' ');
                        }
                        code.push('"'); // keep a marker so `""` stays visible
                        i += consumed;
                        prev_ident = false;
                        continue;
                    }
                    if c == 'b' && chars.get(i + 1) == Some(&'"') {
                        state = State::Str;
                        code.push_str(" \"");
                        i += 2;
                        prev_ident = false;
                        continue;
                    }
                }
                if c == '"' {
                    state = State::Str;
                    code.push('"');
                    i += 1;
                    prev_ident = false;
                    continue;
                }
                if c == '\'' {
                    // Char literal vs lifetime. `'\…'` is always a literal;
                    // `'X'` (any single char then a quote) is a literal;
                    // everything else (`'a` in `&'a T`, `'static`) is a
                    // lifetime and stays code. After an identifier (`b'x'`
                    // handled via the same quote logic) the rule is the same.
                    match chars.get(i + 1) {
                        Some('\\') => {
                            // Escape: skip to the closing quote.
                            code.push_str("' ");
                            i += 2;
                            while i < chars.len() && chars[i] != '\'' && chars[i] != '\n' {
                                code.push(' ');
                                i += 1;
                            }
                            if chars.get(i) == Some(&'\'') {
                                code.push('\'');
                                i += 1;
                            }
                            prev_ident = true;
                            continue;
                        }
                        Some(&next) if chars.get(i + 2) == Some(&'\'') && next != '\'' => {
                            code.push_str("'  ");
                            i += 3;
                            prev_ident = true;
                            continue;
                        }
                        _ => {
                            // Lifetime: emit the quote and continue as code.
                            code.push('\'');
                            i += 1;
                            prev_ident = false;
                            continue;
                        }
                    }
                }
                code.push(c);
                prev_ident = c.is_alphanumeric() || c == '_';
                i += 1;
            }
            State::LineComment => {
                comment.push(c);
                code.push(' ');
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(depth + 1);
                    comment.push_str("/*");
                    code.push_str("  ");
                    i += 2;
                } else if c == '*' && chars.get(i + 1) == Some(&'/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        comment.push_str("*/");
                        State::BlockComment(depth - 1)
                    };
                    code.push_str("  ");
                    i += 2;
                } else {
                    comment.push(c);
                    code.push(' ');
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    code.push_str("  ");
                    i += 2; // skip the escaped char (a `\"` must not close)
                    if chars.get(i - 1) == Some(&'\n') {
                        // A line continuation: the newline was consumed.
                        code.pop();
                        newline!();
                    }
                } else if c == '"' {
                    code.push('"');
                    state = State::Code;
                    i += 1;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && closes_raw(&chars[i + 1..], hashes) {
                    code.push('"');
                    for _ in 0..hashes {
                        code.push(' ');
                    }
                    state = State::Code;
                    i += 1 + hashes as usize;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
        }
    }
    newline!();
    Lexed {
        code: code_lines,
        comments: comment_lines,
    }
}

/// If `chars` begins a raw-string prefix (`r`, `br`, with 0+ hashes and an
/// opening quote), returns `(hash_count, chars_consumed_through_quote)`.
fn raw_string_start(chars: &[char]) -> Option<(u32, usize)> {
    let mut j = 0;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) == Some(&'"') {
        Some((hashes, j + 1))
    } else {
        None
    }
}

/// True when `rest` starts with `hashes` consecutive `#` characters.
fn closes_raw(rest: &[char], hashes: u32) -> bool {
    (0..hashes as usize).all(|k| rest.get(k) == Some(&'#'))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn joined_code(src: &str) -> String {
        lex(src).code.join("\n")
    }

    fn joined_comments(src: &str) -> String {
        lex(src).comments.join("\n")
    }

    #[test]
    fn line_comments_are_not_code() {
        let src = "let x = 1; // unsafe { }\n";
        assert!(!joined_code(src).contains("unsafe"));
        assert!(joined_comments(src).contains("unsafe { }"));
    }

    #[test]
    fn doc_comments_with_code_fences_are_comments() {
        let src = "/// ```\n/// unsafe { h.retire(node) };\n/// ```\nfn f() {}\n";
        assert!(!joined_code(src).contains("unsafe"));
        assert!(joined_comments(src).contains("unsafe { h.retire"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner unsafe */ still comment */ unsafe {}\n";
        let code = joined_code(src);
        assert!(code.contains("unsafe {}"));
        assert_eq!(code.matches("unsafe").count(), 1, "only the real one");
        assert!(joined_comments(src).contains("inner unsafe"));
    }

    #[test]
    fn unterminated_block_comment_swallows_rest() {
        let src = "/* open\nunsafe {}\n";
        assert!(!joined_code(src).contains("unsafe"));
    }

    #[test]
    fn plain_strings_are_blanked() {
        let src = "let s = \"unsafe { // not a comment\"; unsafe {}\n";
        let code = joined_code(src);
        assert_eq!(code.matches("unsafe").count(), 1);
        assert!(joined_comments(src).is_empty() || !joined_comments(src).contains("not"));
    }

    #[test]
    fn escaped_quote_does_not_close_string() {
        let src = r#"let s = "a\"unsafe"; let t = 1;"#;
        assert!(!joined_code(src).contains("unsafe"));
        assert!(joined_code(src).contains("let t = 1;"));
    }

    #[test]
    fn raw_string_with_unsafe_inside() {
        let src = "let s = r#\"unsafe { static mut X }\"#; unsafe {}\n";
        let code = joined_code(src);
        assert_eq!(code.matches("unsafe").count(), 1);
        assert!(!code.contains("static mut"));
    }

    #[test]
    fn raw_string_hash_nesting() {
        // The `"#` inside must not close an `r##"…"##` string.
        let src = "let s = r##\"inner \"# unsafe \"##; let y = 2;\n";
        let code = joined_code(src);
        assert!(!code.contains("unsafe"));
        assert!(code.contains("let y = 2;"));
    }

    #[test]
    fn multi_line_raw_string() {
        let src = "let s = r#\"line one\nunsafe {\nline three\"#;\nlet z = 3;\n";
        let code = joined_code(src);
        assert!(!code.contains("unsafe"));
        assert!(code.contains("let z = 3;"));
        // Line structure preserved: 5 lines in, 5 lines out.
        assert_eq!(lex(src).code.len(), 5);
    }

    #[test]
    fn byte_strings_and_byte_raw_strings() {
        let src = "let a = b\"unsafe\"; let b2 = br#\"unsafe\"#; fn f() {}\n";
        let code = joined_code(src);
        assert!(!code.contains("unsafe"));
        assert!(code.contains("fn f() {}"));
    }

    #[test]
    fn identifier_ending_in_r_before_string() {
        // `var` ends in `r` but `var"…"` must not be parsed as a raw string
        // (it is not valid Rust; the lexer must still not be derailed).
        let src = "foo(bar, \"unsafe\");\n";
        assert!(!joined_code(src).contains("unsafe"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let src = "let c = '\"'; let q = '\\''; fn f<'a>(x: &'a str) {} let s = \"unsafe\";\n";
        let code = joined_code(src);
        assert!(!code.contains("unsafe"), "quote char literal must not open a string");
        assert!(code.contains("fn f<'a>(x: &'a str) {}"));
    }

    #[test]
    fn unicode_escape_char_literal() {
        let src = "let c = '\\u{1F600}'; let s = \"unsafe\";\n";
        assert!(!joined_code(src).contains("unsafe"));
    }

    #[test]
    fn comment_markers_survive_per_line() {
        let src = "// SAFETY: fine\nunsafe { x() };\n";
        let l = lex(src);
        assert!(l.comment_line(1).contains("SAFETY:"));
        assert!(l.code_line(2).contains("unsafe {"));
        assert!(l.comment_line(2).is_empty());
    }

    #[test]
    fn columns_preserved_by_blanking() {
        let src = "let x = \"ab\"; unsafe {}\n";
        let l = lex(src);
        // The `unsafe` keyword must still start at its original column.
        assert_eq!(l.code_line(1).find("unsafe"), src.find("unsafe"));
    }
}
