//! The SMR safety/ordering rules, applied to a [`Lexed`] file view.
//!
//! Three rules, mirroring the debt classes that hide reclamation bugs:
//!
//! * **safety** — every `unsafe` site must justify itself. An `unsafe fn`
//!   needs a `# Safety` doc section (or a `// SAFETY:` comment) in the
//!   contiguous doc/attribute run above it; an `unsafe impl` or
//!   `unsafe trait` needs a `// SAFETY:` comment immediately above; an
//!   `unsafe { … }` block needs a `// SAFETY:` comment adjacent to it (the
//!   contiguous comment run above, a trailing comment on the same line, or
//!   a comment on the block's first inner line).
//! * **ordering** — every `Ordering::*` site is inventoried, and a
//!   `Relaxed` load whose result is cast to a raw pointer **in the same
//!   statement run** is rejected unless an adjacent `// ORDERING:` comment
//!   explains why relaxed suffices (e.g. the pointer is validated by a
//!   later acquire CAS). This is the heuristic for "pointer-bearing atomic
//!   read used unsynchronized" — the REF/ADJ handoff bugs of PAPER.md §4
//!   start exactly there.
//! * **forbidden** — `static mut` (anywhere), `std::thread::sleep` outside
//!   bench crates and test code, `mem::forget` applied to a handle/guard
//!   expression (leaking a handle silently pins reclamation), and any
//!   `thread::sleep`/`thread::park` inside `crates/smr-async/src` (the
//!   async service layer's worker threads are shared by every task, so
//!   blocking one stalls the fleet — reclaimers must yield, not block).
//!
//! Test code is *not* exempt from the safety rule — a wrong justification
//! in a test is still a wrong justification — but `thread::sleep` is
//! permitted inside `#[cfg(test)]` modules and `bench*` crates. The
//! `smr-async` blocking ban has no such carve-out: a test that parks a
//! shared worker deadlocks the executor exactly like production code.
//!
//! The `thread::sleep` ban's scope, precisely: it covers production code
//! in every non-`bench*` crate — above all the scheme crates whose
//! progress claims the rule protects. `hyaline` advertises lock-free
//! operations and `crystalline` a *wait-free* retire; a single timed
//! block on either's retire/protect path would silently void the bound
//! the crate exists for, which is why those crates carry a zero
//! `forbidden` baseline and must stay there. The carve-outs are `bench*`
//! crates (sleeping is the measured workload — the stalled-reader and
//! robustness sweeps park readers on purpose), `tests/` directories, and
//! `#[cfg(test)]` regions; none of them apply inside
//! `crates/smr-async/src`, where blocking a shared worker stalls every
//! task multiplexed onto it.

use crate::lexer::{lex, Lexed};

/// Which rule a violation belongs to. The serialized names (`as_str`) are
/// the baseline-file keys, so they are part of the on-disk format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Unjustified `unsafe` site.
    Safety,
    /// Unjustified `Relaxed` pointer load.
    Ordering,
    /// Forbidden API use.
    Forbidden,
}

impl Rule {
    /// Stable serialized name (baseline key).
    pub fn as_str(self) -> &'static str {
        match self {
            Rule::Safety => "safety",
            Rule::Ordering => "ordering",
            Rule::Forbidden => "forbidden",
        }
    }

    /// All rules, in baseline order.
    pub const ALL: [Rule; 3] = [Rule::Safety, Rule::Ordering, Rule::Forbidden];

    /// Parses a serialized rule name.
    pub fn parse(s: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.as_str() == s)
    }
}

/// One rule violation at a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Violated rule.
    pub rule: Rule,
    /// 1-indexed source line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

/// Per-file memory-ordering inventory (every `Ordering::X` mention in code).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OrderingInventory {
    /// `Ordering::Relaxed` sites.
    pub relaxed: usize,
    /// `Ordering::Acquire` sites.
    pub acquire: usize,
    /// `Ordering::Release` sites.
    pub release: usize,
    /// `Ordering::AcqRel` sites.
    pub acq_rel: usize,
    /// `Ordering::SeqCst` sites.
    pub seq_cst: usize,
}

impl OrderingInventory {
    /// Total ordering sites.
    pub fn total(&self) -> usize {
        self.relaxed + self.acquire + self.release + self.acq_rel + self.seq_cst
    }
}

/// The analysis result for one file.
#[derive(Debug, Clone, Default)]
pub struct FileAnalysis {
    /// All violations, in line order.
    pub violations: Vec<Violation>,
    /// Ordering-site inventory.
    pub orderings: OrderingInventory,
    /// Number of `unsafe` sites seen (annotated or not).
    pub unsafe_sites: usize,
}

impl FileAnalysis {
    /// Violation count for one rule.
    pub fn count(&self, rule: Rule) -> usize {
        self.violations.iter().filter(|v| v.rule == rule).count()
    }
}

/// Analyzes one file. `rel_path` (workspace-relative, `/`-separated) drives
/// the path-based exemptions of the forbidden rule.
pub fn analyze(rel_path: &str, src: &str) -> FileAnalysis {
    let lexed = lex(src);
    let mut out = FileAnalysis::default();
    let test_region_start = test_region_start(&lexed);
    check_unsafe_sites(&lexed, &mut out);
    check_orderings(&lexed, &mut out);
    check_forbidden(rel_path, &lexed, test_region_start, &mut out);
    out.violations.sort_by_key(|v| (v.line, v.rule));
    out
}

/// First line (1-indexed) of the trailing `#[cfg(test)] mod …` region, if
/// any. Convention-based: the test module is the last item of the file, so
/// everything from the attribute to EOF counts as test code.
fn test_region_start(lexed: &Lexed) -> Option<usize> {
    for line in 1..=lexed.line_count() {
        let code = nospace(lexed.code_line(line));
        if code.contains("#[cfg(test)]") {
            // Must actually introduce a module (not e.g. a use-declaration
            // gate) within the next few lines.
            for ahead in line..=(line + 3).min(lexed.line_count()) {
                if lexed.code_line(ahead).contains("mod ") {
                    return Some(line);
                }
            }
        }
    }
    None
}

fn nospace(s: &str) -> String {
    s.chars().filter(|c| !c.is_whitespace()).collect()
}

/// True if `line` (or the contiguous comment/attribute run directly above
/// it) carries a comment containing `marker`. Blank lines or lines with
/// unrelated code break the run: the justification must be *adjacent*.
fn annotated_above(lexed: &Lexed, line: usize, marker: &str) -> bool {
    if lexed.comment_line(line).contains(marker) {
        return true;
    }
    let mut l = line;
    while l > 1 {
        l -= 1;
        let comment = lexed.comment_line(l);
        let code = lexed.code_line(l).trim();
        let attr_only = code.starts_with("#[") || code.starts_with("#!");
        if comment.contains(marker) {
            return true;
        }
        let comment_only = !comment.is_empty() && code.is_empty();
        if comment_only || attr_only {
            continue;
        }
        break;
    }
    false
}

/// The `safety` rule: find every `unsafe` keyword in code, classify the
/// site, and demand the matching justification.
fn check_unsafe_sites(lexed: &Lexed, out: &mut FileAnalysis) {
    // Flatten code into (char, line) pairs so classification can look past
    // line breaks (e.g. `unsafe\nfn`, `pub const unsafe extern "C" fn`).
    let mut flat: Vec<(char, usize)> = Vec::new();
    for line in 1..=lexed.line_count() {
        for c in lexed.code_line(line).chars() {
            flat.push((c, line));
        }
        flat.push(('\n', line));
    }
    let mut i = 0;
    while i < flat.len() {
        if !is_word_at(&flat, i, "unsafe") {
            i += 1;
            continue;
        }
        let line = flat[i].1;
        out.unsafe_sites += 1;
        // Classify by the next significant word/char.
        let mut j = i + "unsafe".len();
        let mut kind = SiteKind::Block; // `unsafe {`
        let mut brace_line = line;
        loop {
            while j < flat.len() && flat[j].0.is_whitespace() {
                j += 1;
            }
            if j >= flat.len() {
                break;
            }
            if flat[j].0 == '{' {
                brace_line = flat[j].1;
                break;
            }
            let word_end = word_end(&flat, j);
            let word: String = flat[j..word_end].iter().map(|&(c, _)| c).collect();
            match word.as_str() {
                "fn" => {
                    kind = SiteKind::Fn;
                    break;
                }
                "impl" => {
                    kind = SiteKind::Impl;
                    break;
                }
                "trait" => {
                    kind = SiteKind::Trait;
                    break;
                }
                // `unsafe extern "C" fn` — skip the qualifier and rescan.
                "extern" => {
                    j = word_end;
                    // The ABI string was blanked to `""` by the lexer.
                    while j < flat.len() && (flat[j].0.is_whitespace() || flat[j].0 == '"') {
                        j += 1;
                    }
                    continue;
                }
                _ if word.is_empty() => {
                    // Punctuation (e.g. `)` in `unsafe fn` pointer types
                    // never reaches here because `fn` matched first); treat
                    // anything unrecognized as a block-less site and move on.
                    break;
                }
                _ => break,
            }
        }
        match kind {
            SiteKind::Fn => {
                let ok = annotated_above(lexed, line, "# Safety")
                    || annotated_above(lexed, line, "SAFETY:");
                if !ok {
                    out.violations.push(Violation {
                        rule: Rule::Safety,
                        line,
                        message: "`unsafe fn` without a `# Safety` doc section or `// SAFETY:` \
                                  comment"
                            .into(),
                    });
                }
            }
            SiteKind::Impl | SiteKind::Trait => {
                if !annotated_above(lexed, line, "SAFETY:") {
                    let what = if kind == SiteKind::Impl {
                        "`unsafe impl`"
                    } else {
                        "`unsafe trait`"
                    };
                    out.violations.push(Violation {
                        rule: Rule::Safety,
                        line,
                        message: format!("{what} without an adjacent `// SAFETY:` comment"),
                    });
                }
            }
            SiteKind::Block => {
                let ok = annotated_above(lexed, line, "SAFETY:")
                    || lexed.comment_line(brace_line).contains("SAFETY:")
                    || lexed.comment_line(brace_line + 1).contains("SAFETY:");
                if !ok {
                    out.violations.push(Violation {
                        rule: Rule::Safety,
                        line,
                        message: "`unsafe` block without an adjacent `// SAFETY:` comment".into(),
                    });
                }
            }
        }
        i += "unsafe".len();
    }
}

#[derive(PartialEq, Clone, Copy)]
enum SiteKind {
    Fn,
    Impl,
    Trait,
    Block,
}

fn is_word_at(flat: &[(char, usize)], i: usize, word: &str) -> bool {
    let chars: Vec<char> = word.chars().collect();
    if i + chars.len() > flat.len() {
        return false;
    }
    for (k, &c) in chars.iter().enumerate() {
        if flat[i + k].0 != c {
            return false;
        }
    }
    let before_ok = i == 0 || !is_ident_char(flat[i - 1].0);
    let after_ok = flat
        .get(i + chars.len())
        .is_none_or(|&(c, _)| !is_ident_char(c));
    before_ok && after_ok
}

fn word_end(flat: &[(char, usize)], start: usize) -> usize {
    let mut j = start;
    while j < flat.len() && is_ident_char(flat[j].0) {
        j += 1;
    }
    j
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// One code "statement run": the text between statement/block boundaries
/// (`;`, `{`, `}`), with the lines it spans.
struct Statement {
    text: String,
    first_line: usize,
    last_line: usize,
}

fn statements(lexed: &Lexed) -> Vec<Statement> {
    let mut out = Vec::new();
    let mut text = String::new();
    let mut first_line = 0usize;
    for line in 1..=lexed.line_count() {
        for c in lexed.code_line(line).chars() {
            if c == ';' || c == '{' || c == '}' {
                if !text.trim().is_empty() {
                    out.push(Statement {
                        text: std::mem::take(&mut text),
                        first_line,
                        last_line: line,
                    });
                } else {
                    text.clear();
                }
                first_line = 0;
                continue;
            }
            if first_line == 0 && !c.is_whitespace() {
                first_line = line;
            }
            text.push(c);
        }
        text.push(' ');
    }
    if !text.trim().is_empty() && first_line != 0 {
        out.push(Statement {
            text,
            first_line,
            last_line: lexed.line_count(),
        });
    }
    out
}

/// The `ordering` rule: inventory plus the Relaxed-pointer-load heuristic.
fn check_orderings(lexed: &Lexed, out: &mut FileAnalysis) {
    for line in 1..=lexed.line_count() {
        let code = nospace(lexed.code_line(line));
        out.orderings.relaxed += code.matches("Ordering::Relaxed").count();
        out.orderings.acquire += code.matches("Ordering::Acquire").count();
        out.orderings.release += code.matches("Ordering::Release").count();
        out.orderings.acq_rel += code.matches("Ordering::AcqRel").count();
        out.orderings.seq_cst += code.matches("Ordering::SeqCst").count();
    }
    for stmt in statements(lexed) {
        let flat = nospace(&stmt.text);
        let has_relaxed_load =
            flat.contains(".load(Ordering::Relaxed)") || flat.contains(".load(Relaxed)");
        if !has_relaxed_load {
            continue;
        }
        let casts_to_ptr = flat.contains("as*mut") || flat.contains("as*const");
        if !casts_to_ptr {
            continue;
        }
        let annotated = (stmt.first_line..=stmt.last_line)
            .any(|l| lexed.comment_line(l).contains("ORDERING:"))
            || annotated_above(lexed, stmt.first_line, "ORDERING:");
        if !annotated {
            out.violations.push(Violation {
                rule: Rule::Ordering,
                line: stmt.first_line,
                message: "`Relaxed` load cast to a raw pointer in the same statement \
                          without an `// ORDERING:` justification"
                    .into(),
            });
        }
    }
}

/// The `forbidden` rule.
fn check_forbidden(
    rel_path: &str,
    lexed: &Lexed,
    test_region_start: Option<usize>,
    out: &mut FileAnalysis,
) {
    // bench* crates run timed phases; sleeping there is the workload.
    let bench_crate = rel_path
        .split('/')
        .nth(1)
        .is_some_and(|crate_dir| crate_dir.starts_with("bench"));
    let in_tests_dir = rel_path.split('/').any(|seg| seg == "tests");
    // The async service layer's workers are shared by every task: one
    // blocked worker stalls the whole fleet, so time-based or parking
    // blocking is forbidden there with NO test/bench exemption — a test
    // that parks a worker deadlocks the executor just as surely as
    // production code would. Reclaimers and guards must yield instead.
    let async_crate = rel_path.starts_with("crates/smr-async/src");
    for line in 1..=lexed.line_count() {
        let code = lexed.code_line(line);
        let flat = nospace(code);
        if flat.contains("staticmut") && is_word_boundary_static_mut(code) {
            out.violations.push(Violation {
                rule: Rule::Forbidden,
                line,
                message: "`static mut` is forbidden (use an atomic or interior mutability)"
                    .into(),
            });
        }
        if flat.contains("thread::sleep(") {
            let in_test_region = test_region_start.is_some_and(|start| line >= start);
            if async_crate {
                out.violations.push(Violation {
                    rule: Rule::Forbidden,
                    line,
                    message: "`thread::sleep` inside crates/smr-async (workers are shared \
                              by all tasks; yield with `yield_now().await` instead)"
                        .into(),
                });
            } else if !(bench_crate || in_tests_dir || in_test_region) {
                out.violations.push(Violation {
                    rule: Rule::Forbidden,
                    line,
                    message: "`thread::sleep` outside bench crates/tests (hot paths must \
                              never block on time)"
                        .into(),
                });
            }
        }
        if async_crate && flat.contains("thread::park") {
            out.violations.push(Violation {
                rule: Rule::Forbidden,
                line,
                message: "`thread::park` inside crates/smr-async (park a future on a waker, \
                          never the worker thread)"
                    .into(),
            });
        }
        if let Some(pos) = flat.find("mem::forget(") {
            let arg = &flat[pos + "mem::forget(".len()..];
            let arg_lower = arg.to_ascii_lowercase();
            if arg_lower.contains("handle") || arg_lower.contains("guard") {
                out.violations.push(Violation {
                    rule: Rule::Forbidden,
                    line,
                    message: "`mem::forget` on a handle/guard: a leaked handle pins \
                              reclamation forever (drop or check it in instead)"
                        .into(),
                });
            }
        }
    }
}

/// `static mut` with real word boundaries (`static mutex` must not match —
/// `nospace` would glue them, so re-check on the spaced text).
fn is_word_boundary_static_mut(code: &str) -> bool {
    let mut rest = code;
    while let Some(pos) = rest.find("static") {
        let after = &rest[pos + "static".len()..];
        let before_ok = rest[..pos]
            .chars()
            .next_back()
            .is_none_or(|c| !is_ident_char(c));
        let tail = after.trim_start();
        if before_ok && tail.starts_with("mut") {
            let after_mut = tail["mut".len()..].chars().next();
            if after_mut.is_none_or(|c| !is_ident_char(c)) {
                return true;
            }
        }
        rest = after;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze_src(src: &str) -> FileAnalysis {
        analyze("crates/example/src/lib.rs", src)
    }

    #[test]
    fn unannotated_block_is_caught() {
        let a = analyze_src("fn f(p: *mut u8) { unsafe { *p = 1 }; }\n");
        assert_eq!(a.count(Rule::Safety), 1);
        assert_eq!(a.unsafe_sites, 1);
    }

    #[test]
    fn comment_above_satisfies_block() {
        let a = analyze_src("fn f(p: *mut u8) {\n    // SAFETY: p is valid.\n    unsafe { *p = 1 };\n}\n");
        assert_eq!(a.count(Rule::Safety), 0);
    }

    #[test]
    fn trailing_comment_satisfies_block() {
        let a = analyze_src("fn f(p: *mut u8) {\n    unsafe { *p = 1 }; // SAFETY: p is valid.\n}\n");
        assert_eq!(a.count(Rule::Safety), 0);
    }

    #[test]
    fn first_inner_line_comment_satisfies_block() {
        let a = analyze_src("fn f(p: *mut u8) {\n    unsafe {\n        // SAFETY: p is valid.\n        *p = 1\n    };\n}\n");
        assert_eq!(a.count(Rule::Safety), 0);
    }

    #[test]
    fn blank_line_breaks_adjacency() {
        let a = analyze_src("// SAFETY: stale justification far away.\n\nfn f(p: *mut u8) { unsafe { *p = 1 }; }\n");
        assert_eq!(a.count(Rule::Safety), 1);
    }

    #[test]
    fn unsafe_fn_needs_safety_doc() {
        let bad = analyze_src("pub unsafe fn f() {}\n");
        assert_eq!(bad.count(Rule::Safety), 1);
        let good = analyze_src("/// Does a thing.\n///\n/// # Safety\n///\n/// Caller must hold X.\npub unsafe fn f() {}\n");
        assert_eq!(good.count(Rule::Safety), 0);
    }

    #[test]
    fn attribute_between_doc_and_fn_is_transparent() {
        let a = analyze_src("/// # Safety\n/// Caller must hold X.\n#[inline]\npub unsafe fn f() {}\n");
        assert_eq!(a.count(Rule::Safety), 0);
    }

    #[test]
    fn unsafe_extern_fn_classified_as_fn() {
        let a = analyze_src("/// # Safety\n/// ffi.\npub unsafe extern \"C\" fn f() {}\n");
        assert_eq!(a.count(Rule::Safety), 0);
        let bad = analyze_src("pub unsafe extern \"C\" fn f() {}\n");
        assert_eq!(bad.count(Rule::Safety), 1);
    }

    #[test]
    fn unsafe_impl_needs_comment() {
        let bad = analyze_src("unsafe impl Send for X {}\n");
        assert_eq!(bad.count(Rule::Safety), 1);
        let good = analyze_src("// SAFETY: X owns no thread-affine state.\nunsafe impl Send for X {}\n");
        assert_eq!(good.count(Rule::Safety), 0);
    }

    #[test]
    fn doc_safety_section_does_not_satisfy_impl() {
        // Impls have no caller contract; they need an explicit SAFETY: note.
        let a = analyze_src("/// # Safety\nunsafe impl Send for X {}\n");
        assert_eq!(a.count(Rule::Safety), 1);
    }

    #[test]
    fn unsafe_in_string_or_comment_is_ignored() {
        let a = analyze_src("// unsafe { }\nlet s = \"unsafe impl Send\";\nlet r = r#\"unsafe {\"#;\n");
        assert_eq!(a.unsafe_sites, 0);
        assert_eq!(a.count(Rule::Safety), 0);
    }

    #[test]
    fn relaxed_pointer_cast_is_caught() {
        let a = analyze_src(
            "fn next(h: &H) -> *mut N {\n    h.word.load(Ordering::Relaxed) as *mut N\n}\n",
        );
        assert_eq!(a.count(Rule::Ordering), 1);
        assert_eq!(a.orderings.relaxed, 1);
    }

    #[test]
    fn ordering_comment_permits_relaxed_cast() {
        let a = analyze_src(
            "fn next(h: &H) -> *mut N {\n    // ORDERING: pointer validated by the later acquire CAS.\n    h.word.load(Ordering::Relaxed) as *mut N\n}\n",
        );
        assert_eq!(a.count(Rule::Ordering), 0);
        assert_eq!(a.orderings.relaxed, 1);
    }

    #[test]
    fn relaxed_without_cast_is_inventory_only() {
        let a = analyze_src("let n = c.load(Ordering::Relaxed);\nlet p = n as *mut u8;\n");
        // Load and cast are separate statements: heuristic does not fire.
        assert_eq!(a.count(Rule::Ordering), 0);
        assert_eq!(a.orderings.relaxed, 1);
    }

    #[test]
    fn acquire_cast_is_fine() {
        let a = analyze_src("let p = c.load(Ordering::Acquire) as *mut u8;\n");
        assert_eq!(a.count(Rule::Ordering), 0);
        assert_eq!(a.orderings.acquire, 1);
    }

    #[test]
    fn multiline_statement_is_one_run() {
        let a = analyze_src(
            "let p = head\n    .word(W)\n    .load(Ordering::Relaxed)\n    as *mut Node;\n",
        );
        assert_eq!(a.count(Rule::Ordering), 1);
    }

    #[test]
    fn inventory_counts_all_variants() {
        let a = analyze_src(
            "a.load(Ordering::Acquire);\nb.store(1, Ordering::Release);\nc.fetch_add(1, Ordering::AcqRel);\nd.load(Ordering::SeqCst);\ne.load(Ordering::Relaxed);\n",
        );
        assert_eq!(a.orderings.acquire, 1);
        assert_eq!(a.orderings.release, 1);
        assert_eq!(a.orderings.acq_rel, 1);
        assert_eq!(a.orderings.seq_cst, 1);
        assert_eq!(a.orderings.relaxed, 1);
        assert_eq!(a.orderings.total(), 5);
    }

    #[test]
    fn static_mut_is_forbidden() {
        let a = analyze_src("static mut COUNTER: u64 = 0;\n");
        assert_eq!(a.count(Rule::Forbidden), 1);
        let ok = analyze_src("static MUTEX: Mutex<u64> = Mutex::new(0);\nlet static_mutation = 1;\n");
        assert_eq!(ok.count(Rule::Forbidden), 0);
    }

    #[test]
    fn sleep_forbidden_outside_bench_and_tests() {
        let src = "fn spin() { std::thread::sleep(d); }\n";
        assert_eq!(analyze("crates/smr-core/src/pool.rs", src).count(Rule::Forbidden), 1);
        assert_eq!(analyze("crates/bench-harness/src/driver.rs", src).count(Rule::Forbidden), 0);
        assert_eq!(analyze("crates/bench/src/lib.rs", src).count(Rule::Forbidden), 0);
    }

    #[test]
    fn sleep_allowed_in_cfg_test_module() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn t() { std::thread::sleep(d); }\n}\n";
        assert_eq!(analyze("crates/smr-core/src/x.rs", src).count(Rule::Forbidden), 0);
        let before = "fn f() { std::thread::sleep(d); }\n#[cfg(test)]\nmod tests {}\n";
        assert_eq!(
            analyze("crates/smr-core/src/x.rs", before).count(Rule::Forbidden),
            1,
            "sleep before the test module is still production code"
        );
    }

    #[test]
    fn async_crate_bans_sleep_and_park_even_in_tests() {
        let sleep = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn t() { std::thread::sleep(d); }\n}\n";
        assert_eq!(
            analyze("crates/smr-async/src/executor.rs", sleep).count(Rule::Forbidden),
            1,
            "the test-module exemption must not apply inside smr-async"
        );
        let park = "fn wait() { std::thread::park(); }\n";
        assert_eq!(
            analyze("crates/smr-async/src/queue.rs", park).count(Rule::Forbidden),
            1
        );
        let park_timeout = "fn wait() { std::thread::park_timeout(d); }\n";
        assert_eq!(
            analyze("crates/smr-async/src/reclaimer.rs", park_timeout).count(Rule::Forbidden),
            1
        );
        // Elsewhere `thread::park` stays legal (the blocking pool uses a
        // condvar, but parking a dedicated OS thread is not a lint matter).
        assert_eq!(analyze("crates/smr-core/src/pool.rs", park).count(Rule::Forbidden), 0);
        // Comments and docs never trip the rule.
        let comment = "// never call thread::sleep or thread::park here\nfn f() {}\n";
        assert_eq!(
            analyze("crates/smr-async/src/lib.rs", comment).count(Rule::Forbidden),
            0
        );
    }

    #[test]
    fn mem_forget_on_handles_is_forbidden() {
        let a = analyze_src("std::mem::forget(handle);\n");
        assert_eq!(a.count(Rule::Forbidden), 1);
        let g = analyze_src("std::mem::forget(pool_guard);\n");
        assert_eq!(g.count(Rule::Forbidden), 1);
        let ok = analyze_src("std::mem::forget(rollback);\n");
        assert_eq!(ok.count(Rule::Forbidden), 0);
    }

    #[test]
    fn violations_sorted_by_line() {
        let a = analyze_src("static mut A: u8 = 0;\nfn f(p: *mut u8) { unsafe { *p = 1 } }\nstatic mut B: u8 = 0;\n");
        let lines: Vec<usize> = a.violations.iter().map(|v| v.line).collect();
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted);
    }
}
