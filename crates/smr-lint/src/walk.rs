//! Deterministic workspace file discovery.
//!
//! The lint covers every `.rs` file under `crates/*/src` and `shims/*/src`
//! plus the workspace-root `src/` — the compiled production surface. Crate
//! `tests/`, `benches/` and `examples/` directories are deliberately out of
//! scope (the safety rules are about the code that ships; integration tests
//! exercise public, safe APIs). Paths are returned workspace-relative with
//! `/` separators and sorted, so scans, reports and baselines are stable
//! across hosts.

use std::path::{Path, PathBuf};

/// Discovers all lintable files under `root` (the workspace root).
/// Returns `(relative_path, absolute_path)` pairs, sorted by relative path.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<(String, PathBuf)>> {
    let mut out = Vec::new();
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, root, &mut out)?;
    }
    for group in ["crates", "shims"] {
        let group_dir = root.join(group);
        if !group_dir.is_dir() {
            continue;
        }
        let mut members: Vec<PathBuf> = std::fs::read_dir(&group_dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        for member in members {
            let src = member.join("src");
            if src.is_dir() {
                collect_rs(&src, root, &mut out)?;
            }
        }
    }
    out.sort();
    Ok(out)
}

fn collect_rs(
    dir: &Path,
    root: &Path,
    out: &mut Vec<(String, PathBuf)>,
) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .expect("walked paths start at root")
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push((rel, path));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_tree(files: &[&str]) -> PathBuf {
        let root = std::env::temp_dir().join(format!(
            "smr-lint-walk-{}-{:p}",
            std::process::id(),
            &files
        ));
        let _ = std::fs::remove_dir_all(&root);
        for f in files {
            let path = root.join(f);
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, "fn f() {}\n").unwrap();
        }
        root
    }

    #[test]
    fn walks_crates_shims_and_root_src_only() {
        let root = scratch_tree(&[
            "src/lib.rs",
            "crates/alpha/src/lib.rs",
            "crates/alpha/src/bin/tool.rs",
            "crates/alpha/tests/integration.rs",
            "crates/alpha/benches/bench.rs",
            "crates/beta/src/deep/nested.rs",
            "shims/gamma/src/lib.rs",
            "examples/demo.rs",
            "crates/alpha/src/README.md",
        ]);
        // The .md file must be skipped even though it lives under src.
        std::fs::write(root.join("crates/alpha/src/README.md"), "# hi").unwrap();
        let files = workspace_files(&root).unwrap();
        let rels: Vec<&str> = files.iter().map(|(r, _)| r.as_str()).collect();
        assert_eq!(
            rels,
            [
                "crates/alpha/src/bin/tool.rs",
                "crates/alpha/src/lib.rs",
                "crates/beta/src/deep/nested.rs",
                "shims/gamma/src/lib.rs",
                "src/lib.rs",
            ]
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn empty_root_is_empty_scan() {
        let root = scratch_tree(&[]);
        std::fs::create_dir_all(&root).unwrap();
        assert!(workspace_files(&root).unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&root);
    }
}
