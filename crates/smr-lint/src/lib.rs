//! `smr-lint` — SMR-specific safety/ordering static analysis with a
//! ratcheted baseline.
//!
//! The workspace carries hundreds of `unsafe` sites and `Ordering::Relaxed`
//! uses; Miri and TSan are unavailable (offline, stable-only toolchain), so
//! this crate is the repo's own static-analysis layer. A hand-written,
//! comment/string-aware lexer ([`lexer`]) walks every production source
//! file ([`walk`]) and enforces three rules ([`rules`]):
//!
//! 1. every `unsafe` block / `unsafe fn` / `unsafe impl` carries an
//!    adjacent `// SAFETY:` (or `# Safety` doc) justification;
//! 2. every memory-ordering site is inventoried, and `Relaxed` loads cast
//!    to raw pointers in the same statement need an `// ORDERING:` note;
//! 3. forbidden APIs: `static mut`, `thread::sleep` outside bench/tests,
//!    `mem::forget` on handles.
//!
//! Existing debt is recorded in a committed `lint-baseline.json`
//! ([`baseline`]) and may only shrink: new violations fail the gate
//! immediately, paid-down debt must be committed via `--update-baseline`
//! (enforced by `--strict` in CI). The `crates/hyaline` core is held at
//! **zero** baseline debt — every unsafe site in the scheme the paper's
//! correctness argument rests on is justified in-source.
//!
//! # Example
//!
//! ```
//! use smr_lint::rules::{analyze, Rule};
//!
//! let bad = analyze("crates/x/src/lib.rs", "fn f(p: *mut u8) { unsafe { *p = 1 } }");
//! assert_eq!(bad.count(Rule::Safety), 1);
//!
//! let good = analyze(
//!     "crates/x/src/lib.rs",
//!     "fn f(p: *mut u8) {\n    // SAFETY: p is valid and exclusively owned.\n    unsafe { *p = 1 }\n}",
//! );
//! assert_eq!(good.count(Rule::Safety), 0);
//! ```

#![warn(missing_docs)]

pub mod baseline;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod walk;

pub mod scan {
    //! Running the full pass over a file set.

    use std::path::Path;

    use crate::baseline::{Baseline, RatchetReport};
    use crate::rules::{analyze, FileAnalysis};
    use crate::walk::workspace_files;

    /// The analyses of one lint run, in sorted path order.
    #[derive(Debug, Clone, Default)]
    pub struct Scan {
        /// `(workspace-relative path, analysis)` pairs.
        pub files: Vec<(String, FileAnalysis)>,
    }

    impl Scan {
        /// Scans the workspace rooted at `root`.
        pub fn workspace(root: &Path) -> Result<Self, String> {
            let files = workspace_files(root)
                .map_err(|e| format!("cannot walk {}: {e}", root.display()))?;
            let mut out = Vec::with_capacity(files.len());
            for (rel, abs) in files {
                let src = std::fs::read_to_string(&abs)
                    .map_err(|e| format!("cannot read {}: {e}", abs.display()))?;
                out.push((rel.clone(), analyze(&rel, &src)));
            }
            Ok(Scan { files: out })
        }

        /// Scans in-memory sources (test harness entry point).
        pub fn from_sources(sources: impl IntoIterator<Item = (String, String)>) -> Self {
            let mut files: Vec<(String, FileAnalysis)> = sources
                .into_iter()
                .map(|(rel, src)| (rel.clone(), analyze(&rel, &src)))
                .collect();
            files.sort_by(|a, b| a.0.cmp(&b.0));
            Scan { files }
        }

        /// The analysis for one file, if scanned.
        pub fn analysis(&self, rel_path: &str) -> Option<&FileAnalysis> {
            self.files
                .iter()
                .find(|(p, _)| p == rel_path)
                .map(|(_, a)| a)
        }

        /// Total violations found.
        pub fn total_violations(&self) -> usize {
            self.files.iter().map(|(_, a)| a.violations.len()).sum()
        }

        /// The baseline exactly matching this scan.
        pub fn to_baseline(&self) -> Baseline {
            Baseline::from_scan(self.files.iter().map(|(p, a)| (p, a)))
        }

        /// Ratchet comparison against a baseline.
        pub fn ratchet(&self, baseline: &Baseline) -> RatchetReport {
            RatchetReport::compare(self.files.iter().map(|(p, a)| (p, a)), baseline)
        }
    }
}

pub use scan::Scan;

/// Default baseline filename at the workspace root.
pub const BASELINE_FILE: &str = "lint-baseline.json";
