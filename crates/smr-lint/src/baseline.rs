//! The ratcheted baseline: recorded per-file/per-rule debt that may only
//! shrink.
//!
//! `lint-baseline.json` is committed at the workspace root. Each entry maps
//! a file (workspace-relative, `/`-separated) to its accepted violation
//! counts per rule. The ratchet compares a fresh scan against it:
//!
//! * count **above** baseline → **regression**: new debt was introduced;
//!   always an error.
//! * count **below** baseline (or file gone) → **stale** entry: debt was
//!   paid down but the baseline still records it. A warning by default; an
//!   error under `--strict` so CI forces the ratchet to actually tighten
//!   (run `--update-baseline` and commit the shrunken file).
//! * count equal → accepted debt, reported but not fatal.
//!
//! The JSON is hand-rolled (no serde in the offline environment) and kept
//! deliberately small: one object, sorted file keys, sorted rule keys, so
//! regenerated baselines diff cleanly in review.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

use crate::rules::{FileAnalysis, Rule};

/// Format version stamped into the baseline file.
pub const SCHEMA_VERSION: u64 = 1;

/// The committed debt ledger: file → rule name → accepted violation count.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Per-file accepted counts. Only nonzero counts are recorded.
    pub files: BTreeMap<String, BTreeMap<String, u64>>,
}

impl Baseline {
    /// Builds the baseline that exactly matches a scan (the
    /// `--update-baseline` output).
    pub fn from_scan<'a>(scan: impl IntoIterator<Item = (&'a String, &'a FileAnalysis)>) -> Self {
        let mut files = BTreeMap::new();
        for (path, analysis) in scan {
            let mut rules = BTreeMap::new();
            for rule in Rule::ALL {
                let n = analysis.count(rule) as u64;
                if n > 0 {
                    rules.insert(rule.as_str().to_string(), n);
                }
            }
            if !rules.is_empty() {
                files.insert(path.clone(), rules);
            }
        }
        Baseline { files }
    }

    /// Accepted count for one file/rule (0 when unlisted).
    pub fn accepted(&self, file: &str, rule: Rule) -> u64 {
        self.files
            .get(file)
            .and_then(|rules| rules.get(rule.as_str()))
            .copied()
            .unwrap_or(0)
    }

    /// Total accepted violations.
    pub fn total(&self) -> u64 {
        self.files.values().flat_map(|r| r.values()).sum()
    }

    /// Serializes the baseline (pretty, sorted, trailing newline).
    pub fn encode(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": {SCHEMA_VERSION},");
        s.push_str("  \"files\": {");
        let mut first_file = true;
        for (path, rules) in &self.files {
            if !first_file {
                s.push(',');
            }
            first_file = false;
            let _ = write!(s, "\n    \"{}\": {{", escape(path));
            let mut first_rule = true;
            for (rule, count) in rules {
                if !first_rule {
                    s.push_str(", ");
                }
                first_rule = false;
                let _ = write!(s, "\"{}\": {count}", escape(rule));
            }
            s.push('}');
        }
        if !self.files.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("}\n}\n");
        s
    }

    /// Parses a baseline file's contents.
    pub fn decode(src: &str) -> Result<Self, String> {
        let mut p = MiniJson {
            chars: src.chars().collect(),
            i: 0,
        };
        p.skip_ws();
        let top = p.object()?;
        p.skip_ws();
        if p.i != p.chars.len() {
            return Err(format!("trailing characters at offset {}", p.i));
        }
        let mut files = BTreeMap::new();
        let mut schema = None;
        for (key, value) in top {
            match (key.as_str(), value) {
                ("schema", Value::Num(n)) => {
                    schema = Some(
                        n.parse::<u64>()
                            .map_err(|_| format!("`schema`: `{n}` is not a u64"))?,
                    );
                }
                ("files", Value::Obj(entries)) => {
                    for (path, rules_value) in entries {
                        let Value::Obj(rule_entries) = rules_value else {
                            return Err(format!("file `{path}`: expected an object"));
                        };
                        let mut rules = BTreeMap::new();
                        for (rule_name, count) in rule_entries {
                            if Rule::parse(&rule_name).is_none() {
                                return Err(format!(
                                    "file `{path}`: unknown rule `{rule_name}`"
                                ));
                            }
                            let Value::Num(n) = count else {
                                return Err(format!(
                                    "file `{path}` rule `{rule_name}`: expected a number"
                                ));
                            };
                            let n: u64 = n.parse().map_err(|_| {
                                format!("file `{path}` rule `{rule_name}`: bad count `{n}`")
                            })?;
                            if n > 0 {
                                rules.insert(rule_name, n);
                            }
                        }
                        if !rules.is_empty() {
                            files.insert(path, rules);
                        }
                    }
                }
                // Unknown top-level fields are ignored (forward compat).
                _ => {}
            }
        }
        match schema {
            Some(s) if s <= SCHEMA_VERSION => Ok(Baseline { files }),
            Some(s) => Err(format!(
                "baseline schema {s} is newer than this tool ({SCHEMA_VERSION})"
            )),
            None => Err("missing `schema` field".into()),
        }
    }

    /// Loads a baseline from disk.
    pub fn load(path: &Path) -> Result<Self, String> {
        let src = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Self::decode(&src).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Writes the baseline to disk.
    pub fn store(&self, path: &Path) -> Result<(), String> {
        std::fs::write(path, self.encode())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))
    }
}

/// One file/rule ratchet comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RatchetEntry {
    /// Workspace-relative path.
    pub file: String,
    /// The rule compared.
    pub rule: Rule,
    /// Violations found by this scan.
    pub found: u64,
    /// Violations the baseline accepts.
    pub accepted: u64,
}

impl RatchetEntry {
    /// This entry's verdict.
    pub fn verdict(&self) -> Verdict {
        match self.found.cmp(&self.accepted) {
            std::cmp::Ordering::Greater => Verdict::Regressed,
            std::cmp::Ordering::Less => Verdict::Stale,
            std::cmp::Ordering::Equal => Verdict::Accepted,
        }
    }
}

/// Outcome of one file/rule comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Found == accepted > 0: known debt, tolerated.
    Accepted,
    /// Found > accepted: new violations — always an error.
    Regressed,
    /// Found < accepted: debt shrank (or the file vanished) but the
    /// baseline still records it — the ratchet must be tightened.
    Stale,
}

/// The full ratchet comparison of a scan against a baseline.
#[derive(Debug, Clone, Default)]
pub struct RatchetReport {
    /// All file/rule pairs where found or accepted is nonzero.
    pub entries: Vec<RatchetEntry>,
}

impl RatchetReport {
    /// Compares a scan against the baseline.
    pub fn compare<'a>(
        scan: impl IntoIterator<Item = (&'a String, &'a FileAnalysis)>,
        baseline: &Baseline,
    ) -> Self {
        let mut entries = Vec::new();
        let mut seen: BTreeMap<&str, ()> = BTreeMap::new();
        let scan: Vec<_> = scan.into_iter().collect();
        for (path, analysis) in &scan {
            seen.insert(path.as_str(), ());
            for rule in Rule::ALL {
                let found = analysis.count(rule) as u64;
                let accepted = baseline.accepted(path, rule);
                if found > 0 || accepted > 0 {
                    entries.push(RatchetEntry {
                        file: (*path).clone(),
                        rule,
                        found,
                        accepted,
                    });
                }
            }
        }
        // Baseline entries for files the scan no longer sees are stale.
        for (path, rules) in &baseline.files {
            if seen.contains_key(path.as_str()) {
                continue;
            }
            for (rule_name, &accepted) in rules {
                let rule = Rule::parse(rule_name).expect("validated at decode");
                entries.push(RatchetEntry {
                    file: path.clone(),
                    rule,
                    found: 0,
                    accepted,
                });
            }
        }
        entries.sort_by(|a, b| (&a.file, a.rule).cmp(&(&b.file, b.rule)));
        RatchetReport { entries }
    }

    /// Entries with the given verdict.
    pub fn with_verdict(&self, verdict: Verdict) -> impl Iterator<Item = &RatchetEntry> {
        self.entries.iter().filter(move |e| e.verdict() == verdict)
    }

    /// Any new violations?
    pub fn regressed(&self) -> bool {
        self.with_verdict(Verdict::Regressed).next().is_some()
    }

    /// Any stale baseline entries?
    pub fn stale(&self) -> bool {
        self.with_verdict(Verdict::Stale).next().is_some()
    }

    /// The gate verdict: `Ok` to pass, `Err` with the reason to fail.
    /// Strict mode additionally fails on stale entries.
    pub fn gate(&self, strict: bool) -> Result<(), String> {
        let new: u64 = self
            .with_verdict(Verdict::Regressed)
            .map(|e| e.found - e.accepted)
            .sum();
        if new > 0 {
            return Err(format!(
                "{new} new violation(s) above the baseline ratchet"
            ));
        }
        if strict && self.stale() {
            let stale = self.with_verdict(Verdict::Stale).count();
            return Err(format!(
                "{stale} stale baseline entr{} (debt shrank — run --update-baseline and \
                 commit the tightened file)",
                if stale == 1 { "y" } else { "ies" }
            ));
        }
        Ok(())
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A value of the tiny JSON subset the baseline uses: objects, strings and
/// non-negative integers. (No arrays/bools/null — the format never emits
/// them, and rejecting them keeps the parser honest about what it accepts.)
enum Value {
    Num(String),
    /// Parsed (so unknown string-valued fields skip cleanly) but never
    /// inspected: the known fields are all numbers or objects.
    #[allow(dead_code)]
    Str(String),
    Obj(Vec<(String, Value)>),
}

struct MiniJson {
    chars: Vec<char>,
    i: usize,
}

impl MiniJson {
    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.i).copied()
    }

    fn next(&mut self) -> Result<char, String> {
        let c = self.peek().ok_or("unexpected end of input")?;
        self.i += 1;
        Ok(c)
    }

    fn expect(&mut self, want: char) -> Result<(), String> {
        let got = self.next()?;
        if got == want {
            Ok(())
        } else {
            Err(format!("expected `{want}`, got `{got}` at offset {}", self.i))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek().ok_or("unexpected end of input")? {
            '{' => Ok(Value::Obj(self.object()?)),
            '"' => Ok(Value::Str(self.string()?)),
            '0'..='9' => {
                let start = self.i;
                while matches!(self.peek(), Some('0'..='9')) {
                    self.i += 1;
                }
                Ok(Value::Num(self.chars[start..self.i].iter().collect()))
            }
            c => Err(format!("unexpected character `{c}` at offset {}", self.i)),
        }
    }

    fn object(&mut self) -> Result<Vec<(String, Value)>, String> {
        self.skip_ws();
        self.expect('{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.i += 1;
            return Ok(fields);
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.next()? {
                ',' => continue,
                '}' => return Ok(fields),
                c => return Err(format!("expected `,` or `}}`, got `{c}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.next()? {
                '"' => return Ok(out),
                '\\' => match self.next()? {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    '/' => out.push('/'),
                    'n' => out.push('\n'),
                    't' => out.push('\t'),
                    'u' => {
                        let mut v = 0u32;
                        for _ in 0..4 {
                            let c = self.next()?;
                            v = v * 16
                                + c.to_digit(16)
                                    .ok_or_else(|| format!("invalid hex digit `{c}`"))?;
                        }
                        out.push(
                            char::from_u32(v).ok_or_else(|| format!("invalid codepoint {v:#x}"))?,
                        );
                    }
                    c => return Err(format!("invalid escape `\\{c}`")),
                },
                c => out.push(c),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::analyze;

    fn scan_of(entries: &[(&str, &str)]) -> Vec<(String, FileAnalysis)> {
        entries
            .iter()
            .map(|(path, src)| (path.to_string(), analyze(path, src)))
            .collect()
    }

    fn as_refs(scan: &[(String, FileAnalysis)]) -> Vec<(&String, &FileAnalysis)> {
        scan.iter().map(|(p, a)| (p, a)).collect()
    }

    const DIRTY: &str = "fn f(p: *mut u8) { unsafe { *p = 1 } }\n";
    const CLEAN: &str = "fn f() {}\n";

    #[test]
    fn encode_decode_round_trips() {
        let scan = scan_of(&[
            ("crates/a/src/lib.rs", DIRTY),
            ("crates/b/src/lib.rs", CLEAN),
            ("crates/c/src/lib.rs", "static mut X: u8 = 0;\nfn g(p: *mut u8) { unsafe { *p = 1 } }\n"),
        ]);
        let baseline = Baseline::from_scan(as_refs(&scan));
        assert_eq!(baseline.accepted("crates/a/src/lib.rs", Rule::Safety), 1);
        assert_eq!(baseline.accepted("crates/b/src/lib.rs", Rule::Safety), 0);
        assert_eq!(baseline.accepted("crates/c/src/lib.rs", Rule::Forbidden), 1);
        let back = Baseline::decode(&baseline.encode()).expect("decodes");
        assert_eq!(back, baseline);
    }

    #[test]
    fn empty_baseline_round_trips() {
        let empty = Baseline::default();
        let back = Baseline::decode(&empty.encode()).unwrap();
        assert_eq!(back, empty);
        assert_eq!(empty.total(), 0);
    }

    #[test]
    fn unknown_rule_and_newer_schema_rejected() {
        assert!(Baseline::decode("{\"schema\": 1, \"files\": {\"a.rs\": {\"mystery\": 1}}}")
            .unwrap_err()
            .contains("unknown rule"));
        assert!(Baseline::decode("{\"schema\": 999, \"files\": {}}")
            .unwrap_err()
            .contains("newer"));
        assert!(Baseline::decode("{\"files\": {}}").unwrap_err().contains("schema"));
        assert!(Baseline::decode("not json").is_err());
    }

    #[test]
    fn ratchet_equal_counts_pass_both_modes() {
        let scan = scan_of(&[("crates/a/src/lib.rs", DIRTY)]);
        let baseline = Baseline::from_scan(as_refs(&scan));
        let report = RatchetReport::compare(as_refs(&scan), &baseline);
        assert!(!report.regressed());
        assert!(!report.stale());
        assert!(report.gate(false).is_ok());
        assert!(report.gate(true).is_ok());
    }

    #[test]
    fn ratchet_growth_fails_both_modes() {
        let old = scan_of(&[("crates/a/src/lib.rs", DIRTY)]);
        let baseline = Baseline::from_scan(as_refs(&old));
        let grown = scan_of(&[(
            "crates/a/src/lib.rs",
            "fn f(p: *mut u8) { unsafe { *p = 1 } }\nfn g(p: *mut u8) { unsafe { *p = 2 } }\n",
        )]);
        let report = RatchetReport::compare(as_refs(&grown), &baseline);
        assert!(report.regressed());
        assert!(report.gate(false).is_err());
        assert!(report.gate(true).unwrap_err().contains("new violation"));
    }

    #[test]
    fn ratchet_shrink_is_stale_strict_only_failure() {
        let old = scan_of(&[("crates/a/src/lib.rs", DIRTY)]);
        let baseline = Baseline::from_scan(as_refs(&old));
        let fixed = scan_of(&[("crates/a/src/lib.rs", CLEAN)]);
        let report = RatchetReport::compare(as_refs(&fixed), &baseline);
        assert!(!report.regressed());
        assert!(report.stale());
        assert!(report.gate(false).is_ok(), "paying down debt never blocks locally");
        assert!(report.gate(true).unwrap_err().contains("stale"));
    }

    #[test]
    fn deleted_file_entry_is_stale() {
        let old = scan_of(&[("crates/gone/src/lib.rs", DIRTY)]);
        let baseline = Baseline::from_scan(as_refs(&old));
        let now = scan_of(&[("crates/a/src/lib.rs", CLEAN)]);
        let report = RatchetReport::compare(as_refs(&now), &baseline);
        assert!(report.stale());
        assert_eq!(report.with_verdict(Verdict::Stale).count(), 1);
        assert!(report.gate(true).is_err());
    }

    #[test]
    fn new_file_debt_regresses_against_empty_baseline() {
        let scan = scan_of(&[("crates/new/src/lib.rs", DIRTY)]);
        let report = RatchetReport::compare(as_refs(&scan), &Baseline::default());
        assert!(report.regressed());
    }

    #[test]
    fn update_then_compare_is_always_clean() {
        let scan = scan_of(&[
            ("crates/a/src/lib.rs", DIRTY),
            ("crates/b/src/lib.rs", "static mut X: u8 = 0;\n"),
        ]);
        let updated = Baseline::from_scan(as_refs(&scan));
        let report = RatchetReport::compare(as_refs(&scan), &updated);
        assert!(report.gate(true).is_ok());
    }
}
