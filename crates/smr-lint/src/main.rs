//! The `smr-lint` command-line gate.
//!
//! ```text
//! smr-lint [--root DIR] [--baseline FILE] [--strict] [--update-baseline]
//!          [--report FILE] [--list]
//! ```
//!
//! Exit codes: `0` clean (or baseline updated), `1` gate failure (new
//! violations; stale baseline under `--strict`), `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use smr_lint::baseline::Baseline;
use smr_lint::{report, Scan, BASELINE_FILE};

struct Options {
    root: PathBuf,
    baseline: PathBuf,
    strict: bool,
    update_baseline: bool,
    report_path: Option<PathBuf>,
    list: bool,
}

const USAGE: &str = "usage: smr-lint [--root DIR] [--baseline FILE] [--strict] \
[--update-baseline] [--report FILE] [--list]

  --root DIR          workspace root to scan (default: .)
  --baseline FILE     ratchet file (default: <root>/lint-baseline.json)
  --strict            CI mode: also fail on stale baseline entries
  --update-baseline   rewrite the baseline to match this scan and exit 0
  --report FILE       write the full report (all sites listed) to FILE
  --list              list every violation site, accepted debt included";

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut root: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut strict = false;
    let mut update_baseline = false;
    let mut report_path = None;
    let mut list = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                root = Some(PathBuf::from(
                    it.next().ok_or("--root needs a directory")?,
                ))
            }
            "--baseline" => {
                baseline = Some(PathBuf::from(it.next().ok_or("--baseline needs a file")?))
            }
            "--strict" => strict = true,
            "--update-baseline" => update_baseline = true,
            "--report" => {
                report_path = Some(PathBuf::from(it.next().ok_or("--report needs a file")?))
            }
            "--list" => list = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    let root = root.unwrap_or_else(|| PathBuf::from("."));
    let baseline = baseline.unwrap_or_else(|| root.join(BASELINE_FILE));
    Ok(Options {
        root,
        baseline,
        strict,
        update_baseline,
        report_path,
        list,
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("smr-lint: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let scan = match Scan::workspace(&opts.root) {
        Ok(scan) => scan,
        Err(e) => {
            eprintln!("smr-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if scan.files.is_empty() {
        eprintln!(
            "smr-lint: no lintable files under {} (is --root the workspace root?)",
            opts.root.display()
        );
        return ExitCode::from(2);
    }

    if opts.update_baseline {
        let baseline = scan.to_baseline();
        if let Err(e) = baseline.store(&opts.baseline) {
            eprintln!("smr-lint: {e}");
            return ExitCode::from(2);
        }
        println!(
            "smr-lint: wrote {} ({} accepted violation(s) across {} file(s))",
            opts.baseline.display(),
            baseline.total(),
            baseline.files.len()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = if opts.baseline.exists() {
        match Baseline::load(&opts.baseline) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("smr-lint: {e}");
                return ExitCode::from(2);
            }
        }
    } else if opts.strict {
        eprintln!(
            "smr-lint: --strict requires a committed baseline ({} not found)",
            opts.baseline.display()
        );
        return ExitCode::from(2);
    } else {
        Baseline::default()
    };

    let ratchet = scan.ratchet(&baseline);
    print!("{}", report::render(&scan, &ratchet, opts.list));
    if let Some(path) = &opts.report_path {
        let full = report::render(&scan, &ratchet, true);
        if let Err(e) = std::fs::write(path, full) {
            eprintln!("smr-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("smr-lint: report written to {}", path.display());
    }

    match ratchet.gate(opts.strict) {
        Ok(()) => {
            println!("smr-lint: PASS");
            ExitCode::SUCCESS
        }
        Err(reason) => {
            eprintln!("smr-lint: FAIL — {reason}");
            ExitCode::FAILURE
        }
    }
}
