//! Tier-1 gate: the live workspace must pass `smr-lint --strict` against the
//! committed baseline, and the `crates/hyaline` core must be at zero debt.

use std::path::Path;

use smr_lint::baseline::Baseline;
use smr_lint::{Scan, BASELINE_FILE};

fn workspace_root() -> &'static Path {
    // crates/smr-lint -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap()
}

#[test]
fn workspace_passes_strict_gate() {
    let root = workspace_root();
    let scan = Scan::workspace(root).expect("scan workspace");
    assert!(!scan.files.is_empty(), "walker found no sources");

    let baseline_path = root.join(BASELINE_FILE);
    let baseline = Baseline::load(&baseline_path)
        .unwrap_or_else(|e| panic!("committed {BASELINE_FILE} must load: {e}"));

    let ratchet = scan.ratchet(&baseline);
    if let Err(reason) = ratchet.gate(true) {
        let mut sites = String::new();
        for entry in ratchet.with_verdict(smr_lint::baseline::Verdict::Regressed) {
            if let Some(analysis) = scan.analysis(&entry.file) {
                for v in &analysis.violations {
                    if v.rule == entry.rule {
                        sites.push_str(&format!("  {}:{}: {}\n", entry.file, v.line, v.message));
                    }
                }
            }
        }
        panic!(
            "smr-lint strict gate failed: {reason}\n{sites}\
             fix the sites (add `// SAFETY:` / `// ORDERING:` justifications) or, \
             for paid-down debt, run `cargo run -p smr-lint -- --update-baseline`"
        );
    }
}

#[test]
fn hyaline_core_has_zero_debt() {
    let root = workspace_root();
    let scan = Scan::workspace(root).expect("scan workspace");
    let baseline = Baseline::load(&root.join(BASELINE_FILE)).expect("load baseline");

    let mut hyaline_seen = 0usize;
    for (path, analysis) in &scan.files {
        if !path.starts_with("crates/hyaline/") {
            continue;
        }
        hyaline_seen += 1;
        assert!(
            analysis.violations.is_empty(),
            "{path} must stay at zero lint debt, found: {:?}",
            analysis.violations
        );
    }
    assert!(hyaline_seen >= 5, "expected the hyaline sources to be scanned");

    for file in baseline.files.keys() {
        assert!(
            !file.starts_with("crates/hyaline/"),
            "baseline must not accept debt in the hyaline core ({file})"
        );
    }
}

#[test]
fn workspace_unsafe_inventory_is_tracked() {
    // The inventory is what makes the report useful as a CI artifact: it
    // must see the workspace's unsafe blocks and ordering sites.
    let scan = Scan::workspace(workspace_root()).expect("scan workspace");
    let unsafe_sites: usize = scan.files.iter().map(|(_, a)| a.unsafe_sites).sum();
    let orderings: usize = scan.files.iter().map(|(_, a)| a.orderings.total()).sum();
    assert!(unsafe_sites > 100, "unsafe inventory too small: {unsafe_sites}");
    assert!(orderings > 100, "ordering inventory too small: {orderings}");
}
