//! Golden-fixture tests: each fixture under `tests/fixtures/` is planted in
//! a scratch workspace and the `smr-lint` binary is run over it, asserting
//! the CLI exit codes the CI gate relies on (0 clean, 1 gate failure).

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

use smr_lint::rules::{analyze, Rule};

const BIN: &str = env!("CARGO_BIN_EXE_smr-lint");

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// A scratch workspace with one crate, torn down on drop.
struct Scratch {
    root: PathBuf,
}

impl Scratch {
    fn new(tag: &str, source: &str) -> Self {
        let root = std::env::temp_dir().join(format!(
            "smr-lint-golden-{}-{tag}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&root);
        let src = root.join("crates/fix/src");
        fs::create_dir_all(&src).unwrap();
        fs::write(src.join("lib.rs"), source).unwrap();
        Scratch { root }
    }

    fn write_source(&self, source: &str) {
        fs::write(self.root.join("crates/fix/src/lib.rs"), source).unwrap();
    }

    fn lint(&self, args: &[&str]) -> (i32, String) {
        let out = Command::new(BIN)
            .arg("--root")
            .arg(&self.root)
            .args(args)
            .output()
            .expect("spawn smr-lint");
        let text = format!(
            "{}{}",
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        );
        (out.status.code().expect("exit code"), text)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

#[test]
fn unannotated_unsafe_fails_strict() {
    let ws = Scratch::new("unsafe-bad", &fixture("unsafe_annotated.rs"));
    let (code, _) = ws.lint(&["--update-baseline"]);
    assert_eq!(code, 0, "baseline over the clean fixture");
    ws.write_source(&fixture("unsafe_unannotated.rs"));
    let (code, text) = ws.lint(&["--strict"]);
    assert_eq!(code, 1, "new unannotated unsafe must fail strict:\n{text}");
    assert!(text.contains("REGRESSIONS"), "report names the regression:\n{text}");
    assert!(text.contains("SAFETY"), "report explains what is missing:\n{text}");
}

#[test]
fn annotated_unsafe_passes_strict() {
    let ws = Scratch::new("unsafe-good", &fixture("unsafe_annotated.rs"));
    let (code, _) = ws.lint(&["--update-baseline"]);
    assert_eq!(code, 0);
    let (code, text) = ws.lint(&["--strict"]);
    assert_eq!(code, 0, "annotated fixture must pass:\n{text}");
    assert!(text.contains("violations: 0 found"), "{text}");
}

#[test]
fn relaxed_pointer_load_caught_and_justifiable() {
    let bad = analyze("crates/fix/src/lib.rs", &fixture("relaxed_ptr_load.rs"));
    assert_eq!(bad.count(Rule::Ordering), 1, "Relaxed pointer load caught");

    let good = analyze(
        "crates/fix/src/lib.rs",
        &fixture("relaxed_ptr_load_justified.rs"),
    );
    assert_eq!(good.count(Rule::Ordering), 0, "ORDERING: comment accepted");

    // End to end: introducing the unjustified load on a clean baseline fails.
    let ws = Scratch::new("relaxed", &fixture("relaxed_ptr_load_justified.rs"));
    let (code, _) = ws.lint(&["--update-baseline"]);
    assert_eq!(code, 0);
    ws.write_source(&fixture("relaxed_ptr_load.rs"));
    let (code, text) = ws.lint(&["--strict"]);
    assert_eq!(code, 1, "new Relaxed pointer load must fail strict:\n{text}");
    assert!(text.contains("ORDERING"), "{text}");
}

#[test]
fn forbidden_apis_fixture_counts() {
    let analysis = analyze("crates/fix/src/lib.rs", &fixture("forbidden_apis.rs"));
    assert_eq!(
        analysis.count(Rule::Forbidden),
        3,
        "static mut + sleep + forget-on-handle: {:?}",
        analysis.violations
    );
}

#[test]
fn ratchet_shrink_is_stale_only_under_strict() {
    let ws = Scratch::new("shrink", &fixture("unsafe_unannotated.rs"));
    let (code, _) = ws.lint(&["--update-baseline"]);
    assert_eq!(code, 0, "debt accepted into the baseline");
    let (code, _) = ws.lint(&["--strict"]);
    assert_eq!(code, 0, "accepted debt passes strict");

    // Pay the debt down; the baseline is now stale.
    ws.write_source(&fixture("unsafe_annotated.rs"));
    let (code, text) = ws.lint(&[]);
    assert_eq!(code, 0, "stale entries are advisory locally:\n{text}");
    assert!(text.contains("STALE"), "{text}");
    let (code, text) = ws.lint(&["--strict"]);
    assert_eq!(code, 1, "strict forces the ratchet to tighten:\n{text}");
    assert!(text.contains("--update-baseline"), "{text}");

    // Re-ratchet and the gate closes again.
    let (code, _) = ws.lint(&["--update-baseline"]);
    assert_eq!(code, 0);
    let (code, _) = ws.lint(&["--strict"]);
    assert_eq!(code, 0);
}

#[test]
fn ratchet_growth_fails_even_without_strict() {
    let ws = Scratch::new("grow", &fixture("unsafe_annotated.rs"));
    let (code, _) = ws.lint(&["--update-baseline"]);
    assert_eq!(code, 0);
    let grown = format!(
        "{}\npub fn extra(p: *mut u8) -> u8 {{\n    unsafe {{ *p }}\n}}\n",
        fixture("unsafe_annotated.rs")
    );
    ws.write_source(&grown);
    let (code, text) = ws.lint(&[]);
    assert_eq!(code, 1, "growth fails even non-strict:\n{text}");
}

#[test]
fn strict_without_baseline_is_a_usage_error() {
    let ws = Scratch::new("nobase", &fixture("unsafe_annotated.rs"));
    let (code, text) = ws.lint(&["--strict"]);
    assert_eq!(code, 2, "strict requires a committed baseline:\n{text}");
}

#[test]
fn report_file_lists_accepted_sites() {
    let ws = Scratch::new("report", &fixture("unsafe_unannotated.rs"));
    let (code, _) = ws.lint(&["--update-baseline"]);
    assert_eq!(code, 0);
    let report = ws.root.join("lint-report.txt");
    let (code, _) = ws.lint(&["--report", report.to_str().unwrap()]);
    assert_eq!(code, 0);
    let text = fs::read_to_string(&report).unwrap();
    assert!(
        text.contains("crates/fix/src/lib.rs:4:"),
        "artifact lists accepted debt sites:\n{text}"
    );
}
