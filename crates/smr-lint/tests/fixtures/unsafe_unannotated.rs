//! Golden fixture: an `unsafe` block with no adjacent justification.

pub fn read(p: *mut u8) -> u8 {
    unsafe { *p }
}
