//! Golden fixture: the same `Relaxed` pointer-bearing load, justified.

use std::sync::atomic::{AtomicUsize, Ordering};

pub fn head(slot: &AtomicUsize) -> *mut u64 {
    // ORDERING: Relaxed suffices — the pointer was published with Release
    // before this structure became reachable.
    slot.load(Ordering::Relaxed) as *mut u64
}
