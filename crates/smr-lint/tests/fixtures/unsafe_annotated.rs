//! Golden fixture: every unsafe site carries a justification.

/// Reads one byte.
///
/// # Safety
///
/// `p` must be valid for reads.
pub unsafe fn read(p: *mut u8) -> u8 {
    // SAFETY: guaranteed valid by this function's own contract.
    unsafe { *p }
}

pub struct Wrapper(*mut u8);

// SAFETY: the pointer is exclusively owned by the wrapper.
unsafe impl Send for Wrapper {}
