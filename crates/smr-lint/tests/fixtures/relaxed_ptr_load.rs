//! Golden fixture: a `Relaxed` atomic load cast to a raw pointer in the
//! same statement, with no `// ORDERING:` justification.

use std::sync::atomic::{AtomicUsize, Ordering};

pub fn head(slot: &AtomicUsize) -> *mut u64 {
    slot.load(Ordering::Relaxed) as *mut u64
}
