//! Golden fixture: forbidden APIs — `static mut`, `thread::sleep` outside
//! bench/test code, and `mem::forget` on a handle type.

use std::time::Duration;

static mut COUNTER: u64 = 0;

pub struct Handle;

pub fn spin() {
    std::thread::sleep(Duration::from_millis(1));
}

pub fn leak(handle: Handle) {
    std::mem::forget(handle);
}
