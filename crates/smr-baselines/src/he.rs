//! Hazard eras (HE) \[31\].
//!
//! HE keeps HP's per-thread reservation slots but publishes *eras* instead
//! of pointer addresses: a reservation of era `v` protects every node whose
//! lifetime interval `[birth, retire]` contains `v`. Reservations follow
//! the HP publish-and-validate protocol (store the current era, re-read the
//! pointer) but, because many nodes share one era, traversals that stay
//! within one era avoid re-publishing — faster than HP, still robust.

use crossbeam_utils::CachePadded;
use smr_core::{
    Atomic, EraClock, LocalStats, Magazine, NodePool, Shared, SlotRegistry, Smr, SmrConfig,
    SmrHandle, SmrNode, SmrStats,
};
use std::marker::PhantomData;
use std::sync::atomic::{fence, AtomicU64, Ordering};

use crate::orphan::{link_chain, OrphanList};

/// Header word: birth era (set at allocation, survives until free).
const W_BIRTH: usize = 1;
/// Header word: retire era.
const W_RETIRE: usize = 2;

/// Reservation value meaning "nothing reserved".
const NONE: u64 = 0;

/// One thread's era-reservation block.
#[derive(Debug)]
struct EraBlock {
    slots: Box<[AtomicU64]>,
}

impl EraBlock {
    fn new(k: usize) -> Self {
        Self {
            slots: (0..k).map(|_| AtomicU64::new(NONE)).collect(),
        }
    }
}

/// The hazard-eras reclamation domain.
///
/// # Example
///
/// ```
/// use smr_baselines::He;
/// use smr_core::{Smr, SmrHandle};
///
/// let domain: He<u64> = He::new();
/// let mut h = domain.handle();
/// h.enter();
/// let node = h.alloc(3);
/// unsafe { h.retire(node) };
/// h.leave();
/// ```
pub struct He<T: Send + 'static> {
    reservations: Box<[CachePadded<EraBlock>]>,
    registry: SlotRegistry,
    era: EraClock,
    era_freq: u64,
    scan_threshold: usize,
    orphans: OrphanList<T>,
    stats: SmrStats,
    pool: NodePool,
    _marker: PhantomData<fn(T) -> T>,
}

impl<T: Send + 'static> std::fmt::Debug for He<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("He")
            .field("era", &self.era.current())
            .field("registered", &self.registry.claimed())
            .finish_non_exhaustive()
    }
}

impl<T: Send + 'static> Smr<T> for He<T> {
    type Handle<'d> = HeHandle<'d, T>;

    fn with_config(config: SmrConfig) -> Self {
        Self {
            reservations: (0..config.max_threads)
                .map(|_| CachePadded::new(EraBlock::new(config.max_protect)))
                .collect(),
            registry: SlotRegistry::new(config.max_threads),
            era: EraClock::new(),
            era_freq: config.era_freq,
            scan_threshold: config.scan_threshold,
            orphans: OrphanList::new(),
            stats: SmrStats::new(),
            pool: NodePool::for_node::<T>(&config),
            _marker: PhantomData,
        }
    }

    fn handle(&self) -> HeHandle<'_, T> {
        HeHandle {
            slot: self.registry.claim(),
            domain: self,
            limbo: Vec::new(),
            alloc_counter: 0,
            local_stats: LocalStats::new(),
            mag: self.pool.magazine(),
        }
    }

    fn stats(&self) -> &SmrStats {
        &self.stats
    }

    fn name() -> &'static str {
        "HE"
    }

    fn robust() -> bool {
        true
    }

    fn needs_seek_validation() -> bool {
        // A reserved era taken after a node's retire era does not cover the
        // node's lifetime interval; traversals must re-validate reachability.
        true
    }
}

impl<T: Send + 'static> Drop for He<T> {
    fn drop(&mut self) {
        let chain = self.orphans.take_all();
        let mut freed = 0;
        unsafe {
            OrphanList::for_each_owned(chain, |node| {
                SmrNode::dealloc(node, true);
                freed += 1;
            });
        }
        self.stats.add_freed(freed);
    }
}

/// Per-thread handle to a [`He`] domain.
pub struct HeHandle<'d, T: Send + 'static> {
    domain: &'d He<T>,
    slot: usize,
    limbo: Vec<*mut SmrNode<T>>,
    alloc_counter: u64,
    local_stats: LocalStats,
    mag: Magazine,
}

// SAFETY: the limbo list holds exclusively owned retired nodes and the
// registry slot index stays valid wherever the handle runs; the domain
// borrow is `Sync`. A parked handle may therefore move between tasks.
unsafe impl<T: Send + 'static> Send for HeHandle<'_, T> {}

impl<T: Send + 'static> std::fmt::Debug for HeHandle<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeHandle")
            .field("slot", &self.slot)
            .field("limbo", &self.limbo.len())
            .finish_non_exhaustive()
    }
}

impl<T: Send + 'static> HeHandle<'_, T> {
    fn adopt_orphans(&mut self) {
        let chain = self.domain.orphans.take_all();
        if chain.is_null() {
            return;
        }
        unsafe {
            OrphanList::for_each_owned(chain, |node| self.limbo.push(node));
        }
    }

    /// Frees every limbo node whose `[birth, retire]` interval contains no
    /// published reservation era.
    fn scan(&mut self) {
        self.adopt_orphans();
        fence(Ordering::SeqCst);
        let domain = self.domain;
        let mut eras: Vec<u64> = Vec::with_capacity(16);
        for idx in domain.registry.iter_claimed() {
            for r in domain.reservations[idx].slots.iter() {
                let v = r.load(Ordering::SeqCst);
                if v != NONE {
                    eras.push(v);
                }
            }
        }
        eras.sort_unstable();
        let mut freed = 0u64;
        let domain = self.domain;
        let mag = &mut self.mag;
        self.limbo.retain(|&node| {
            let header = unsafe { (*node).header() };
            let birth = header.word(W_BIRTH).load(Ordering::Relaxed) as u64;
            let retire = header.word(W_RETIRE).load(Ordering::Relaxed) as u64;
            // Any reservation v with birth <= v <= retire pins the node.
            let i = eras.partition_point(|&v| v < birth);
            if i < eras.len() && eras[i] <= retire {
                true
            } else {
                unsafe { domain.pool.dispose(mag, &domain.stats, node, true) };
                freed += 1;
                false
            }
        });
        if freed > 0 {
            self.local_stats.on_free(&self.domain.stats, freed);
        }
    }

    fn clear_reservations(&mut self) {
        for r in self.domain.reservations[self.slot].slots.iter() {
            r.store(NONE, Ordering::Release);
        }
    }
}

impl<T: Send + 'static> SmrHandle<T> for HeHandle<'_, T> {
    fn enter(&mut self) {}

    fn leave(&mut self) {
        self.clear_reservations();
    }

    fn alloc(&mut self, value: T) -> Shared<T> {
        let domain = self.domain;
        self.alloc_counter += 1;
        if self.alloc_counter.is_multiple_of(domain.era_freq) {
            domain.era.advance();
        }
        self.local_stats.on_alloc(&domain.stats);
        let node = domain.pool.alloc(&mut self.mag, &domain.stats, value);
        unsafe {
            (*node.as_ptr())
                .header()
                .word(W_BIRTH)
                .store(domain.era.current() as usize, Ordering::Relaxed);
        }
        Shared::from_node(node)
    }

    unsafe fn dealloc(&mut self, ptr: Shared<T>) {
        let domain = self.domain;
        self.local_stats.on_dealloc(&domain.stats);
        domain.pool.dispose(&mut self.mag, &domain.stats, ptr.as_node_ptr(), true);
    }

    /// The HE read protocol: publish the current era in reservation `idx`,
    /// then re-read the pointer until the era is stable.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is not below [`SmrConfig::max_protect`].
    fn protect(&mut self, idx: usize, src: &Atomic<T>) -> Shared<T> {
        let domain = self.domain;
        let r = &domain.reservations[self.slot].slots[idx];
        let mut prev = r.load(Ordering::Relaxed);
        loop {
            let p = src.load(Ordering::Acquire);
            let e = domain.era.current();
            if e == prev {
                return p;
            }
            r.store(e, Ordering::SeqCst);
            fence(Ordering::SeqCst);
            prev = e;
        }
    }

    fn copy_protection(&mut self, from: usize, to: usize) {
        let slots = &self.domain.reservations[self.slot].slots;
        // The era at `from` pins every interval containing it; publishing
        // the same era at `to` extends that pin.
        let era = slots[from].load(Ordering::Relaxed);
        slots[to].store(era, Ordering::SeqCst);
    }

    unsafe fn retire(&mut self, ptr: Shared<T>) {
        let domain = self.domain;
        let node = ptr.as_node_ptr();
        (*node)
            .header()
            .word(W_RETIRE)
            .store(domain.era.current() as usize, Ordering::Relaxed);
        self.local_stats.on_retire(&domain.stats);
        self.limbo.push(node);
        if self.limbo.len() >= domain.scan_threshold {
            self.scan();
        }
    }

    fn flush(&mut self) {
        self.scan();
        let domain = self.domain;
        domain.pool.flush(&mut self.mag, &domain.stats);
        self.local_stats.flush(&domain.stats);
    }
}

impl<T: Send + 'static> Drop for HeHandle<'_, T> {
    fn drop(&mut self) {
        self.clear_reservations();
        self.scan();
        if let Some((head, tail)) = unsafe { link_chain(&self.limbo) } {
            unsafe { self.domain.orphans.push_chain(head, tail) };
        }
        self.limbo.clear();
        let domain = self.domain;
        domain.pool.flush(&mut self.mag, &domain.stats);
        self.local_stats.flush(&domain.stats);
        domain.registry.release(self.slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn domain() -> He<u64> {
        He::with_config(SmrConfig {
            era_freq: 4,
            scan_threshold: 8,
            max_protect: 4,
            max_threads: 32,
            ..SmrConfig::default()
        })
    }

    #[test]
    fn single_thread_reclaims_everything() {
        let d = domain();
        let mut h = d.handle();
        for i in 0..200u64 {
            h.enter();
            let n = h.alloc(i);
            unsafe { h.retire(n) };
            h.leave();
        }
        h.flush();
        assert_eq!(d.stats().unreclaimed(), 0);
        drop(h);
    }

    #[test]
    fn reservation_era_pins_interval() {
        let d = &domain();
        let published = &std::sync::Barrier::new(2);
        let protected = &std::sync::Barrier::new(2);
        let release = &std::sync::Barrier::new(2);
        let link = &Atomic::<u64>::null();
        std::thread::scope(|s| {
            s.spawn(move || {
                let mut reader = d.handle();
                reader.enter();
                published.wait();
                let seen = reader.protect(0, link);
                protected.wait();
                release.wait();
                assert_eq!(unsafe { *seen.deref() }, 5);
                reader.leave();
            });
            let mut writer = d.handle();
            writer.enter();
            let node = writer.alloc(5);
            link.store(node, Ordering::Release);
            published.wait();
            protected.wait();
            let unlinked = link.swap(Shared::null(), Ordering::AcqRel);
            unsafe { writer.retire(unlinked) };
            writer.leave();
            writer.flush();
            assert!(d.stats().unreclaimed() >= 1);
            release.wait();
        });
    }

    #[test]
    fn robust_against_stalled_thread() {
        let d = &domain();
        let entered = &std::sync::Barrier::new(2);
        let done = &std::sync::Barrier::new(2);
        std::thread::scope(|s| {
            s.spawn(move || {
                let mut stalled = d.handle();
                stalled.enter();
                // Take a reservation, then stall.
                let link = Atomic::<u64>::null();
                let _ = stalled.protect(0, &link);
                entered.wait();
                done.wait();
                stalled.leave();
            });
            entered.wait();
            let mut worker = d.handle();
            for i in 0..5_000u64 {
                worker.enter();
                let n = worker.alloc(i);
                unsafe { worker.retire(n) };
                worker.leave();
            }
            worker.flush();
            let unreclaimed = d.stats().unreclaimed();
            assert!(
                unreclaimed < 100,
                "HE must stay robust; {unreclaimed} nodes pinned"
            );
            done.wait();
        });
    }

    #[test]
    fn multithreaded_stress() {
        let d = &domain();
        std::thread::scope(|s| {
            for t in 0..8 {
                s.spawn(move || {
                    let mut h = d.handle();
                    for i in 0..2_000u64 {
                        h.enter();
                        let n = h.alloc(t * 1_000_000 + i);
                        unsafe { h.retire(n) };
                        h.leave();
                    }
                });
            }
        });
    }
}
