//! Baseline safe-memory-reclamation schemes the Hyaline paper evaluates
//! against (Section 6 and Table 1):
//!
//! * [`Leaky`] — no reclamation at all; the evaluation's general baseline.
//! * [`Ebr`] — epoch-based reclamation ("Epoch"), fast but not robust.
//! * [`Hp`] — Michael's hazard pointers, robust but per-access expensive.
//! * [`He`] — hazard eras, HP's protocol over era values.
//! * [`Ibr`] — 2GE interval-based reclamation.
//! * [`Lfrc`] — lock-free reference counting, the Table 1 ablation row.
//!
//! All schemes implement [`smr_core::Smr`] and share `smr-core`'s universal
//! three-word node header, so per-node memory overhead is identical across
//! schemes and benchmark comparisons are fair.
//!
//! # Example
//!
//! ```
//! use smr_baselines::Ebr;
//! use smr_core::{Smr, SmrHandle};
//!
//! let domain: Ebr<u64> = Ebr::new();
//! let mut handle = domain.handle();
//! handle.enter();
//! let node = handle.alloc(1);
//! unsafe { handle.retire(node) };
//! handle.leave();
//! ```

#![warn(missing_docs)]

mod ebr;
mod he;
mod hp;
mod ibr;
mod leaky;
mod lfrc;
mod orphan;

pub use ebr::{Ebr, EbrHandle};
pub use he::{He, HeHandle};
pub use hp::{Hp, HpHandle};
pub use ibr::{Ibr, IbrHandle};
pub use leaky::{Leaky, LeakyHandle};
pub use lfrc::{Lfrc, LfrcHandle};
