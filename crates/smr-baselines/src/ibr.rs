//! Interval-based reclamation: the 2GE-IBR variant \[35\].
//!
//! Each thread keeps a single reservation *interval* `[lower, upper]`:
//! `enter` sets both to the current era, and every guarded pointer read
//! ratchets `upper` up to the era observed after the read. A retired node —
//! whose lifetime is the interval `[birth era, retire era]` — can be freed
//! once it overlaps no thread's reservation interval. Compared to HE there
//! is one interval per thread instead of one era per protection index,
//! which is why its API needs no index management (the paper calls the 2GE
//! model "reminiscent of EBR").

use crossbeam_utils::CachePadded;
use smr_core::{
    Atomic, EraClock, LocalStats, Magazine, NodePool, Shared, SlotRegistry, Smr, SmrConfig,
    SmrHandle, SmrNode, SmrStats,
};
use std::marker::PhantomData;
use std::sync::atomic::{fence, AtomicU64, Ordering};

use crate::orphan::{link_chain, OrphanList};

/// Header word: birth era.
const W_BIRTH: usize = 1;
/// Header word: retire era.
const W_RETIRE: usize = 2;

/// Reservation value meaning "not inside an operation".
const INACTIVE: u64 = u64::MAX;

/// One thread's reservation interval.
#[derive(Debug)]
struct Interval {
    lower: AtomicU64,
    upper: AtomicU64,
}

impl Interval {
    fn new() -> Self {
        Self {
            lower: AtomicU64::new(INACTIVE),
            upper: AtomicU64::new(INACTIVE),
        }
    }
}

/// The 2GE-IBR reclamation domain.
///
/// # Example
///
/// ```
/// use smr_baselines::Ibr;
/// use smr_core::{Smr, SmrHandle};
///
/// let domain: Ibr<u64> = Ibr::new();
/// let mut h = domain.handle();
/// h.enter();
/// let node = h.alloc(2);
/// unsafe { h.retire(node) };
/// h.leave();
/// ```
pub struct Ibr<T: Send + 'static> {
    reservations: Box<[CachePadded<Interval>]>,
    registry: SlotRegistry,
    era: EraClock,
    era_freq: u64,
    scan_threshold: usize,
    orphans: OrphanList<T>,
    stats: SmrStats,
    pool: NodePool,
    _marker: PhantomData<fn(T) -> T>,
}

impl<T: Send + 'static> std::fmt::Debug for Ibr<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ibr")
            .field("era", &self.era.current())
            .field("registered", &self.registry.claimed())
            .finish_non_exhaustive()
    }
}

impl<T: Send + 'static> Smr<T> for Ibr<T> {
    type Handle<'d> = IbrHandle<'d, T>;

    fn with_config(config: SmrConfig) -> Self {
        Self {
            reservations: (0..config.max_threads)
                .map(|_| CachePadded::new(Interval::new()))
                .collect(),
            registry: SlotRegistry::new(config.max_threads),
            era: EraClock::new(),
            era_freq: config.era_freq,
            scan_threshold: config.scan_threshold,
            orphans: OrphanList::new(),
            stats: SmrStats::new(),
            pool: NodePool::for_node::<T>(&config),
            _marker: PhantomData,
        }
    }

    fn handle(&self) -> IbrHandle<'_, T> {
        IbrHandle {
            slot: self.registry.claim(),
            domain: self,
            limbo: Vec::new(),
            alloc_counter: 0,
            upper_cache: INACTIVE,
            local_stats: LocalStats::new(),
            mag: self.pool.magazine(),
        }
    }

    fn stats(&self) -> &SmrStats {
        &self.stats
    }

    fn name() -> &'static str {
        "IBR"
    }

    fn robust() -> bool {
        true
    }
}

impl<T: Send + 'static> Drop for Ibr<T> {
    fn drop(&mut self) {
        let chain = self.orphans.take_all();
        let mut freed = 0;
        unsafe {
            OrphanList::for_each_owned(chain, |node| {
                SmrNode::dealloc(node, true);
                freed += 1;
            });
        }
        self.stats.add_freed(freed);
    }
}

/// Per-thread handle to an [`Ibr`] domain.
pub struct IbrHandle<'d, T: Send + 'static> {
    domain: &'d Ibr<T>,
    slot: usize,
    limbo: Vec<*mut SmrNode<T>>,
    alloc_counter: u64,
    /// Local copy of our published `upper` (sole writer).
    upper_cache: u64,
    local_stats: LocalStats,
    mag: Magazine,
}

// SAFETY: the limbo list holds exclusively owned retired nodes, the slot
// index and cached upper bound stay valid wherever the handle runs (the
// handle remains the slot's only writer), and the domain borrow is `Sync`.
unsafe impl<T: Send + 'static> Send for IbrHandle<'_, T> {}

impl<T: Send + 'static> std::fmt::Debug for IbrHandle<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IbrHandle")
            .field("slot", &self.slot)
            .field("limbo", &self.limbo.len())
            .finish_non_exhaustive()
    }
}

impl<T: Send + 'static> IbrHandle<'_, T> {
    fn adopt_orphans(&mut self) {
        let chain = self.domain.orphans.take_all();
        if chain.is_null() {
            return;
        }
        unsafe {
            OrphanList::for_each_owned(chain, |node| self.limbo.push(node));
        }
    }

    /// Frees every limbo node whose lifetime interval is disjoint from all
    /// published reservation intervals.
    fn scan(&mut self) {
        self.adopt_orphans();
        fence(Ordering::SeqCst);
        let domain = self.domain;
        let mut intervals: Vec<(u64, u64)> = Vec::with_capacity(8);
        for idx in domain.registry.iter_claimed() {
            let r = &domain.reservations[idx];
            let lower = r.lower.load(Ordering::SeqCst);
            let upper = r.upper.load(Ordering::SeqCst);
            if lower != INACTIVE {
                intervals.push((lower, upper));
            }
        }
        let mut freed = 0u64;
        let domain = self.domain;
        let mag = &mut self.mag;
        self.limbo.retain(|&node| {
            let header = unsafe { (*node).header() };
            let birth = header.word(W_BIRTH).load(Ordering::Relaxed) as u64;
            let retire = header.word(W_RETIRE).load(Ordering::Relaxed) as u64;
            let pinned = intervals
                .iter()
                .any(|&(lower, upper)| lower <= retire && birth <= upper);
            if pinned {
                true
            } else {
                unsafe { domain.pool.dispose(mag, &domain.stats, node, true) };
                freed += 1;
                false
            }
        });
        if freed > 0 {
            self.local_stats.on_free(&self.domain.stats, freed);
        }
    }
}

impl<T: Send + 'static> SmrHandle<T> for IbrHandle<'_, T> {
    fn enter(&mut self) {
        let domain = self.domain;
        let r = &domain.reservations[self.slot];
        let e = domain.era.current();
        r.lower.store(e, Ordering::SeqCst);
        r.upper.store(e, Ordering::SeqCst);
        fence(Ordering::SeqCst);
        self.upper_cache = e;
    }

    fn leave(&mut self) {
        let r = &self.domain.reservations[self.slot];
        r.lower.store(INACTIVE, Ordering::Release);
        r.upper.store(INACTIVE, Ordering::Release);
        self.upper_cache = INACTIVE;
    }

    fn alloc(&mut self, value: T) -> Shared<T> {
        let domain = self.domain;
        self.alloc_counter += 1;
        if self.alloc_counter.is_multiple_of(domain.era_freq) {
            domain.era.advance();
        }
        self.local_stats.on_alloc(&domain.stats);
        let node = domain.pool.alloc(&mut self.mag, &domain.stats, value);
        unsafe {
            (*node.as_ptr())
                .header()
                .word(W_BIRTH)
                .store(domain.era.current() as usize, Ordering::Relaxed);
        }
        Shared::from_node(node)
    }

    unsafe fn dealloc(&mut self, ptr: Shared<T>) {
        let domain = self.domain;
        self.local_stats.on_dealloc(&domain.stats);
        domain.pool.dispose(&mut self.mag, &domain.stats, ptr.as_node_ptr(), true);
    }

    /// The 2GE read protocol: ratchet `upper` to the era observed after the
    /// pointer read, re-reading until stable.
    fn protect(&mut self, _idx: usize, src: &Atomic<T>) -> Shared<T> {
        let domain = self.domain;
        let r = &domain.reservations[self.slot];
        loop {
            let p = src.load(Ordering::Acquire);
            let e = domain.era.current();
            if e == self.upper_cache {
                return p;
            }
            r.upper.store(e, Ordering::SeqCst);
            fence(Ordering::SeqCst);
            self.upper_cache = e;
        }
    }

    unsafe fn retire(&mut self, ptr: Shared<T>) {
        let domain = self.domain;
        let node = ptr.as_node_ptr();
        (*node)
            .header()
            .word(W_RETIRE)
            .store(domain.era.current() as usize, Ordering::Relaxed);
        self.local_stats.on_retire(&domain.stats);
        self.limbo.push(node);
        if self.limbo.len() >= domain.scan_threshold {
            self.scan();
        }
    }

    fn flush(&mut self) {
        self.scan();
        let domain = self.domain;
        domain.pool.flush(&mut self.mag, &domain.stats);
        self.local_stats.flush(&domain.stats);
    }
}

impl<T: Send + 'static> Drop for IbrHandle<'_, T> {
    fn drop(&mut self) {
        let r = &self.domain.reservations[self.slot];
        r.lower.store(INACTIVE, Ordering::Release);
        r.upper.store(INACTIVE, Ordering::Release);
        self.scan();
        if let Some((head, tail)) = unsafe { link_chain(&self.limbo) } {
            unsafe { self.domain.orphans.push_chain(head, tail) };
        }
        self.limbo.clear();
        let domain = self.domain;
        domain.pool.flush(&mut self.mag, &domain.stats);
        self.local_stats.flush(&domain.stats);
        domain.registry.release(self.slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn domain() -> Ibr<u64> {
        Ibr::with_config(SmrConfig {
            era_freq: 4,
            scan_threshold: 8,
            max_threads: 32,
            ..SmrConfig::default()
        })
    }

    #[test]
    fn single_thread_reclaims_everything() {
        let d = domain();
        let mut h = d.handle();
        for i in 0..200u64 {
            h.enter();
            let n = h.alloc(i);
            unsafe { h.retire(n) };
            h.leave();
        }
        h.flush();
        assert_eq!(d.stats().unreclaimed(), 0);
        drop(h);
    }

    #[test]
    fn interval_pins_protected_node() {
        let d = &domain();
        let published = &std::sync::Barrier::new(2);
        let protected = &std::sync::Barrier::new(2);
        let release = &std::sync::Barrier::new(2);
        let link = &Atomic::<u64>::null();
        std::thread::scope(|s| {
            s.spawn(move || {
                let mut reader = d.handle();
                reader.enter();
                published.wait();
                let seen = reader.protect(0, link);
                protected.wait();
                release.wait();
                assert_eq!(unsafe { *seen.deref() }, 8);
                reader.leave();
            });
            let mut writer = d.handle();
            writer.enter();
            let node = writer.alloc(8);
            link.store(node, Ordering::Release);
            published.wait();
            protected.wait();
            let unlinked = link.swap(Shared::null(), Ordering::AcqRel);
            unsafe { writer.retire(unlinked) };
            writer.leave();
            writer.flush();
            assert!(d.stats().unreclaimed() >= 1);
            release.wait();
        });
    }

    #[test]
    fn robust_against_stalled_thread() {
        let d = &domain();
        let entered = &std::sync::Barrier::new(2);
        let done = &std::sync::Barrier::new(2);
        std::thread::scope(|s| {
            s.spawn(move || {
                let mut stalled = d.handle();
                stalled.enter(); // takes [e, e] and stalls
                entered.wait();
                done.wait();
                stalled.leave();
            });
            entered.wait();
            let mut worker = d.handle();
            for i in 0..5_000u64 {
                worker.enter();
                let n = worker.alloc(i);
                unsafe { worker.retire(n) };
                worker.leave();
            }
            worker.flush();
            let unreclaimed = d.stats().unreclaimed();
            assert!(
                unreclaimed < 100,
                "IBR must stay robust; {unreclaimed} nodes pinned"
            );
            done.wait();
        });
    }

    #[test]
    fn multithreaded_stress() {
        let d = &domain();
        std::thread::scope(|s| {
            for t in 0..8 {
                s.spawn(move || {
                    let mut h = d.handle();
                    for i in 0..2_000u64 {
                        h.enter();
                        let n = h.alloc(t * 1_000_000 + i);
                        unsafe { h.retire(n) };
                        h.leave();
                    }
                });
            }
        });
    }
}
