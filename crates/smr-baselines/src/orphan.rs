//! Hand-off of retired nodes from dying handles.
//!
//! The scan-based schemes (EBR, HP, HE, IBR) keep retired nodes in
//! thread-local limbo lists. When a handle is dropped while other threads
//! still hold reservations, its remaining limbo nodes cannot be freed yet;
//! classic implementations make unregistration *blocking* (the paper calls
//! this out as a transparency failure, Section 2.4). To keep handle drop
//! non-blocking — and tests deadlock-free — dying handles push their limbo
//! chain onto a lock-free orphan list that any later scan adopts.

use smr_core::SmrNode;
use std::sync::atomic::{AtomicPtr, Ordering};

/// Header word used to chain orphaned nodes (shared with the limbo `next`
/// role in every scan-based scheme).
pub(crate) const W_CHAIN_NEXT: usize = 0;

/// A lock-free stack of orphaned node chains.
pub(crate) struct OrphanList<T> {
    head: AtomicPtr<SmrNode<T>>,
}

impl<T> OrphanList<T> {
    pub(crate) fn new() -> Self {
        Self {
            head: AtomicPtr::new(std::ptr::null_mut()),
        }
    }

    /// Pushes a chain of nodes linked through header word 0.
    ///
    /// # Safety
    ///
    /// `head..=tail` must be a valid chain of exclusively owned retired
    /// nodes; `tail`'s word 0 is overwritten.
    pub(crate) unsafe fn push_chain(&self, head: *mut SmrNode<T>, tail: *mut SmrNode<T>) {
        debug_assert!(!head.is_null() && !tail.is_null());
        let mut old = self.head.load(Ordering::Acquire);
        loop {
            (*tail)
                .header()
                .word(W_CHAIN_NEXT)
                .store(old as usize, Ordering::Relaxed);
            match self
                .head
                .compare_exchange_weak(old, head, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return,
                Err(now) => old = now,
            }
        }
    }

    /// Detaches the entire orphan list, returning the chain head (possibly
    /// null). The caller takes ownership of every node in the chain.
    pub(crate) fn take_all(&self) -> *mut SmrNode<T> {
        self.head.swap(std::ptr::null_mut(), Ordering::AcqRel)
    }

    /// Walks a chain taken by [`OrphanList::take_all`], invoking `f` on each
    /// node.
    ///
    /// # Safety
    ///
    /// `head` must be a chain returned by `take_all` that the caller owns.
    pub(crate) unsafe fn for_each_owned(
        mut head: *mut SmrNode<T>,
        mut f: impl FnMut(*mut SmrNode<T>),
    ) {
        while !head.is_null() {
            let next = (*head).header().word(W_CHAIN_NEXT).load(Ordering::Relaxed) as *mut _;
            f(head);
            head = next;
        }
    }
}

impl<T> std::fmt::Debug for OrphanList<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OrphanList").finish_non_exhaustive()
    }
}

/// Links a limbo vector into a chain through header word 0 and returns
/// `(head, tail)`; helper for handing nodes to an [`OrphanList`].
///
/// # Safety
///
/// The nodes must be exclusively owned; word 0 of each is overwritten.
/// Other header words (retire epochs / eras) are preserved.
pub(crate) unsafe fn link_chain<T>(
    nodes: &[*mut SmrNode<T>],
) -> Option<(*mut SmrNode<T>, *mut SmrNode<T>)> {
    let (&head, rest) = nodes.split_first()?;
    let mut prev = head;
    for &node in rest {
        (*prev)
            .header()
            .word(W_CHAIN_NEXT)
            .store(node as usize, Ordering::Relaxed);
        prev = node;
    }
    Some((head, prev))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_take_roundtrip() {
        let list = OrphanList::<u32>::new();
        let nodes: Vec<_> = (0..4).map(|v| SmrNode::alloc(v).as_ptr()).collect();
        let (head, tail) = unsafe { link_chain(&nodes) }.unwrap();
        unsafe { list.push_chain(head, tail) };

        let taken = list.take_all();
        assert!(!taken.is_null());
        let mut seen = Vec::new();
        unsafe {
            OrphanList::for_each_owned(taken, |n| seen.push(n));
        }
        assert_eq!(seen, nodes);
        assert!(list.take_all().is_null());
        for n in nodes {
            unsafe { SmrNode::dealloc(n, true) };
        }
    }

    #[test]
    fn chains_stack_up() {
        let list = OrphanList::<u32>::new();
        let a: Vec<_> = (0..2).map(|v| SmrNode::alloc(v).as_ptr()).collect();
        let b: Vec<_> = (10..13).map(|v| SmrNode::alloc(v).as_ptr()).collect();
        let (ha, ta) = unsafe { link_chain(&a) }.unwrap();
        unsafe { list.push_chain(ha, ta) };
        let (hb, tb) = unsafe { link_chain(&b) }.unwrap();
        unsafe { list.push_chain(hb, tb) };

        let mut count = 0;
        unsafe {
            OrphanList::for_each_owned(list.take_all(), |n| {
                count += 1;
                SmrNode::dealloc(n, true);
            });
        }
        assert_eq!(count, 5);
    }

    #[test]
    fn concurrent_pushes_preserve_all_nodes() {
        let list = &OrphanList::<u64>::new();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                s.spawn(move || {
                    for i in 0..100 {
                        let node = SmrNode::alloc(t * 1000 + i).as_ptr();
                        unsafe { list.push_chain(node, node) };
                    }
                });
            }
        });
        let mut count = 0;
        unsafe {
            OrphanList::for_each_owned(list.take_all(), |n| {
                count += 1;
                SmrNode::dealloc(n, true);
            });
        }
        assert_eq!(count, 400);
    }
}
