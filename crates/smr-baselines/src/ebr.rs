//! Epoch-based reclamation (EBR), the paper's `Epoch` baseline.
//!
//! This is the variant used by the IBR benchmark framework \[35\] that the
//! paper compares against: a global epoch counter advanced every
//! `era_freq` operations, per-thread epoch *reservations* published on
//! `enter`, and per-thread limbo lists scanned when they exceed a
//! threshold. A retired node is freed once every active reservation is
//! newer than its retire epoch. Fast — and **not robust**: one stalled
//! thread pins its reservation and with it every node retired afterwards.

use crossbeam_utils::CachePadded;
use smr_core::{
    Atomic, EraClock, LocalStats, Magazine, NodePool, Shared, SlotRegistry, Smr, SmrConfig,
    SmrHandle, SmrNode, SmrStats,
};
use std::marker::PhantomData;
use std::sync::atomic::{fence, AtomicU64, Ordering};

use crate::orphan::{link_chain, OrphanList};

/// Header word: retire epoch (word 0 is the limbo chain next, managed by
/// the orphan module).
const W_EPOCH: usize = 1;

/// Reservation value meaning "not inside an operation".
const INACTIVE: u64 = u64::MAX;

/// The epoch-based reclamation domain.
///
/// # Example
///
/// ```
/// use smr_baselines::Ebr;
/// use smr_core::{Smr, SmrHandle};
///
/// let domain: Ebr<u64> = Ebr::new();
/// let mut h = domain.handle();
/// h.enter();
/// let node = h.alloc(7);
/// unsafe { h.retire(node) };
/// h.leave();
/// ```
pub struct Ebr<T: Send + 'static> {
    reservations: Box<[CachePadded<AtomicU64>]>,
    registry: SlotRegistry,
    epoch: EraClock,
    era_freq: u64,
    scan_threshold: usize,
    orphans: OrphanList<T>,
    stats: SmrStats,
    pool: NodePool,
    _marker: PhantomData<fn(T) -> T>,
}

impl<T: Send + 'static> std::fmt::Debug for Ebr<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ebr")
            .field("epoch", &self.epoch.current())
            .field("registered", &self.registry.claimed())
            .finish_non_exhaustive()
    }
}

impl<T: Send + 'static> Ebr<T> {
    /// Minimum reservation across all registered threads.
    fn min_reservation(&self) -> u64 {
        let mut min = u64::MAX;
        for idx in self.registry.iter_claimed() {
            min = min.min(self.reservations[idx].load(Ordering::SeqCst));
        }
        min
    }
}

impl<T: Send + 'static> Smr<T> for Ebr<T> {
    type Handle<'d> = EbrHandle<'d, T>;

    fn with_config(config: SmrConfig) -> Self {
        Self {
            reservations: (0..config.max_threads)
                .map(|_| CachePadded::new(AtomicU64::new(INACTIVE)))
                .collect(),
            registry: SlotRegistry::new(config.max_threads),
            epoch: EraClock::new(),
            era_freq: config.era_freq,
            scan_threshold: config.scan_threshold,
            orphans: OrphanList::new(),
            stats: SmrStats::new(),
            pool: NodePool::for_node::<T>(&config),
            _marker: PhantomData,
        }
    }

    fn handle(&self) -> EbrHandle<'_, T> {
        EbrHandle {
            slot: self.registry.claim(),
            domain: self,
            limbo: Vec::new(),
            op_counter: 0,
            local_stats: LocalStats::new(),
            mag: self.pool.magazine(),
        }
    }

    fn stats(&self) -> &SmrStats {
        &self.stats
    }

    fn name() -> &'static str {
        "Epoch"
    }

    fn robust() -> bool {
        false
    }

    fn shardable_by_pointer() -> bool {
        // Epoch reservations are enter-scoped and carry no per-node birth
        // metadata: retiring a node into any shard the reader also entered
        // is the ordinary EBR argument within that shard.
        true
    }
}

impl<T: Send + 'static> Drop for Ebr<T> {
    fn drop(&mut self) {
        // All handles are gone; everything left is orphaned and safe.
        let chain = self.orphans.take_all();
        let mut freed = 0;
        unsafe {
            OrphanList::for_each_owned(chain, |node| {
                SmrNode::dealloc(node, true);
                freed += 1;
            });
        }
        self.stats.add_freed(freed);
    }
}

/// Per-thread handle to an [`Ebr`] domain.
pub struct EbrHandle<'d, T: Send + 'static> {
    domain: &'d Ebr<T>,
    slot: usize,
    limbo: Vec<*mut SmrNode<T>>,
    op_counter: u64,
    local_stats: LocalStats,
    mag: Magazine,
}

// SAFETY: the limbo list holds exclusively owned retired nodes and the
// registry slot index stays valid wherever the handle runs; the domain
// borrow is `Sync`. A parked handle may therefore move between tasks.
unsafe impl<T: Send + 'static> Send for EbrHandle<'_, T> {}

impl<T: Send + 'static> std::fmt::Debug for EbrHandle<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EbrHandle")
            .field("slot", &self.slot)
            .field("limbo", &self.limbo.len())
            .finish_non_exhaustive()
    }
}

impl<T: Send + 'static> EbrHandle<'_, T> {
    /// Adopts any orphaned chains into our limbo list.
    fn adopt_orphans(&mut self) {
        let chain = self.domain.orphans.take_all();
        if chain.is_null() {
            return;
        }
        unsafe {
            OrphanList::for_each_owned(chain, |node| self.limbo.push(node));
        }
    }

    /// Frees every limbo node whose retire epoch precedes all reservations.
    fn scan(&mut self) {
        self.adopt_orphans();
        fence(Ordering::SeqCst);
        let min = self.domain.min_reservation();
        let mut freed = 0u64;
        let domain = self.domain;
        let mag = &mut self.mag;
        self.limbo.retain(|&node| {
            let retire_epoch =
                unsafe { (*node).header() }.word(W_EPOCH).load(Ordering::Relaxed) as u64;
            if retire_epoch < min {
                unsafe { domain.pool.dispose(mag, &domain.stats, node, true) };
                freed += 1;
                false
            } else {
                true
            }
        });
        if freed > 0 {
            self.local_stats.on_free(&self.domain.stats, freed);
        }
    }
}

impl<T: Send + 'static> SmrHandle<T> for EbrHandle<'_, T> {
    fn enter(&mut self) {
        let domain = self.domain;
        self.op_counter += 1;
        if self.op_counter.is_multiple_of(domain.era_freq) {
            domain.epoch.advance();
        }
        let e = domain.epoch.current();
        domain.reservations[self.slot].store(e, Ordering::SeqCst);
        fence(Ordering::SeqCst);
    }

    fn leave(&mut self) {
        self.domain.reservations[self.slot].store(INACTIVE, Ordering::Release);
    }

    fn alloc(&mut self, value: T) -> Shared<T> {
        let domain = self.domain;
        self.local_stats.on_alloc(&domain.stats);
        Shared::from_node(domain.pool.alloc(&mut self.mag, &domain.stats, value))
    }

    unsafe fn dealloc(&mut self, ptr: Shared<T>) {
        let domain = self.domain;
        self.local_stats.on_dealloc(&domain.stats);
        domain.pool.dispose(&mut self.mag, &domain.stats, ptr.as_node_ptr(), true);
    }

    fn protect(&mut self, _idx: usize, src: &Atomic<T>) -> Shared<T> {
        // The epoch reservation covers every node reachable inside the
        // operation; no per-access work (EBR's defining advantage).
        src.load(Ordering::Acquire)
    }

    unsafe fn retire(&mut self, ptr: Shared<T>) {
        let node = ptr.as_node_ptr();
        let e = self.domain.epoch.current();
        (*node)
            .header()
            .word(W_EPOCH)
            .store(e as usize, Ordering::Relaxed);
        self.local_stats.on_retire(&self.domain.stats);
        self.limbo.push(node);
        if self.limbo.len() >= self.domain.scan_threshold {
            self.scan();
        }
    }

    fn flush(&mut self) {
        self.scan();
        let domain = self.domain;
        domain.pool.flush(&mut self.mag, &domain.stats);
        self.local_stats.flush(&domain.stats);
    }
}

impl<T: Send + 'static> Drop for EbrHandle<'_, T> {
    fn drop(&mut self) {
        self.domain.reservations[self.slot].store(INACTIVE, Ordering::Release);
        self.scan();
        if let Some((head, tail)) = unsafe { link_chain(&self.limbo) } {
            // Still-pinned nodes outlive us; hand them to future scanners.
            unsafe { self.domain.orphans.push_chain(head, tail) };
        }
        self.limbo.clear();
        let domain = self.domain;
        domain.pool.flush(&mut self.mag, &domain.stats);
        self.local_stats.flush(&domain.stats);
        domain.registry.release(self.slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn domain() -> Ebr<u64> {
        Ebr::with_config(SmrConfig {
            era_freq: 4,
            scan_threshold: 8,
            max_threads: 32,
            ..SmrConfig::default()
        })
    }

    #[test]
    fn single_thread_reclaims_everything() {
        let d = domain();
        {
            let mut h = d.handle();
            for i in 0..200u64 {
                h.enter();
                let n = h.alloc(i);
                unsafe { h.retire(n) };
                h.leave();
            }
            h.flush();
        }
        drop(d); // domain drop frees any orphans
    }

    #[test]
    fn teardown_is_leak_free() {
        let d = domain();
        {
            let mut h = d.handle();
            for i in 0..100u64 {
                h.enter();
                let n = h.alloc(i);
                unsafe { h.retire(n) };
                h.leave();
            }
        }
        // After the handle dropped, scans + orphan adoption must leave
        // nothing behind except what domain-drop frees.
        let freed_before = d.stats().freed();
        let retired = d.stats().retired();
        assert!(freed_before <= retired);
        drop(d);
    }

    #[test]
    fn stalled_thread_blocks_reclamation() {
        // EBR is NOT robust: a thread parked inside an operation pins every
        // node retired after its reservation.
        let d = &domain();
        let entered = &std::sync::Barrier::new(2);
        let done = &std::sync::Barrier::new(2);
        std::thread::scope(|s| {
            s.spawn(move || {
                let mut stalled = d.handle();
                stalled.enter();
                entered.wait();
                done.wait();
                stalled.leave();
            });
            entered.wait();
            let mut worker = d.handle();
            for i in 0..5_000u64 {
                worker.enter();
                let n = worker.alloc(i);
                unsafe { worker.retire(n) };
                worker.leave();
            }
            worker.flush();
            let unreclaimed = d.stats().unreclaimed();
            assert!(
                unreclaimed > 4_000,
                "EBR should have pinned almost everything, pinned only {unreclaimed}"
            );
            done.wait();
        });
    }

    #[test]
    fn reader_protected_until_leave() {
        let d = &domain();
        let published = &std::sync::Barrier::new(2);
        let protected = &std::sync::Barrier::new(2);
        let release = &std::sync::Barrier::new(2);
        let link = &Atomic::<u64>::null();
        std::thread::scope(|s| {
            s.spawn(move || {
                let mut reader = d.handle();
                reader.enter();
                published.wait();
                let seen = reader.protect(0, link);
                protected.wait();
                release.wait();
                assert_eq!(unsafe { *seen.deref() }, 11);
                reader.leave();
            });
            let mut writer = d.handle();
            writer.enter();
            let node = writer.alloc(11);
            link.store(node, Ordering::Release);
            published.wait();
            protected.wait();
            let unlinked = link.swap(Shared::null(), Ordering::AcqRel);
            unsafe { writer.retire(unlinked) };
            writer.leave();
            // Scans cannot free the node while the reader is inside.
            writer.flush();
            release.wait();
        });
    }

    #[test]
    fn multithreaded_stress() {
        let d = &domain();
        std::thread::scope(|s| {
            for t in 0..8 {
                s.spawn(move || {
                    let mut h = d.handle();
                    for i in 0..2_000u64 {
                        h.enter();
                        let n = h.alloc(t * 1_000_000 + i);
                        unsafe { h.retire(n) };
                        h.leave();
                    }
                });
            }
        });
    }
}
