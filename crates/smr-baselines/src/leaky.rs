//! The `Leaky` non-scheme: no reclamation at all.
//!
//! The paper's evaluation uses "Leaky" — running the benchmark without any
//! memory reclamation — as the general baseline. Retired nodes are simply
//! leaked. Note the paper's observation that Leaky is *not* an upper bound:
//! "the actual throughput can exceed Leaky as it can be faster to recycle
//! old objects".

use smr_core::{Atomic, LocalStats, Shared, Smr, SmrConfig, SmrHandle, SmrNode, SmrStats};
use std::marker::PhantomData;
use std::sync::atomic::Ordering;

/// The leak-everything baseline domain.
///
/// # Example
///
/// ```
/// use smr_baselines::Leaky;
/// use smr_core::{Smr, SmrHandle};
///
/// let domain: Leaky<u64> = Leaky::new();
/// let mut h = domain.handle();
/// h.enter();
/// let node = h.alloc(7);
/// unsafe { h.retire(node) }; // leaked, never freed
/// h.leave();
/// assert_eq!(domain.stats().freed(), 0);
/// ```
pub struct Leaky<T: Send + 'static> {
    stats: SmrStats,
    _marker: PhantomData<fn(T) -> T>,
}

impl<T: Send + 'static> std::fmt::Debug for Leaky<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Leaky").finish_non_exhaustive()
    }
}

impl<T: Send + 'static> Smr<T> for Leaky<T> {
    type Handle<'d> = LeakyHandle<'d, T>;

    fn with_config(_config: SmrConfig) -> Self {
        Self {
            stats: SmrStats::new(),
            _marker: PhantomData,
        }
    }

    fn handle(&self) -> LeakyHandle<'_, T> {
        LeakyHandle {
            domain: self,
            local_stats: LocalStats::new(),
        }
    }

    fn stats(&self) -> &SmrStats {
        &self.stats
    }

    fn name() -> &'static str {
        "Leaky"
    }

    fn robust() -> bool {
        // Vacuously: it never reclaims anything, stalled or not.
        false
    }

    fn shardable_by_pointer() -> bool {
        // Vacuously safe: retirement never frees, so routing cannot matter.
        true
    }
}

/// Handle to a [`Leaky`] domain.
#[derive(Debug)]
pub struct LeakyHandle<'d, T: Send + 'static> {
    domain: &'d Leaky<T>,
    local_stats: LocalStats,
}

impl<T: Send + 'static> SmrHandle<T> for LeakyHandle<'_, T> {
    fn enter(&mut self) {}

    fn leave(&mut self) {}

    fn alloc(&mut self, value: T) -> Shared<T> {
        self.local_stats.on_alloc(&self.domain.stats);
        Shared::from_node(SmrNode::alloc(value))
    }

    unsafe fn dealloc(&mut self, ptr: Shared<T>) {
        self.local_stats.on_dealloc(&self.domain.stats);
        SmrNode::dealloc(ptr.as_node_ptr(), true);
    }

    fn protect(&mut self, _idx: usize, src: &Atomic<T>) -> Shared<T> {
        src.load(Ordering::Acquire)
    }

    unsafe fn retire(&mut self, _ptr: Shared<T>) {
        // Deliberately leaked.
        self.local_stats.on_retire(&self.domain.stats);
    }

    fn flush(&mut self) {
        self.local_stats.flush(&self.domain.stats);
    }
}

impl<T: Send + 'static> Drop for LeakyHandle<'_, T> {
    fn drop(&mut self) {
        self.local_stats.flush(&self.domain.stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retire_leaks() {
        let d: Leaky<u64> = Leaky::new();
        let mut h = d.handle();
        h.enter();
        for i in 0..10 {
            let n = h.alloc(i);
            unsafe { h.retire(n) };
        }
        h.leave();
        h.flush();
        assert_eq!(d.stats().retired(), 10);
        assert_eq!(d.stats().freed(), 0);
        assert_eq!(d.stats().unreclaimed(), 10);
    }

    #[test]
    fn protect_is_plain_load() {
        let d: Leaky<u64> = Leaky::new();
        let mut h = d.handle();
        h.enter();
        let n = h.alloc(3);
        let link = Atomic::new(n);
        assert_eq!(h.protect(0, &link), n);
        h.leave();
        unsafe { h.dealloc(n) };
    }
}
