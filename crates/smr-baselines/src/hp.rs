//! Michael's hazard pointers (HP) \[26\].
//!
//! Each thread owns a fixed set of hazard slots; `protect` publishes the
//! pointer it is about to dereference and re-validates the source, so a
//! retired node is freed only when no published hazard matches its address.
//! Robust — a stalled thread pins at most its own hazard slots' nodes — but
//! slow: every guarded pointer read pays a store plus a full fence, and
//! every scan is `O(m·n)`.

use crossbeam_utils::CachePadded;
use smr_core::{
    Atomic, LocalStats, Magazine, NodePool, Shared, SlotRegistry, Smr, SmrConfig, SmrHandle,
    SmrNode, SmrStats,
};
use std::marker::PhantomData;
use std::sync::atomic::{fence, AtomicUsize, Ordering};

use crate::orphan::{link_chain, OrphanList};

/// One thread's hazard-pointer block.
#[derive(Debug)]
struct HazardBlock {
    slots: Box<[AtomicUsize]>,
}

impl HazardBlock {
    fn new(k: usize) -> Self {
        Self {
            slots: (0..k).map(|_| AtomicUsize::new(0)).collect(),
        }
    }
}

/// The hazard-pointer reclamation domain.
///
/// # Example
///
/// ```
/// use smr_baselines::Hp;
/// use smr_core::{Atomic, Smr, SmrHandle};
/// use std::sync::atomic::Ordering;
///
/// let domain: Hp<u64> = Hp::new();
/// let mut h = domain.handle();
/// h.enter();
/// let node = h.alloc(9);
/// let link = Atomic::new(node);
/// let seen = h.protect(0, &link); // hazard published + validated
/// assert_eq!(seen, node);
/// h.leave();
/// unsafe { h.dealloc(node) };
/// ```
pub struct Hp<T: Send + 'static> {
    hazards: Box<[CachePadded<HazardBlock>]>,
    registry: SlotRegistry,
    hp_per_thread: usize,
    scan_threshold: usize,
    orphans: OrphanList<T>,
    stats: SmrStats,
    pool: NodePool,
    _marker: PhantomData<fn(T) -> T>,
}

impl<T: Send + 'static> std::fmt::Debug for Hp<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hp")
            .field("registered", &self.registry.claimed())
            .field("hp_per_thread", &self.hp_per_thread)
            .finish_non_exhaustive()
    }
}

impl<T: Send + 'static> Smr<T> for Hp<T> {
    type Handle<'d> = HpHandle<'d, T>;

    fn with_config(config: SmrConfig) -> Self {
        Self {
            hazards: (0..config.max_threads)
                .map(|_| CachePadded::new(HazardBlock::new(config.max_protect)))
                .collect(),
            registry: SlotRegistry::new(config.max_threads),
            hp_per_thread: config.max_protect,
            scan_threshold: config.scan_threshold,
            orphans: OrphanList::new(),
            stats: SmrStats::new(),
            pool: NodePool::for_node::<T>(&config),
            _marker: PhantomData,
        }
    }

    fn handle(&self) -> HpHandle<'_, T> {
        HpHandle {
            slot: self.registry.claim(),
            domain: self,
            limbo: Vec::new(),
            local_stats: LocalStats::new(),
            mag: self.pool.magazine(),
        }
    }

    fn stats(&self) -> &SmrStats {
        &self.stats
    }

    fn name() -> &'static str {
        "HP"
    }

    fn robust() -> bool {
        true
    }

    fn needs_seek_validation() -> bool {
        // A hazard published after a node's retirement is invisible to the
        // scan that frees it; traversals must re-validate reachability.
        true
    }
}

impl<T: Send + 'static> Drop for Hp<T> {
    fn drop(&mut self) {
        let chain = self.orphans.take_all();
        let mut freed = 0;
        unsafe {
            OrphanList::for_each_owned(chain, |node| {
                SmrNode::dealloc(node, true);
                freed += 1;
            });
        }
        self.stats.add_freed(freed);
    }
}

/// Per-thread handle to an [`Hp`] domain.
pub struct HpHandle<'d, T: Send + 'static> {
    domain: &'d Hp<T>,
    slot: usize,
    limbo: Vec<*mut SmrNode<T>>,
    local_stats: LocalStats,
    mag: Magazine,
}

// SAFETY: the limbo list holds exclusively owned retired nodes and the
// registry slot index stays valid wherever the handle runs; the domain
// borrow is `Sync`. A parked handle may therefore move between tasks.
unsafe impl<T: Send + 'static> Send for HpHandle<'_, T> {}

impl<T: Send + 'static> std::fmt::Debug for HpHandle<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HpHandle")
            .field("slot", &self.slot)
            .field("limbo", &self.limbo.len())
            .finish_non_exhaustive()
    }
}

impl<T: Send + 'static> HpHandle<'_, T> {
    fn adopt_orphans(&mut self) {
        let chain = self.domain.orphans.take_all();
        if chain.is_null() {
            return;
        }
        unsafe {
            OrphanList::for_each_owned(chain, |node| self.limbo.push(node));
        }
    }

    /// Michael's scan: collect all published hazards, then free every limbo
    /// node whose address is not among them.
    fn scan(&mut self) {
        self.adopt_orphans();
        fence(Ordering::SeqCst);
        let domain = self.domain;
        let mut hazards: Vec<usize> = Vec::with_capacity(16);
        for idx in domain.registry.iter_claimed() {
            for hp in domain.hazards[idx].slots.iter() {
                let addr = hp.load(Ordering::SeqCst);
                if addr != 0 {
                    hazards.push(addr);
                }
            }
        }
        hazards.sort_unstable();
        let mut freed = 0u64;
        let domain = self.domain;
        let mag = &mut self.mag;
        self.limbo.retain(|&node| {
            if hazards.binary_search(&(node as usize)).is_ok() {
                true
            } else {
                unsafe { domain.pool.dispose(mag, &domain.stats, node, true) };
                freed += 1;
                false
            }
        });
        if freed > 0 {
            self.local_stats.on_free(&self.domain.stats, freed);
        }
    }

    fn clear_hazards(&mut self) {
        for hp in self.domain.hazards[self.slot].slots.iter() {
            hp.store(0, Ordering::Release);
        }
    }
}

impl<T: Send + 'static> SmrHandle<T> for HpHandle<'_, T> {
    fn enter(&mut self) {}

    fn leave(&mut self) {
        self.clear_hazards();
    }

    fn alloc(&mut self, value: T) -> Shared<T> {
        let domain = self.domain;
        self.local_stats.on_alloc(&domain.stats);
        Shared::from_node(domain.pool.alloc(&mut self.mag, &domain.stats, value))
    }

    unsafe fn dealloc(&mut self, ptr: Shared<T>) {
        let domain = self.domain;
        self.local_stats.on_dealloc(&domain.stats);
        domain.pool.dispose(&mut self.mag, &domain.stats, ptr.as_node_ptr(), true);
    }

    /// Publish-and-validate (the HP protocol): store the candidate address
    /// in hazard slot `idx`, fence, and re-read the source until it is
    /// unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is not below [`SmrConfig::max_protect`].
    fn protect(&mut self, idx: usize, src: &Atomic<T>) -> Shared<T> {
        let hp = &self.domain.hazards[self.slot].slots[idx];
        let mut p = src.load(Ordering::Acquire);
        loop {
            hp.store(p.as_node_ptr() as usize, Ordering::SeqCst);
            fence(Ordering::SeqCst);
            let now = src.load(Ordering::Acquire);
            if now == p {
                return p;
            }
            p = now;
        }
    }

    fn copy_protection(&mut self, from: usize, to: usize) {
        let slots = &self.domain.hazards[self.slot].slots;
        // The node is already protected by `from`, so a plain publish of the
        // same address cannot race with its reclamation.
        let addr = slots[from].load(Ordering::Relaxed);
        slots[to].store(addr, Ordering::SeqCst);
    }

    unsafe fn retire(&mut self, ptr: Shared<T>) {
        self.local_stats.on_retire(&self.domain.stats);
        self.limbo.push(ptr.as_node_ptr());
        if self.limbo.len() >= self.domain.scan_threshold {
            self.scan();
        }
    }

    fn flush(&mut self) {
        self.scan();
        let domain = self.domain;
        domain.pool.flush(&mut self.mag, &domain.stats);
        self.local_stats.flush(&domain.stats);
    }
}

impl<T: Send + 'static> Drop for HpHandle<'_, T> {
    fn drop(&mut self) {
        self.clear_hazards();
        self.scan();
        if let Some((head, tail)) = unsafe { link_chain(&self.limbo) } {
            unsafe { self.domain.orphans.push_chain(head, tail) };
        }
        self.limbo.clear();
        let domain = self.domain;
        domain.pool.flush(&mut self.mag, &domain.stats);
        self.local_stats.flush(&domain.stats);
        domain.registry.release(self.slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn domain() -> Hp<u64> {
        Hp::with_config(SmrConfig {
            scan_threshold: 8,
            max_protect: 4,
            max_threads: 32,
            ..SmrConfig::default()
        })
    }

    #[test]
    fn single_thread_reclaims_everything() {
        let d = domain();
        let mut h = d.handle();
        for i in 0..100u64 {
            h.enter();
            let n = h.alloc(i);
            unsafe { h.retire(n) };
            h.leave();
        }
        h.flush();
        assert_eq!(d.stats().freed(), 100);
        drop(h);
    }

    #[test]
    fn hazard_blocks_reclamation_of_protected_node() {
        let d = &domain();
        let published = &std::sync::Barrier::new(2);
        let protected = &std::sync::Barrier::new(2);
        let release = &std::sync::Barrier::new(2);
        let link = &Atomic::<u64>::null();
        std::thread::scope(|s| {
            s.spawn(move || {
                let mut reader = d.handle();
                reader.enter();
                published.wait();
                let seen = reader.protect(0, link);
                assert!(!seen.is_null());
                protected.wait();
                release.wait();
                // Still protected by our hazard even though it was retired.
                assert_eq!(unsafe { *seen.deref() }, 21);
                reader.leave();
            });
            let mut writer = d.handle();
            writer.enter();
            let node = writer.alloc(21);
            link.store(node, Ordering::Release);
            published.wait();
            protected.wait();
            let unlinked = link.swap(Shared::null(), Ordering::AcqRel);
            unsafe { writer.retire(unlinked) };
            writer.leave();
            writer.flush(); // must NOT free the hazarded node
            assert_eq!(d.stats().unreclaimed(), 1);
            release.wait();
        });
        // Reader left; a final flush reclaims it.
        let mut h = d.handle();
        h.flush();
        assert_eq!(d.stats().unreclaimed(), 0);
        drop(h);
    }

    #[test]
    fn robust_against_stalled_thread() {
        // A stalled thread pins at most its hazard slots, not the world.
        let d = &domain();
        let entered = &std::sync::Barrier::new(2);
        let done = &std::sync::Barrier::new(2);
        std::thread::scope(|s| {
            s.spawn(move || {
                let mut stalled = d.handle();
                stalled.enter();
                entered.wait();
                done.wait();
                stalled.leave();
            });
            entered.wait();
            let mut worker = d.handle();
            for i in 0..5_000u64 {
                worker.enter();
                let n = worker.alloc(i);
                unsafe { worker.retire(n) };
                worker.leave();
            }
            worker.flush();
            let unreclaimed = d.stats().unreclaimed();
            assert!(
                unreclaimed < 100,
                "HP must stay robust; {unreclaimed} nodes pinned"
            );
            done.wait();
        });
    }

    #[test]
    fn protect_validates_against_racing_unlink() {
        let d = &domain();
        let link = &Atomic::<u64>::null();
        let stop = &std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            // Writer keeps replacing the node.
            s.spawn(move || {
                let mut w = d.handle();
                for i in 0..5_000u64 {
                    w.enter();
                    let fresh = w.alloc(i);
                    let old = link.swap(fresh, Ordering::AcqRel);
                    if !old.is_null() {
                        unsafe { w.retire(old) };
                    }
                    w.leave();
                }
                stop.store(true, Ordering::Release);
            });
            // Reader dereferences protected pointers the whole time; any
            // use-after-free here would be caught by invalid payloads (or
            // ASAN-style crashes).
            s.spawn(move || {
                let mut r = d.handle();
                while !stop.load(Ordering::Acquire) {
                    r.enter();
                    let p = r.protect(0, link);
                    if !p.is_null() {
                        let v = unsafe { *p.deref() };
                        assert!(v < 5_000);
                    }
                    r.leave();
                }
            });
        });
    }
}
