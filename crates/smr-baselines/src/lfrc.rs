//! Lock-free reference counting (LFRC) \[27, 34\].
//!
//! The paper's Table 1 lists LFRC as the classical `O(1)`-reclamation,
//! fully robust scheme that is "very slow (especially reading)": every
//! guarded pointer read performs an atomic increment on the target node
//! plus a validating re-read (and usually a matching decrement soon after).
//! This implementation exists to reproduce that row as a measured ablation.
//!
//! Following Valois-style designs, node memory is *type-stable*: nodes whose
//! count reaches zero go onto a free list and are reused by later
//! allocations, never returned to the allocator until the domain drops.
//! That is what makes the transient increment a stale reader may apply to a
//! "freed" node harmless — the memory is still a node. A retired-flag bit
//! in the count word ensures exactly one thread moves a node to the free
//! list (the correction of \[27\]).

use smr_core::{Atomic, LocalStats, Shared, Smr, SmrConfig, SmrHandle, SmrNode, SmrStats};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};

/// Header word: reference count plus the retired flag.
const W_COUNT: usize = 0;
/// Header word: free-list next.
const W_FREE: usize = 1;

/// Retired flag: the node has been unlinked and its count may reach zero.
const RETIRED: usize = 1 << 63;

/// Tagged free-list top: 16-bit ABA tag in the high bits, 48-bit pointer.
const FREE_PTR_MASK: u64 = (1 << 48) - 1;

/// The lock-free reference-counting domain.
///
/// # Example
///
/// ```
/// use smr_baselines::Lfrc;
/// use smr_core::{Atomic, Smr, SmrHandle};
///
/// let domain: Lfrc<u64> = Lfrc::new();
/// let mut h = domain.handle();
/// h.enter();
/// let node = h.alloc(4);
/// let link = Atomic::new(node);
/// let seen = h.protect(0, &link); // pays an atomic RMW on the node
/// assert_eq!(seen, node);
/// h.leave();
/// unsafe { h.dealloc(node) };
/// ```
pub struct Lfrc<T: Send + 'static> {
    free_top: AtomicU64,
    max_protect: usize,
    stats: SmrStats,
    _marker: PhantomData<fn(T) -> T>,
}

impl<T: Send + 'static> std::fmt::Debug for Lfrc<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Lfrc").finish_non_exhaustive()
    }
}

impl<T: Send + 'static> Lfrc<T> {
    fn push_free(&self, node: *mut SmrNode<T>) {
        let mut old = self.free_top.load(Ordering::Acquire);
        loop {
            unsafe {
                (*node)
                    .header()
                    .word(W_FREE)
                    .store((old & FREE_PTR_MASK) as usize, Ordering::Relaxed);
            }
            let tag = (old >> 48).wrapping_add(1);
            let new = (tag << 48) | node as u64;
            match self
                .free_top
                .compare_exchange_weak(old, new, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return,
                Err(now) => old = now,
            }
        }
    }

    fn pop_free(&self) -> Option<*mut SmrNode<T>> {
        let mut old = self.free_top.load(Ordering::Acquire);
        loop {
            let node = (old & FREE_PTR_MASK) as *mut SmrNode<T>;
            if node.is_null() {
                return None;
            }
            // Type-stable memory: reading the free-next of a node another
            // thread may be re-allocating is safe; the tag CAS rejects it.
            let next = unsafe { (*node).header().word(W_FREE).load(Ordering::Acquire) } as u64;
            let tag = (old >> 48).wrapping_add(1);
            let new = (tag << 48) | next;
            match self
                .free_top
                .compare_exchange_weak(old, new, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return Some(node),
                Err(now) => old = now,
            }
        }
    }
}

impl<T: Send + 'static> Smr<T> for Lfrc<T> {
    type Handle<'d> = LfrcHandle<'d, T>;

    fn with_config(config: SmrConfig) -> Self {
        Self {
            free_top: AtomicU64::new(0),
            max_protect: config.max_protect,
            stats: SmrStats::new(),
            _marker: PhantomData,
        }
    }

    fn handle(&self) -> LfrcHandle<'_, T> {
        LfrcHandle {
            domain: self,
            held: vec![std::ptr::null_mut(); self.max_protect],
            local_stats: LocalStats::new(),
        }
    }

    fn stats(&self) -> &SmrStats {
        &self.stats
    }

    fn name() -> &'static str {
        "LFRC"
    }

    fn robust() -> bool {
        true
    }

    fn needs_seek_validation() -> bool {
        // This LFRC counts *active references* only, not inter-node links
        // (link counting is what makes classical LFRC "intrusive", Table 1).
        // A count taken through the frozen edge of an unlinked node can
        // therefore land on a type-stable node that was already recycled —
        // memory-safe, but semantically a different node. Validated seeks
        // guarantee the count was taken while the node was still reachable.
        true
    }
}

impl<T: Send + 'static> Drop for Lfrc<T> {
    fn drop(&mut self) {
        // All handles are gone; every node has ended up on the free list
        // (payloads already dropped). Release the type-stable memory.
        while let Some(node) = self.pop_free() {
            unsafe { SmrNode::dealloc(node, false) };
        }
    }
}

/// Per-thread handle to an [`Lfrc`] domain.
pub struct LfrcHandle<'d, T: Send + 'static> {
    domain: &'d Lfrc<T>,
    /// Nodes currently pinned by `protect`, by protection index.
    held: Vec<*mut SmrNode<T>>,
    local_stats: LocalStats,
}

// SAFETY: `held` stores counted references this handle owns; releasing
// them from another thread is exactly what the atomic refcount permits.
// The domain borrow is `Sync`; nothing is thread-affine.
unsafe impl<T: Send + 'static> Send for LfrcHandle<'_, T> {}

impl<T: Send + 'static> std::fmt::Debug for LfrcHandle<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LfrcHandle").finish_non_exhaustive()
    }
}

impl<T: Send + 'static> LfrcHandle<'_, T> {
    /// Drops one reference; the thread that both sees the retired flag and
    /// brings the count to zero claims the node for the free list.
    unsafe fn release_node(&mut self, node: *mut SmrNode<T>) {
        let count = (*node).header().word(W_COUNT);
        let old = count.fetch_sub(1, Ordering::AcqRel);
        if old == RETIRED | 1 {
            // Count hit zero on a retired node: claim it. A racing stale
            // increment makes the CAS fail; its matching decrement retries.
            if count
                .compare_exchange(RETIRED, 0, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                SmrNode::drop_value_in_place(node);
                self.local_stats.on_free(&self.domain.stats, 1);
                self.domain.push_free(node);
            }
        }
    }
}

impl<T: Send + 'static> SmrHandle<T> for LfrcHandle<'_, T> {
    fn enter(&mut self) {}

    fn leave(&mut self) {
        for i in 0..self.held.len() {
            let node = std::mem::replace(&mut self.held[i], std::ptr::null_mut());
            if !node.is_null() {
                unsafe { self.release_node(node) };
            }
        }
    }

    fn alloc(&mut self, value: T) -> Shared<T> {
        let domain = self.domain;
        self.local_stats.on_alloc(&domain.stats);
        let node = match domain.pop_free() {
            Some(node) => {
                unsafe {
                    SmrNode::write_value(node, value);
                    // Arithmetic, not a store: stale increment/decrement
                    // pairs from old readers may still be in flight.
                    (*node).header().word(W_COUNT).fetch_add(1, Ordering::AcqRel);
                }
                node
            }
            None => {
                let node = SmrNode::alloc(value).as_ptr();
                unsafe {
                    (*node).header().word(W_COUNT).store(1, Ordering::Relaxed);
                }
                node
            }
        };
        Shared::from_node(std::ptr::NonNull::new(node).unwrap())
    }

    unsafe fn dealloc(&mut self, ptr: Shared<T>) {
        // Never published: no stale references can exist.
        let node = ptr.as_node_ptr();
        (*node).header().word(W_COUNT).store(0, Ordering::Relaxed);
        SmrNode::drop_value_in_place(node);
        self.local_stats.on_dealloc(&self.domain.stats);
        self.domain.push_free(node);
    }

    /// Acquire a counted reference: increment the target's count, then
    /// validate the source still points at it (releasing on mismatch).
    /// This double atomic traffic on every read is LFRC's documented cost.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is not below [`SmrConfig::max_protect`].
    fn protect(&mut self, idx: usize, src: &Atomic<T>) -> Shared<T> {
        let prev = std::mem::replace(&mut self.held[idx], std::ptr::null_mut());
        if !prev.is_null() {
            unsafe { self.release_node(prev) };
        }
        loop {
            let p = src.load(Ordering::Acquire);
            if p.is_null() {
                return p;
            }
            let node = p.as_node_ptr();
            unsafe {
                (*node).header().word(W_COUNT).fetch_add(1, Ordering::AcqRel);
            }
            if src.load(Ordering::Acquire) == p {
                self.held[idx] = node;
                return p;
            }
            unsafe { self.release_node(node) };
        }
    }

    fn copy_protection(&mut self, from: usize, to: usize) {
        let prev = std::mem::replace(&mut self.held[to], std::ptr::null_mut());
        if !prev.is_null() {
            unsafe { self.release_node(prev) };
        }
        let node = self.held[from];
        if !node.is_null() {
            // Already counted through `from`: taking another reference on a
            // live node is safe.
            unsafe {
                (*node).header().word(W_COUNT).fetch_add(1, Ordering::AcqRel);
            }
            self.held[to] = node;
        }
    }

    unsafe fn retire(&mut self, ptr: Shared<T>) {
        let node = ptr.as_node_ptr();
        let old = (*node).header().word(W_COUNT).fetch_or(RETIRED, Ordering::AcqRel);
        debug_assert_eq!(old & RETIRED, 0, "node retired twice");
        self.local_stats.on_retire(&self.domain.stats);
        // Drop the reference the data structure held since `alloc`.
        self.release_node(node);
    }

    fn flush(&mut self) {
        self.local_stats.flush(&self.domain.stats);
    }
}

impl<T: Send + 'static> Drop for LfrcHandle<'_, T> {
    fn drop(&mut self) {
        self.leave();
        self.local_stats.flush(&self.domain.stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn domain() -> Lfrc<u64> {
        Lfrc::with_config(SmrConfig {
            max_protect: 4,
            ..SmrConfig::default()
        })
    }

    #[test]
    fn retire_without_readers_frees_immediately() {
        let d = domain();
        let mut h = d.handle();
        h.enter();
        let n = h.alloc(1);
        unsafe { h.retire(n) };
        h.leave();
        assert_eq!(d.stats().freed(), 1);
        drop(h);
    }

    #[test]
    fn nodes_are_reused_from_freelist() {
        let d = domain();
        let mut h = d.handle();
        h.enter();
        let a = h.alloc(1);
        let addr = a.as_node_ptr() as usize;
        unsafe { h.retire(a) };
        let b = h.alloc(2);
        assert_eq!(
            b.as_node_ptr() as usize,
            addr,
            "type-stable reuse from the free list"
        );
        assert_eq!(unsafe { *b.deref() }, 2);
        unsafe { h.retire(b) };
        h.leave();
        drop(h);
    }

    #[test]
    fn protected_node_survives_retire() {
        let d = domain();
        let mut h = d.handle();
        h.enter();
        let n = h.alloc(77);
        let link = Atomic::new(n);
        let seen = h.protect(0, &link);
        assert_eq!(seen, n);
        let unlinked = link.swap(Shared::null(), Ordering::AcqRel);
        unsafe { h.retire(unlinked) };
        // Still held by protection index 0.
        assert_eq!(d.stats().freed(), 0);
        assert_eq!(unsafe { *seen.deref() }, 77);
        h.leave(); // releases the protection -> node freed
        assert_eq!(d.stats().freed(), 1);
        drop(h);
    }

    #[test]
    fn protect_reuses_index() {
        let d = domain();
        let mut h = d.handle();
        h.enter();
        let a = h.alloc(1);
        let b = h.alloc(2);
        let link_a = Atomic::new(a);
        let link_b = Atomic::new(b);
        h.protect(0, &link_a);
        h.protect(0, &link_b); // releases the reference on `a`
        let ua = link_a.swap(Shared::null(), Ordering::AcqRel);
        unsafe { h.retire(ua) };
        assert_eq!(d.stats().freed(), 1, "a freed: only b is held");
        let ub = link_b.swap(Shared::null(), Ordering::AcqRel);
        unsafe { h.retire(ub) };
        h.leave();
        assert_eq!(d.stats().freed(), 2);
        drop(h);
    }

    #[test]
    fn concurrent_readers_and_writer() {
        let d = &domain();
        let link = &Atomic::<u64>::null();
        let stop = &std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(move || {
                let mut w = d.handle();
                for i in 0..3_000u64 {
                    w.enter();
                    let fresh = w.alloc(i);
                    let old = link.swap(fresh, Ordering::AcqRel);
                    if !old.is_null() {
                        unsafe { w.retire(old) };
                    }
                    w.leave();
                }
                let last = link.swap(Shared::null(), Ordering::AcqRel);
                if !last.is_null() {
                    w.enter();
                    unsafe { w.retire(last) };
                    w.leave();
                }
                stop.store(true, Ordering::Release);
            });
            for _ in 0..2 {
                s.spawn(move || {
                    let mut r = d.handle();
                    while !stop.load(Ordering::Acquire) {
                        r.enter();
                        let p = r.protect(0, link);
                        if !p.is_null() {
                            assert!(unsafe { *p.deref() } < 3_000);
                        }
                        r.leave();
                    }
                });
            }
        });
        assert!(d.stats().balanced(), "every node logically freed");
    }
}
