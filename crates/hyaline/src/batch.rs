//! Batch construction and the retired-node header layout.
//!
//! Section 3.2 of the paper: threads accumulate retired nodes into local
//! *batches* and keep a single reference counter per batch. Each node keeps
//! three header words regardless of batch size or slot count:
//!
//! * **word 0** — the per-slot retirement-list `Next` pointer once the node
//!   is used to insert the batch into a slot. Before retirement the same word
//!   holds the node's *birth era* (Hyaline-S; "birth eras share space with
//!   other variables, e.g. Next, as they are not required to survive
//!   retire"). On the batch's dedicated **REFS node** this word is the
//!   batch's `NRef` counter.
//! * **word 1** — `batch_link`: a pointer to the REFS node. On the REFS node
//!   itself this word stores the batch's `Adjs` constant instead (Section
//!   4.3: "the NRef node itself does not need to keep this pointer. Instead,
//!   we use this variable to store the current Adjs value for the batch").
//! * **word 2** — `batch_next`: the chain linking all nodes of the batch,
//!   with the low bit flagging whether the node carries a live payload
//!   (dummy padding nodes, used to finalize partial batches, do not). On the
//!   REFS node — the chain's tail — this word points back to the chain head
//!   (`First` in the paper's `free_batch(Ref->First)`).

use smr_core::{Magazine, NodeHeader, NodePool, SmrNode, SmrStats};
use std::sync::atomic::Ordering;

/// Header word holding the slot-list `Next` / birth era / `NRef`.
pub const W_NEXT: usize = 0;
/// Header word holding `batch_link` / the batch `Adjs`.
pub const W_LINK: usize = 1;
/// Header word holding the `batch_next` chain (low bit: payload-live flag).
pub const W_CHAIN: usize = 2;

/// Low bit of `W_CHAIN`: set when the node has a live payload.
const LIVE_BIT: usize = 1;

/// Borrows the SMR header embedded in `node`.
///
/// # Safety
///
/// `node` must point to a live `SmrNode<T>` allocation, and the returned
/// reference must not outlive the node's reclamation.
#[inline]
pub unsafe fn header<'a, T: 'a>(node: *mut SmrNode<T>) -> &'a NodeHeader {
    (*node).header()
}

/// A thread-local batch under construction.
///
/// The first node pushed becomes the batch's REFS node (the chain tail); all
/// later nodes prepend to the chain and point at the REFS node through
/// `word 1`.
pub struct LocalBatch<T> {
    chain_head: *mut SmrNode<T>,
    refs_node: *mut SmrNode<T>,
    count: usize,
    min_birth: u64,
}

impl<T> Default for LocalBatch<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> LocalBatch<T> {
    /// An empty batch.
    pub fn new() -> Self {
        Self {
            chain_head: std::ptr::null_mut(),
            refs_node: std::ptr::null_mut(),
            count: 0,
            min_birth: u64::MAX,
        }
    }

    /// Number of nodes pushed so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Whether no node has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Adds a retired node to the batch.
    ///
    /// # Safety
    ///
    /// `node` must be exclusively owned (already unlinked and retired) and
    /// must remain untouched until the batch is finalized and inserted.
    pub unsafe fn push(&mut self, node: *mut SmrNode<T>, birth: u64, live: bool) {
        let live_flag = if live { LIVE_BIT } else { 0 };
        header(node)
            .word(W_CHAIN)
            .store(self.chain_head as usize | live_flag, Ordering::Relaxed);
        if self.refs_node.is_null() {
            self.refs_node = node;
        } else {
            header(node)
                .word(W_LINK)
                .store(self.refs_node as usize, Ordering::Relaxed);
        }
        self.chain_head = node;
        self.count += 1;
        self.min_birth = self.min_birth.min(birth);
    }

    /// Freezes the batch: initializes `NRef` to zero, records the batch's
    /// `Adjs`, and closes the chain cycle (REFS → chain head).
    ///
    /// Returns `(refs_node, chain_head, min_birth)` and resets the batch.
    ///
    /// # Safety
    ///
    /// The batch must be non-empty.
    pub unsafe fn finalize(&mut self, adjs: usize) -> FinalizedBatch<T> {
        debug_assert!(!self.is_empty());
        let refs = self.refs_node;
        header(refs).word(W_NEXT).store(0, Ordering::Relaxed); // NRef = 0
        header(refs).word(W_LINK).store(adjs, Ordering::Relaxed);
        let live = header(refs).word(W_CHAIN).load(Ordering::Relaxed) & LIVE_BIT;
        header(refs)
            .word(W_CHAIN)
            .store(self.chain_head as usize | live, Ordering::Relaxed);
        let out = FinalizedBatch {
            refs_node: refs,
            chain_head: self.chain_head,
            min_birth: self.min_birth,
            count: self.count,
        };
        *self = Self::new();
        out
    }
}

/// A frozen batch ready for insertion into the slot lists.
pub struct FinalizedBatch<T> {
    /// The REFS node carrying the batch's `NRef` counter (chain tail).
    pub refs_node: *mut SmrNode<T>,
    /// First node of the batch chain.
    pub chain_head: *mut SmrNode<T>,
    /// Smallest birth era among the batch's nodes (`u64::MAX` for dummies).
    pub min_birth: u64,
    /// Total nodes in the batch, dummies included.
    pub count: usize,
}

impl<T> FinalizedBatch<T> {
    /// Prepends a fresh dummy node to the chain, returning it.
    ///
    /// Hyaline-1 uses this when more slots turn out to be active than the
    /// batch has insertion nodes (threads registered between batch sizing
    /// and insertion). Mutating the chain is safe while the batch's final
    /// `Inserts`/`Empty` adjustment is still pending: `NRef` cannot cross
    /// zero before that adjustment, so no concurrent thread can be freeing
    /// or walking the chain yet.
    ///
    /// # Safety
    ///
    /// Must only be called by the inserting thread before the batch's final
    /// [`adjust_refs`] call.
    pub unsafe fn extend_with_dummy(&mut self) -> *mut SmrNode<T> {
        let dummy = SmrNode::<T>::alloc_dummy().as_ptr();
        header(dummy)
            .word(W_LINK)
            .store(self.refs_node as usize, Ordering::Relaxed);
        header(dummy)
            .word(W_CHAIN)
            .store(self.chain_head as usize, Ordering::Relaxed); // live bit clear
        let refs_w2 = header(self.refs_node).word(W_CHAIN).load(Ordering::Relaxed);
        header(self.refs_node)
            .word(W_CHAIN)
            .store(dummy as usize | (refs_w2 & LIVE_BIT), Ordering::Relaxed);
        self.chain_head = dummy;
        self.count += 1;
        dummy
    }
}

/// Follows the batch chain (`word 2`, pointer part).
///
/// # Safety
///
/// `node` must be a live batch node.
#[inline]
pub unsafe fn chain_next<T>(node: *mut SmrNode<T>) -> *mut SmrNode<T> {
    // ORDERING: Relaxed suffices — `word 2` chain links are written before the
    // batch is published (finalize/retire is the release point), so any thread
    // walking the chain already synchronized via the slot-list Acquire load.
    (header(node).word(W_CHAIN).load(Ordering::Relaxed) & !LIVE_BIT) as *mut SmrNode<T>
}

/// Decrements the `NRef` of the batch `node` belongs to by one (the paper's
/// `traverse` step, Figure 3 line 50). If the counter crosses zero the REFS
/// node is pushed onto `reap` for deferred freeing.
///
/// # Safety
///
/// `node` must be a non-REFS batch node whose batch has been finalized, and
/// the caller must still hold a logical reference to it.
#[inline]
pub unsafe fn decrement<T>(node: *mut SmrNode<T>, reap: &mut Vec<*mut SmrNode<T>>) {
    let refs = header(node).word(W_LINK).load(Ordering::Acquire) as *mut SmrNode<T>;
    adjust_refs(refs, 1usize.wrapping_neg(), reap);
}

/// Credits the batch `node` belongs to with one slot's completion: its own
/// stored `Adjs` plus `href_snapshot` (the paper's `adjust(node, Adjs +
/// Head.HRef)`, Figure 3 lines 17/39). Reading `Adjs` from the batch's REFS
/// node — rather than a global — is what makes §4.3 adaptive resizing sound:
/// every batch is adjusted with the slot count it was retired under.
///
/// # Safety
///
/// Same requirements as [`decrement`].
#[inline]
pub unsafe fn adjust_slot_credit<T>(
    node: *mut SmrNode<T>,
    href_snapshot: usize,
    reap: &mut Vec<*mut SmrNode<T>>,
) {
    let refs = header(node).word(W_LINK).load(Ordering::Acquire) as *mut SmrNode<T>;
    let adjs = header(refs).word(W_LINK).load(Ordering::Acquire);
    adjust_refs(refs, adjs.wrapping_add(href_snapshot), reap);
}

/// Adds `val` to a batch's `NRef` given its REFS node directly (the paper's
/// `adjust(batch->FirstNode(), Empty)` / Hyaline-1 `Inserts` adjustment).
///
/// # Safety
///
/// `refs` must be a finalized batch's REFS node.
#[inline]
pub unsafe fn adjust_refs<T>(
    refs: *mut SmrNode<T>,
    val: usize,
    reap: &mut Vec<*mut SmrNode<T>>,
) {
    let old = header(refs).word(W_NEXT).fetch_add(val, Ordering::AcqRel);
    if old.wrapping_add(val) == 0 {
        reap.push(refs);
    }
}

/// Frees every node of the batch owned by `refs`, returning how many nodes
/// were freed (dummies included).
///
/// # Safety
///
/// The batch's `NRef` must have crossed zero: no thread can still reference
/// any node of the batch.
pub unsafe fn free_batch<T>(refs: *mut SmrNode<T>) -> u64 {
    let refs_word = header(refs).word(W_CHAIN).load(Ordering::Acquire);
    let mut cur = (refs_word & !LIVE_BIT) as *mut SmrNode<T>;
    let mut freed = 0u64;
    while cur != refs {
        let w = header(cur).word(W_CHAIN).load(Ordering::Relaxed);
        let next = (w & !LIVE_BIT) as *mut SmrNode<T>;
        SmrNode::dealloc(cur, w & LIVE_BIT != 0);
        freed += 1;
        cur = next;
    }
    SmrNode::dealloc(refs, refs_word & LIVE_BIT != 0);
    freed + 1
}

/// [`free_batch`], but routing every node through the domain's recycle pool:
/// payloads are dropped immediately (per the chain's live bits, exactly as
/// `free_batch` would) while the node memory is handed to `pool`/`mag` for
/// reuse by subsequent allocations. This is the hyaline-family half of the
/// common `dispose` hook.
///
/// With recycling disabled the pool falls through to [`SmrNode::dealloc`],
/// making this byte-for-byte equivalent to [`free_batch`].
///
/// # Safety
///
/// Same contract as [`free_batch`]: the batch's `NRef` must have crossed
/// zero, so no thread can still reference any node of the batch. `mag` must
/// belong to `pool`.
pub unsafe fn free_batch_into<T>(
    refs: *mut SmrNode<T>,
    pool: &NodePool,
    mag: &mut Magazine,
    stats: &SmrStats,
) -> u64 {
    let refs_word = header(refs).word(W_CHAIN).load(Ordering::Acquire);
    let mut cur = (refs_word & !LIVE_BIT) as *mut SmrNode<T>;
    let mut freed = 0u64;
    while cur != refs {
        let w = header(cur).word(W_CHAIN).load(Ordering::Relaxed);
        let next = (w & !LIVE_BIT) as *mut SmrNode<T>;
        // SAFETY: the batch is exclusively ours (NRef crossed zero) and the
        // live bit says whether this node's payload was ever initialized.
        pool.dispose(mag, stats, cur, w & LIVE_BIT != 0);
        freed += 1;
        cur = next;
    }
    // SAFETY: as above, for the REFS node itself (the chain tail).
    pool.dispose(mag, stats, refs, refs_word & LIVE_BIT != 0);
    freed + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    static DROPS: AtomicU64 = AtomicU64::new(0);
    struct Payload;
    impl Drop for Payload {
        fn drop(&mut self) {
            DROPS.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn batch_chain_and_free() {
        DROPS.store(0, Ordering::Relaxed);
        let mut batch = LocalBatch::<Payload>::new();
        for i in 0..5 {
            let node = SmrNode::alloc(Payload);
            // SAFETY: `node` was just allocated and is exclusively owned.
            unsafe { batch.push(node.as_ptr(), 100 + i, true) };
        }
        assert_eq!(batch.count(), 5);
        // SAFETY: all five pushed nodes are live and unshared.
        let fin = unsafe { batch.finalize(0) };
        assert_eq!(fin.min_birth, 100);
        assert_eq!(fin.count, 5);

        // Chain from head reaches the REFS node in (count - 1) hops.
        let mut cur = fin.chain_head;
        let mut hops = 0;
        while cur != fin.refs_node {
            // SAFETY: `cur` is a live batch node; the chain is fully linked.
            cur = unsafe { chain_next(cur) };
            hops += 1;
        }
        assert_eq!(hops, 4);

        // SAFETY: no other reference to the batch remains; freeing is final.
        let freed = unsafe { free_batch(fin.refs_node) };
        assert_eq!(freed, 5);
        assert_eq!(DROPS.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn dummy_nodes_freed_without_drop() {
        DROPS.store(0, Ordering::Relaxed);
        let mut batch = LocalBatch::<Payload>::new();
        let real = SmrNode::alloc(Payload);
        // SAFETY: `real` was just allocated and is exclusively owned.
        unsafe { batch.push(real.as_ptr(), 1, true) };
        for _ in 0..3 {
            // SAFETY: dummy nodes carry no payload; alloc_dummy returns a
            // fresh allocation and push takes exclusive ownership of it.
            let dummy = unsafe { SmrNode::<Payload>::alloc_dummy() };
            // SAFETY: as above — `dummy` is fresh and unshared.
            unsafe { batch.push(dummy.as_ptr(), u64::MAX, false) };
        }
        // SAFETY: every pushed node is live and unshared.
        let fin = unsafe { batch.finalize(0) };
        assert_eq!(fin.min_birth, 1);
        // SAFETY: the batch was never published; this thread owns it outright.
        let freed = unsafe { free_batch(fin.refs_node) };
        assert_eq!(freed, 4);
        assert_eq!(DROPS.load(Ordering::Relaxed), 1, "only the real payload drops");
    }

    #[test]
    fn adjust_crosses_zero_exactly_once() {
        let mut batch = LocalBatch::<u32>::new();
        for v in 0..3 {
            let node = SmrNode::alloc(v);
            // SAFETY: `node` was just allocated and is exclusively owned.
            unsafe { batch.push(node.as_ptr(), 0, true) };
        }
        // SAFETY: all pushed nodes are live and unshared.
        let fin = unsafe { batch.finalize(0) };
        let mut reap = Vec::new();
        // Simulate: +5 (insert credit), then five -1 decrements.
        // SAFETY: `refs_node` belongs to the just-finalized batch.
        unsafe { adjust_refs(fin.refs_node, 5, &mut reap) };
        assert!(reap.is_empty());
        for i in 0..5 {
            // SAFETY: the batch stays live until the final decrement below.
            unsafe { decrement(fin.chain_head, &mut reap) };
            assert_eq!(reap.len(), usize::from(i == 4));
        }
        assert_eq!(reap.len(), 1);
        assert_eq!(reap[0], fin.refs_node);
        // SAFETY: NRef crossed zero and no other reference remains.
        unsafe { free_batch(fin.refs_node) };
    }

    #[test]
    fn slot_credit_uses_batch_stored_adjs() {
        // Two batches finalized under different slot counts must be adjusted
        // with their own Adjs values (the §4.3 adaptive-resizing invariant).
        let adjs_small = (usize::MAX / 2).wrapping_add(1); // k = 2
        let mut batch = LocalBatch::<u32>::new();
        for v in 0..3 {
            let node = SmrNode::alloc(v);
            // SAFETY: `node` was just allocated and is exclusively owned.
            unsafe { batch.push(node.as_ptr(), 0, true) };
        }
        // SAFETY: all pushed nodes are live and unshared.
        let fin = unsafe { batch.finalize(adjs_small) };
        let mut reap = Vec::new();
        // One slot credited with HRef snapshot 1, then one decrement, then
        // the second slot's credit: NRef = 2*Adjs + 1 - 1 = 0 (mod 2^64).
        // SAFETY: `chain_head` is a live node of the finalized batch.
        unsafe { adjust_slot_credit(fin.chain_head, 1, &mut reap) };
        assert!(reap.is_empty());
        // SAFETY: the batch is still live (NRef has not crossed zero yet).
        unsafe { decrement(fin.chain_head, &mut reap) };
        assert!(reap.is_empty());
        // SAFETY: last credit; the batch is freed only via `reap` below.
        unsafe { adjust_slot_credit(fin.chain_head, 0, &mut reap) };
        assert_eq!(reap.len(), 1);
        // SAFETY: NRef crossed zero and no other reference remains.
        unsafe { free_batch(fin.refs_node) };
    }

    #[test]
    fn adjust_with_zero_frees_untouched_batch() {
        // The all-slots-empty retire path: Empty = k * Adjs wraps to zero and
        // NRef is still zero, so the batch frees immediately.
        let mut batch = LocalBatch::<u32>::new();
        for v in 0..2 {
            let node = SmrNode::alloc(v);
            // SAFETY: `node` was just allocated and is exclusively owned.
            unsafe { batch.push(node.as_ptr(), 0, true) };
        }
        // SAFETY: all pushed nodes are live and unshared.
        let fin = unsafe { batch.finalize(0) };
        let mut reap = Vec::new();
        // SAFETY: `refs_node` belongs to the just-finalized, unpublished batch.
        unsafe { adjust_refs(fin.refs_node, 0, &mut reap) };
        assert_eq!(reap.len(), 1);
        // SAFETY: NRef is zero and this thread holds the only reference.
        unsafe { free_batch(fin.refs_node) };
    }

    #[test]
    fn singleton_batch_free() {
        let mut batch = LocalBatch::<u32>::new();
        let node = SmrNode::alloc(1);
        // SAFETY: `node` was just allocated and is exclusively owned.
        unsafe { batch.push(node.as_ptr(), 0, true) };
        // SAFETY: the single pushed node is live and unshared.
        let fin = unsafe { batch.finalize(0) };
        // SAFETY: the batch was never published; freeing is safe and final.
        assert_eq!(unsafe { free_batch(fin.refs_node) }, 1);
    }
}
