//! Hyaline-1S: the robust single-width-CAS variant.
//!
//! Combines Hyaline-1's per-thread slots (Figure 4) with Hyaline-S's birth
//! eras (Figure 5). Because each slot has exactly one owner, `touch` is an
//! ordinary memory write and no `Ack` bookkeeping is needed — a stalled
//! thread only makes its *own* slot stale, and retirement skips it by the
//! era check, so the scheme is fully robust.

use crossbeam_utils::CachePadded;
use smr_core::{
    Atomic, EraClock, LocalStats, Magazine, NodePool, Shared, Smr, SmrConfig, SmrHandle, SmrNode,
    SmrStats,
};
use std::marker::PhantomData;
use std::ptr;
use std::sync::atomic::{fence, AtomicU64, Ordering};

use crate::batch::{
    adjust_refs, chain_next, decrement, free_batch_into, header, FinalizedBatch, LocalBatch,
    W_NEXT,
};
use crate::head::{AtomicHead1, Head1Word};
use smr_core::SlotRegistry;

/// One Hyaline-1S slot: the owner's head plus its access era.
#[derive(Debug)]
struct Slot1S {
    head: AtomicHead1,
    access: AtomicU64,
}

impl Slot1S {
    fn new() -> Self {
        Self {
            head: AtomicHead1::new(),
            access: AtomicU64::new(0),
        }
    }
}

/// The robust Hyaline-1S reclamation domain.
///
/// # Example
///
/// ```
/// use hyaline::Hyaline1S;
/// use smr_core::{Smr, SmrHandle};
///
/// let domain: Hyaline1S<u32> = Hyaline1S::new();
/// let mut h = domain.handle();
/// h.enter();
/// let node = h.alloc(1);
/// unsafe { h.retire(node) };
/// h.leave();
/// ```
pub struct Hyaline1S<T: Send + 'static> {
    slots: Box<[CachePadded<Slot1S>]>,
    registry: SlotRegistry,
    era: EraClock,
    era_freq: u64,
    batch_min: usize,
    stats: SmrStats,
    pool: NodePool,
    _marker: PhantomData<fn(T) -> T>,
}

impl<T: Send + 'static> std::fmt::Debug for Hyaline1S<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hyaline1S")
            .field("capacity", &self.slots.len())
            .field("registered", &self.registry.claimed())
            .field("era", &self.era.current())
            .finish_non_exhaustive()
    }
}

impl<T: Send + 'static> Smr<T> for Hyaline1S<T> {
    type Handle<'d> = Hyaline1SHandle<'d, T>;

    fn with_config(config: SmrConfig) -> Self {
        let capacity = config.max_threads;
        Self {
            slots: (0..capacity)
                .map(|_| CachePadded::new(Slot1S::new()))
                .collect(),
            registry: SlotRegistry::new(capacity),
            era: EraClock::new(),
            era_freq: config.era_freq,
            batch_min: config.batch_min,
            stats: SmrStats::new(),
            pool: NodePool::for_node::<T>(&config),
            _marker: PhantomData,
        }
    }

    fn handle(&self) -> Hyaline1SHandle<'_, T> {
        Hyaline1SHandle {
            slot: self.registry.claim(),
            domain: self,
            handle: ptr::null_mut(),
            active: false,
            batch: LocalBatch::new(),
            reap: Vec::new(),
            local_stats: LocalStats::new(),
            alloc_counter: 0,
            access_cache: 0,
            mag: self.pool.magazine(),
        }
    }

    fn stats(&self) -> &SmrStats {
        &self.stats
    }

    fn name() -> &'static str {
        "Hyaline-1S"
    }

    fn robust() -> bool {
        true
    }

    fn supports_trim() -> bool {
        true
    }

    fn needs_seek_validation() -> bool {
        // Same reasoning as Hyaline-S: era-skipped batches are not covered
        // by a later deref, so traversals must re-validate reachability.
        true
    }
}

impl<T: Send + 'static> Drop for Hyaline1S<T> {
    fn drop(&mut self) {
        for slot in self.slots.iter() {
            debug_assert_eq!(
                slot.head.load(Ordering::Acquire),
                Head1Word::EMPTY,
                "Hyaline-1S domain dropped with a non-empty slot"
            );
        }
    }
}

/// Per-thread handle to a [`Hyaline1S`] domain; owns one slot.
pub struct Hyaline1SHandle<'d, T: Send + 'static> {
    domain: &'d Hyaline1S<T>,
    slot: usize,
    handle: *mut SmrNode<T>,
    active: bool,
    batch: LocalBatch<T>,
    reap: Vec<*mut SmrNode<T>>,
    local_stats: LocalStats,
    alloc_counter: u64,
    /// Cached copy of our slot's access era — valid because this handle is
    /// the only writer ("Hyaline-1S: touch is an ordinary memory write").
    access_cache: u64,
    mag: Magazine,
}

// SAFETY: owned raw node pointers (local batch, reap list, slot head
// snapshot) plus plain counters and a `Sync` domain borrow; the cached
// access era is valid from any thread because this handle remains the
// slot's only writer wherever it runs. Nothing is thread-affine.
unsafe impl<T: Send + 'static> Send for Hyaline1SHandle<'_, T> {}

impl<T: Send + 'static> std::fmt::Debug for Hyaline1SHandle<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hyaline1SHandle")
            .field("slot", &self.slot)
            .field("active", &self.active)
            .finish_non_exhaustive()
    }
}

impl<T: Send + 'static> Hyaline1SHandle<'_, T> {
    /// The dedicated slot owned by this handle.
    pub fn slot(&self) -> usize {
        self.slot
    }

    /// Decrements every batch from `next` down to (and including) the handle
    /// node (the Figure 4 single-list traversal).
    ///
    /// # Safety
    ///
    /// `next` must be a node this slot's reference still pins (the detached
    /// head, or a `Next` link read while inside the operation); every node
    /// on the sublist stays live until its decrement below.
    unsafe fn traverse(&mut self, mut next: *mut SmrNode<T>) {
        let handle = self.handle;
        loop {
            let curr = next;
            if curr.is_null() {
                break;
            }
            next = header(curr).word(W_NEXT).load(Ordering::Acquire) as *mut SmrNode<T>;
            decrement(curr, &mut self.reap);
            if curr == handle {
                break;
            }
        }
    }

    /// Insert into every slot that is active *and* era-fresh enough to
    /// possibly reference the batch; count insertions (Figure 4 + Figure 5).
    ///
    /// # Safety
    ///
    /// `fin` must come from this handle's own `LocalBatch::finalize` and be
    /// unpublished: no other thread may have seen any chain node yet.
    unsafe fn insert_batch(&mut self, mut fin: FinalizedBatch<T>) {
        let domain = self.domain;
        fence(Ordering::SeqCst);
        let mut insert_node = fin.chain_head;
        // See `Hyaline1Handle::insert_batch`: once the chain is exhausted,
        // remaining slots each take a fresh dummy; a node already linked
        // into one slot list must never be pushed onto a second one.
        let mut spare: *mut SmrNode<T> = ptr::null_mut();
        let mut inserts: usize = 0;
        for idx in domain.registry.iter_claimed() {
            let slot = &domain.slots[idx];
            loop {
                let head = slot.head.load(Ordering::Acquire);
                let access = slot.access.load(Ordering::SeqCst);
                if !head.active() || access < fin.min_birth {
                    break;
                }
                let node = if insert_node != fin.refs_node {
                    insert_node
                } else {
                    if spare.is_null() {
                        spare = fin.extend_with_dummy();
                        self.local_stats.on_alloc(&domain.stats);
                        self.local_stats.on_retire(&domain.stats);
                    }
                    spare
                };
                header(node)
                    .word(W_NEXT)
                    .store(head.ptr::<SmrNode<T>>() as usize, Ordering::Relaxed);
                let new = Head1Word::pack(true, node);
                if slot
                    .head
                    .compare_exchange(head, new, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    inserts += 1;
                    if node == insert_node {
                        insert_node = chain_next(insert_node);
                    } else {
                        spare = ptr::null_mut(); // dummy consumed
                    }
                    break;
                }
            }
        }
        adjust_refs(fin.refs_node, inserts, &mut self.reap);
    }

    fn finalize_partial(&mut self) {
        if self.batch.is_empty() {
            return;
        }
        let domain = self.domain;
        while self.batch.count() < 2 {
            // SAFETY: dummy nodes have no payload; the pool hands out fresh
            // or recycled exclusively-owned memory either way.
            let dummy = unsafe { domain.pool.alloc_dummy::<T>(&mut self.mag, &domain.stats) };
            self.local_stats.on_alloc(&domain.stats);
            self.local_stats.on_retire(&domain.stats);
            // SAFETY: `dummy` is exclusively owned until pushed.
            unsafe { self.batch.push(dummy.as_ptr(), u64::MAX, false) };
        }
        // SAFETY: all batch nodes are owned by this handle and unpublished.
        let fin = unsafe { self.batch.finalize(0) };
        // SAFETY: `fin` is this handle's own freshly finalized batch.
        unsafe { self.insert_batch(fin) };
    }

    fn drain(&mut self) {
        if self.reap.is_empty() {
            return;
        }
        let domain = self.domain;
        let mut freed = 0;
        for refs in std::mem::take(&mut self.reap) {
            // SAFETY: a REFS node enters `reap` only when its batch's NRef
            // crossed zero, so no thread can still reference the batch.
            freed += unsafe { free_batch_into(refs, &domain.pool, &mut self.mag, &domain.stats) };
        }
        self.local_stats.on_free(&domain.stats, freed);
    }
}

impl<T: Send + 'static> SmrHandle<T> for Hyaline1SHandle<'_, T> {
    fn enter(&mut self) {
        debug_assert!(!self.active, "enter while already inside an operation");
        self.domain.slots[self.slot].head.enter();
        self.handle = ptr::null_mut();
        self.active = true;
    }

    fn leave(&mut self) {
        debug_assert!(self.active, "leave without a matching enter");
        self.active = false;
        let old = self.domain.slots[self.slot].head.leave();
        let head: *mut SmrNode<T> = old.ptr();
        if !head.is_null() {
            // SAFETY: `leave` detached the list; its nodes stay live until
            // this traversal applies our decrement to each batch.
            unsafe { self.traverse(head) };
        }
        self.handle = ptr::null_mut();
        self.drain();
    }

    fn trim(&mut self) {
        debug_assert!(self.active, "trim outside an operation");
        let head = self.domain.slots[self.slot].head.load(Ordering::Acquire);
        let curr: *mut SmrNode<T> = head.ptr();
        if curr != self.handle {
            debug_assert!(!curr.is_null());
            // SAFETY: we are still inside the operation, so the head and its
            // sublist are pinned by our slot's active reference.
            let next =
                unsafe { header(curr).word(W_NEXT).load(Ordering::Acquire) } as *mut SmrNode<T>;
            // SAFETY: as above — the sublist is pinned until traversed.
            unsafe { self.traverse(next) };
            self.handle = curr;
        }
        self.drain();
    }

    fn alloc(&mut self, value: T) -> Shared<T> {
        let domain = self.domain;
        self.alloc_counter += 1;
        if self.alloc_counter.is_multiple_of(domain.era_freq) {
            domain.era.advance();
        }
        self.local_stats.on_alloc(&domain.stats);
        let node = domain.pool.alloc(&mut self.mag, &domain.stats, value);
        // SAFETY: `node` is a fresh, unshared allocation; stamping its birth
        // era in the header word races with nobody.
        unsafe {
            (*node.as_ptr())
                .header()
                .word(W_NEXT)
                .store(domain.era.current() as usize, Ordering::Relaxed);
        }
        Shared::from_node(node)
    }

    // SAFETY: per the `SmrHandle::dealloc` contract the node was never
    // published, so this thread owns it outright and may free it in place.
    unsafe fn dealloc(&mut self, ptr: Shared<T>) {
        let domain = self.domain;
        self.local_stats.on_dealloc(&domain.stats);
        domain.pool.dispose(&mut self.mag, &domain.stats, ptr.as_node_ptr(), true);
    }

    fn protect(&mut self, _idx: usize, src: &Atomic<T>) -> Shared<T> {
        let domain = self.domain;
        let slot = &domain.slots[self.slot];
        loop {
            let node = src.load(Ordering::Acquire);
            let alloc = domain.era.current();
            if self.access_cache == alloc {
                return node;
            }
            // Sole owner: an ordinary store replaces the CAS-max `touch`.
            slot.access.store(alloc, Ordering::SeqCst);
            fence(Ordering::SeqCst);
            self.access_cache = alloc;
        }
    }

    // SAFETY: per the `SmrHandle::retire` contract the node is unlinked from
    // every shared structure, so batching it for deferred free is sound.
    unsafe fn retire(&mut self, ptr: Shared<T>) {
        debug_assert!(self.active, "retire outside an operation");
        let domain = self.domain;
        let node = ptr.as_node_ptr();
        let birth = header(node).word(W_NEXT).load(Ordering::Relaxed) as u64;
        self.local_stats.on_retire(&domain.stats);
        self.batch.push(node, birth, true);
        let target = domain.batch_min.max(domain.registry.claimed() + 1);
        if self.batch.count() >= target {
            let fin = self.batch.finalize(0);
            self.insert_batch(fin);
            self.drain();
        }
    }

    fn flush(&mut self) {
        self.finalize_partial();
        self.drain();
        let domain = self.domain;
        domain.pool.flush(&mut self.mag, &domain.stats);
        self.local_stats.flush(&domain.stats);
    }
}

impl<T: Send + 'static> Drop for Hyaline1SHandle<'_, T> {
    fn drop(&mut self) {
        if self.active {
            self.leave();
        }
        self.finalize_partial();
        self.drain();
        let domain = self.domain;
        domain.pool.flush(&mut self.mag, &domain.stats);
        self.local_stats.flush(&domain.stats);
        domain.registry.release(self.slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_domain() -> Hyaline1S<u64> {
        Hyaline1S::with_config(SmrConfig {
            batch_min: 4,
            era_freq: 4,
            max_threads: 32,
            ..SmrConfig::default()
        })
    }

    #[test]
    fn single_thread_reclaims_everything() {
        let d = small_domain();
        {
            let mut h = d.handle();
            for i in 0..200u64 {
                h.enter();
                let node = h.alloc(i);
                // SAFETY: `node` was never published; no other reference exists.
                unsafe { h.retire(node) };
                h.leave();
            }
        }
        assert!(d.stats().balanced());
        assert_eq!(d.stats().allocated(), d.stats().freed());
    }

    #[test]
    fn stalled_thread_is_skipped_by_era() {
        let d = &small_domain();
        let entered = &std::sync::Barrier::new(2);
        let done = &std::sync::Barrier::new(2);
        std::thread::scope(|s| {
            s.spawn(move || {
                let mut stalled = d.handle();
                stalled.enter();
                entered.wait();
                done.wait();
                stalled.leave();
            });
            entered.wait();
            let mut worker = d.handle();
            for i in 0..10_000u64 {
                worker.enter();
                let node = worker.alloc(i);
                // SAFETY: `node` was never published; no other reference exists.
                unsafe { worker.retire(node) };
                worker.leave();
            }
            worker.flush();
            let unreclaimed = d.stats().unreclaimed();
            assert!(
                unreclaimed < 1_000,
                "stalled thread pinned {unreclaimed} nodes; Hyaline-1S must be robust"
            );
            done.wait();
        });
        assert!(d.stats().balanced());
    }

    #[test]
    fn fresh_reader_is_tracked_not_skipped() {
        // A reader whose access era is current must pin batches it could
        // reference; they reclaim once it leaves.
        let d = &small_domain();
        let published = &std::sync::Barrier::new(2);
        let protected = &std::sync::Barrier::new(2);
        let release = &std::sync::Barrier::new(2);
        let link = &Atomic::<u64>::null();
        std::thread::scope(|s| {
            s.spawn(move || {
                let mut reader = d.handle();
                reader.enter();
                published.wait();
                let seen = reader.protect(0, link);
                assert!(!seen.is_null());
                // SAFETY: `seen` came from `protect` inside the operation.
                assert_eq!(unsafe { *seen.deref() }, 42);
                protected.wait();
                release.wait();
                // SAFETY: still protected — the era reservation pins `seen`.
                assert_eq!(unsafe { *seen.deref() }, 42);
                reader.leave();
            });
            let mut writer = d.handle();
            writer.enter();
            let node = writer.alloc(42);
            link.store(node, Ordering::Release);
            published.wait();
            protected.wait();
            // Unlink and retire while the reader holds a protected pointer.
            let unlinked = link.swap(Shared::null(), Ordering::AcqRel);
            // SAFETY: the swap unlinked the node from the only shared link.
            unsafe { writer.retire(unlinked) };
            writer.leave();
            writer.flush();
            release.wait();
        });
        assert!(d.stats().balanced());
        assert_eq!(d.stats().allocated(), d.stats().freed());
    }

    #[test]
    fn multithreaded_stress() {
        let d = &small_domain();
        std::thread::scope(|s| {
            for t in 0..8 {
                s.spawn(move || {
                    let mut h = d.handle();
                    for i in 0..2_000u64 {
                        h.enter();
                        let node = h.alloc(t * 1_000_000 + i);
                        // SAFETY: the node is thread-local until retired.
                        unsafe { h.retire(node) };
                        h.leave();
                    }
                });
            }
        });
        assert!(d.stats().balanced());
        assert_eq!(d.stats().allocated(), d.stats().freed());
    }
}
