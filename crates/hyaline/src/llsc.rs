//! A software model of single-width LL/SC and the Figure 7 head operations.
//!
//! Section 4.4 of the paper ports Hyaline to PPC/MIPS, which offer only
//! *single-width* LL/SC: the trick is that the LL **reservation granule** is
//! larger than one word (an L1 line or more), so placing `HRef` and `HPtr`
//! in the same granule makes an SC on either word fail if the *other* word
//! changed too ("false sharing" used productively). An ordinary load,
//! ordered by an artificial data dependency, reads the second word between
//! the LL and the SC.
//!
//! We cannot execute PPC/MIPS assembly here, so this module models the
//! semantics instead: a [`Granule`] holds two 32-bit words in one
//! `AtomicU64`; `ll` takes a reservation over the *whole* granule and `sc`
//! succeeds only if nothing in the granule changed — exactly the property
//! Figure 7 relies on. On top of the model, [`dw_faa`], [`dw_cas_ref`] and
//! [`dw_cas_ptr`] implement Figure 7 verbatim, and [`LlscHead`] drives them
//! through Hyaline's enter/leave/retire head transitions so the §4.4
//! protocol (including the delayed `HPtr := Null` on `HRef == 0`) is
//! exercised by tests.
//!
//! This is an algorithm-logic model, not a reclamation backend: the
//! "pointer" half is an opaque 32-bit id.

use std::sync::atomic::{AtomicU64, Ordering};

/// Which word of the granule an operation addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Word {
    /// The reference-count word (`HRef`).
    Ref,
    /// The pointer word (`HPtr`).
    Ptr,
}

/// A decoded `[HRef, HPtr]` pair stored in one granule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pair {
    /// Reference count.
    pub href: u32,
    /// Opaque pointer id (0 = null).
    pub hptr: u32,
}

impl Pair {
    fn pack(self) -> u64 {
        (u64::from(self.href) << 32) | u64::from(self.hptr)
    }

    fn unpack(raw: u64) -> Self {
        Pair {
            href: (raw >> 32) as u32,
            hptr: raw as u32,
        }
    }

    fn word(self, which: Word) -> u32 {
        match which {
            Word::Ref => self.href,
            Word::Ptr => self.hptr,
        }
    }

    fn with_word(mut self, which: Word, value: u32) -> Self {
        match which {
            Word::Ref => self.href = value,
            Word::Ptr => self.hptr = value,
        }
        self
    }
}

/// An LL reservation: the granule snapshot taken by [`Granule::ll`].
///
/// `sc` succeeds only if the whole granule still equals this snapshot —
/// modeling a reservation granule that covers both words.
#[derive(Debug, Clone, Copy)]
pub struct Reservation {
    snapshot: u64,
    word: Word,
}

/// A two-word reservation granule.
#[derive(Debug, Default)]
pub struct Granule(AtomicU64);

impl Granule {
    /// A granule holding `[0, 0]`.
    pub const fn new() -> Self {
        Granule(AtomicU64::new(0))
    }

    /// Load-linked on one word: returns its value and a reservation over
    /// the whole granule.
    pub fn ll(&self, word: Word) -> (u32, Reservation) {
        let snapshot = self.0.load(Ordering::SeqCst);
        (
            Pair::unpack(snapshot).word(word),
            Reservation { snapshot, word },
        )
    }

    /// Ordinary load of the *other* word, as Figure 7's `Load` (the inline
    /// assembly orders it after the LL with a data dependency; the model
    /// uses an acquire load).
    pub fn load_other(&self, word: Word) -> u32 {
        let raw = self.0.load(Ordering::Acquire);
        let other = match word {
            Word::Ref => Word::Ptr,
            Word::Ptr => Word::Ref,
        };
        Pair::unpack(raw).word(other)
    }

    /// Loads the full pair (test/assertion helper; real hardware cannot do
    /// this atomically, which is the entire point of Figure 7).
    pub fn load_pair(&self) -> Pair {
        Pair::unpack(self.0.load(Ordering::SeqCst))
    }

    /// Store-conditional: writes `value` into the reserved word iff the
    /// whole granule is unchanged since the reservation's LL.
    pub fn sc(&self, res: Reservation, value: u32) -> bool {
        let new = Pair::unpack(res.snapshot).with_word(res.word, value);
        self.0
            .compare_exchange(
                res.snapshot,
                new.pack(),
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .is_ok()
    }
}

/// Figure 7's `dwFAA`: increments `HRef` while `HPtr` remains intact,
/// returning the pair observed before the increment.
pub fn dw_faa(head: &Granule, ref_addend: u32) -> Pair {
    loop {
        let (href, res) = head.ll(Word::Ref);
        let hptr = head.load_other(Word::Ref);
        let value = href.wrapping_add(ref_addend);
        if head.sc(res, value) {
            // Double-width load atomicity is guaranteed when SC succeeds.
            return Pair { href, hptr };
        }
    }
}

/// Figure 7's `dwCAS_Ref`: replaces the pair's `HRef` if the whole pair
/// matches `expected`. Sporadic (weak) failure is allowed by the caller.
pub fn dw_cas_ref(head: &Granule, expected: Pair, new_href: u32) -> bool {
    let (href, res) = head.ll(Word::Ref);
    let hptr = head.load_other(Word::Ref);
    if (Pair { href, hptr }) != expected {
        return false;
    }
    head.sc(res, new_href)
}

/// Figure 7's `dwCAS_Ptr`: replaces the pair's `HPtr` if the whole pair
/// matches `expected`.
pub fn dw_cas_ptr(head: &Granule, expected: Pair, new_hptr: u32) -> bool {
    let (hptr, res) = head.ll(Word::Ptr);
    let href = head.load_other(Word::Ptr);
    if (Pair { href, hptr }) != expected {
        return false;
    }
    head.sc(res, new_hptr)
}

/// A Hyaline slot head driven exclusively through the LL/SC operations,
/// following the §4.4 protocol: `leave` first drops `HRef` (keeping `HPtr`
/// intact even at zero), then a second CAS clears `HPtr` "if the object is
/// still unclaimed by any concurrent enter".
#[derive(Debug, Default)]
pub struct LlscHead {
    granule: Granule,
}

impl LlscHead {
    /// An empty head.
    pub const fn new() -> Self {
        LlscHead {
            granule: Granule::new(),
        }
    }

    /// The current `[HRef, HPtr]` pair (for assertions).
    pub fn pair(&self) -> Pair {
        self.granule.load_pair()
    }

    /// `enter`: FAA on `HRef`, returning the handle (`HPtr` snapshot).
    pub fn enter(&self) -> u32 {
        dw_faa(&self.granule, 1).hptr
    }

    /// `retire`'s push: replace `HPtr` with `new_ptr`, expecting the exact
    /// pair. Returns the observed pair on failure.
    ///
    /// # Errors
    ///
    /// Returns the currently observed pair when the CAS did not commit
    /// (including sporadic SC failures — retry with the fresh pair).
    pub fn push(&self, expected: Pair, new_ptr: u32) -> Result<(), Pair> {
        if dw_cas_ptr(&self.granule, expected, new_ptr) {
            Ok(())
        } else {
            Err(self.pair())
        }
    }

    /// `leave`: decrement `HRef`; when it reaches zero, additionally try to
    /// claim the list by nulling `HPtr`. Returns `(old_pair,
    /// claimed_list_ptr)` where the pointer is nonzero iff this leave
    /// detached a non-empty list.
    pub fn leave(&self) -> (Pair, u32) {
        // Strong CAS loop on the ref word (weak failures just retry).
        let old = loop {
            let cur = self.pair();
            debug_assert!(cur.href > 0, "leave without enter");
            if dw_cas_ref(&self.granule, cur, cur.href - 1) {
                break cur;
            }
        };
        if old.href == 1 && old.hptr != 0 {
            // HRef hit zero: claim the list unless a concurrent enter
            // arrived. Single-width atomicity on failure is fine — a false
            // negative would require HRef to no longer be zero.
            let expect = Pair {
                href: 0,
                hptr: old.hptr,
            };
            if dw_cas_ptr(&self.granule, expect, 0) {
                return (old, old.hptr);
            }
        }
        (old, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sc_fails_if_other_word_changed() {
        // The false-sharing property Figure 7 depends on: a reservation on
        // HRef is lost when HPtr changes.
        let g = Granule::new();
        let (val, res) = g.ll(Word::Ref);
        assert_eq!(val, 0);
        assert!(dw_cas_ptr(&g, Pair { href: 0, hptr: 0 }, 7));
        assert!(!g.sc(res, val + 1), "SC must fail: granule changed");
        assert_eq!(g.load_pair(), Pair { href: 0, hptr: 7 });
    }

    #[test]
    fn dw_faa_preserves_pointer() {
        let g = Granule::new();
        assert!(dw_cas_ptr(&g, Pair::default(), 99));
        let old = dw_faa(&g, 1);
        assert_eq!(old, Pair { href: 0, hptr: 99 });
        assert_eq!(g.load_pair(), Pair { href: 1, hptr: 99 });
    }

    #[test]
    fn dw_cas_checks_both_words() {
        let g = Granule::new();
        dw_faa(&g, 2);
        // Wrong HRef in expected -> both flavors fail.
        assert!(!dw_cas_ptr(&g, Pair { href: 1, hptr: 0 }, 5));
        assert!(!dw_cas_ref(&g, Pair { href: 1, hptr: 0 }, 5));
        // Correct pair -> succeeds.
        assert!(dw_cas_ptr(&g, Pair { href: 2, hptr: 0 }, 5));
        assert_eq!(g.load_pair(), Pair { href: 2, hptr: 5 });
    }

    #[test]
    fn head_enter_leave_protocol() {
        let head = LlscHead::new();
        let handle = head.enter();
        assert_eq!(handle, 0);
        // Push two "nodes".
        let mut cur = head.pair();
        loop {
            match head.push(cur, 11) {
                Ok(()) => break,
                Err(seen) => cur = seen,
            }
        }
        assert_eq!(head.pair(), Pair { href: 1, hptr: 11 });
        let (old, claimed) = head.leave();
        assert_eq!(old, Pair { href: 1, hptr: 11 });
        assert_eq!(claimed, 11, "last leaver claims the list");
        assert_eq!(head.pair(), Pair { href: 0, hptr: 0 });
    }

    #[test]
    fn concurrent_enter_prevents_list_claim() {
        // §4.4: leave keeps HPtr intact at HRef == 0 and only a second CAS
        // clears it "if the object is still unclaimed by any concurrent
        // enter". Model the interleaving: T1 is about to claim, T2 enters.
        let head = LlscHead::new();
        head.enter();
        let mut cur = head.pair();
        while let Err(seen) = head.push(cur, 42) {
            cur = seen;
        }
        // T1 drops HRef to zero by hand (first half of leave)...
        assert!(dw_cas_ref(&head.granule, Pair { href: 1, hptr: 42 }, 0));
        // ...T2 enters before T1's claim CAS:
        let t2_handle = head.enter();
        assert_eq!(t2_handle, 42, "T2 adopted the still-intact list");
        // T1's claim must now fail: HRef is no longer zero.
        assert!(!dw_cas_ptr(&head.granule, Pair { href: 0, hptr: 42 }, 0));
        assert_eq!(head.pair(), Pair { href: 1, hptr: 42 });
    }

    #[test]
    fn concurrent_faa_all_counted() {
        let head = &LlscHead::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..500 {
                        head.enter();
                    }
                });
            }
        });
        assert_eq!(head.pair().href, 4000);
    }

    #[test]
    fn concurrent_push_and_leave_keeps_pair_consistent() {
        // Hammer the head with enters, pushes and leaves; the pair must
        // never tear (href and hptr always a value some thread wrote).
        let head = &LlscHead::new();
        std::thread::scope(|s| {
            for t in 1..=4u32 {
                s.spawn(move || {
                    for i in 0..2_000u32 {
                        head.enter();
                        let mut cur = head.pair();
                        // Push a tagged id unless someone claimed the list.
                        loop {
                            if cur.href == 0 {
                                break;
                            }
                            match head.push(cur, t * 100_000 + i) {
                                Ok(()) => break,
                                Err(seen) => cur = seen,
                            }
                        }
                        head.leave();
                    }
                });
            }
        });
        let final_pair = head.pair();
        assert_eq!(final_pair.href, 0);
        assert_eq!(final_pair.hptr, 0, "last leaver must claim the list");
    }
}
