//! Hyaline-S: the robust extension (Figure 5 of the paper), with the §4.3
//! adaptive slot-resizing scheme (Figure 6).
//!
//! Hyaline-S partially adopts *birth eras* from HE/IBR — but, unlike them,
//! keeps no retire eras and uses eras only to *detect stalled threads*, not
//! to define reclamation intervals. Every allocation stamps the node with
//! the global era clock; every guarded pointer read (`protect`) raises the
//! calling slot's access era to the current clock; `retire` skips slots
//! whose access era is older than the batch's minimum birth era (no thread
//! in that slot can hold a reference to any node of the batch). Slots
//! occupied by stalled threads accumulate un-acknowledged insertions in an
//! `Ack` counter, and `enter` avoids slots past a threshold — growing the
//! slot directory when everything is saturated (if `adaptive` is enabled).

use smr_core::{
    Atomic, EraClock, LocalStats, Magazine, NodePool, Shared, Smr, SmrConfig, SmrHandle, SmrNode,
    SmrStats,
};
use std::marker::PhantomData;
use std::ptr;
use std::sync::atomic::{fence, AtomicUsize, Ordering};

use crate::batch::{
    adjust_refs, adjust_slot_credit, chain_next, decrement, free_batch_into, header,
    FinalizedBatch, LocalBatch, W_NEXT,
};
use crate::hyaline::adjs_for;
use crate::registry::{SlotDirectory, SlotS};

/// The robust Hyaline-S reclamation domain (Figure 5, plus Figure 6 when
/// [`SmrConfig::adaptive`] is set).
///
/// With `adaptive: false` the slot count is capped at [`SmrConfig::slots`]
/// (the paper's Figure 10a shows this configuration "running out of slots"
/// once more stalled threads than slots exist). With `adaptive: true` the
/// slot directory doubles whenever `enter` finds every slot saturated,
/// making the scheme fully robust.
///
/// # Example
///
/// ```
/// use hyaline::HyalineS;
/// use smr_core::{Smr, SmrConfig, SmrHandle};
///
/// let domain: HyalineS<u64> = HyalineS::with_config(SmrConfig {
///     slots: 8,
///     adaptive: true,
///     ..SmrConfig::default()
/// });
/// let mut h = domain.handle();
/// h.enter();
/// let node = h.alloc(1);
/// unsafe { h.retire(node) };
/// h.leave();
/// ```
pub struct HyalineS<T: Send + 'static> {
    dir: SlotDirectory,
    era: EraClock,
    era_freq: u64,
    batch_min: usize,
    ack_threshold: i64,
    next_slot: AtomicUsize,
    stats: SmrStats,
    pool: NodePool,
    _marker: PhantomData<fn(T) -> T>,
}

impl<T: Send + 'static> std::fmt::Debug for HyalineS<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HyalineS")
            .field("dir", &self.dir)
            .field("era", &self.era.current())
            .finish_non_exhaustive()
    }
}

impl<T: Send + 'static> HyalineS<T> {
    /// The current number of slots (grows under `adaptive`).
    pub fn slot_count(&self) -> usize {
        self.dir.k()
    }

    /// The current global era.
    pub fn era(&self) -> u64 {
        self.era.current()
    }

    /// Figure 5's `touch`: raises a slot's access era to at least `era`
    /// with a CAS-max loop (multiple threads share each slot).
    fn touch(slot: &SlotS, era: u64) -> u64 {
        let mut access = slot.access.load(Ordering::SeqCst);
        while access < era {
            match slot
                .access
                .compare_exchange_weak(access, era, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return era,
                Err(now) => access = now,
            }
        }
        access
    }
}

impl<T: Send + 'static> Smr<T> for HyalineS<T> {
    type Handle<'d> = HyalineSHandle<'d, T>;

    fn with_config(config: SmrConfig) -> Self {
        assert!(
            config.slots.is_power_of_two(),
            "Hyaline-S requires a power-of-two slot count"
        );
        let max_k = if config.adaptive {
            // Bounded by the registry-style cap so directory growth stops at
            // a sane power of two even under pathological stalling.
            config.max_threads.next_power_of_two().max(config.slots)
        } else {
            config.slots
        };
        Self {
            dir: SlotDirectory::new(config.slots, max_k),
            era: EraClock::new(),
            era_freq: config.era_freq,
            batch_min: config.batch_min,
            ack_threshold: config.ack_threshold,
            next_slot: AtomicUsize::new(0),
            stats: SmrStats::new(),
            pool: NodePool::for_node::<T>(&config),
            _marker: PhantomData,
        }
    }

    fn handle(&self) -> HyalineSHandle<'_, T> {
        let slot = self.next_slot.fetch_add(1, Ordering::Relaxed) % self.dir.k();
        HyalineSHandle {
            domain: self,
            slot,
            handle: ptr::null_mut(),
            active: false,
            batch: LocalBatch::new(),
            reap: Vec::new(),
            local_stats: LocalStats::new(),
            alloc_counter: 0,
            mag: self.pool.magazine(),
        }
    }

    fn stats(&self) -> &SmrStats {
        &self.stats
    }

    fn name() -> &'static str {
        "Hyaline-S"
    }

    fn robust() -> bool {
        true
    }

    fn supports_trim() -> bool {
        true
    }

    fn needs_seek_validation() -> bool {
        // A batch whose `min_birth` outruns this slot's access era skips the
        // slot permanently; a later `deref` of one of its nodes (reachable
        // only through an unlinked frozen region) would not be covered.
        // Validated traversals guarantee every protected node was still
        // reachable — and therefore unretired — when its era was certified.
        true
    }
}

/// Per-thread handle to a [`HyalineS`] domain.
pub struct HyalineSHandle<'d, T: Send + 'static> {
    domain: &'d HyalineS<T>,
    slot: usize,
    handle: *mut SmrNode<T>,
    active: bool,
    batch: LocalBatch<T>,
    reap: Vec<*mut SmrNode<T>>,
    local_stats: LocalStats,
    alloc_counter: u64,
    mag: Magazine,
}

// SAFETY: owned raw node pointers (local batch, reap list, slot head
// snapshot) and a `Sync` domain borrow; no thread-affine state, so the
// handle may be parked and re-issued to another task.
unsafe impl<T: Send + 'static> Send for HyalineSHandle<'_, T> {}

impl<T: Send + 'static> std::fmt::Debug for HyalineSHandle<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HyalineSHandle")
            .field("slot", &self.slot)
            .field("active", &self.active)
            .finish_non_exhaustive()
    }
}

impl<T: Send + 'static> HyalineSHandle<'_, T> {
    /// The slot this handle last entered through (may move between
    /// operations to avoid stalled slots).
    pub fn slot(&self) -> usize {
        self.slot
    }

    /// Walks the retirement sublist, decrementing batch counters and
    /// counting iterations for the `Ack` bookkeeping (Figure 5's `traverse`
    /// counts loop iterations, including a terminating null hop — exactly
    /// balancing the `HRef` snapshots added by `retire`).
    ///
    /// # Safety
    ///
    /// `next` must be the `Next` link of a node this thread still holds a
    /// logical reference to (read while the slot reference was held), so
    /// every node on the sublist is live until its decrement below.
    unsafe fn traverse(&mut self, mut next: *mut SmrNode<T>) -> i64 {
        let handle = self.handle;
        let mut count = 0i64;
        loop {
            let curr = next;
            count += 1;
            if curr.is_null() {
                break;
            }
            next = header(curr).word(W_NEXT).load(Ordering::Acquire) as *mut SmrNode<T>;
            decrement(curr, &mut self.reap);
            if curr == handle {
                break;
            }
        }
        count
    }

    /// Figure 5's `retire`: insert into slots that are active *and* whose
    /// access era reaches the batch's minimum birth era; acknowledge
    /// insertions in `Ack`.
    ///
    /// # Safety
    ///
    /// `fin` must come from this handle's own `LocalBatch::finalize` with at
    /// least `k + 1` chain nodes that no other thread has seen yet, and
    /// `k`/`adjs` must be the values the batch was finalized against.
    unsafe fn insert_batch(&mut self, fin: FinalizedBatch<T>, k: usize, adjs: usize) {
        let domain = self.domain;
        // Order the pre-retire unlinks before the access-era reads below.
        fence(Ordering::SeqCst);
        let mut insert_node = fin.chain_head;
        let mut empty_adjs: usize = 0;
        let mut any_empty = false;
        for i in 0..k {
            let slot = domain.dir.slot(i);
            loop {
                let head = slot.head.load(Ordering::Acquire);
                let access = slot.access.load(Ordering::SeqCst);
                if head.refs() == 0 || access < fin.min_birth {
                    // No active thread here, or none that could have ever
                    // dereferenced a node of this batch: skip the slot.
                    any_empty = true;
                    empty_adjs = empty_adjs.wrapping_add(adjs);
                    break;
                }
                debug_assert!(insert_node != fin.refs_node);
                header(insert_node)
                    .word(W_NEXT)
                    .store(head.ptr_bits(), Ordering::Relaxed);
                let new = head.with_ptr(insert_node);
                if slot
                    .head
                    .compare_exchange(head, new, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    let pred: *mut SmrNode<T> = head.ptr();
                    if !pred.is_null() {
                        adjust_slot_credit(pred, head.refs(), &mut self.reap);
                    }
                    // Track un-acknowledged references for stall detection.
                    slot.ack.fetch_add(head.refs() as i64, Ordering::Relaxed);
                    insert_node = chain_next(insert_node);
                    break;
                }
            }
        }
        if any_empty {
            adjust_refs(fin.refs_node, empty_adjs, &mut self.reap);
        }
    }

    /// Finalizes the local batch against the *current* slot count: pads
    /// with dummies up to `k + 1` nodes if the directory grew since the
    /// batch was sized, stores `Adjs = 2^64 / k` in the batch, and inserts.
    ///
    /// # Safety
    ///
    /// The local batch must be non-empty, with every node owned by this
    /// handle and unpublished.
    unsafe fn finalize_and_insert(&mut self) {
        let domain = self.domain;
        let k = domain.dir.k();
        while self.batch.count() < k + 1 {
            let dummy = domain.pool.alloc_dummy::<T>(&mut self.mag, &domain.stats);
            self.local_stats.on_alloc(&domain.stats);
            self.local_stats.on_retire(&domain.stats);
            self.batch.push(dummy.as_ptr(), u64::MAX, false);
        }
        let adjs = adjs_for(k);
        let fin = self.batch.finalize(adjs);
        self.insert_batch(fin, k, adjs);
    }

    fn drain(&mut self) {
        if self.reap.is_empty() {
            return;
        }
        let domain = self.domain;
        let mut freed = 0;
        for refs in std::mem::take(&mut self.reap) {
            // SAFETY: a REFS node enters `reap` only when its batch's NRef
            // crossed zero, so no thread can still reference the batch.
            freed += unsafe { free_batch_into(refs, &domain.pool, &mut self.mag, &domain.stats) };
        }
        self.local_stats.on_free(&domain.stats, freed);
    }
}

impl<T: Send + 'static> SmrHandle<T> for HyalineSHandle<'_, T> {
    fn enter(&mut self) {
        debug_assert!(!self.active, "enter while already inside an operation");
        let domain = self.domain;
        // Stay away from slots saturated by stalled threads (Figure 5's
        // enter loop); grow the directory when everything is saturated.
        let mut k = domain.dir.k();
        let mut slot = self.slot % k;
        let mut scanned = 0;
        let mut best = (i64::MAX, slot);
        loop {
            let ack = domain.dir.slot(slot).ack.load(Ordering::Relaxed);
            if ack < domain.ack_threshold {
                break;
            }
            if ack < best.0 {
                best = (ack, slot);
            }
            slot = (slot + 1) % k;
            scanned += 1;
            if scanned >= k {
                if domain.dir.grow() {
                    // New slots start with Ack = 0; rescan including them.
                    k = domain.dir.k();
                    scanned = 0;
                } else {
                    // Capped (non-adaptive): settle for the least-saturated
                    // slot — this is the regime where Figure 10a shows the
                    // capped variant starting to interfere.
                    slot = best.1;
                    break;
                }
            }
        }
        self.slot = slot;
        let old = domain.dir.slot(slot).head.enter_faa();
        self.handle = old.ptr();
        self.active = true;
    }

    fn leave(&mut self) {
        debug_assert!(self.active, "leave without a matching enter");
        self.active = false;
        let slot = self.domain.dir.slot(self.slot);
        let (old_head, curr, next) = loop {
            let head = slot.head.load(Ordering::Acquire);
            let curr: *mut SmrNode<T> = head.ptr();
            let mut next = ptr::null_mut();
            if curr != self.handle {
                debug_assert!(!curr.is_null());
                // SAFETY: a non-handle head exists only while we (an active
                // thread) hold a reference to it, so reading its Next is safe.
                next = unsafe { header(curr).word(W_NEXT).load(Ordering::Acquire) }
                    as *mut SmrNode<T>;
            }
            let mut new = head.with_refs(head.refs() - 1);
            if head.refs() == 1 {
                new = new.with_ptr(ptr::null_mut::<SmrNode<T>>());
            }
            if slot
                .head
                .compare_exchange(head, new, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                break (head, curr, next);
            }
        };
        if old_head.refs() == 1 && !curr.is_null() {
            // SAFETY: `curr` was the head we just detached; the batch stays
            // live until this final credit is applied.
            unsafe { adjust_slot_credit(curr, 0, &mut self.reap) };
        }
        if curr != self.handle {
            // SAFETY: `next` was read from `curr` while our slot reference
            // pinned the sublist; traverse releases it exactly once.
            let count = unsafe { self.traverse(next) };
            slot.ack.fetch_sub(count, Ordering::Relaxed);
        }
        self.handle = ptr::null_mut();
        self.drain();
    }

    fn trim(&mut self) {
        debug_assert!(self.active, "trim outside an operation");
        let slot = self.domain.dir.slot(self.slot);
        let head = slot.head.load(Ordering::Acquire);
        let curr: *mut SmrNode<T> = head.ptr();
        if curr != self.handle {
            debug_assert!(!curr.is_null());
            // SAFETY: we are still inside the operation, so the head and its
            // sublist are pinned by our slot reference.
            let next =
                unsafe { header(curr).word(W_NEXT).load(Ordering::Acquire) } as *mut SmrNode<T>;
            // SAFETY: as above — the sublist is pinned until traversed.
            let count = unsafe { self.traverse(next) };
            slot.ack.fetch_sub(count, Ordering::Relaxed);
            self.handle = curr;
        }
        self.drain();
    }

    fn alloc(&mut self, value: T) -> Shared<T> {
        let domain = self.domain;
        // Figure 5's init_node: advance the clock every `Freq` allocations
        // and stamp the node's birth era (shares space with Next).
        self.alloc_counter += 1;
        if self.alloc_counter.is_multiple_of(domain.era_freq) {
            domain.era.advance();
        }
        self.local_stats.on_alloc(&domain.stats);
        let node = domain.pool.alloc(&mut self.mag, &domain.stats, value);
        // SAFETY: `node` is a fresh, unshared allocation; stamping its birth
        // era in the header word races with nobody.
        unsafe {
            (*node.as_ptr())
                .header()
                .word(W_NEXT)
                .store(domain.era.current() as usize, Ordering::Relaxed);
        }
        Shared::from_node(node)
    }

    // SAFETY: per the `SmrHandle::dealloc` contract the node was never
    // published, so this thread owns it outright and may free it in place.
    unsafe fn dealloc(&mut self, ptr: Shared<T>) {
        let domain = self.domain;
        self.local_stats.on_dealloc(&domain.stats);
        domain.pool.dispose(&mut self.mag, &domain.stats, ptr.as_node_ptr(), true);
    }

    /// Figure 5's `deref`: certify that this slot's access era matches the
    /// global clock *before* the pointer read that is returned. The re-read
    /// each iteration is what makes the certification sound: a pointer
    /// obtained after the era sync cannot belong to a batch that already
    /// skipped this slot.
    fn protect(&mut self, _idx: usize, src: &Atomic<T>) -> Shared<T> {
        let domain = self.domain;
        let slot = domain.dir.slot(self.slot);
        let mut access = slot.access.load(Ordering::SeqCst);
        loop {
            let node = src.load(Ordering::Acquire);
            let alloc = domain.era.current();
            if access == alloc {
                return node;
            }
            access = HyalineS::<T>::touch(slot, alloc);
        }
    }

    // SAFETY: per the `SmrHandle::retire` contract the node is unlinked from
    // every shared structure, so batching it for deferred free is sound.
    unsafe fn retire(&mut self, ptr: Shared<T>) {
        debug_assert!(self.active, "retire outside an operation");
        let domain = self.domain;
        let node = ptr.as_node_ptr();
        let birth = header(node).word(W_NEXT).load(Ordering::Relaxed) as u64;
        self.local_stats.on_retire(&domain.stats);
        self.batch.push(node, birth, true);
        if self.batch.count() >= domain.batch_min.max(domain.dir.k() + 1) {
            self.finalize_and_insert();
            self.drain();
        }
    }

    fn flush(&mut self) {
        if !self.batch.is_empty() {
            // SAFETY: the batch is non-empty and wholly owned by this handle.
            unsafe { self.finalize_and_insert() };
        }
        self.drain();
        let domain = self.domain;
        domain.pool.flush(&mut self.mag, &domain.stats);
        self.local_stats.flush(&domain.stats);
    }
}

impl<T: Send + 'static> Drop for HyalineSHandle<'_, T> {
    fn drop(&mut self) {
        if self.active {
            self.leave();
        }
        if !self.batch.is_empty() {
            // SAFETY: the batch is non-empty and wholly owned by this handle.
            unsafe { self.finalize_and_insert() };
        }
        self.drain();
        let domain = self.domain;
        domain.pool.flush(&mut self.mag, &domain.stats);
        self.local_stats.flush(&domain.stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn domain(slots: usize, adaptive: bool) -> HyalineS<u64> {
        HyalineS::with_config(SmrConfig {
            slots,
            batch_min: 4,
            era_freq: 4,
            ack_threshold: 64,
            adaptive,
            max_threads: 256,
            ..SmrConfig::default()
        })
    }

    #[test]
    fn single_thread_reclaims_everything() {
        let d = domain(4, false);
        {
            let mut h = d.handle();
            for i in 0..200u64 {
                h.enter();
                let node = h.alloc(i);
                // SAFETY: `node` was never published; no other reference exists.
                unsafe { h.retire(node) };
                h.leave();
            }
        }
        assert!(d.stats().balanced());
        assert_eq!(d.stats().allocated(), d.stats().freed());
    }

    #[test]
    fn birth_era_recorded_on_alloc() {
        let d = domain(2, false);
        let mut h = d.handle();
        h.enter();
        let node = h.alloc(1);
        // SAFETY: `node` is live and local; reading its header word is safe.
        let birth = unsafe { node.header() }.word(W_NEXT).load(Ordering::Relaxed) as u64;
        assert!(birth >= 1, "birth era must be stamped");
        assert!(birth <= d.era());
        // SAFETY: `node` was never published; no other reference exists.
        unsafe { h.retire(node) };
        h.leave();
    }

    #[test]
    fn protect_raises_access_era() {
        let d = domain(2, false);
        let mut h = d.handle();
        h.enter();
        let node = h.alloc(5);
        let link = Atomic::new(node);
        // Advance the clock so the slot's era is stale.
        for _ in 0..10 {
            d.era.advance();
        }
        let seen = h.protect(0, &link);
        assert_eq!(seen, node);
        let slot_era = d.dir.slot(h.slot()).access.load(Ordering::SeqCst);
        assert_eq!(slot_era, d.era(), "deref must sync the slot era");
        // SAFETY: `link` is local to this test; no other thread sees `node`.
        unsafe { h.retire(node) };
        h.leave();
    }

    #[test]
    fn stalled_thread_does_not_block_new_batches() {
        // The robustness property: a thread parked inside an operation must
        // not pin nodes allocated *after* its slot era went stale.
        let d = &domain(2, false);
        let entered = &std::sync::Barrier::new(2);
        let done = &std::sync::Barrier::new(2);
        std::thread::scope(|s| {
            s.spawn(move || {
                let mut stalled = d.handle();
                stalled.enter();
                entered.wait();
                done.wait(); // "stalled" inside the operation
                stalled.leave();
            });
            entered.wait();
            let mut worker = d.handle();
            // Allocate-and-retire churn: every node is born after the
            // stalled thread's access era, so its slot is skipped and
            // memory keeps being reclaimed.
            for i in 0..10_000u64 {
                worker.enter();
                let node = worker.alloc(i);
                // SAFETY: `node` was never published; no other reference exists.
                unsafe { worker.retire(node) };
                worker.leave();
            }
            worker.flush();
            let unreclaimed = d.stats().unreclaimed();
            assert!(
                unreclaimed < 1_000,
                "stalled thread pinned {unreclaimed} nodes; robustness violated"
            );
            done.wait();
        });
        assert!(d.stats().balanced());
    }

    #[test]
    fn enter_avoids_saturated_slots() {
        let d = domain(4, false);
        // Saturate slot 0 artificially.
        d.dir.slot(0).ack.store(1 << 20, Ordering::Relaxed);
        let mut h = d.handle();
        // Force the preferred slot to 0, then enter: it must move away.
        h.slot = 0;
        h.enter();
        assert_ne!(h.slot(), 0, "enter must skip the saturated slot");
        h.leave();
        d.dir.slot(0).ack.store(0, Ordering::Relaxed);
    }

    #[test]
    fn adaptive_growth_when_all_slots_saturated() {
        let d = domain(2, true);
        for i in 0..2 {
            d.dir.slot(i).ack.store(1 << 20, Ordering::Relaxed);
        }
        assert_eq!(d.slot_count(), 2);
        let mut h = d.handle();
        h.enter();
        // The directory must have grown and the handle moved to a new slot.
        assert!(d.slot_count() >= 4, "directory did not grow");
        assert!(h.slot() >= 2, "handle still in a saturated slot");
        h.leave();
        for i in 0..2 {
            d.dir.slot(i).ack.store(0, Ordering::Relaxed);
        }
    }

    #[test]
    fn capped_variant_falls_back_to_least_saturated() {
        let d = domain(2, false);
        d.dir.slot(0).ack.store(1 << 20, Ordering::Relaxed);
        d.dir.slot(1).ack.store(1 << 30, Ordering::Relaxed);
        let mut h = d.handle();
        h.enter();
        assert_eq!(d.slot_count(), 2, "capped directory must not grow");
        assert_eq!(h.slot(), 0, "expected the least-saturated slot");
        h.leave();
        for i in 0..2 {
            d.dir.slot(i).ack.store(0, Ordering::Relaxed);
        }
    }

    #[test]
    fn multithreaded_stress_reclaims_all() {
        let d = &domain(4, true);
        std::thread::scope(|s| {
            for t in 0..8 {
                s.spawn(move || {
                    let mut h = d.handle();
                    for i in 0..2_000u64 {
                        h.enter();
                        let node = h.alloc(t * 1_000_000 + i);
                        // SAFETY: the node is thread-local until retired.
                        unsafe { h.retire(node) };
                        h.leave();
                    }
                });
            }
        });
        assert!(d.stats().balanced());
        assert_eq!(d.stats().allocated(), d.stats().freed());
    }
}
