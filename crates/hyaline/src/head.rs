//! The per-slot `Head` tuple: a reference counter packed with a list pointer.
//!
//! The paper's general algorithm updates the `[HRef, HPtr]` tuple with
//! double-width CAS (`cmpxchg16b`). Stable Rust has no 128-bit atomics, so we
//! use the representation the paper itself prescribes for machines without
//! double-width RMW (Section 2.4): the reference count is *squeezed into the
//! pointer word* — a 16-bit `HRef` in the high bits and a 48-bit canonical
//! x86-64 user-space pointer in the low bits. The tuple is still read,
//! written, CASed and fetch-added as a single atomic word, so the algorithm's
//! state machine is unchanged. The price is a cap of 65 535 concurrent
//! `enter`s per slot, which is far beyond the paper's 144-thread experiments.
//!
//! [`AtomicHead1`] is the specialized single-width head of Hyaline-1
//! (Figure 4): because each thread owns its slot exclusively, `HRef` is a
//! single bit merged into the pointer's low bits.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of low bits holding the pointer in a packed head word.
pub const PTR_BITS: u32 = 48;

/// Mask selecting the pointer bits.
pub const PTR_MASK: usize = (1 << PTR_BITS) - 1;

/// The increment `enter` applies: +1 in the `HRef` field.
pub const REF_UNIT: usize = 1 << PTR_BITS;

/// Maximum representable `HRef` value.
pub const MAX_REFS: usize = (1 << (usize::BITS - PTR_BITS)) - 1;

/// A decoded `[HRef, HPtr]` tuple.
///
/// # Example
///
/// ```
/// use hyaline::head::HeadWord;
///
/// let w = HeadWord::pack(3, std::ptr::null_mut::<u8>() as usize);
/// assert_eq!(w.refs(), 3);
/// assert_eq!(w.ptr_bits(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeadWord(pub usize);

impl HeadWord {
    /// An empty head: no threads, no list.
    pub const EMPTY: HeadWord = HeadWord(0);

    /// Packs a reference count and pointer bits into one word.
    ///
    /// # Panics
    ///
    /// Debug-panics if either field overflows its bit range.
    #[inline]
    pub fn pack(refs: usize, ptr_bits: usize) -> Self {
        debug_assert!(refs <= MAX_REFS, "HRef overflow: {refs}");
        debug_assert_eq!(
            ptr_bits & !PTR_MASK,
            0,
            "pointer {ptr_bits:#x} does not fit in {PTR_BITS} bits"
        );
        HeadWord((refs << PTR_BITS) | ptr_bits)
    }

    /// The `HRef` field: number of active threads in this slot.
    #[inline]
    pub fn refs(self) -> usize {
        self.0 >> PTR_BITS
    }

    /// The `HPtr` field as raw bits.
    #[inline]
    pub fn ptr_bits(self) -> usize {
        self.0 & PTR_MASK
    }

    /// The `HPtr` field as a typed pointer.
    #[inline]
    pub fn ptr<N>(self) -> *mut N {
        self.ptr_bits() as *mut N
    }

    /// This word with the pointer replaced.
    #[inline]
    pub fn with_ptr<N>(self, ptr: *mut N) -> Self {
        Self::pack(self.refs(), ptr as usize)
    }

    /// This word with the reference count replaced.
    #[inline]
    pub fn with_refs(self, refs: usize) -> Self {
        Self::pack(refs, self.ptr_bits())
    }
}

/// The atomic per-slot head used by Hyaline and Hyaline-S.
#[derive(Debug, Default)]
pub struct AtomicHead(AtomicUsize);

impl AtomicHead {
    /// An empty head.
    pub const fn new() -> Self {
        AtomicHead(AtomicUsize::new(0))
    }

    /// Loads the current tuple.
    #[inline]
    pub fn load(&self, order: Ordering) -> HeadWord {
        HeadWord(self.0.load(order))
    }

    /// The paper's `enter` FAA: atomically increments `HRef` and returns the
    /// previous tuple (whose `HPtr` becomes the thread's handle).
    ///
    /// A single `fetch_add` of [`REF_UNIT`] cannot carry into the pointer
    /// bits, so `HPtr` is read and preserved atomically.
    #[inline]
    pub fn enter_faa(&self) -> HeadWord {
        let old = HeadWord(self.0.fetch_add(REF_UNIT, Ordering::AcqRel));
        debug_assert!(old.refs() < MAX_REFS, "too many concurrent enters");
        old
    }

    /// Single-word CAS on the whole tuple.
    ///
    /// # Errors
    ///
    /// Returns the observed tuple as `Err` when it differs from `current`.
    #[inline]
    pub fn compare_exchange(
        &self,
        current: HeadWord,
        new: HeadWord,
        success: Ordering,
        failure: Ordering,
    ) -> Result<HeadWord, HeadWord> {
        self.0
            .compare_exchange(current.0, new.0, success, failure)
            .map(HeadWord)
            .map_err(HeadWord)
    }
}

/// The single-width head of Hyaline-1/Hyaline-1S: bit 0 is `HRef` (the slot
/// owner is active), the remaining bits are the node pointer (nodes are
/// 8-byte aligned, so bits 0–2 of real addresses are zero).
#[derive(Debug, Default)]
pub struct AtomicHead1(AtomicUsize);

/// A decoded Hyaline-1 head.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Head1Word(pub usize);

impl Head1Word {
    /// Inactive, empty.
    pub const EMPTY: Head1Word = Head1Word(0);
    /// Active, empty list — the value `enter` stores.
    pub const ACTIVE_EMPTY: Head1Word = Head1Word(1);

    /// Packs an active bit and node pointer.
    #[inline]
    pub fn pack<N>(active: bool, ptr: *mut N) -> Self {
        debug_assert_eq!(ptr as usize & 1, 0);
        Head1Word(ptr as usize | usize::from(active))
    }

    /// Whether the slot owner is inside an operation.
    #[inline]
    pub fn active(self) -> bool {
        self.0 & 1 != 0
    }

    /// The list pointer.
    #[inline]
    pub fn ptr<N>(self) -> *mut N {
        (self.0 & !1) as *mut N
    }
}

impl AtomicHead1 {
    /// An inactive, empty head.
    pub const fn new() -> Self {
        AtomicHead1(AtomicUsize::new(0))
    }

    /// Loads the current value.
    #[inline]
    pub fn load(&self, order: Ordering) -> Head1Word {
        Head1Word(self.0.load(order))
    }

    /// Wait-free `enter`: marks the slot active with an empty list.
    ///
    /// Uses a `SeqCst` swap so the activity bit is globally ordered before
    /// the thread's subsequent pointer loads (the same store-load barrier
    /// EBR needs; the paper notes Hyaline-1's enter/leave are "memory writes
    /// with barriers, just like EBR").
    #[inline]
    pub fn enter(&self) {
        self.0.swap(Head1Word::ACTIVE_EMPTY.0, Ordering::SeqCst);
    }

    /// Wait-free `leave`: atomically detaches the whole list and marks the
    /// slot inactive, returning the previous value.
    #[inline]
    pub fn leave(&self) -> Head1Word {
        Head1Word(self.0.swap(0, Ordering::AcqRel))
    }

    /// Single-word CAS used by `retire` to push a node.
    ///
    /// # Errors
    ///
    /// Returns the observed value as `Err` when it differs from `current`.
    #[inline]
    pub fn compare_exchange(
        &self,
        current: Head1Word,
        new: Head1Word,
        success: Ordering,
        failure: Ordering,
    ) -> Result<Head1Word, Head1Word> {
        self.0
            .compare_exchange(current.0, new.0, success, failure)
            .map(Head1Word)
            .map_err(Head1Word)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        let ptr_bits = 0x0000_7fff_dead_bee8usize;
        let w = HeadWord::pack(42, ptr_bits);
        assert_eq!(w.refs(), 42);
        assert_eq!(w.ptr_bits(), ptr_bits);
    }

    #[test]
    fn enter_faa_increments_refs_only() {
        let head = AtomicHead::new();
        let before = head.enter_faa();
        assert_eq!(before, HeadWord::EMPTY);
        let now = head.load(Ordering::Relaxed);
        assert_eq!(now.refs(), 1);
        assert_eq!(now.ptr_bits(), 0);
    }

    #[test]
    fn enter_faa_preserves_pointer() {
        let head = AtomicHead::new();
        let fake_ptr = 0x7000_0000_1238usize;
        head.compare_exchange(
            HeadWord::EMPTY,
            HeadWord::pack(0, fake_ptr),
            Ordering::AcqRel,
            Ordering::Acquire,
        )
        .unwrap();
        let before = head.enter_faa();
        assert_eq!(before.ptr_bits(), fake_ptr);
        assert_eq!(head.load(Ordering::Relaxed).ptr_bits(), fake_ptr);
        assert_eq!(head.load(Ordering::Relaxed).refs(), 1);
    }

    #[test]
    fn max_refs_is_16_bits() {
        assert_eq!(MAX_REFS, 0xffff);
    }

    #[test]
    fn concurrent_enters_sum() {
        let head = AtomicHead::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..100 {
                        head.enter_faa();
                    }
                });
            }
        });
        assert_eq!(head.load(Ordering::Relaxed).refs(), 800);
    }

    #[test]
    fn head1_roundtrip() {
        let h = AtomicHead1::new();
        assert!(!h.load(Ordering::Relaxed).active());
        h.enter();
        let w = h.load(Ordering::Relaxed);
        assert!(w.active());
        assert!(w.ptr::<u8>().is_null());
        let old = h.leave();
        assert!(old.active());
        assert!(!h.load(Ordering::Relaxed).active());
    }

    #[test]
    fn head1_cas_push() {
        let h = AtomicHead1::new();
        h.enter();
        let node = 0x1000usize as *mut u8;
        let cur = h.load(Ordering::Relaxed);
        h.compare_exchange(
            cur,
            Head1Word::pack(true, node),
            Ordering::AcqRel,
            Ordering::Acquire,
        )
        .unwrap();
        let w = h.load(Ordering::Relaxed);
        assert!(w.active());
        assert_eq!(w.ptr::<u8>(), node);
    }
}
