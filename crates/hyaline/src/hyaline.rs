//! The general Hyaline algorithm (Figure 3 of the paper): multiple slot
//! retirement lists, batched retirement, and `Adjs` wrap-around accounting.

use crossbeam_utils::CachePadded;
use smr_core::{
    Atomic, LocalStats, Magazine, NodePool, Shared, Smr, SmrConfig, SmrHandle, SmrNode, SmrStats,
};
use std::marker::PhantomData;
use std::ptr;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::batch::{
    adjust_refs, adjust_slot_credit, chain_next, decrement, free_batch_into, header,
    FinalizedBatch, LocalBatch, W_NEXT,
};
use crate::head::{AtomicHead, HeadWord};

/// Computes the paper's `Adjs` constant: `⌊(2^64 - 1) / k⌋ + 1 = 2^64 / k`
/// for power-of-two `k`, so that `k * Adjs == 0 (mod 2^64)`.
pub(crate) fn adjs_for(slots: usize) -> usize {
    debug_assert!(slots.is_power_of_two());
    (usize::MAX / slots).wrapping_add(1)
}

/// The general Hyaline reclamation domain (paper Sections 3.1–3.3, Figure 3).
///
/// `k` cache-padded slots each hold a `[HRef, HPtr]` head of a retirement
/// list. `enter` fetch-adds the slot's reference count; `retire` accumulates
/// nodes into local batches and appends full batches to every active slot;
/// `leave` decrements the count and walks the sublist of batches retired
/// during the operation, decrementing per-batch reference counters. The
/// thread that brings a batch's counter to zero frees the whole batch —
/// *asynchronous tracking*: nobody ever re-checks other threads' state.
///
/// Hyaline is fully *transparent*: handles need no registration, any number
/// of threads may share the fixed `k` slots, and a dropped handle finalizes
/// its partial batch with dummy nodes so the thread is immediately "off the
/// hook". It is **not robust**: a stalled thread inside an operation pins
/// every batch retired in its slot since it entered (use
/// [`HyalineS`](crate::HyalineS) when robustness matters).
///
/// # Example
///
/// ```
/// use hyaline::Hyaline;
/// use smr_core::{Smr, SmrHandle};
///
/// let domain: Hyaline<u64> = Hyaline::new();
/// let mut h = domain.handle();
/// h.enter();
/// let node = h.alloc(7);
/// unsafe { h.retire(node) };
/// h.leave();
/// ```
pub struct Hyaline<T: Send + 'static> {
    slots: Box<[CachePadded<AtomicHead>]>,
    adjs: usize,
    batch_size: usize,
    next_slot: AtomicUsize,
    stats: SmrStats,
    pool: NodePool,
    _marker: PhantomData<fn(T) -> T>,
}

impl<T: Send + 'static> std::fmt::Debug for Hyaline<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hyaline")
            .field("slots", &self.slots.len())
            .field("batch_size", &self.batch_size)
            .finish_non_exhaustive()
    }
}

impl<T: Send + 'static> Hyaline<T> {
    fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Smallest legal batch: strictly more nodes than slots (Section 3.2).
    fn min_insert_size(&self) -> usize {
        self.slot_count() + 1
    }
}

impl<T: Send + 'static> Smr<T> for Hyaline<T> {
    type Handle<'d> = HyalineHandle<'d, T>;

    fn with_config(config: SmrConfig) -> Self {
        // A config carrying a `shards` knob is meant for a `Sharded`
        // consumer; one plain domain sizes its batches against its full
        // slot count, never the per-shard quotient.
        let config = config.as_single_shard();
        assert!(
            config.slots.is_power_of_two(),
            "Hyaline requires a power-of-two slot count"
        );
        let slots = (0..config.slots)
            .map(|_| CachePadded::new(AtomicHead::new()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            adjs: adjs_for(config.slots),
            batch_size: config.effective_batch_size(),
            slots,
            next_slot: AtomicUsize::new(0),
            stats: SmrStats::new(),
            pool: NodePool::for_node::<T>(&config),
            _marker: PhantomData,
        }
    }

    fn handle(&self) -> HyalineHandle<'_, T> {
        let slot = self.next_slot.fetch_add(1, Ordering::Relaxed) & (self.slot_count() - 1);
        HyalineHandle {
            domain: self,
            slot,
            handle: ptr::null_mut(),
            active: false,
            batch: LocalBatch::new(),
            reap: Vec::new(),
            local_stats: LocalStats::new(),
            mag: self.pool.magazine(),
        }
    }

    fn stats(&self) -> &SmrStats {
        &self.stats
    }

    fn name() -> &'static str {
        "Hyaline"
    }

    fn robust() -> bool {
        false
    }

    fn supports_trim() -> bool {
        true
    }

    fn shardable_by_pointer() -> bool {
        // Protection is purely enter-scoped (slot reference counts; protect
        // is a plain load) and alloc stamps no shard-local metadata.
        true
    }
}

impl<T: Send + 'static> Drop for Hyaline<T> {
    fn drop(&mut self) {
        // All handles borrowed `self`, so by now every thread has left and
        // flushed: each slot's final leave detached and reaped its list.
        for slot in self.slots.iter() {
            debug_assert_eq!(
                slot.load(Ordering::Acquire),
                HeadWord::EMPTY,
                "Hyaline domain dropped with a non-empty slot"
            );
        }
    }
}

/// Per-thread handle to a [`Hyaline`] domain.
pub struct HyalineHandle<'d, T: Send + 'static> {
    domain: &'d Hyaline<T>,
    slot: usize,
    handle: *mut SmrNode<T>,
    active: bool,
    batch: LocalBatch<T>,
    reap: Vec<*mut SmrNode<T>>,
    local_stats: LocalStats,
    mag: Magazine,
}

// SAFETY: the raw pointers are exclusively owned retired/reaped nodes (the
// local batch, reap list, and recycle magazine) plus the last-seen slot
// head, all usable from whichever thread drives the handle next; the domain
// borrow is `Sync`.
// Nothing is thread-affine, so a parked handle may move between tasks.
unsafe impl<T: Send + 'static> Send for HyalineHandle<'_, T> {}

impl<T: Send + 'static> std::fmt::Debug for HyalineHandle<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HyalineHandle")
            .field("slot", &self.slot)
            .field("active", &self.active)
            .field("batch_len", &self.batch.count())
            .finish_non_exhaustive()
    }
}

impl<T: Send + 'static> HyalineHandle<'_, T> {
    /// The slot this handle currently enters through.
    pub fn slot(&self) -> usize {
        self.slot
    }

    /// Walks the retirement sublist from `next` down to (and including) the
    /// handle node, decrementing each batch's `NRef` (Figure 3, `traverse`).
    ///
    /// # Safety
    ///
    /// `next` must be the `Next` link of a node this thread still holds a
    /// logical reference to (read while the slot reference was held), so
    /// every node on the sublist is live until its decrement below.
    unsafe fn traverse(&mut self, mut next: *mut SmrNode<T>) {
        let handle = self.handle;
        loop {
            let curr = next;
            if curr.is_null() {
                break;
            }
            // Read the link *before* the decrement: our decrement may be the
            // batch's last, after which the node may be freed by `drain`.
            next = header(curr).word(W_NEXT).load(Ordering::Acquire) as *mut SmrNode<T>;
            decrement(curr, &mut self.reap);
            if curr == handle {
                break;
            }
        }
    }

    /// Appends a finalized batch to every active slot (Figure 3, `retire`).
    ///
    /// # Safety
    ///
    /// `fin` must come from this handle's own `LocalBatch::finalize`, with a
    /// chain of at least `slots + 1` nodes that no other thread has seen yet.
    unsafe fn insert_batch(&mut self, fin: FinalizedBatch<T>) {
        let domain = self.domain;
        let mut insert_node = fin.chain_head;
        let mut empty_adjs: usize = 0;
        let mut any_empty = false;
        for slot in domain.slots.iter() {
            loop {
                let head = slot.load(Ordering::Acquire);
                if head.refs() == 0 {
                    // REF #1#: no active threads; account an Adjs for this
                    // slot directly on the batch at the end.
                    any_empty = true;
                    empty_adjs = empty_adjs.wrapping_add(domain.adjs);
                    break;
                }
                debug_assert!(
                    insert_node != fin.refs_node,
                    "batch has fewer nodes than slots + 1"
                );
                header(insert_node)
                    .word(W_NEXT)
                    .store(head.ptr_bits(), Ordering::Relaxed);
                let new = head.with_ptr(insert_node);
                if slot
                    .compare_exchange(head, new, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    // REF #2#: credit the predecessor with Adjs plus the
                    // snapshot of HRef taken by the winning CAS.
                    let pred: *mut SmrNode<T> = head.ptr();
                    if !pred.is_null() {
                        adjust_slot_credit(pred, head.refs(), &mut self.reap);
                    }
                    insert_node = chain_next(insert_node);
                    break;
                }
            }
        }
        if any_empty {
            // REF #3#: contribute the skipped slots' Adjs in one shot. When
            // *all* slots were empty this wraps to zero and frees the
            // untouched batch immediately.
            adjust_refs(fin.refs_node, empty_adjs, &mut self.reap);
        }
    }

    /// Pads the partial batch with payload-less dummy nodes up to the
    /// minimum insertable size and retires it (Section 2.4: partial batches
    /// "can be immediately finalized by allocating a finite number of dummy
    /// nodes").
    fn finalize_partial(&mut self) {
        if self.batch.is_empty() {
            return;
        }
        let domain = self.domain;
        while self.batch.count() < domain.min_insert_size() {
            // SAFETY: dummy nodes have no payload; the pool hands out fresh
            // or recycled exclusively-owned memory either way.
            let dummy = unsafe { domain.pool.alloc_dummy::<T>(&mut self.mag, &domain.stats) };
            self.local_stats.on_alloc(&domain.stats);
            self.local_stats.on_retire(&domain.stats);
            // SAFETY: `dummy` is exclusively owned until pushed.
            unsafe { self.batch.push(dummy.as_ptr(), u64::MAX, false) };
        }
        // SAFETY: the loop above padded the batch to >= slots + 1 nodes, all
        // owned by this handle and unpublished.
        let fin = unsafe { self.batch.finalize(domain.adjs) };
        // SAFETY: `fin` is this handle's own freshly finalized batch.
        unsafe { self.insert_batch(fin) };
    }

    /// Frees all reaped batches, oldest first (the paper's deferred
    /// deallocation list that reverses LIFO reaping into FIFO freeing).
    fn drain(&mut self) {
        if self.reap.is_empty() {
            return;
        }
        let domain = self.domain;
        let mut freed = 0;
        for refs in std::mem::take(&mut self.reap) {
            // SAFETY: a REFS node enters `reap` only when its batch's NRef
            // crossed zero, so no thread can still reference the batch.
            freed += unsafe { free_batch_into(refs, &domain.pool, &mut self.mag, &domain.stats) };
        }
        self.local_stats.on_free(&domain.stats, freed);
    }
}

impl<T: Send + 'static> SmrHandle<T> for HyalineHandle<'_, T> {
    fn enter(&mut self) {
        debug_assert!(!self.active, "enter while already inside an operation");
        let old = self.domain.slots[self.slot].enter_faa();
        self.handle = old.ptr();
        self.active = true;
    }

    fn leave(&mut self) {
        debug_assert!(self.active, "leave without a matching enter");
        self.active = false;
        let slot = &self.domain.slots[self.slot];
        let (old_head, curr, next) = loop {
            let head = slot.load(Ordering::Acquire);
            let curr: *mut SmrNode<T> = head.ptr();
            let mut next = ptr::null_mut();
            if curr != self.handle {
                debug_assert!(!curr.is_null());
                // SAFETY: a non-handle head exists only while we (an active
                // thread) hold a reference to it, so reading its Next is safe.
                next = unsafe { header(curr).word(W_NEXT).load(Ordering::Acquire) }
                    as *mut SmrNode<T>;
            }
            let mut new = head.with_refs(head.refs() - 1);
            if head.refs() == 1 {
                new = new.with_ptr(ptr::null_mut::<SmrNode<T>>());
            }
            if slot
                .compare_exchange(head, new, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                break (head, curr, next);
            }
        };
        if old_head.refs() == 1 && !curr.is_null() {
            // We detached the list: the head node never gets a successor, so
            // give it its final per-slot Adjs as if it were a predecessor.
            // SAFETY: `curr` was the head we just detached; the batch stays
            // live until this final credit is applied.
            unsafe { adjust_slot_credit(curr, 0, &mut self.reap) };
        }
        if curr != self.handle {
            // SAFETY: `next` was read from `curr` while our slot reference
            // pinned the sublist; traverse releases it exactly once.
            unsafe { self.traverse(next) };
        }
        self.handle = ptr::null_mut();
        self.drain();
    }

    /// Hyaline's real §3.3 trimming: dereferences the sublist retired since
    /// `enter` (or the previous `trim`) without touching the slot `Head`.
    fn trim(&mut self) {
        debug_assert!(self.active, "trim outside an operation");
        let head = self.domain.slots[self.slot].load(Ordering::Acquire);
        let curr: *mut SmrNode<T> = head.ptr();
        if curr != self.handle {
            debug_assert!(!curr.is_null());
            // SAFETY: we are still inside the operation, so the head and its
            // sublist are pinned by our slot reference.
            let next =
                unsafe { header(curr).word(W_NEXT).load(Ordering::Acquire) } as *mut SmrNode<T>;
            // SAFETY: as above — the sublist is pinned until traversed.
            unsafe { self.traverse(next) };
            self.handle = curr;
        }
        self.drain();
    }

    fn alloc(&mut self, value: T) -> Shared<T> {
        let domain = self.domain;
        self.local_stats.on_alloc(&domain.stats);
        Shared::from_node(domain.pool.alloc(&mut self.mag, &domain.stats, value))
    }

    // SAFETY: per the `SmrHandle::dealloc` contract the node was never
    // published, so this thread owns it outright and may free it in place.
    unsafe fn dealloc(&mut self, ptr: Shared<T>) {
        let domain = self.domain;
        self.local_stats.on_dealloc(&domain.stats);
        domain.pool.dispose(&mut self.mag, &domain.stats, ptr.as_node_ptr(), true);
    }

    fn protect(&mut self, _idx: usize, src: &Atomic<T>) -> Shared<T> {
        // Plain Hyaline needs no per-access protection: active threads are
        // tracked through the slot reference counts alone (Figure 1a: "No
        // deref in basic Hyaline").
        src.load(Ordering::Acquire)
    }

    // SAFETY: per the `SmrHandle::retire` contract the node is unlinked from
    // every shared structure, so batching it for deferred free is sound.
    unsafe fn retire(&mut self, ptr: Shared<T>) {
        debug_assert!(self.active, "retire outside an operation");
        let node = ptr.as_node_ptr();
        self.local_stats.on_retire(&self.domain.stats);
        self.batch.push(node, 0, true);
        if self.batch.count() >= self.domain.batch_size {
            let fin = self.batch.finalize(self.domain.adjs);
            self.insert_batch(fin);
            self.drain();
        }
    }

    fn flush(&mut self) {
        self.finalize_partial();
        self.drain();
        let domain = self.domain;
        // Spill the recycle magazine too, so a parked handle (`HandlePool`
        // check-in flushes before parking) never strands pool capacity.
        domain.pool.flush(&mut self.mag, &domain.stats);
        self.local_stats.flush(&domain.stats);
    }
}

impl<T: Send + 'static> Drop for HyalineHandle<'_, T> {
    fn drop(&mut self) {
        if self.active {
            self.leave();
        }
        self.finalize_partial();
        self.drain();
        let domain = self.domain;
        domain.pool.flush(&mut self.mag, &domain.stats);
        self.local_stats.flush(&domain.stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_domain() -> Hyaline<u64> {
        Hyaline::with_config(SmrConfig {
            slots: 4,
            batch_min: 2, // effective batch size = slots + 1 = 5
            ..SmrConfig::default()
        })
    }

    #[test]
    fn adjs_constant_matches_paper() {
        // k = 1 -> Adjs = 0 (unsigned overflow); k = 8 with 64-bit -> 2^61.
        assert_eq!(adjs_for(1), 0);
        assert_eq!(adjs_for(8), 1usize << 61);
        // k * Adjs == 0 (mod 2^64) for every power of two.
        for shift in 0..16 {
            let k = 1usize << shift;
            assert_eq!(adjs_for(k).wrapping_mul(k), 0);
        }
    }

    #[test]
    fn single_thread_retire_reclaims_everything() {
        let domain = small_domain();
        {
            let mut h = domain.handle();
            for i in 0..100u64 {
                h.enter();
                let node = h.alloc(i);
                // SAFETY: `node` was never published; no other reference exists.
                unsafe { h.retire(node) };
                h.leave();
            }
        }
        assert_eq!(domain.stats().allocated(), domain.stats().freed());
        assert!(domain.stats().balanced());
    }

    #[test]
    fn partial_batch_finalized_on_drop() {
        let domain = small_domain();
        {
            let mut h = domain.handle();
            h.enter();
            let node = h.alloc(1);
            // SAFETY: `node` was never published; no other reference exists.
            unsafe { h.retire(node) };
            h.leave();
            // One node in the local batch; drop must dummy-pad and insert.
        }
        assert!(domain.stats().balanced());
        assert!(domain.stats().freed() >= 1);
    }

    #[test]
    fn protect_is_plain_load() {
        let domain = small_domain();
        let mut h = domain.handle();
        h.enter();
        let node = h.alloc(42);
        let link = Atomic::new(node);
        let seen = h.protect(0, &link);
        assert_eq!(seen, node);
        // SAFETY: we are inside the operation, so `seen` is pinned and live.
        assert_eq!(unsafe { *seen.deref() }, 42);
        // SAFETY: `link` is local to this test; no other thread sees `node`.
        unsafe { h.retire(node) };
        h.leave();
    }

    #[test]
    fn dealloc_unpublished_node() {
        let domain = small_domain();
        let mut h = domain.handle();
        let node = h.alloc(5);
        // SAFETY: `node` was never published; dealloc-in-place is allowed.
        unsafe { h.dealloc(node) };
        drop(h);
        assert!(domain.stats().balanced());
        assert_eq!(domain.stats().deallocated(), 1);
    }

    #[test]
    fn concurrent_stalled_reader_blocks_then_releases() {
        // A reader inside an operation must pin batches retired after its
        // enter; once it leaves, they are freed.
        let domain = &small_domain();
        let barrier = &std::sync::Barrier::new(2);
        let release = &std::sync::Barrier::new(2);
        std::thread::scope(|s| {
            s.spawn(move || {
                let mut reader = domain.handle();
                reader.enter();
                barrier.wait(); // reader is inside
                release.wait(); // hold the reservation until told
                reader.leave();
            });
            let mut writer = domain.handle();
            barrier.wait();
            // Retire enough for several full batches.
            for i in 0..64u64 {
                writer.enter();
                let node = writer.alloc(i);
                // SAFETY: `node` was never published; no other reference exists.
                unsafe { writer.retire(node) };
                writer.leave();
            }
            writer.flush();
            // All 64 retirements happened while the reader was inside its
            // operation; at least the batches inserted into the reader's
            // slot can still be pinned. Let the reader go.
            release.wait();
        });
        // Everything reclaims after all threads left.
        assert!(domain.stats().balanced());
        assert_eq!(
            domain.stats().allocated(),
            domain.stats().freed(),
            "all retired + dummy nodes freed after quiescence"
        );
    }

    #[test]
    fn trim_reclaims_without_leaving() {
        let domain = &Hyaline::<u64>::with_config(SmrConfig {
            slots: 1, // single list: the trimming thread sees every batch
            batch_min: 2,
            ..SmrConfig::default()
        });
        let mut h = domain.handle();
        h.enter();
        // Fill and insert exactly one batch (batch size = slots + 1 = 2... max(2, 2) = 2).
        for i in 0..8u64 {
            let node = h.alloc(i);
            // SAFETY: `node` was never published; no other reference exists.
            unsafe { h.retire(node) };
        }
        h.flush(); // insert any partial batch
        let before = domain.stats().freed();
        h.trim();
        let after = domain.stats().freed();
        assert!(
            after > before,
            "trim must reclaim batches retired since enter (before={before}, after={after})"
        );
        h.leave();
        drop(h);
        assert!(domain.stats().balanced());
    }

    #[test]
    fn many_threads_stress_reclaims_all() {
        let domain = &Hyaline::<u64>::with_config(SmrConfig {
            slots: 4,
            batch_min: 8,
            ..SmrConfig::default()
        });
        std::thread::scope(|s| {
            for t in 0..8 {
                s.spawn(move || {
                    let mut h = domain.handle();
                    for i in 0..2_000u64 {
                        h.enter();
                        let node = h.alloc(t * 10_000 + i);
                        // SAFETY: the node is thread-local until retired.
                        unsafe { h.retire(node) };
                        h.leave();
                    }
                });
            }
        });
        assert!(domain.stats().balanced());
        assert_eq!(domain.stats().allocated(), domain.stats().freed());
    }

    #[test]
    fn recycling_reuses_memory_and_stays_balanced() {
        let domain = &Hyaline::<u64>::with_config(SmrConfig {
            slots: 2,
            batch_min: 3,
            recycle: true,
            recycle_capacity: 1024,
            recycle_magazine: 8,
            ..SmrConfig::default()
        });
        std::thread::scope(|s| {
            for t in 0..4 {
                s.spawn(move || {
                    let mut h = domain.handle();
                    for i in 0..2_000u64 {
                        h.enter();
                        let node = h.alloc(t * 10_000 + i);
                        // SAFETY: the node is thread-local until retired.
                        unsafe { h.retire(node) };
                        h.leave();
                    }
                });
            }
        });
        // Logical accounting is untouched by recycling...
        assert!(domain.stats().balanced());
        assert_eq!(domain.stats().allocated(), domain.stats().freed());
        // ...while the allocator fast path actually engaged.
        assert!(domain.stats().recycled() > 0, "reclaim fed the pool");
        assert!(domain.stats().pool_hits() > 0, "alloc drew from the pool");
    }

    #[test]
    fn payload_drops_exactly_once() {
        use std::sync::atomic::AtomicI64;
        static LIVE: AtomicI64 = AtomicI64::new(0);
        struct Tracked;
        impl Tracked {
            fn new() -> Self {
                LIVE.fetch_add(1, Ordering::Relaxed);
                Tracked
            }
        }
        impl Drop for Tracked {
            fn drop(&mut self) {
                let prev = LIVE.fetch_sub(1, Ordering::Relaxed);
                assert!(prev > 0, "double drop detected");
            }
        }

        let domain = &Hyaline::<Tracked>::with_config(SmrConfig {
            slots: 2,
            batch_min: 3,
            ..SmrConfig::default()
        });
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(move || {
                    let mut h = domain.handle();
                    for _ in 0..1_000 {
                        h.enter();
                        let node = h.alloc(Tracked::new());
                        // SAFETY: the node is thread-local until retired.
                        unsafe { h.retire(node) };
                        h.leave();
                    }
                });
            }
        });
        assert_eq!(LIVE.load(Ordering::Relaxed), 0, "payload leak or double drop");
        assert!(domain.stats().balanced());
    }
}
