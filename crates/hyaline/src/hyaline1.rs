//! Hyaline-1: the single-width-CAS specialization (Figure 4 of the paper).
//!
//! Every thread owns a dedicated slot, so the slot's `HRef` degenerates to a
//! single bit merged into the head pointer. `enter` and `leave` become
//! wait-free (a plain store and a swap); `retire` counts how many slots a
//! batch was inserted into (`Inserts`) instead of performing the `Adjs`
//! wrap-around accounting.

use crossbeam_utils::CachePadded;
use smr_core::{
    Atomic, LocalStats, Magazine, NodePool, Shared, Smr, SmrConfig, SmrHandle, SmrNode, SmrStats,
};
use std::marker::PhantomData;
use std::ptr;
use std::sync::atomic::Ordering;

use crate::batch::{
    adjust_refs, chain_next, decrement, free_batch_into, header, FinalizedBatch, LocalBatch,
    W_NEXT,
};
use crate::head::{AtomicHead1, Head1Word};
use smr_core::SlotRegistry;

/// The Hyaline-1 reclamation domain (Figure 4).
///
/// Hyaline-1 works with single-width CAS on any architecture and makes
/// `enter`/`leave` wait-free, at the cost of requiring one slot per live
/// handle (threads register by claiming a slot, so it is *almost*
/// transparent — the paper's Table 1).
///
/// # Example
///
/// ```
/// use hyaline::Hyaline1;
/// use smr_core::{Smr, SmrHandle};
///
/// let domain: Hyaline1<u32> = Hyaline1::new();
/// let mut h = domain.handle();
/// h.enter();
/// let node = h.alloc(1);
/// unsafe { h.retire(node) };
/// h.leave();
/// ```
pub struct Hyaline1<T: Send + 'static> {
    slots: Box<[CachePadded<AtomicHead1>]>,
    registry: SlotRegistry,
    batch_min: usize,
    stats: SmrStats,
    pool: NodePool,
    _marker: PhantomData<fn(T) -> T>,
}

impl<T: Send + 'static> std::fmt::Debug for Hyaline1<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hyaline1")
            .field("capacity", &self.slots.len())
            .field("registered", &self.registry.claimed())
            .finish_non_exhaustive()
    }
}

impl<T: Send + 'static> Smr<T> for Hyaline1<T> {
    type Handle<'d> = Hyaline1Handle<'d, T>;

    fn with_config(config: SmrConfig) -> Self {
        let capacity = config.max_threads;
        Self {
            slots: (0..capacity)
                .map(|_| CachePadded::new(AtomicHead1::new()))
                .collect(),
            registry: SlotRegistry::new(capacity),
            batch_min: config.batch_min,
            stats: SmrStats::new(),
            pool: NodePool::for_node::<T>(&config),
            _marker: PhantomData,
        }
    }

    fn handle(&self) -> Hyaline1Handle<'_, T> {
        Hyaline1Handle {
            slot: self.registry.claim(),
            domain: self,
            handle: ptr::null_mut(),
            active: false,
            batch: LocalBatch::new(),
            reap: Vec::new(),
            local_stats: LocalStats::new(),
            mag: self.pool.magazine(),
        }
    }

    fn stats(&self) -> &SmrStats {
        &self.stats
    }

    fn name() -> &'static str {
        "Hyaline-1"
    }

    fn robust() -> bool {
        false
    }

    fn supports_trim() -> bool {
        true
    }

    fn shardable_by_pointer() -> bool {
        // Like plain Hyaline: enter-scoped slot ownership, plain-load
        // protect, no alloc-time metadata.
        true
    }
}

impl<T: Send + 'static> Drop for Hyaline1<T> {
    fn drop(&mut self) {
        for slot in self.slots.iter() {
            debug_assert_eq!(
                slot.load(Ordering::Acquire),
                Head1Word::EMPTY,
                "Hyaline-1 domain dropped with a non-empty slot"
            );
        }
    }
}

/// Per-thread handle to a [`Hyaline1`] domain; owns one slot.
pub struct Hyaline1Handle<'d, T: Send + 'static> {
    domain: &'d Hyaline1<T>,
    slot: usize,
    handle: *mut SmrNode<T>,
    active: bool,
    batch: LocalBatch<T>,
    reap: Vec<*mut SmrNode<T>>,
    local_stats: LocalStats,
    mag: Magazine,
}

// SAFETY: owned raw node pointers (local batch, reap list, slot head
// snapshot) and a `Sync` domain borrow; no thread-affine state, so the
// handle may be parked and re-issued to another task.
unsafe impl<T: Send + 'static> Send for Hyaline1Handle<'_, T> {}

impl<T: Send + 'static> std::fmt::Debug for Hyaline1Handle<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hyaline1Handle")
            .field("slot", &self.slot)
            .field("active", &self.active)
            .finish_non_exhaustive()
    }
}

impl<T: Send + 'static> Hyaline1Handle<'_, T> {
    /// The dedicated slot owned by this handle.
    pub fn slot(&self) -> usize {
        self.slot
    }

    /// Decrements every batch from `next` down to (and including) the handle
    /// node. Unlike the multi-list variant, `leave` passes the detached list
    /// head itself: the slot owner holds exactly one reference to every node
    /// in its list.
    ///
    /// # Safety
    ///
    /// `next` must be a node this slot's reference still pins (the detached
    /// head, or a `Next` link read while inside the operation); every node
    /// on the sublist stays live until its decrement below.
    unsafe fn traverse(&mut self, mut next: *mut SmrNode<T>) {
        let handle = self.handle;
        loop {
            let curr = next;
            if curr.is_null() {
                break;
            }
            next = header(curr).word(W_NEXT).load(Ordering::Acquire) as *mut SmrNode<T>;
            decrement(curr, &mut self.reap);
            if curr == handle {
                break;
            }
        }
    }

    /// Figure 4's `retire`: push the batch to every *active* slot, counting
    /// insertions, then adjust `NRef` by the count.
    ///
    /// # Safety
    ///
    /// `fin` must come from this handle's own `LocalBatch::finalize` and be
    /// unpublished: no other thread may have seen any chain node yet.
    unsafe fn insert_batch(&mut self, mut fin: FinalizedBatch<T>) {
        let domain = self.domain;
        let mut insert_node = fin.chain_head;
        // Once the chain is exhausted (more active slots than insertion
        // nodes, e.g. a dummy-padded partial batch at flush time), every
        // remaining slot gets a *fresh* dummy. A chain node that is already
        // linked into one slot's list must never be pushed onto a second
        // list: its `Next` word is the first list's link, and overwriting it
        // corrupts that list.
        let mut spare: *mut SmrNode<T> = ptr::null_mut();
        let mut inserts: usize = 0;
        for idx in domain.registry.iter_claimed() {
            let slot = &domain.slots[idx];
            loop {
                let head = slot.load(Ordering::Acquire);
                if !head.active() {
                    break;
                }
                let node = if insert_node != fin.refs_node {
                    insert_node
                } else {
                    if spare.is_null() {
                        spare = fin.extend_with_dummy();
                        self.local_stats.on_alloc(&domain.stats);
                        self.local_stats.on_retire(&domain.stats);
                    }
                    spare
                };
                header(node)
                    .word(W_NEXT)
                    .store(head.ptr::<SmrNode<T>>() as usize, Ordering::Relaxed);
                let new = Head1Word::pack(true, node);
                if slot
                    .compare_exchange(head, new, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    inserts += 1; // replaces REF #2#
                    if node == insert_node {
                        insert_node = chain_next(insert_node);
                    } else {
                        spare = ptr::null_mut(); // dummy consumed
                    }
                    break;
                }
            }
        }
        // Replaces REF #3#: one adjustment by the number of insertions. If
        // no slot was active, `inserts == 0` frees the batch immediately.
        adjust_refs(fin.refs_node, inserts, &mut self.reap);
    }

    fn finalize_partial(&mut self) {
        if self.batch.is_empty() {
            return;
        }
        // At least two nodes (REFS + one insertion candidate); the insert
        // loop extends on demand if more slots are active.
        let domain = self.domain;
        while self.batch.count() < 2 {
            // SAFETY: dummy nodes have no payload; the pool hands out fresh
            // or recycled exclusively-owned memory either way.
            let dummy = unsafe { domain.pool.alloc_dummy::<T>(&mut self.mag, &domain.stats) };
            self.local_stats.on_alloc(&domain.stats);
            self.local_stats.on_retire(&domain.stats);
            // SAFETY: `dummy` is exclusively owned until pushed.
            unsafe { self.batch.push(dummy.as_ptr(), u64::MAX, false) };
        }
        // SAFETY: all batch nodes are owned by this handle and unpublished.
        let fin = unsafe { self.batch.finalize(0) };
        // SAFETY: `fin` is this handle's own freshly finalized batch.
        unsafe { self.insert_batch(fin) };
    }

    fn drain(&mut self) {
        if self.reap.is_empty() {
            return;
        }
        let domain = self.domain;
        let mut freed = 0;
        for refs in std::mem::take(&mut self.reap) {
            // SAFETY: a REFS node enters `reap` only when its batch's NRef
            // crossed zero, so no thread can still reference the batch.
            freed += unsafe { free_batch_into(refs, &domain.pool, &mut self.mag, &domain.stats) };
        }
        self.local_stats.on_free(&domain.stats, freed);
    }
}

impl<T: Send + 'static> SmrHandle<T> for Hyaline1Handle<'_, T> {
    fn enter(&mut self) {
        debug_assert!(!self.active, "enter while already inside an operation");
        self.domain.slots[self.slot].enter();
        self.handle = ptr::null_mut();
        self.active = true;
    }

    fn leave(&mut self) {
        debug_assert!(self.active, "leave without a matching enter");
        self.active = false;
        let old = self.domain.slots[self.slot].leave();
        let head: *mut SmrNode<T> = old.ptr();
        if !head.is_null() {
            // SAFETY: `leave` detached the list; its nodes stay live until
            // this traversal applies our decrement to each batch.
            unsafe { self.traverse(head) };
        }
        self.handle = ptr::null_mut();
        self.drain();
    }

    fn trim(&mut self) {
        debug_assert!(self.active, "trim outside an operation");
        let head = self.domain.slots[self.slot].load(Ordering::Acquire);
        let curr: *mut SmrNode<T> = head.ptr();
        if curr != self.handle {
            debug_assert!(!curr.is_null());
            // SAFETY: we are still inside the operation, so the head and its
            // sublist are pinned by our slot's active reference.
            let next =
                unsafe { header(curr).word(W_NEXT).load(Ordering::Acquire) } as *mut SmrNode<T>;
            // SAFETY: as above — the sublist is pinned until traversed.
            unsafe { self.traverse(next) };
            self.handle = curr;
        }
        self.drain();
    }

    fn alloc(&mut self, value: T) -> Shared<T> {
        let domain = self.domain;
        self.local_stats.on_alloc(&domain.stats);
        Shared::from_node(domain.pool.alloc(&mut self.mag, &domain.stats, value))
    }

    // SAFETY: per the `SmrHandle::dealloc` contract the node was never
    // published, so this thread owns it outright and may free it in place.
    unsafe fn dealloc(&mut self, ptr: Shared<T>) {
        let domain = self.domain;
        self.local_stats.on_dealloc(&domain.stats);
        domain.pool.dispose(&mut self.mag, &domain.stats, ptr.as_node_ptr(), true);
    }

    fn protect(&mut self, _idx: usize, src: &Atomic<T>) -> Shared<T> {
        src.load(Ordering::Acquire)
    }

    // SAFETY: per the `SmrHandle::retire` contract the node is unlinked from
    // every shared structure, so batching it for deferred free is sound.
    unsafe fn retire(&mut self, ptr: Shared<T>) {
        debug_assert!(self.active, "retire outside an operation");
        self.local_stats.on_retire(&self.domain.stats);
        self.batch.push(ptr.as_node_ptr(), 0, true);
        let target = self
            .domain
            .batch_min
            .max(self.domain.registry.claimed() + 1);
        if self.batch.count() >= target {
            let fin = self.batch.finalize(0);
            self.insert_batch(fin);
            self.drain();
        }
    }

    fn flush(&mut self) {
        self.finalize_partial();
        self.drain();
        let domain = self.domain;
        domain.pool.flush(&mut self.mag, &domain.stats);
        self.local_stats.flush(&domain.stats);
    }
}

impl<T: Send + 'static> Drop for Hyaline1Handle<'_, T> {
    fn drop(&mut self) {
        if self.active {
            self.leave();
        }
        self.finalize_partial();
        self.drain();
        let domain = self.domain;
        domain.pool.flush(&mut self.mag, &domain.stats);
        self.local_stats.flush(&domain.stats);
        domain.registry.release(self.slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_domain() -> Hyaline1<u64> {
        Hyaline1::with_config(SmrConfig {
            batch_min: 4,
            max_threads: 16,
            ..SmrConfig::default()
        })
    }

    #[test]
    fn single_thread_reclaims_everything() {
        let domain = small_domain();
        {
            let mut h = domain.handle();
            for i in 0..100u64 {
                h.enter();
                let node = h.alloc(i);
                // SAFETY: `node` was never published; no other reference exists.
                unsafe { h.retire(node) };
                h.leave();
            }
        }
        assert!(domain.stats().balanced());
        assert_eq!(domain.stats().allocated(), domain.stats().freed());
    }

    #[test]
    fn handles_own_distinct_slots() {
        let domain = small_domain();
        let h1 = domain.handle();
        let h2 = domain.handle();
        assert_ne!(h1.slot(), h2.slot());
        drop(h1);
        let h3 = domain.handle();
        // The released slot is reused.
        assert_eq!(h3.slot(), 0);
        drop(h2);
        drop(h3);
    }

    #[test]
    fn reader_pins_batches_until_leave() {
        let domain = &small_domain();
        let entered = &std::sync::Barrier::new(2);
        let retired = &std::sync::Barrier::new(2);
        std::thread::scope(|s| {
            s.spawn(move || {
                let mut reader = domain.handle();
                reader.enter();
                entered.wait();
                retired.wait();
                // While inside, batches inserted into our slot are pinned.
                let pinned = domain.stats().unreclaimed();
                assert!(pinned > 0, "expected pinned batches, got {pinned}");
                reader.leave();
            });
            let mut writer = domain.handle();
            entered.wait();
            for i in 0..64u64 {
                writer.enter();
                let node = writer.alloc(i);
                // SAFETY: `node` was never published; no other reference exists.
                unsafe { writer.retire(node) };
                writer.leave();
            }
            writer.flush();
            retired.wait();
        });
        assert!(domain.stats().balanced());
        assert_eq!(domain.stats().allocated(), domain.stats().freed());
    }

    #[test]
    fn trim_reclaims_mid_operation() {
        let domain = &Hyaline1::<u64>::with_config(SmrConfig {
            batch_min: 2,
            max_threads: 4,
            ..SmrConfig::default()
        });
        let mut h = domain.handle();
        h.enter();
        for i in 0..16u64 {
            let node = h.alloc(i);
            // SAFETY: `node` was never published; no other reference exists.
            unsafe { h.retire(node) };
        }
        h.flush();
        let before = domain.stats().freed();
        h.trim();
        assert!(domain.stats().freed() > before);
        h.leave();
        drop(h);
        assert!(domain.stats().balanced());
    }

    #[test]
    fn oversubscribed_stress() {
        let domain = &Hyaline1::<u64>::with_config(SmrConfig {
            batch_min: 8,
            max_threads: 32,
            ..SmrConfig::default()
        });
        std::thread::scope(|s| {
            for t in 0..12 {
                s.spawn(move || {
                    let mut h = domain.handle();
                    for i in 0..1_500u64 {
                        h.enter();
                        let node = h.alloc(t * 100_000 + i);
                        // SAFETY: the node is thread-local until retired.
                        unsafe { h.retire(node) };
                        h.leave();
                    }
                });
            }
        });
        assert!(domain.stats().balanced());
        assert_eq!(domain.stats().allocated(), domain.stats().freed());
    }

    #[test]
    fn partial_batch_flush_with_many_active_slots() {
        // Regression test: a partial batch (2 nodes after dummy padding)
        // flushed while more than 2 slots are active must extend with a
        // fresh dummy *per slot* — re-inserting a chain node into a second
        // slot list corrupts the first list.
        let domain = &Hyaline1::<u64>::with_config(SmrConfig {
            batch_min: 64, // never filled during the test: flush is partial
            max_threads: 16,
            ..SmrConfig::default()
        });
        let readers = 6;
        let inside = &std::sync::Barrier::new(readers + 1);
        let flushed = &std::sync::Barrier::new(readers + 1);
        std::thread::scope(|s| {
            for _ in 0..readers {
                s.spawn(move || {
                    let mut h = domain.handle();
                    h.enter(); // slot active: the flusher must cover us
                    inside.wait();
                    flushed.wait();
                    h.leave(); // traverses whatever the flusher inserted
                });
            }
            let mut w = domain.handle();
            inside.wait();
            w.enter();
            let node = w.alloc(7);
            // SAFETY: `node` was never published; no other reference exists.
            unsafe { w.retire(node) };
            w.leave();
            w.flush(); // 1 real node + dummies, inserted into 6+ active slots
            flushed.wait();
        });
        assert!(domain.stats().balanced());
        assert_eq!(domain.stats().allocated(), domain.stats().freed());
    }

    #[test]
    fn churn_of_handles_is_transparent() {
        // Threads (handles) created and destroyed dynamically, with retired
        // nodes in flight: dropped handles must leave nothing on the hook.
        let domain = &small_domain();
        for round in 0..50u64 {
            let mut h = domain.handle();
            h.enter();
            let node = h.alloc(round);
            // SAFETY: `node` was never published; no other reference exists.
            unsafe { h.retire(node) };
            h.leave();
            drop(h); // finalizes the partial batch with dummies
        }
        assert!(domain.stats().balanced());
        assert_eq!(domain.stats().allocated(), domain.stats().freed());
    }
}
