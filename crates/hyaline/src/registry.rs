//! The adaptive slot directory of Section 4.3 (Figure 6) used by Hyaline-S.

use crossbeam_utils::CachePadded;
use std::sync::atomic::{AtomicI64, AtomicPtr, AtomicU64, AtomicUsize, Ordering};

use crate::head::AtomicHead;

/// One Hyaline-S slot: the list head, the per-slot access era, and the
/// stall-detection `Ack` counter (Figure 5), padded to its own cache lines.
#[derive(Debug)]
pub(crate) struct SlotS {
    pub(crate) head: AtomicHead,
    pub(crate) access: AtomicU64,
    pub(crate) ack: AtomicI64,
}

impl SlotS {
    fn new() -> Self {
        Self {
            head: AtomicHead::new(),
            access: AtomicU64::new(0),
            ack: AtomicI64::new(0),
        }
    }
}

/// Maximum number of directory entries: with doubling growth from `k_min`,
/// 64 entries can never be exceeded on a 64-bit machine (Figure 6: "the
/// number of directory entries is small and fixed, t ≤ 64").
const DIR_ENTRIES: usize = 64;

/// The Section 4.3 directory of slot banks.
///
/// Entry 0 holds the initial `k_min` slots; entry `s ≥ 1` holds slots
/// `[2^(s-1)·k_min, 2^s·k_min)`. Growing doubles the total slot count by
/// CAS-installing one new bank; the arrays already handed out are never
/// moved, so readers need no synchronization beyond an acquire load.
pub(crate) struct SlotDirectory {
    banks: [AtomicPtr<CachePadded<SlotS>>; DIR_ENTRIES],
    k_min: usize,
    k: AtomicUsize,
    max_k: usize,
}

impl SlotDirectory {
    /// Creates a directory with `k_min` initial slots, growable up to
    /// `max_k` (both powers of two; `max_k == k_min` disables growth).
    pub(crate) fn new(k_min: usize, max_k: usize) -> Self {
        assert!(k_min.is_power_of_two() && max_k.is_power_of_two());
        assert!(max_k >= k_min);
        let dir = Self {
            banks: std::array::from_fn(|_| AtomicPtr::new(std::ptr::null_mut())),
            k_min,
            k: AtomicUsize::new(k_min),
            max_k,
        };
        let bank0 = Self::alloc_bank(k_min);
        dir.banks[0].store(bank0, Ordering::Release);
        dir
    }

    fn alloc_bank(len: usize) -> *mut CachePadded<SlotS> {
        let bank: Box<[CachePadded<SlotS>]> = (0..len)
            .map(|_| CachePadded::new(SlotS::new()))
            .collect();
        Box::into_raw(bank) as *mut CachePadded<SlotS>
    }

    /// Size of directory bank `s`.
    fn bank_len(&self, s: usize) -> usize {
        if s == 0 {
            self.k_min
        } else {
            (1 << (s - 1)) * self.k_min
        }
    }

    /// First slot index covered by bank `s`.
    fn bank_base(&self, s: usize) -> usize {
        if s == 0 {
            0
        } else {
            (1 << (s - 1)) * self.k_min
        }
    }

    /// Directory entry covering slot `i` (Figure 6's `s = log2(⌊i/k_min⌋)+1`
    /// with `log2(0) = -1`, computed with a leading-zero count).
    #[inline]
    fn bank_index(&self, i: usize) -> usize {
        let q = i / self.k_min;
        if q == 0 {
            0
        } else {
            (usize::BITS - 1 - q.leading_zeros()) as usize + 1
        }
    }

    /// The current slot count `k`.
    #[inline]
    pub(crate) fn k(&self) -> usize {
        self.k.load(Ordering::Acquire)
    }

    /// Access to slot `i`.
    ///
    /// # Panics
    ///
    /// Debug-panics if `i` is outside the current `k`.
    #[inline]
    pub(crate) fn slot(&self, i: usize) -> &SlotS {
        let s = self.bank_index(i);
        let base = self.bank_base(s);
        debug_assert!(i < self.k());
        let bank = self.banks[s].load(Ordering::Acquire);
        debug_assert!(!bank.is_null());
        // SAFETY: `i < k` implies this bank was installed (banks are only
        // published together with the grown `k`), and banks are never freed
        // before the directory itself drops.
        unsafe { &*bank.add(i - base) }
    }

    /// Doubles the slot count (Section 4.3). Returns `true` if the count
    /// grew (by us or a racing thread), `false` at the `max_k` cap.
    pub(crate) fn grow(&self) -> bool {
        let k = self.k();
        if k >= self.max_k {
            return false;
        }
        let s = self.bank_index(k); // the bank that starts at slot k
        debug_assert_eq!(self.bank_base(s), k);
        if self.banks[s].load(Ordering::Acquire).is_null() {
            let candidate = Self::alloc_bank(self.bank_len(s));
            if self.banks[s]
                .compare_exchange(
                    std::ptr::null_mut(),
                    candidate,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_err()
            {
                // SAFETY: the CAS failed, so `candidate` was never published
                // and this thread still owns it exclusively.
                unsafe { Self::drop_bank(candidate, self.bank_len(s)) };
            }
        }
        // Publish the new count; racing growers agree on the same value.
        let _ = self
            .k
            .compare_exchange(k, k * 2, Ordering::AcqRel, Ordering::Acquire);
        true
    }

    /// Frees a slot bank.
    ///
    /// # Safety
    ///
    /// `ptr`/`len` must describe a bank from `alloc_bank` that is no longer
    /// reachable by any thread.
    unsafe fn drop_bank(ptr: *mut CachePadded<SlotS>, len: usize) {
        drop(Box::from_raw(std::ptr::slice_from_raw_parts_mut(ptr, len)));
    }
}

impl Drop for SlotDirectory {
    fn drop(&mut self) {
        for s in 0..DIR_ENTRIES {
            let ptr = self.banks[s].load(Ordering::Acquire);
            if !ptr.is_null() {
                // SAFETY: we hold `&mut self`, so no thread can still reach
                // any bank; each installed bank is freed exactly once.
                unsafe { Self::drop_bank(ptr, self.bank_len(s)) };
            }
        }
    }
}

impl std::fmt::Debug for SlotDirectory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlotDirectory")
            .field("k_min", &self.k_min)
            .field("k", &self.k())
            .field("max_k", &self.max_k)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directory_indexing_matches_figure6() {
        let dir = SlotDirectory::new(4, 64);
        assert_eq!(dir.bank_index(0), 0);
        assert_eq!(dir.bank_index(3), 0);
        assert_eq!(dir.bank_index(4), 1); // first grown bank
        assert_eq!(dir.bank_index(7), 1);
        assert_eq!(dir.bank_index(8), 2);
        assert_eq!(dir.bank_index(15), 2);
        assert_eq!(dir.bank_index(16), 3);
        assert_eq!(dir.bank_base(1), 4);
        assert_eq!(dir.bank_len(1), 4);
        assert_eq!(dir.bank_base(2), 8);
        assert_eq!(dir.bank_len(2), 8);
    }

    #[test]
    fn directory_grow_doubles_k() {
        let dir = SlotDirectory::new(4, 32);
        assert_eq!(dir.k(), 4);
        assert!(dir.grow());
        assert_eq!(dir.k(), 8);
        assert!(dir.grow());
        assert_eq!(dir.k(), 16);
        assert!(dir.grow());
        assert_eq!(dir.k(), 32);
        assert!(!dir.grow(), "capped at max_k");
        // Every slot is addressable and distinct.
        let mut seen = std::collections::HashSet::new();
        for i in 0..dir.k() {
            seen.insert(dir.slot(i) as *const _ as usize);
        }
        assert_eq!(seen.len(), 32);
    }

    #[test]
    fn directory_concurrent_grow_is_safe() {
        let dir = &SlotDirectory::new(2, 128);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    while dir.grow() {}
                });
            }
        });
        assert_eq!(dir.k(), 128);
        for i in 0..128 {
            dir.slot(i).ack.store(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn non_adaptive_directory_never_grows() {
        let dir = SlotDirectory::new(8, 8);
        assert!(!dir.grow());
        assert_eq!(dir.k(), 8);
    }
}
